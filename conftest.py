"""Repository-root pytest configuration.

Makes ``src/`` importable without an installed package (tier-1 runs
with ``PYTHONPATH=src``, but IDE/CI invocations may not) and loads the
determinism-lint plugin so every session checks ``src/repro`` before
tests run (docs/protocols.md §13).
"""

import sys
from pathlib import Path

_SRC = str(Path(__file__).parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

pytest_plugins = ("repro.analysis.pytest_plugin",)
