"""Trigger behaviour under node failure.

The scanner that fires a trigger is the one on the key's *primary*
replica.  When that node dies, lazy recovery moves the vnode and the
new primary's scanner must take over — no writes may silently stop
activating jobs.
"""

import pytest

from repro.core.cluster import SednaCluster
from repro.core.config import SednaConfig
from repro.core.types import FullKey
from repro.triggers.api import Action, DataHooks, Job, TriggerOutput
from repro.triggers.runtime import TriggerRuntime
from repro.zk.server import ZkConfig


class Recorder(Action):
    def __init__(self):
        self.calls = []

    def action(self, key, values, result):
        self.calls.append((key.key, list(values)))


def build():
    cluster = SednaCluster(
        n_nodes=4, zk_size=3,
        config=SednaConfig(num_vnodes=32, scan_interval=0.05,
                           trigger_interval=0.1),
        zk_config=ZkConfig(session_timeout=1.0))
    cluster.start()
    runtime = TriggerRuntime(cluster)
    runtime.start()
    return cluster, runtime


class TestTriggerFailover:
    def test_new_primary_scanner_takes_over(self):
        cluster, runtime = build()
        recorder = Recorder()
        runtime.submit(Job("watch").with_action(recorder)
                       .monitor(DataHooks(dataset="d", table="t"))
                       .output_to(TriggerOutput("d", "out")))
        client = cluster.client()

        def first_write():
            yield from client.write_latest("hot", "v1", table="t",
                                           dataset="d")
            return True

        cluster.run(first_write())
        cluster.settle(1.0)
        assert len(recorder.calls) == 1

        # Kill the key's current primary.
        encoded = FullKey(dataset="d", table="t", key="hot").encoded()
        ring = cluster.nodes["node0"].cache.ring
        primary = ring.replicas_for(ring.vnode_of(encoded), 1)[0]
        cluster.crash_node(primary)
        cluster.settle(4.0)  # session expiry

        def second_write():
            yield from client.write_latest("hot", "v2", table="t",
                                           dataset="d")
            return True

        cluster.run(second_write())
        cluster.settle(4.0)  # recovery + new primary's scanner

        def third_write():
            yield from client.write_latest("hot", "v3", table="t",
                                           dataset="d")
            return True

        cluster.run(third_write())
        cluster.settle(2.0)
        values = [vals[0] for _k, vals in recorder.calls]
        assert "v3" in values, (
            f"writes after failover must still fire triggers: {values}")

    def test_no_duplicate_firing_from_replicas(self):
        """Surviving replicas' dirty flags must not double-fire a key
        that the primary already fired."""
        cluster, runtime = build()
        recorder = Recorder()
        runtime.submit(Job("dedupe").with_action(recorder)
                       .monitor(DataHooks(dataset="d", table="t"))
                       .output_to(TriggerOutput("d", "out")))
        client = cluster.client()

        def writes():
            for i in range(10):
                yield from client.write_latest(f"k{i}", i, table="t",
                                               dataset="d")
            return True

        cluster.run(writes())
        cluster.settle(2.0)
        fired_keys = [k for k, _v in recorder.calls]
        assert sorted(fired_keys) == sorted(set(fired_keys)), (
            "each key fires exactly once despite three replicas")

    def test_runtime_survives_scanning_node_crash(self):
        """Crashing a node mid-stream loses no subsequent activations
        for keys on other primaries."""
        cluster, runtime = build()
        recorder = Recorder()
        runtime.submit(Job("stream").with_action(recorder)
                       .monitor(DataHooks(dataset="d", table="s"))
                       .output_to(TriggerOutput("d", "out")))
        client = cluster.client()

        def phase(start, count):
            for i in range(start, start + count):
                yield from client.write_latest(f"s{i}", i, table="s",
                                               dataset="d")
            return True

        cluster.run(phase(0, 10))
        cluster.settle(1.0)
        cluster.crash_node("node2")
        cluster.settle(4.0)

        cluster.run(phase(10, 10))
        # Recovery reads: touch everything so vnodes move off the corpse.
        def touch():
            for i in range(20):
                yield from client.read_latest(f"s{i}", table="s",
                                              dataset="d")
            return True

        cluster.run(touch())
        cluster.settle(5.0)

        cluster.run(phase(20, 5))
        cluster.settle(3.0)
        fired = {k for k, _v in recorder.calls}
        late = {f"s{i}" for i in range(20, 25)}
        assert late <= fired, f"missing activations: {late - fired}"
