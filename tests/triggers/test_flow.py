"""Unit tests for trigger flow control (§IV.B ripple suppression)."""

import pytest

from repro.net.simulator import Simulator
from repro.triggers.api import Job
from repro.triggers.flow import FlowControl


class FakeJob:
    """Minimal stand-in carrying what FlowControl reads."""

    def __init__(self, job_id="j1", interval=None):
        self.job_id = job_id
        self.trigger_interval = interval
        self.suppressed = 0


@pytest.fixture
def sim():
    return Simulator()


class TestFlowControl:
    def test_first_event_fires_immediately(self, sim):
        flow = FlowControl(sim, default_interval=1.0)
        fired = []
        flow.offer(FakeJob(), "k", "v1", lambda k, p: fired.append((sim.now, p)))
        assert fired == [(0.0, "v1")]

    def test_burst_coalesces_to_one_deferred_fire(self, sim):
        flow = FlowControl(sim, default_interval=1.0)
        job = FakeJob()
        fired = []
        fire = lambda k, p: fired.append((sim.now, p))
        flow.offer(job, "k", "v1", fire)
        for i in range(2, 6):
            flow.offer(job, "k", f"v{i}", fire)
        sim.run()
        assert fired[0] == (0.0, "v1")
        assert len(fired) == 2, "burst collapses into one deferred fire"
        assert fired[1] == (1.0, "v5"), "freshest payload wins"
        assert job.suppressed == 4

    def test_events_after_interval_fire_immediately(self, sim):
        flow = FlowControl(sim, default_interval=1.0)
        job = FakeJob()
        fired = []
        fire = lambda k, p: fired.append(sim.now)

        def driver():
            flow.offer(job, "k", 1, fire)
            yield sim.timeout(1.5)
            flow.offer(job, "k", 2, fire)

        sim.process(driver())
        sim.run()
        assert fired == [0.0, 1.5]

    def test_distinct_keys_independent(self, sim):
        flow = FlowControl(sim, default_interval=1.0)
        job = FakeJob()
        fired = []
        fire = lambda k, p: fired.append(p)
        flow.offer(job, "a", "pa", fire)
        flow.offer(job, "b", "pb", fire)
        assert fired == ["pa", "pb"]

    def test_distinct_jobs_independent(self, sim):
        flow = FlowControl(sim, default_interval=1.0)
        fired = []
        fire = lambda k, p: fired.append(p)
        flow.offer(FakeJob("j1"), "k", 1, fire)
        flow.offer(FakeJob("j2"), "k", 2, fire)
        assert fired == [1, 2]

    def test_job_interval_overrides_default(self, sim):
        flow = FlowControl(sim, default_interval=10.0)
        job = FakeJob(interval=0.5)
        fired = []
        fire = lambda k, p: fired.append(sim.now)

        def driver():
            flow.offer(job, "k", 1, fire)
            yield sim.timeout(0.6)
            flow.offer(job, "k", 2, fire)

        sim.process(driver())
        sim.run()
        assert fired == [0.0, 0.6]

    def test_sustained_storm_rate_limited(self, sim):
        """A circular-trigger storm (Fig. 4 right) fires at most once
        per interval per key, however many events arrive."""
        flow = FlowControl(sim, default_interval=1.0)
        job = FakeJob()
        fired = []
        fire = lambda k, p: fired.append(sim.now)

        def storm():
            for _ in range(100):
                flow.offer(job, "k", "x", fire)
                yield sim.timeout(0.05)  # 20 events/s against 1/s budget

        sim.process(storm())
        sim.run()
        # 5 seconds of storm at 1 fire/second -> about 6 firings.
        assert len(fired) <= 7
        for a, b in zip(fired, fired[1:]):
            assert b - a >= 0.999

    def test_forget_job(self, sim):
        flow = FlowControl(sim, default_interval=1.0)
        job = FakeJob()
        fired = []
        fire = lambda k, p: fired.append(p)
        flow.offer(job, "k", 1, fire)
        flow.offer(job, "k", 2, fire)  # pending
        flow.forget_job(job.job_id)
        sim.run()
        assert fired == [1], "pending flush dropped with the job"

    def test_counters(self, sim):
        flow = FlowControl(sim, default_interval=1.0)
        job = FakeJob()
        fire = lambda k, p: None
        flow.offer(job, "k", 1, fire)
        flow.offer(job, "k", 2, fire)
        assert flow.fired_immediately == 1
        assert flow.coalesced == 1
