"""Integration tests for the trigger runtime over a live cluster."""

import pytest

from repro.core.cluster import SednaCluster
from repro.core.config import SednaConfig
from repro.core.types import FullKey
from repro.triggers.api import (Action, DataHooks, Filter, Job, Result,
                                TriggerInput, TriggerOutput)
from repro.triggers.runtime import TriggerRuntime


def build(**cfg_kwargs):
    cfg_kwargs.setdefault("num_vnodes", 32)
    cfg_kwargs.setdefault("trigger_interval", 0.2)
    cfg_kwargs.setdefault("scan_interval", 0.05)
    cluster = SednaCluster(n_nodes=3, zk_size=3,
                           config=SednaConfig(**cfg_kwargs))
    cluster.start()
    runtime = TriggerRuntime(cluster)
    runtime.start()
    return cluster, runtime


class Recorder(Action):
    """Records every activation it sees."""

    def __init__(self):
        self.calls: list[tuple[FullKey, list]] = []

    def action(self, key, values, result):
        self.calls.append((key, list(values)))


class Uppercase(Action):
    """Transforms input values into the output table."""

    def action(self, key, values, result):
        for value in values:
            result.emit(key.key, str(value).upper())


class TestBasicTriggers:
    def test_key_hook_fires_on_write(self):
        cluster, runtime = build()
        recorder = Recorder()
        job = runtime.submit(
            Job("watch-one").with_action(recorder)
            .monitor(DataHooks(dataset="d", table="t", key="hot"))
            .output_to(TriggerOutput("d", "out")))
        client = cluster.client()

        def script():
            yield from client.write_latest("hot", "v1", table="t", dataset="d")
            yield from client.write_latest("cold", "x", table="t", dataset="d")
            return True

        cluster.run(script())
        cluster.settle(1.0)
        assert len(recorder.calls) == 1
        key, values = recorder.calls[0]
        assert key.key == "hot" and values == ["v1"]

    def test_table_hook_fires_for_all_keys_in_table(self):
        cluster, runtime = build()
        recorder = Recorder()
        runtime.submit(
            Job("watch-table").with_action(recorder)
            .monitor(DataHooks(dataset="d", table="tweets"))
            .output_to(TriggerOutput("d", "out")))
        client = cluster.client()

        def script():
            for i in range(5):
                yield from client.write_latest(f"t{i}", i, table="tweets",
                                               dataset="d")
            yield from client.write_latest("other", 9, table="users",
                                           dataset="d")
            return True

        cluster.run(script())
        cluster.settle(1.0)
        fired_keys = {key.key for key, _ in recorder.calls}
        assert fired_keys == {f"t{i}" for i in range(5)}

    def test_dataset_hook_spans_tables(self):
        cluster, runtime = build()
        recorder = Recorder()
        runtime.submit(
            Job("watch-ds").with_action(recorder)
            .monitor(DataHooks(dataset="web"))
            .output_to(TriggerOutput("web", "out")))
        client = cluster.client()

        def script():
            yield from client.write_latest("a", 1, table="t1", dataset="web")
            yield from client.write_latest("b", 2, table="t2", dataset="web")
            yield from client.write_latest("c", 3, table="t1", dataset="other")
            return True

        cluster.run(script())
        cluster.settle(1.0)
        assert {key.key for key, _ in recorder.calls} == {"a", "b"}

    def test_one_logical_write_fires_once_despite_replicas(self):
        cluster, runtime = build()
        recorder = Recorder()
        runtime.submit(
            Job("dedup").with_action(recorder)
            .monitor(DataHooks(dataset="d", table="t"))
            .output_to(TriggerOutput("d", "out")))
        client = cluster.client()

        def script():
            yield from client.write_latest("once", "v", table="t", dataset="d")
            return True

        cluster.run(script())
        cluster.settle(1.0)
        assert len(recorder.calls) == 1, (
            "N=3 replicas must not produce 3 activations")

    def test_action_output_written_to_cluster(self):
        cluster, runtime = build()
        runtime.submit(
            Job("upper").with_action(Uppercase())
            .monitor(DataHooks(dataset="d", table="in"))
            .output_to(TriggerOutput("d", "out")))
        client = cluster.client()

        def script():
            yield from client.write_latest("k", "hello", table="in",
                                           dataset="d")
            return True

        cluster.run(script())
        cluster.settle(1.0)

        def read():
            return (yield from client.read_latest("k", table="out",
                                                  dataset="d"))

        assert cluster.run(read()) == "HELLO"

    def test_listing1_configuration_style(self):
        """The Java Listing-1 shape: setActionClass(cls, input, output)."""
        cluster, runtime = build()

        class MyAction(Action):
            seen = []

            def action(self, key, values, result):
                MyAction.seen.append(key.key)

        class MyFilter(Filter):
            def check(self, old_key, old_value, new_key, new_value):
                return new_value != "skip"

        h1 = DataHooks(dataset="d", table="t")
        f1 = MyFilter()
        i1 = TriggerInput(h1, f1)
        o1 = TriggerOutput("d", "out")
        job = Job("listing1")
        job.set_action_class(MyAction, i1, o1)
        runtime.submit(job)
        job.schedule(timeout=100.0)

        client = cluster.client()

        def script():
            yield from client.write_latest("ok", "fine", table="t", dataset="d")
            yield from client.write_latest("no", "skip", table="t", dataset="d")
            return True

        cluster.run(script())
        cluster.settle(1.0)
        assert MyAction.seen == ["ok"]
        assert job.filtered == 1


class TestFiltersAndTimeouts:
    def test_filter_receives_old_and_new(self):
        cluster, runtime = build()
        observed = []

        class DiffFilter(Filter):
            def check(self, old_key, old_value, new_key, new_value):
                observed.append((old_value, new_value))
                return True

        recorder = Recorder()
        runtime.submit(
            Job("diff").with_action(recorder)
            .monitor(DataHooks(dataset="d", table="t"), DiffFilter())
            .output_to(TriggerOutput("d", "out")))
        client = cluster.client()

        def script():
            yield from client.write_latest("k", "v1", table="t", dataset="d")
            yield cluster.sim.timeout(0.5)
            yield from client.write_latest("k", "v2", table="t", dataset="d")
            return True

        cluster.run(script())
        cluster.settle(1.0)
        assert observed[0] == (None, "v1")
        assert observed[1] == ("v1", "v2")

    def test_stop_condition_filter(self):
        """Iterative-task stop condition: halt when value stops changing."""
        cluster, runtime = build()

        class ConvergenceFilter(Filter):
            def check(self, old_key, old_value, new_key, new_value):
                return old_value != new_value

        recorder = Recorder()
        job = runtime.submit(
            Job("converge").with_action(recorder)
            .monitor(DataHooks(dataset="d", table="t"), ConvergenceFilter())
            .output_to(TriggerOutput("d", "out")))
        client = cluster.client()

        def script():
            yield from client.write_latest("x", 1, table="t", dataset="d")
            yield cluster.sim.timeout(0.5)
            yield from client.write_latest("x", 1, table="t", dataset="d")
            yield cluster.sim.timeout(0.5)
            yield from client.write_latest("x", 2, table="t", dataset="d")
            return True

        cluster.run(script())
        cluster.settle(1.0)
        values = [vals for _k, vals in recorder.calls]
        assert len(recorder.calls) == 2, "identical rewrite must not fire"

    def test_job_timeout_stops_firing(self):
        cluster, runtime = build()
        recorder = Recorder()
        job = runtime.submit(
            Job("short").with_action(recorder)
            .monitor(DataHooks(dataset="d", table="t"))
            .output_to(TriggerOutput("d", "out")))
        job.schedule(timeout=1.0)
        client = cluster.client()

        def script():
            yield from client.write_latest("k1", 1, table="t", dataset="d")
            yield cluster.sim.timeout(3.0)  # past the deadline
            yield from client.write_latest("k2", 2, table="t", dataset="d")
            return True

        cluster.run(script())
        cluster.settle(1.0)
        assert {key.key for key, _ in recorder.calls} == {"k1"}

    def test_unscheduled_job_requires_runtime(self):
        job = Job("orphan")
        with pytest.raises(RuntimeError):
            job.schedule(1.0)

    def test_submit_validates_configuration(self):
        cluster, runtime = build()
        with pytest.raises(ValueError):
            runtime.submit(Job("incomplete"))


class TestChaining:
    def test_two_stage_pipeline(self):
        """Fig. 4 left: trigger A's output push-forwards trigger C."""
        cluster, runtime = build()

        class StageA(Action):
            def action(self, key, values, result):
                for value in values:
                    result.write(key.key, value * 2, table="mid")

        class StageC(Action):
            def action(self, key, values, result):
                for value in values:
                    result.write(key.key, value + 1, table="final")

        runtime.submit(Job("A").with_action(StageA())
                       .monitor(DataHooks(dataset="d", table="raw"))
                       .output_to(TriggerOutput("d", "mid")))
        runtime.submit(Job("C").with_action(StageC())
                       .monitor(DataHooks(dataset="d", table="mid"))
                       .output_to(TriggerOutput("d", "final")))
        client = cluster.client()

        def script():
            yield from client.write_latest("n", 10, table="raw", dataset="d")
            return True

        cluster.run(script())
        cluster.settle(2.0)

        def read():
            return (yield from client.read_latest("n", table="final",
                                                  dataset="d"))

        assert cluster.run(read()) == 21

    def test_circular_triggers_do_not_flood(self):
        """Fig. 4 right: A -> C -> A cycles stay rate-limited."""
        cluster, runtime = build(trigger_interval=0.5)

        class Bouncer(Action):
            def __init__(self, target_table):
                self.target = target_table

            def action(self, key, values, result):
                for value in values:
                    result.write(key.key, value + 1, table=self.target)

        job_a = runtime.submit(Job("A").with_action(Bouncer("tb"))
                               .monitor(DataHooks(dataset="d", table="ta"))
                               .output_to(TriggerOutput("d", "tb")))
        job_c = runtime.submit(Job("C").with_action(Bouncer("ta"))
                               .monitor(DataHooks(dataset="d", table="tb"))
                               .output_to(TriggerOutput("d", "ta")))
        client = cluster.client()

        def script():
            yield from client.write_latest("ball", 0, table="ta", dataset="d")
            return True

        cluster.run(script())
        cluster.settle(10.0)
        # 10 seconds / 0.5 s interval => each job can fire at most ~21
        # times; without suppression the count would explode.
        assert job_a.activations <= 25
        assert job_c.activations <= 25
        assert job_a.activations >= 3, "the loop must keep making progress"
