"""Additional trigger-runtime coverage: cancellation, write_all value
lists, error isolation, stats."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cluster import SednaCluster
from repro.core.config import SednaConfig
from repro.net.simulator import Simulator
from repro.triggers.api import (Action, DataHooks, Job, Result,
                                TriggerOutput)
from repro.triggers.flow import FlowControl
from repro.triggers.runtime import TriggerRuntime


class Recorder(Action):
    def __init__(self):
        self.calls = []

    def action(self, key, values, result):
        self.calls.append((key.key, list(values)))


def build():
    cluster = SednaCluster(n_nodes=3, zk_size=3,
                           config=SednaConfig(num_vnodes=32,
                                              scan_interval=0.05,
                                              trigger_interval=0.1))
    cluster.start()
    runtime = TriggerRuntime(cluster)
    runtime.start()
    return cluster, runtime


class TestCancellation:
    def test_cancelled_job_stops_firing(self):
        cluster, runtime = build()
        recorder = Recorder()
        job = runtime.submit(Job("c").with_action(recorder)
                             .monitor(DataHooks(dataset="d", table="t"))
                             .output_to(TriggerOutput("d", "o")))
        client = cluster.client()

        def w(key):
            yield from client.write_latest(key, 1, table="t", dataset="d")
            return True

        cluster.run(w("before"))
        cluster.settle(1.0)
        runtime.cancel(job)
        cluster.run(w("after"))
        cluster.settle(1.0)
        assert [k for k, _ in recorder.calls] == ["before"]

    def test_cancel_clears_flow_state(self):
        cluster, runtime = build()
        job = runtime.submit(Job("c2").with_action(Recorder())
                             .monitor(DataHooks(dataset="d", table="t"))
                             .output_to(TriggerOutput("d", "o")))
        client = cluster.client()

        def w():
            yield from client.write_latest("k", 1, table="t", dataset="d")
            return True

        cluster.run(w())
        cluster.settle(0.5)
        runtime.cancel(job)
        assert all(token[0] != job.job_id
                   for token in runtime.flow._last_fire)


class TestValueLists:
    def test_action_sees_all_write_all_elements(self):
        cluster, runtime = build()
        recorder = Recorder()
        runtime.submit(Job("va").with_action(recorder)
                       .monitor(DataHooks(dataset="d", table="t"))
                       .output_to(TriggerOutput("d", "o")))
        c1 = cluster.client("va-1")
        c2 = cluster.client("va-2")

        def script():
            yield from c1.write_all("multi", "from-1", table="t",
                                    dataset="d")
            yield from c2.write_all("multi", "from-2", table="t",
                                    dataset="d")
            return True

        cluster.run(script())
        cluster.settle(1.0)
        # The final activation's values contain both elements.
        last_values = recorder.calls[-1][1]
        assert set(last_values) >= {"from-1", "from-2"}

    def test_values_ordered_freshest_first(self):
        cluster, runtime = build()
        recorder = Recorder()
        runtime.submit(Job("vo").with_action(recorder)
                       .monitor(DataHooks(dataset="d", table="t"))
                       .output_to(TriggerOutput("d", "o")))
        c1 = cluster.client("vo-1")
        c2 = cluster.client("vo-2")

        def script():
            yield from c1.write_all("k", "older", table="t", dataset="d")
            yield cluster.sim.timeout(0.5)
            yield from c2.write_all("k", "newer", table="t", dataset="d")
            return True

        cluster.run(script())
        cluster.settle(1.0)
        assert recorder.calls[-1][1][0] == "newer"


class TestErrorIsolation:
    def test_raising_action_does_not_kill_runtime(self):
        cluster, runtime = build()

        class Bomb(Action):
            def action(self, key, values, result):
                raise RuntimeError("boom")

        recorder = Recorder()
        bomb_job = runtime.submit(Job("bomb").with_action(Bomb())
                                  .monitor(DataHooks(dataset="d", table="t"))
                                  .output_to(TriggerOutput("d", "o")))
        runtime.submit(Job("ok").with_action(recorder)
                       .monitor(DataHooks(dataset="d", table="t"))
                       .output_to(TriggerOutput("d", "o2")))
        client = cluster.client()

        def w():
            yield from client.write_latest("k", 1, table="t", dataset="d")
            return True

        cluster.run(w())
        cluster.settle(1.0)
        assert bomb_job.errors >= 1
        assert len(recorder.calls) == 1, "healthy job unaffected"

    def test_raising_filter_counts_as_error(self):
        cluster, runtime = build()

        from repro.triggers.api import Filter

        class BadFilter(Filter):
            def check(self, ok, ov, nk, nv):
                raise ValueError("bad filter")

        recorder = Recorder()
        job = runtime.submit(Job("bf").with_action(recorder)
                             .monitor(DataHooks(dataset="d", table="t"),
                                      BadFilter())
                             .output_to(TriggerOutput("d", "o")))
        client = cluster.client()

        def w():
            yield from client.write_latest("k", 1, table="t", dataset="d")
            return True

        cluster.run(w())
        cluster.settle(1.0)
        assert job.errors >= 1
        assert recorder.calls == []


class TestStats:
    def test_runtime_stats_shape(self):
        cluster, runtime = build()
        recorder = Recorder()
        runtime.submit(Job("st").with_action(recorder)
                       .monitor(DataHooks(dataset="d", table="t"))
                       .output_to(TriggerOutput("d", "o")))
        client = cluster.client()

        def w():
            for i in range(5):
                yield from client.write_latest(f"k{i}", i, table="t",
                                               dataset="d")
            return True

        cluster.run(w())
        cluster.settle(1.0)
        stats = runtime.stats()
        assert stats["jobs"]["st"]["activations"] == 5
        assert stats["activations"] >= 5
        assert stats["action_errors"] == 0


# -- flow-control property test ----------------------------------------

@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(min_value=0.0, max_value=0.3), min_size=1,
                max_size=60),
       st.floats(min_value=0.2, max_value=1.0))
def test_flow_rate_limit_property(gaps, interval):
    """Property: whatever the event arrival pattern, consecutive fires
    of one (job, key) are at least ``interval`` apart, and the freshest
    payload is never lost (the last fire carries the last payload)."""
    sim = Simulator()
    flow = FlowControl(sim, default_interval=interval)

    class J:
        job_id = "j"
        trigger_interval = None
        suppressed = 0

    job = J()
    fires = []

    def driver():
        for i, gap in enumerate(gaps):
            flow.offer(job, "k", i, lambda k, p: fires.append((sim.now, p)))
            yield sim.timeout(gap)

    sim.process(driver())
    sim.run()
    for (t1, _p1), (t2, _p2) in zip(fires, fires[1:]):
        assert t2 - t1 >= interval - 1e-9
    assert fires, "at least the first event fires"
    assert fires[-1][1] == len(gaps) - 1, "freshest payload always delivered"
