"""Unit tests for the session table and watch registry."""

from repro.zk.session import SessionTable
from repro.zk.watches import (EVENT_CHANGED, EVENT_CHILD, EVENT_CREATED,
                              EVENT_DELETED, WatchRegistry)


class TestSessionTable:
    def test_open_and_contains(self):
        table = SessionTable()
        table.open(1, timeout=2.0, now=0.0)
        assert 1 in table and len(table) == 1

    def test_ping_updates(self):
        table = SessionTable()
        table.open(1, timeout=2.0, now=0.0)
        assert table.ping(1, now=1.5)
        assert table.expired(now=3.0) == []
        assert table.expired(now=3.6) == [1]

    def test_ping_unknown(self):
        assert SessionTable().ping(99, 0.0) is False

    def test_expired_respects_timeout(self):
        table = SessionTable()
        table.open(1, timeout=1.0, now=0.0)
        table.open(2, timeout=10.0, now=0.0)
        assert table.expired(now=2.0) == [1]

    def test_close(self):
        table = SessionTable()
        table.open(1, timeout=1.0, now=0.0)
        assert table.close(1) is True
        assert table.close(1) is False

    def test_reset_clocks(self):
        table = SessionTable()
        table.open(1, timeout=1.0, now=0.0)
        table.reset_clocks(now=100.0)
        assert table.expired(now=100.5) == []

    def test_dump_load(self):
        table = SessionTable()
        table.open(1, timeout=2.5, now=0.0)
        clone = SessionTable()
        clone.load(table.dump(), now=50.0)
        assert 1 in clone
        assert clone.sessions[1].timeout == 2.5
        assert clone.expired(now=51.0) == []


class TestWatchRegistry:
    def test_data_watch_fires_once(self):
        reg = WatchRegistry()
        reg.add_data("/a", "c1")
        fired = reg.fire_data("/a", EVENT_CHANGED)
        assert fired == [("c1", {"type": EVENT_CHANGED, "path": "/a"})]
        assert reg.fire_data("/a", EVENT_CHANGED) == []

    def test_multiple_clients(self):
        reg = WatchRegistry()
        reg.add_data("/a", "c2")
        reg.add_data("/a", "c1")
        fired = reg.fire_data("/a", EVENT_DELETED)
        assert [c for c, _ in fired] == ["c1", "c2"]

    def test_child_watch(self):
        reg = WatchRegistry()
        reg.add_child("/p", "c1")
        fired = reg.fire_child("/p")
        assert fired[0][1]["type"] == EVENT_CHILD

    def test_events_for_create(self):
        reg = WatchRegistry()
        reg.add_data("/p/x", "c1")   # exists-watch on the new node
        reg.add_child("/p", "c2")    # child-watch on the parent
        events = reg.events_for_txn("create", "/p/x", "/p")
        types = sorted(e["type"] for _, e in events)
        assert types == [EVENT_CHILD, EVENT_CREATED]

    def test_events_for_delete(self):
        reg = WatchRegistry()
        reg.add_data("/p/x", "c1")
        reg.add_child("/p", "c1")
        events = reg.events_for_txn("delete", "/p/x", "/p")
        assert len(events) == 2

    def test_events_for_set_no_child_watch(self):
        reg = WatchRegistry()
        reg.add_child("/p", "c1")
        assert reg.events_for_txn("set", "/p/x", "/p") == []

    def test_drop_client(self):
        reg = WatchRegistry()
        reg.add_data("/a", "c1")
        reg.add_data("/a", "c2")
        reg.add_child("/b", "c1")
        reg.drop_client("c1")
        assert reg.count() == 1
        assert reg.fire_data("/a", EVENT_CHANGED) == [
            ("c2", {"type": EVENT_CHANGED, "path": "/a"})]

    def test_count(self):
        reg = WatchRegistry()
        assert reg.count() == 0
        reg.add_data("/a", "c1")
        reg.add_child("/a", "c1")
        assert reg.count() == 2
