"""Unit and property tests for the znode tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.zk.znode import (BadVersionError, NodeExistsError, NoNodeError,
                            NotEmptyError, ZkError, ZnodeTree, validate_path)


@pytest.fixture
def tree():
    return ZnodeTree()


class TestPathValidation:
    @pytest.mark.parametrize("bad", ["", "relative", "/end/", "/a//b"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ZkError):
            validate_path(bad)

    @pytest.mark.parametrize("good", ["/", "/a", "/a/b/c"])
    def test_accepts_wellformed(self, good):
        validate_path(good)


class TestCreate:
    def test_create_and_get(self, tree):
        assert tree.create("/a", b"data", zxid=1) == "/a"
        data, stat = tree.get("/a")
        assert data == b"data"
        assert stat.czxid == 1 and stat.version == 0

    def test_create_nested(self, tree):
        tree.create("/a", b"", zxid=1)
        tree.create("/a/b", b"x", zxid=2)
        assert tree.get("/a/b")[0] == b"x"

    def test_create_missing_parent(self, tree):
        with pytest.raises(NoNodeError):
            tree.create("/a/b", b"", zxid=1)

    def test_create_duplicate(self, tree):
        tree.create("/a", b"", zxid=1)
        with pytest.raises(NodeExistsError):
            tree.create("/a", b"", zxid=2)

    def test_create_root_rejected(self, tree):
        with pytest.raises(NodeExistsError):
            tree.create("/", b"", zxid=1)

    def test_create_updates_parent_stat(self, tree):
        tree.create("/a", b"", zxid=1)
        tree.create("/a/b", b"", zxid=2)
        _, stat = tree.get("/a")
        assert stat.num_children == 1 and stat.cversion == 1

    def test_sequential_names(self, tree):
        tree.create("/q", b"", zxid=1)
        p1 = tree.create("/q/item-", b"", zxid=2, sequential=True)
        p2 = tree.create("/q/item-", b"", zxid=3, sequential=True)
        assert p1 == "/q/item-0000000000"
        assert p2 == "/q/item-0000000001"

    def test_sequential_at_root(self, tree):
        assert tree.create("/s-", b"", zxid=1, sequential=True) == "/s-0000000000"

    def test_ephemeral_cannot_have_children(self, tree):
        tree.create("/e", b"", zxid=1, ephemeral_owner=7)
        with pytest.raises(ZkError):
            tree.create("/e/child", b"", zxid=2)


class TestSetDelete:
    def test_set_bumps_version(self, tree):
        tree.create("/a", b"v0", zxid=1)
        stat = tree.set("/a", b"v1", zxid=2)
        assert stat.version == 1 and stat.mzxid == 2
        assert tree.get("/a")[0] == b"v1"

    def test_set_version_check(self, tree):
        tree.create("/a", b"", zxid=1)
        tree.set("/a", b"x", zxid=2, expected_version=0)
        with pytest.raises(BadVersionError):
            tree.set("/a", b"y", zxid=3, expected_version=0)

    def test_set_missing(self, tree):
        with pytest.raises(NoNodeError):
            tree.set("/nope", b"", zxid=1)

    def test_delete(self, tree):
        tree.create("/a", b"", zxid=1)
        tree.delete("/a", zxid=2)
        assert tree.exists("/a") is None

    def test_delete_with_children_rejected(self, tree):
        tree.create("/a", b"", zxid=1)
        tree.create("/a/b", b"", zxid=2)
        with pytest.raises(NotEmptyError):
            tree.delete("/a", zxid=3)

    def test_delete_version_check(self, tree):
        tree.create("/a", b"", zxid=1)
        with pytest.raises(BadVersionError):
            tree.delete("/a", zxid=2, expected_version=5)

    def test_delete_root_rejected(self, tree):
        with pytest.raises(ZkError):
            tree.delete("/", zxid=1)


class TestExistsChildren:
    def test_exists(self, tree):
        assert tree.exists("/a") is None
        tree.create("/a", b"", zxid=1)
        assert tree.exists("/a").czxid == 1

    def test_get_children_sorted(self, tree):
        tree.create("/p", b"", zxid=1)
        for name in ["c", "a", "b"]:
            tree.create(f"/p/{name}", b"", zxid=2)
        assert tree.get_children("/p") == ["a", "b", "c"]

    def test_get_children_missing(self, tree):
        with pytest.raises(NoNodeError):
            tree.get_children("/nope")

    def test_root_children(self, tree):
        tree.create("/a", b"", zxid=1)
        assert tree.get_children("/") == ["a"]


class TestEphemerals:
    def test_tracked_per_session(self, tree):
        tree.create("/e1", b"", zxid=1, ephemeral_owner=10)
        tree.create("/e2", b"", zxid=2, ephemeral_owner=10)
        tree.create("/e3", b"", zxid=3, ephemeral_owner=20)
        assert set(tree.ephemerals_of(10)) == {"/e1", "/e2"}

    def test_remove_session_deletes_ephemerals(self, tree):
        tree.create("/e1", b"", zxid=1, ephemeral_owner=10)
        tree.create("/keep", b"", zxid=2)
        removed = tree.remove_session(10, zxid=3)
        assert removed == ["/e1"]
        assert tree.exists("/e1") is None
        assert tree.exists("/keep") is not None

    def test_explicit_delete_untracks(self, tree):
        tree.create("/e", b"", zxid=1, ephemeral_owner=10)
        tree.delete("/e", zxid=2)
        assert tree.ephemerals_of(10) == []

    def test_remove_unknown_session_noop(self, tree):
        assert tree.remove_session(999, zxid=1) == []


class TestSnapshot:
    def test_dump_load_roundtrip(self, tree):
        tree.create("/a", b"1", zxid=1)
        tree.create("/a/b", b"2", zxid=2)
        tree.create("/e", b"3", zxid=3, ephemeral_owner=7)
        tree.set("/a", b"1x", zxid=4)
        clone = ZnodeTree.load(tree.dump())
        assert list(clone.walk_paths()) == list(tree.walk_paths())
        assert clone.get("/a") == tree.get("/a")
        assert clone.ephemerals_of(7) == ["/e"]

    def test_sequence_counters_survive(self, tree):
        tree.create("/q", b"", zxid=1)
        tree.create("/q/i-", b"", zxid=2, sequential=True)
        clone = ZnodeTree.load(tree.dump())
        path = clone.create("/q/i-", b"", zxid=3, sequential=True)
        assert path == "/q/i-0000000001"


_names = st.sampled_from(["a", "b", "c", "d"])
_paths = st.lists(_names, min_size=1, max_size=3).map(lambda ps: "/" + "/".join(ps))


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(st.sampled_from(["create", "delete", "set"]), _paths),
                max_size=40))
def test_tree_matches_model(ops):
    """Property: the tree agrees with a flat dict model on membership."""
    tree = ZnodeTree()
    model: dict[str, bytes] = {}
    zxid = 0
    for op, path in ops:
        zxid += 1
        parent = path[:path.rfind("/")] or "/"
        if op == "create":
            if parent != "/" and parent not in model:
                with pytest.raises(NoNodeError):
                    tree.create(path, b"", zxid)
            elif path in model:
                with pytest.raises(NodeExistsError):
                    tree.create(path, b"", zxid)
            else:
                tree.create(path, b"", zxid)
                model[path] = b""
        elif op == "delete":
            has_kids = any(k.startswith(path + "/") for k in model)
            if path not in model:
                with pytest.raises(NoNodeError):
                    tree.delete(path, zxid)
            elif has_kids:
                with pytest.raises(NotEmptyError):
                    tree.delete(path, zxid)
            else:
                tree.delete(path, zxid)
                del model[path]
        else:
            if path not in model:
                with pytest.raises(NoNodeError):
                    tree.set(path, b"x", zxid)
            else:
                tree.set(path, b"x", zxid)
                model[path] = b"x"
    assert set(tree.walk_paths()) == set(model)
