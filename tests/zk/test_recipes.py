"""Tests for the ZooKeeper coordination recipes."""

import pytest

from repro.net.latency import LanGigabit
from repro.net.simulator import AllOf, Simulator
from repro.net.transport import Network
from repro.zk.ensemble import ZkEnsemble
from repro.zk.recipes import (Barrier, DistributedLock, DistributedQueue,
                              LeaderElection)


@pytest.fixture
def world():
    sim = Simulator()
    net = Network(sim, latency=LanGigabit(seed=6))
    ens = ZkEnsemble(sim, net, size=3)
    ens.start()
    return sim, ens


def connected_client(sim, ens, name):
    zk = ens.client(name)
    proc = sim.process(zk.connect())
    sim.run(until=proc)
    return zk


class TestDistributedLock:
    def test_single_holder_acquires_immediately(self, world):
        sim, ens = world
        zk = connected_client(sim, ens, "c1")
        lock = DistributedLock(zk, "/locks/r")

        def script():
            got = yield from lock.acquire()
            held = lock.held
            yield from lock.release()
            return got, held

        proc = sim.process(script())
        assert sim.run(until=proc) == (True, True)

    def test_mutual_exclusion(self, world):
        sim, ens = world
        clients = [connected_client(sim, ens, f"c{i}") for i in range(3)]
        trace = []

        def contender(i, zk):
            lock = DistributedLock(zk, "/locks/mx")
            yield from lock.acquire()
            trace.append(("enter", i, sim.now))
            yield sim.timeout(0.5)  # critical section
            trace.append(("exit", i, sim.now))
            yield from lock.release()

        procs = [sim.process(contender(i, zk))
                 for i, zk in enumerate(clients)]
        sim.run(until=AllOf(sim, procs))
        # Critical sections must not overlap.
        events = sorted(trace, key=lambda e: e[2])
        depth = 0
        for kind, _i, _t in events:
            depth += 1 if kind == "enter" else -1
            assert 0 <= depth <= 1, f"overlapping critical sections: {events}"

    def test_fifo_fairness(self, world):
        sim, ens = world
        order = []

        def contender(i, zk, delay):
            lock = DistributedLock(zk, "/locks/fair")
            yield sim.timeout(delay)
            yield from lock.acquire()
            order.append(i)
            yield sim.timeout(0.2)
            yield from lock.release()

        procs = [sim.process(contender(i, connected_client(sim, ens, f"f{i}"),
                                       0.1 * i))
                 for i in range(3)]
        sim.run(until=AllOf(sim, procs))
        assert order == [0, 1, 2], "lock must grant in arrival order"

    def test_acquire_timeout(self, world):
        sim, ens = world
        zk1 = connected_client(sim, ens, "h")
        zk2 = connected_client(sim, ens, "w")
        holder = DistributedLock(zk1, "/locks/t")
        waiter = DistributedLock(zk2, "/locks/t")

        def script():
            yield from holder.acquire()
            got = yield from waiter.acquire(timeout=1.0)
            return got, sim.now

        proc = sim.process(script())
        got, when = sim.run(until=proc)
        assert got is False and when >= 1.0

    def test_crash_releases_lock(self, world):
        sim, ens = world
        zk1 = connected_client(sim, ens, "dying")
        zk2 = connected_client(sim, ens, "patient")
        lock1 = DistributedLock(zk1, "/locks/c")
        lock2 = DistributedLock(zk2, "/locks/c")

        def holder():
            yield from lock1.acquire()
            yield sim.timeout(0.5)
            zk1.crash()  # session will expire, znode vanishes

        def waiter():
            yield sim.timeout(0.1)
            got = yield from lock2.acquire(timeout=20.0)
            return got, sim.now

        sim.process(holder())
        proc = sim.process(waiter())
        got, when = sim.run(until=proc)
        assert got is True
        assert when > 0.5, "lock must transfer only after the crash"

    def test_double_acquire_rejected(self, world):
        sim, ens = world
        zk = connected_client(sim, ens, "d")
        lock = DistributedLock(zk, "/locks/dbl")

        def script():
            yield from lock.acquire()
            with pytest.raises(RuntimeError):
                yield from lock.acquire()
            yield from lock.release()
            with pytest.raises(RuntimeError):
                yield from lock.release()
            return True

        proc = sim.process(script())
        assert sim.run(until=proc) is True


class TestLeaderElection:
    def test_first_volunteer_leads(self, world):
        sim, ens = world
        zk = connected_client(sim, ens, "v1")
        election = LeaderElection(zk, "/election/a")

        def script():
            got = yield from election.volunteer()
            return got, election.leading

        proc = sim.process(script())
        assert sim.run(until=proc) == (True, True)

    def test_succession_on_resign(self, world):
        sim, ens = world
        zk1 = connected_client(sim, ens, "e1")
        zk2 = connected_client(sim, ens, "e2")
        first = LeaderElection(zk1, "/election/b")
        second = LeaderElection(zk2, "/election/b")
        history = []

        def leader_one():
            yield from first.volunteer()
            history.append(("one-leads", sim.now))
            yield sim.timeout(1.0)
            yield from first.resign()

        def leader_two():
            yield sim.timeout(0.2)  # volunteer second
            yield from second.volunteer()
            history.append(("two-leads", sim.now))

        sim.process(leader_one())
        proc = sim.process(leader_two())
        sim.run(until=proc)
        assert [name for name, _t in history] == ["one-leads", "two-leads"]
        assert history[1][1] >= 1.0


class TestBarrier:
    def test_parties_wait_for_full_strength(self, world):
        sim, ens = world
        release_times = []

        def party(i):
            zk = connected_client(sim, ens, f"b{i}")
            barrier = Barrier(zk, "/barriers/x", size=3)
            yield sim.timeout(0.3 * i)  # staggered arrivals
            ok = yield from barrier.enter()
            release_times.append(sim.now)
            return ok

        procs = [sim.process(party(i)) for i in range(3)]
        sim.run(until=AllOf(sim, procs))
        assert all(p.value for p in procs)
        # Nobody passes before the last arrival (t = 0.6).
        assert min(release_times) >= 0.6

    def test_barrier_timeout(self, world):
        sim, ens = world
        zk = connected_client(sim, ens, "lonely")
        barrier = Barrier(zk, "/barriers/alone", size=2)

        def script():
            return (yield from barrier.enter(timeout=1.0))

        proc = sim.process(script())
        assert sim.run(until=proc) is False


class TestDistributedQueue:
    def test_fifo_order(self, world):
        sim, ens = world
        zk = connected_client(sim, ens, "q")
        queue = DistributedQueue(zk, "/queues/fifo")

        def script():
            for i in range(5):
                yield from queue.offer(f"item{i}".encode())
            out = []
            for _ in range(5):
                out.append((yield from queue.take()))
            return out

        proc = sim.process(script())
        assert sim.run(until=proc) == [f"item{i}".encode() for i in range(5)]

    def test_take_empty_times_out(self, world):
        sim, ens = world
        zk = connected_client(sim, ens, "q2")
        queue = DistributedQueue(zk, "/queues/empty")

        def script():
            return (yield from queue.take(timeout=0.5))

        proc = sim.process(script())
        assert sim.run(until=proc) is None

    def test_competing_consumers_no_duplicates(self, world):
        sim, ens = world
        producer_zk = connected_client(sim, ens, "prod")
        queue = DistributedQueue(producer_zk, "/queues/comp")
        consumed = []

        def producer():
            for i in range(10):
                yield from queue.offer(str(i).encode())

        def consumer(name):
            zk = connected_client(sim, ens, name)
            q = DistributedQueue(zk, "/queues/comp")
            while True:
                item = yield from q.take(timeout=1.5)
                if item is None:
                    return
                consumed.append(item)

        sim.process(producer())
        procs = [sim.process(consumer(f"cons{i}")) for i in range(3)]
        sim.run(until=AllOf(sim, procs))
        assert sorted(consumed) == sorted(str(i).encode() for i in range(10))
        assert len(consumed) == len(set(consumed)) == 10

    def test_size(self, world):
        sim, ens = world
        zk = connected_client(sim, ens, "q3")
        queue = DistributedQueue(zk, "/queues/size")

        def script():
            yield from queue.offer(b"a")
            yield from queue.offer(b"b")
            before = yield from queue.size()
            yield from queue.take()
            after = yield from queue.size()
            return before, after

        proc = sim.process(script())
        assert sim.run(until=proc) == (2, 1)
