"""A follower that loses one commit notification must heal the gap.

Commits are broadcast to followers as fire-and-forget notifies; under
message loss a single dropped notify used to wedge the follower
forever — every later commit piled up in its out-of-order buffer,
``applied_zxid`` froze, and any client that rotated onto that member
read a permanently stale tree (the chaos harness caught this as a
mapping-cache convergence anomaly).  The fix: a buffered commit that
cannot be applied schedules a snapshot sync from the leader.
"""

import pytest

from repro.net.latency import NoLatency
from repro.net.simulator import Simulator
from repro.net.transport import Network
from repro.zk.ensemble import ZkEnsemble


@pytest.fixture
def world():
    sim = Simulator()
    net = Network(sim, latency=NoLatency())
    ens = ZkEnsemble(sim, net, size=3)
    ens.start()
    return sim, net, ens


def run_script(sim, ens, script, name="cli"):
    zk = ens.client(name)

    def main():
        yield from zk.connect()
        result = yield from script(zk)
        yield from zk.close()
        return result

    proc = sim.process(main())
    return sim.run(until=proc)


def drop_one_commit_to(net, victim: str):
    """Filter dropping exactly one commit notify bound for ``victim``."""
    dropped: list[int] = []

    def fn(src, dst, payload):
        if (dst == victim and not dropped and isinstance(payload, dict)
                and payload.get("kind") == "notify"
                and isinstance(payload.get("body"), dict)
                and payload["body"].get("zk") == "commit"):
            dropped.append(payload["body"]["zxid"])
            return False
        return True

    net.add_filter(fn)
    return dropped


class TestCommitGapHealing:
    def test_follower_resyncs_after_dropped_commit(self, world):
        sim, net, ens = world

        def seed(zk):
            yield from zk.create("/base", b"")
            return True

        run_script(sim, ens, seed)

        dropped = drop_one_commit_to(net, "zk1")

        def burst(zk):
            # The first create's commit notify to zk1 is eaten; the
            # rest arrive out of order and used to buffer forever.
            for i in range(5):
                yield from zk.create(f"/k{i}", str(i).encode())
            return True

        assert run_script(sim, ens, burst, name="writer")
        assert dropped, "the filter must have eaten one commit"

        # Give the gap-heal path ample time, then compare histories.
        sim.run(until=sim.now + 5.0)
        leader = ens.servers[0]
        follower = ens.server("zk1")
        assert follower.applied_zxid == leader.applied_zxid, (
            f"zk1 wedged at zxid {follower.applied_zxid} "
            f"(leader at {leader.applied_zxid}, "
            f"{len(follower._commit_buffer)} commits buffered)")
        assert not follower._commit_buffer

        # And a client reading from the healed follower sees the data.
        def read_from_zk1(zk):
            zk._server_idx = 1
            data, _ = yield from zk.get("/k0")
            return data

        assert run_script(sim, ens, read_from_zk1, name="reader") == b"0"

    def test_two_gaps_both_heal(self, world):
        sim, net, ens = world

        def seed(zk):
            yield from zk.create("/base", b"")
            return True

        run_script(sim, ens, seed)

        # Eat one commit notify on each follower independently.
        drop_one_commit_to(net, "zk1")
        drop_one_commit_to(net, "zk2")

        def burst(zk):
            for i in range(6):
                yield from zk.create(f"/g{i}", b"")
            return True

        assert run_script(sim, ens, burst, name="writer")
        sim.run(until=sim.now + 5.0)
        leader = ens.servers[0]
        for name in ("zk1", "zk2"):
            follower = ens.server(name)
            assert follower.applied_zxid == leader.applied_zxid, (
                f"{name} wedged at zxid {follower.applied_zxid}")

    def test_abandoned_proposal_does_not_wedge_stream(self, world):
        """A proposal that fails quorum must not leave a zxid hole.

        The leader allocates the zxid before gathering acks; if the
        round fails it used to abandon that zxid, and every later
        commit — on the leader itself included — buffered behind the
        hole forever.  The fix: the leader *steps down* (it cannot
        reach a majority, so it may be minority-partitioned), the
        allocated zxid dies with its reign, and the next leader reuses
        it in a new epoch — the stream stays gapless.
        """
        sim, net, ens = world

        # Cut the leader off from both followers: propose calls die.
        # Toggled from inside the script so the session handshake
        # (itself a proposal) happens before and after the outage.
        blocking = [False]

        def fn(src, dst, payload):
            if (blocking[0] and isinstance(payload, dict)
                    and payload.get("kind") == "req"
                    and payload.get("method") == "zk.propose"):
                return False
            return True

        net.add_filter(fn)
        outcome = {}

        def script(zk):
            yield from zk.create("/base", b"")
            blocking[0] = True
            try:
                yield from zk.create("/doomed", b"")
                outcome["doomed"] = "succeeded"
            except Exception:
                outcome["doomed"] = "failed"
            blocking[0] = False
            yield sim.timeout(3.0)
            # Post-outage writes must commit and apply everywhere.
            yield from zk.create("/after", b"ok")
            data, _ = yield from zk.get("/after")
            return data

        assert run_script(sim, ens, script, name="writer") == b"ok"
        assert outcome["doomed"] == "failed"
        sim.run(until=sim.now + 3.0)
        leader = ens.servers[0]
        assert not leader._commit_buffer, (
            f"leader wedged: applied={leader.applied_zxid}, "
            f"{len(leader._commit_buffer)} commits buffered")
        for name in ("zk1", "zk2"):
            follower = ens.server(name)
            assert follower.applied_zxid == leader.applied_zxid

    def test_stale_follower_read_recovers(self, world):
        """The user-visible symptom: a mapping-style read served by the
        gapped follower must stop being stale once the heal runs."""
        sim, net, ens = world

        def seed(zk):
            yield from zk.create("/vnode", b"old")
            return True

        run_script(sim, ens, seed)
        drop_one_commit_to(net, "zk1")

        def update(zk):
            yield from zk.set("/vnode", b"new")
            yield from zk.create("/after", b"")  # buffers behind the gap
            return True

        assert run_script(sim, ens, update, name="writer")
        sim.run(until=sim.now + 5.0)

        def read_stale_candidate(zk):
            zk._server_idx = 1
            data, _ = yield from zk.get("/vnode")
            return data

        assert run_script(sim, ens, read_stale_candidate,
                          name="reader") == b"new"
