"""Integration tests: ZooKeeper ensemble + client over the simulated net."""

import pytest

from repro.net.latency import LanGigabit
from repro.net.simulator import Simulator
from repro.net.transport import Network
from repro.zk.client import SessionExpired
from repro.zk.ensemble import ZkEnsemble
from repro.zk.server import ZkConfig
from repro.zk.znode import NodeExistsError, NoNodeError


@pytest.fixture
def world():
    sim = Simulator()
    net = Network(sim, latency=LanGigabit(seed=42))
    ens = ZkEnsemble(sim, net, size=3)
    ens.start()
    return sim, net, ens


def run_client(sim, ens, script, name="cli"):
    """Run a client script; returns its result."""
    zk = ens.client(name)

    def main():
        yield from zk.connect()
        result = yield from script(zk)
        return result

    proc = sim.process(main())
    return sim.run(until=proc)


class TestBasicOps:
    def test_create_get_roundtrip(self, world):
        sim, _net, ens = world

        def script(zk):
            yield from zk.create("/a", b"hello")
            data, stat = yield from zk.get("/a")
            return data, stat["version"]

        data, version = run_client(sim, ens, script)
        assert data == b"hello" and version == 0

    def test_set_and_version(self, world):
        sim, _net, ens = world

        def script(zk):
            yield from zk.create("/a", b"v0")
            stat = yield from zk.set("/a", b"v1")
            data, _ = yield from zk.get("/a")
            return stat["version"], data

        version, data = run_client(sim, ens, script)
        assert version == 1 and data == b"v1"

    def test_delete_and_exists(self, world):
        sim, _net, ens = world

        def script(zk):
            yield from zk.create("/a", b"")
            before = yield from zk.exists("/a")
            yield from zk.delete("/a")
            after = yield from zk.exists("/a")
            return before is not None, after

        existed, gone = run_client(sim, ens, script)
        assert existed and gone is None

    def test_children_and_sequential(self, world):
        sim, _net, ens = world

        def script(zk):
            yield from zk.create("/q", b"")
            p1 = yield from zk.create("/q/n-", b"", sequential=True)
            p2 = yield from zk.create("/q/n-", b"", sequential=True)
            children = yield from zk.get_children("/q")
            return p1, p2, children

        p1, p2, children = run_client(sim, ens, script)
        assert p1.endswith("0000000000") and p2.endswith("0000000001")
        assert len(children) == 2

    def test_typed_errors_propagate(self, world):
        sim, _net, ens = world

        def script(zk):
            yield from zk.create("/a", b"")
            try:
                yield from zk.create("/a", b"")
            except NodeExistsError:
                pass
            else:
                return "missed NodeExistsError"
            try:
                yield from zk.get("/missing")
            except NoNodeError:
                return "ok"
            return "missed NoNodeError"

        assert run_client(sim, ens, script) == "ok"

    def test_ensure_path(self, world):
        sim, _net, ens = world

        def script(zk):
            yield from zk.ensure_path("/a/b/c")
            yield from zk.ensure_path("/a/b/c")  # idempotent
            return (yield from zk.exists("/a/b/c")) is not None

        assert run_client(sim, ens, script) is True


class TestReplication:
    def test_all_members_converge(self, world):
        sim, _net, ens = world

        def script(zk):
            for i in range(10):
                yield from zk.create(f"/k{i}", str(i).encode())
            return True

        run_client(sim, ens, script)
        sim.run(until=sim.now + 2.0)  # let commits propagate
        trees = [set(s.tree.walk_paths()) for s in ens.servers]
        assert trees[0] == trees[1] == trees[2]
        assert "/k9" in trees[0]

    def test_reads_work_against_any_member(self, world):
        sim, _net, ens = world

        def writer(zk):
            yield from zk.create("/shared", b"data")
            return True

        run_client(sim, ens, writer, name="writer")
        sim.run(until=sim.now + 1.0)

        # Force a client to talk to a follower.
        zk2 = ens.client("reader")
        zk2._server_idx = 1

        def reader():
            yield from zk2.connect()
            data, _ = yield from zk2.get("/shared")
            return data

        proc = sim.process(reader())
        assert sim.run(until=proc) == b"data"


class TestEphemerals:
    def test_ephemeral_removed_on_session_expiry(self, world):
        sim, _net, ens = world
        zk = ens.client("eph")

        def main():
            yield from zk.connect()
            yield from zk.create("/live", b"", ephemeral=True)
            return True

        proc = sim.process(main())
        sim.run(until=proc)
        assert ens.leader().tree.exists("/live") is not None

        zk.crash()  # pings stop
        sim.run(until=sim.now + 4 * ens.config.session_timeout)
        assert ens.leader().tree.exists("/live") is None

    def test_ephemeral_survives_while_pinging(self, world):
        sim, _net, ens = world
        zk = ens.client("eph")

        def main():
            yield from zk.connect()
            yield from zk.create("/live", b"", ephemeral=True)
            yield sim.timeout(5 * ens.config.session_timeout)
            return (yield from zk.exists("/live")) is not None

        proc = sim.process(main())
        assert sim.run(until=proc) is True

    def test_graceful_close_removes_ephemerals(self, world):
        sim, _net, ens = world
        zk = ens.client("eph")

        def main():
            yield from zk.connect()
            yield from zk.create("/live", b"", ephemeral=True)
            yield from zk.close()
            return True

        proc = sim.process(main())
        sim.run(until=proc)
        sim.run(until=sim.now + 1.0)
        assert ens.leader().tree.exists("/live") is None


class TestWatches:
    def test_data_watch_fires_on_set(self, world):
        sim, _net, ens = world
        events = []

        def script(zk):
            yield from zk.create("/w", b"v0")
            yield from zk.get("/w", watch=events.append)
            yield from zk.set("/w", b"v1")
            yield sim.timeout(0.5)
            return events

        got = run_client(sim, ens, script)
        assert len(got) == 1
        assert got[0]["type"] == "changed" and got[0]["path"] == "/w"

    def test_watch_is_one_shot(self, world):
        sim, _net, ens = world
        events = []

        def script(zk):
            yield from zk.create("/w", b"")
            yield from zk.get("/w", watch=events.append)
            yield from zk.set("/w", b"1")
            yield from zk.set("/w", b"2")
            yield sim.timeout(0.5)
            return events

        assert len(run_client(sim, ens, script)) == 1

    def test_child_watch_fires_on_create(self, world):
        sim, _net, ens = world
        events = []

        def script(zk):
            yield from zk.create("/p", b"")
            yield from zk.get_children("/p", watch=events.append)
            yield from zk.create("/p/kid", b"")
            yield sim.timeout(0.5)
            return events

        got = run_client(sim, ens, script)
        assert got and got[0]["type"] == "child"


class TestFailover:
    def test_follower_crash_tolerated(self, world):
        sim, _net, ens = world
        ens.crash("zk2")

        def script(zk):
            yield from zk.create("/a", b"x")
            data, _ = yield from zk.get("/a")
            return data

        assert run_client(sim, ens, script) == b"x"

    def test_leader_crash_triggers_election(self, world):
        sim, _net, ens = world

        def seed(zk):
            yield from zk.create("/before", b"1")
            return True

        run_client(sim, ens, seed, name="seed")
        ens.crash("zk0")
        sim.run(until=sim.now + 5.0)
        leader = ens.leader()
        assert leader is not None and leader.name != "zk0"

        def after(zk):
            yield from zk.create("/after", b"2")
            data, _ = yield from zk.get("/before")
            return data

        assert run_client(sim, ens, after, name="after") == b"1"

    def test_restarted_member_syncs(self, world):
        sim, _net, ens = world

        def seed(zk):
            for i in range(5):
                yield from zk.create(f"/d{i}", b"")
            return True

        run_client(sim, ens, seed, name="seed")
        ens.crash("zk2")

        def more(zk):
            yield from zk.create("/while-down", b"")
            return True

        run_client(sim, ens, more, name="more")
        ens.restart("zk2")
        sim.run(until=sim.now + 3.0)
        assert ens.server("zk2").tree.exists("/while-down") is not None
