"""Documented watch semantics: per-server registration and its limits.

ZooKeeper watches live on the member the client registered them with;
these tests pin the behaviours a Sedna operator must know (and which
motivate §III.E's decision not to build the mapping cache on watches).
"""

import pytest

from repro.net.latency import LanGigabit
from repro.net.simulator import Simulator
from repro.net.transport import Network
from repro.zk.ensemble import ZkEnsemble


@pytest.fixture
def world():
    sim = Simulator()
    net = Network(sim, latency=LanGigabit(seed=21))
    ens = ZkEnsemble(sim, net, size=3)
    ens.start()
    return sim, ens


class TestWatchSemantics:
    def test_watch_fires_from_follower_registration(self, world):
        sim, ens = world
        events = []
        zk = ens.client("w")
        zk._server_idx = 1  # register via a follower

        def main():
            yield from zk.connect()
            yield from zk.create("/watched", b"")
            yield from zk.get("/watched", watch=events.append)
            yield from zk.set("/watched", b"new")
            yield sim.timeout(1.0)
            return len(events)

        proc = sim.process(main())
        assert sim.run(until=proc) == 1

    def test_watch_lost_when_registration_server_dies(self, world):
        """The documented limitation: a watch registered on a member
        that crashes is gone — clients must re-register after moving.
        (Sedna's lease+changelog cache needs no such re-registration,
        one of the §III.E arguments.)"""
        sim, ens = world
        events = []
        zk = ens.client("w")
        zk._server_idx = 2  # register on follower zk2

        def main():
            yield from zk.connect()
            yield from zk.create("/frail", b"")
            yield from zk.get("/frail", watch=events.append)
            ens.crash("zk2")
            yield sim.timeout(0.5)
            # The write goes through the surviving majority.
            yield from zk.set("/frail", b"changed")
            yield sim.timeout(1.0)
            return len(events)

        proc = sim.process(main())
        assert sim.run(until=proc) == 0, (
            "watch died with its server; silence is the documented "
            "behaviour")

    def test_watch_counts_bounded_by_registrations(self, world):
        sim, ens = world
        zk = ens.client("w")

        def main():
            yield from zk.connect()
            yield from zk.create("/multi", b"")
            fired = []
            # Two watches on the same node from one client: both fire
            # once on the first change, none on the second.
            yield from zk.get("/multi", watch=fired.append)
            yield from zk.get("/multi", watch=fired.append)
            yield from zk.set("/multi", b"1")
            yield sim.timeout(0.5)
            after_first = len(fired)
            yield from zk.set("/multi", b"2")
            yield sim.timeout(0.5)
            return after_first, len(fired)

        proc = sim.process(main())
        after_first, total = sim.run(until=proc)
        assert after_first == 2 and total == 2

    def test_exists_watch_fires_on_creation(self, world):
        sim, ens = world
        events = []
        zk = ens.client("w")

        def main():
            yield from zk.connect()
            stat = yield from zk.exists("/future", watch=events.append)
            assert stat is None
            yield from zk.create("/future", b"")
            yield sim.timeout(0.5)
            return events

        proc = sim.process(main())
        got = sim.run(until=proc)
        assert len(got) == 1 and got[0]["type"] == "created"
