"""Tests for the ZooKeeper sync (read-your-writes) operation."""

import pytest

from repro.net.latency import LanGigabit, UniformLatency
from repro.net.simulator import Simulator
from repro.net.transport import Network
from repro.zk.ensemble import ZkEnsemble


@pytest.fixture
def world():
    sim = Simulator()
    net = Network(sim, latency=LanGigabit(seed=19))
    ens = ZkEnsemble(sim, net, size=3)
    ens.start()
    return sim, ens


class TestSync:
    def test_sync_on_leader_returns_current_zxid(self, world):
        sim, ens = world
        zk = ens.client("c")
        zk._server_idx = 0  # talk to the leader

        def main():
            yield from zk.connect()
            yield from zk.create("/a", b"")
            zxid = yield from zk.sync()
            return zxid

        proc = sim.process(main())
        zxid = sim.run(until=proc)
        assert zxid == ens.leader().applied_zxid

    def test_sync_then_read_sees_prior_write(self, world):
        sim, ens = world
        writer = ens.client("writer")
        reader = ens.client("reader")
        reader._server_idx = 2  # pinned to a follower

        def main():
            yield from writer.connect()
            yield from reader.connect()
            yield from writer.create("/fresh", b"payload")
            yield from reader.sync()
            data, _ = yield from reader.get("/fresh")
            return data

        proc = sim.process(main())
        assert sim.run(until=proc) == b"payload"

    def test_sync_waits_for_lagging_follower(self):
        # Slow network so follower application visibly lags the leader.
        sim = Simulator()
        net = Network(sim, latency=UniformLatency(propagation=0.05,
                                                  jitter=0.0))
        ens = ZkEnsemble(sim, net, size=3)
        ens.start()
        writer = ens.client("w")
        reader = ens.client("r")
        reader._server_idx = 1

        def main():
            yield from writer.connect()
            yield from reader.connect()
            for i in range(5):
                yield from writer.create(f"/lag{i}", b"")
            zxid = yield from reader.sync()
            follower = ens.server("zk1")
            return zxid, follower.applied_zxid

        proc = sim.process(main())
        zxid, applied = sim.run(until=proc)
        assert applied >= zxid >= 5
