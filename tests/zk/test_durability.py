"""Tests for ZooKeeper transaction-log durability (cold restarts)."""

import pytest

from repro.core.cluster import SednaCluster
from repro.core.config import SednaConfig
from repro.net.latency import LanGigabit
from repro.net.simulator import Simulator
from repro.net.transport import Network
from repro.storage.versioned import WriteOutcome
from repro.zk.ensemble import ZkEnsemble
from repro.zk.server import ZkConfig


@pytest.fixture
def world():
    sim = Simulator()
    net = Network(sim, latency=LanGigabit(seed=31))
    ens = ZkEnsemble(sim, net, size=3, durable=True)
    ens.start()
    return sim, ens


def run_script(sim, ens, script, name="cli"):
    zk = ens.client(name)

    def main():
        yield from zk.connect()
        return (yield from script(zk))

    proc = sim.process(main())
    return sim.run(until=proc)


class TestTxnLog:
    def test_commits_logged_on_every_member(self, world):
        sim, ens = world

        def script(zk):
            for i in range(5):
                yield from zk.create(f"/d{i}", str(i).encode())
            return True

        run_script(sim, ens, script)
        sim.run(until=sim.now + 1.0)
        for name, disk in ens.disks.items():
            log = disk.read_log(f"{name}.zk-txnlog")
            creates = [op for _z, op in log if op["type"] == "create"
                       and op["path"].startswith("/d")]
            assert len(creates) == 5, f"{name} logged {len(creates)}"

    def test_recover_from_disk_rebuilds_tree(self, world):
        sim, ens = world

        def script(zk):
            yield from zk.create("/a", b"1")
            yield from zk.create("/a/b", b"2")
            yield from zk.set("/a", b"1x")
            return True

        run_script(sim, ens, script)
        sim.run(until=sim.now + 1.0)
        server = ens.servers[1]
        zxid_before = server.applied_zxid
        server.stop()
        recovered = server.recover_from_disk()
        assert recovered == zxid_before
        assert server.tree.get("/a")[0] == b"1x"
        assert server.tree.get("/a/b")[0] == b"2"

    def test_whole_ensemble_power_loss(self, world):
        sim, ens = world

        def script(zk):
            for i in range(10):
                yield from zk.create(f"/pl{i}", str(i).encode())
            return True

        run_script(sim, ens, script)
        sim.run(until=sim.now + 1.0)

        ens.crash_all()
        sim.run(until=sim.now + 2.0)
        ens.cold_restart_all()
        sim.run(until=sim.now + 2.0)

        assert ens.leader() is not None

        def verify(zk):
            values = []
            for i in range(10):
                data, _ = yield from zk.get(f"/pl{i}")
                values.append(data)
            # And the ensemble accepts new writes.
            yield from zk.create("/post-outage", b"")
            return values

        values = run_script(sim, ens, verify, name="verifier")
        assert values == [str(i).encode() for i in range(10)]

    def test_leader_after_cold_restart_has_highest_zxid(self, world):
        sim, ens = world

        def script(zk):
            for i in range(6):
                yield from zk.create(f"/z{i}", b"")
            return True

        run_script(sim, ens, script)
        sim.run(until=sim.now + 1.0)
        ens.crash_all()
        ens.cold_restart_all()
        sim.run(until=sim.now + 2.0)
        leader = ens.leader()
        assert leader is not None
        assert leader.applied_zxid == max(s.applied_zxid
                                          for s in ens.servers)


class TestFullStackOutage:
    def test_datacenter_power_loss_with_durable_zk_and_wal(self):
        """The strongest §III.C claim: a full outage (Sedna nodes AND
        the ZooKeeper sub-cluster) is recoverable — data from the WALs,
        the vnode mapping from the ZK transaction logs."""
        cluster = SednaCluster(
            n_nodes=3, zk_size=3, zk_durable=True,
            config=SednaConfig(num_vnodes=16, persistence="wal"),
            zk_config=ZkConfig(session_timeout=1.0))
        cluster.start()
        client = cluster.client()

        def seed():
            statuses = []
            for i in range(12):
                statuses.append(
                    (yield from client.write_latest(f"dc{i}", f"v{i}")))
            return statuses

        statuses = cluster.run(seed())
        assert all(s == WriteOutcome.OK for s in statuses)
        cluster.settle(1.0)

        # Lights out: every Sedna node and every ZK member.
        for name in cluster.node_names:
            cluster.crash_node(name)
        cluster.ensemble.crash_all()
        cluster.settle(3.0)

        # Power returns: ZK first (from txn logs), then the nodes
        # (from their WALs).
        cluster.ensemble.cold_restart_all()
        cluster.settle(2.0)
        for name in cluster.node_names:
            cluster.restart_node(name)
        cluster.settle(2.0)

        reader = cluster.client("post-dc-outage")

        def verify():
            values = []
            for i in range(12):
                values.append((yield from reader.read_latest(f"dc{i}")))
            return values

        assert cluster.run(verify()) == [f"v{i}" for i in range(12)]
