"""Tests for atomic multi transactions in the ZooKeeper substrate."""

import pytest

from repro.net.latency import LanGigabit
from repro.net.simulator import Simulator
from repro.net.transport import Network
from repro.zk.ensemble import ZkEnsemble
from repro.zk.znode import NodeExistsError, NoNodeError, ZkError


@pytest.fixture
def world():
    sim = Simulator()
    net = Network(sim, latency=LanGigabit(seed=8))
    ens = ZkEnsemble(sim, net, size=3)
    ens.start()
    return sim, ens


def run(sim, ens, script, name="cli"):
    zk = ens.client(name)

    def main():
        yield from zk.connect()
        return (yield from script(zk))

    proc = sim.process(main())
    return sim.run(until=proc)


class TestMulti:
    def test_all_steps_apply(self, world):
        sim, ens = world

        def script(zk):
            results = yield from zk.multi([
                zk.op_create("/a", b"1"),
                zk.op_create("/a/b", b"2"),
                zk.op_set("/a", b"1x"),
            ])
            data, _ = yield from zk.get("/a")
            return len(results), data

        count, data = run(sim, ens, script)
        assert count == 3 and data == b"1x"

    def test_failure_rolls_back_everything(self, world):
        sim, ens = world

        def script(zk):
            yield from zk.create("/exists", b"")
            try:
                yield from zk.multi([
                    zk.op_create("/new", b""),
                    zk.op_create("/exists", b""),  # fails: NodeExists
                ])
            except ZkError:
                pass
            else:
                return "multi should have failed"
            return (yield from zk.exists("/new"))

        assert run(sim, ens, script) is None, "first step must roll back"

    def test_version_check_aborts_txn(self, world):
        sim, ens = world

        def script(zk):
            yield from zk.create("/v", b"0")
            yield from zk.set("/v", b"1")  # version now 1
            try:
                yield from zk.multi([
                    zk.op_set("/v", b"2", version=0),  # stale version
                    zk.op_create("/side-effect", b""),
                ])
            except ZkError:
                pass
            side = yield from zk.exists("/side-effect")
            data, _ = yield from zk.get("/v")
            return side, data

        side, data = run(sim, ens, script)
        assert side is None and data == b"1"

    def test_multi_delete_and_create(self, world):
        sim, ens = world

        def script(zk):
            yield from zk.create("/old", b"")
            yield from zk.multi([
                zk.op_delete("/old"),
                zk.op_create("/renamed", b""),
            ])
            old = yield from zk.exists("/old")
            new = yield from zk.exists("/renamed")
            return old, new

        old, new = run(sim, ens, script)
        assert old is None and new is not None

    def test_multi_replicates_to_followers(self, world):
        sim, ens = world

        def script(zk):
            yield from zk.multi([
                zk.op_create("/m1", b""),
                zk.op_create("/m2", b""),
            ])
            return True

        run(sim, ens, script)
        sim.run(until=sim.now + 1.0)
        for server in ens.servers:
            assert server.tree.exists("/m1") is not None
            assert server.tree.exists("/m2") is not None

    def test_aborted_multi_leaves_followers_consistent(self, world):
        sim, ens = world

        def script(zk):
            yield from zk.create("/clash", b"")
            try:
                yield from zk.multi([
                    zk.op_create("/ghost", b""),
                    zk.op_create("/clash", b""),
                ])
            except ZkError:
                pass
            return True

        run(sim, ens, script)
        sim.run(until=sim.now + 1.0)
        trees = [sorted(s.tree.walk_paths()) for s in ens.servers]
        assert trees[0] == trees[1] == trees[2]
        assert "/ghost" not in trees[0]

    def test_watches_fire_only_on_commit(self, world):
        sim, ens = world
        events = []

        def script(zk):
            yield from zk.create("/w", b"")
            yield from zk.get("/w", watch=events.append)
            try:
                yield from zk.multi([
                    zk.op_set("/w", b"x"),
                    zk.op_create("/w", b""),  # fails -> rollback
                ])
            except ZkError:
                pass
            yield sim.timeout(0.5)
            aborted_events = len(events)
            yield from zk.multi([zk.op_set("/w", b"y")])
            yield sim.timeout(0.5)
            return aborted_events, len(events)

        aborted, committed = run(sim, ens, script)
        assert aborted == 0, "rolled-back txn must not fire watches"
        assert committed == 1

    def test_sequential_in_multi(self, world):
        sim, ens = world

        def script(zk):
            yield from zk.create("/q", b"")
            results = yield from zk.multi([
                zk.op_create("/q/item-", b"", sequential=True),
                zk.op_create("/q/item-", b"", sequential=True),
            ])
            return [r["path"] for r in results]

        paths = run(sim, ens, script)
        assert paths == ["/q/item-0000000000", "/q/item-0000000001"]
