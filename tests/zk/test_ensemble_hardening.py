"""Hardening tests for the ZAB-lite ensemble: split brain, zombies,
minority partitions, and election races."""

import pytest

from repro.net.failure import FailureInjector
from repro.net.latency import LanGigabit
from repro.net.simulator import Simulator
from repro.net.transport import Network
from repro.zk.ensemble import ZkEnsemble
from repro.zk.server import ZkConfig


@pytest.fixture
def world():
    sim = Simulator()
    net = Network(sim, latency=LanGigabit(seed=17))
    ens = ZkEnsemble(sim, net, size=3)
    ens.start()
    inj = FailureInjector(net)
    return sim, net, ens, inj


def client_script(sim, ens, script, name="cli"):
    zk = ens.client(name)

    def main():
        yield from zk.connect()
        return (yield from script(zk))

    proc = sim.process(main())
    return sim.run(until=proc)


class TestLeaderPartition:
    def test_minority_leader_cannot_commit(self, world):
        sim, net, ens, inj = world

        def seed(zk):
            yield from zk.create("/seed", b"1")
            return True

        client_script(sim, ens, seed)
        # Cut the leader (zk0) away from both followers.
        part = inj.partition(["zk0"], ["zk1", "zk2"])
        sim.run(until=sim.now + 3.0)

        # A new leader must exist on the majority side.
        majority_leaders = [s for s in ens.servers[1:]
                            if s.is_leader and s.running]
        assert len(majority_leaders) == 1

        # The old leader cannot commit anything: its proposals lack a
        # quorum.  Write through the majority side instead and verify.
        zk = ens.client("post-part")
        zk._server_idx = 1  # talk to the majority

        def write(zkc):
            yield from zkc.create("/majority-write", b"")
            return True

        proc_result = None

        def main():
            yield from zk.connect()
            yield from zk.create("/majority-write", b"")
            return True

        proc = sim.process(main())
        assert sim.run(until=proc) is True
        assert ens.servers[0].tree.exists("/majority-write") is None, \
            "partitioned old leader must not see the new commit"

        # Heal: the zombie leader must step down and sync.
        part.heal()
        sim.run(until=sim.now + 4.0)
        assert not (ens.servers[0].is_leader
                    and ens.servers[1].is_leader), "split brain after heal"
        leaders = [s for s in ens.servers if s.is_leader]
        assert len(leaders) == 1

    def test_zombie_leader_syncs_after_heal(self, world):
        sim, net, ens, inj = world
        part = inj.partition(["zk0"], ["zk1", "zk2"])
        sim.run(until=sim.now + 3.0)

        zk = ens.client("writer")
        zk._server_idx = 1

        def main():
            yield from zk.connect()
            for i in range(5):
                yield from zk.create(f"/during-{i}", b"")
            return True

        proc = sim.process(main())
        sim.run(until=proc)
        part.heal()
        sim.run(until=sim.now + 5.0)
        for i in range(5):
            assert ens.servers[0].tree.exists(f"/during-{i}") is not None, \
                f"old leader missing /during-{i} after resync"


class TestElectionRaces:
    def test_simultaneous_candidates_converge(self, world):
        sim, net, ens, inj = world
        ens.crash("zk0")
        # Both followers detect loss around the same time.
        sim.run(until=sim.now + 6.0)
        leaders = [s for s in ens.servers if s.running and s.is_leader]
        assert len(leaders) == 1, f"split brain: {[s.name for s in leaders]}"
        followers = [s for s in ens.servers
                     if s.running and not s.is_leader]
        assert all(f.leader_name == leaders[0].name for f in followers)

    def test_highest_zxid_wins_election(self, world):
        sim, net, ens, inj = world

        def seed(zk):
            for i in range(8):
                yield from zk.create(f"/z{i}", b"")
            return True

        client_script(sim, ens, seed)
        sim.run(until=sim.now + 1.0)
        # Make zk2 lag by crashing it, writing more, restarting it.
        ens.crash("zk2")

        def more(zk):
            yield from zk.create("/late", b"")
            return True

        client_script(sim, ens, more, name="more")
        ens.restart("zk2")
        sim.run(until=sim.now + 1.0)
        # zk2 may still be catching up; now kill the leader.
        zk1_zxid = ens.server("zk1").applied_zxid
        zk2_zxid = ens.server("zk2").applied_zxid
        ens.crash("zk0")
        sim.run(until=sim.now + 6.0)
        leader = ens.leader()
        assert leader is not None
        if zk1_zxid != zk2_zxid:
            expected = "zk1" if zk1_zxid > zk2_zxid else "zk2"
            assert leader.name == expected, (
                f"leader {leader.name}, but zxids were zk1={zk1_zxid} "
                f"zk2={zk2_zxid}")

    def test_cluster_of_five_survives_two_crashes(self):
        sim = Simulator()
        net = Network(sim, latency=LanGigabit(seed=23))
        ens = ZkEnsemble(sim, net, size=5)
        ens.start()

        def seed(zk):
            yield from zk.create("/five", b"")
            return True

        client_script(sim, ens, seed)
        ens.crash("zk0")  # the leader
        ens.crash("zk3")
        sim.run(until=sim.now + 6.0)
        leader = ens.leader()
        assert leader is not None

        def after(zk):
            yield from zk.create("/after-two-crashes", b"")
            data, _ = yield from zk.get("/five")
            return True

        assert client_script(sim, ens, after, name="after") is True


class TestSessionRobustness:
    def test_sessions_survive_leader_failover(self, world):
        sim, net, ens, inj = world
        zk = ens.client("survivor")

        def main():
            yield from zk.connect()
            yield from zk.create("/mine", b"", ephemeral=True)
            return True

        proc = sim.process(main())
        sim.run(until=proc)
        ens.crash("zk0")
        sim.run(until=sim.now + 6.0)
        # The pinger kept the session alive through the failover; the
        # ephemeral must still exist on the new leader.
        leader = ens.leader()
        assert leader.tree.exists("/mine") is not None

    def test_expiry_still_works_after_failover(self, world):
        sim, net, ens, inj = world
        zk = ens.client("doomed")

        def main():
            yield from zk.connect()
            yield from zk.create("/doomed-node", b"", ephemeral=True)
            return True

        proc = sim.process(main())
        sim.run(until=proc)
        ens.crash("zk0")
        sim.run(until=sim.now + 5.0)
        zk.crash()  # client dies after the failover
        sim.run(until=sim.now + 5 * ens.config.session_timeout)
        leader = ens.leader()
        assert leader.tree.exists("/doomed-node") is None, \
            "new leader must expire dead sessions too"
