"""Session-level monotonic reads across ensemble members.

A client carries the newest ``(epoch, zxid)`` frontier any read has
observed and sends it with every read.  A member whose applied state is
behind that frontier refuses with ``server-behind``; the client rotates
to a caught-up member.  Without this, rotating to a lagging follower
mid-refresh can "un-happen" state the client already saw — the exact
failure that made a cache refresh treat a freshly created changelog
entry as trimmed.
"""

import pytest

from repro.net.latency import NoLatency
from repro.net.rpc import RpcRejected
from repro.net.simulator import Simulator
from repro.net.transport import Network
from repro.zk.ensemble import ZkEnsemble


@pytest.fixture
def world():
    sim = Simulator()
    net = Network(sim, latency=NoLatency())
    ens = ZkEnsemble(sim, net, size=3)
    ens.start()
    return sim, ens


def run(sim, gen):
    proc = sim.process(gen)
    return sim.run(until=proc)


class TestServerSideRejection:
    def test_lagging_member_refuses_ahead_frontier(self, world):
        sim, ens = world
        leader = ens.leader()
        with pytest.raises(RpcRejected) as exc:
            leader._h_read("probe", {
                "op": "get", "path": "/",
                "epoch": leader.epoch,
                "zxid": leader.applied_zxid + 1,
            })
        assert exc.value.reason == "server-behind"

    def test_newer_epoch_dominates_zxid(self, world):
        """(epoch, zxid) compares as a tuple: a member in a newer epoch
        serves a client whose zxid is numerically higher but was earned
        under a deposed reign."""
        sim, ens = world
        leader = ens.leader()
        leader.epoch += 1  # pretend an election advanced the epoch
        result = leader._h_read("probe", {
            "op": "exists", "path": "/nope",
            "epoch": leader.epoch - 1,
            "zxid": leader.applied_zxid + 100,
        })
        assert result["epoch"] == leader.epoch

    def test_reads_carry_the_frontier(self, world):
        sim, ens = world
        leader = ens.leader()
        result = leader._h_read("probe", {"op": "get", "path": "/"})
        assert result["epoch"] == leader.epoch
        assert result["zxid"] == leader.applied_zxid


class TestClientFrontier:
    def test_frontier_advances_with_reads(self, world):
        sim, ens = world
        zk = ens.client("c")

        def main():
            yield from zk.connect()
            for i in range(4):
                yield from zk.create(f"/mono{i}", b"")
            yield from zk.get("/mono3")
            return zk.last_epoch, zk.last_zxid

        epoch, zxid = run(sim, main())
        assert (epoch, zxid) == (ens.leader().epoch,
                                 ens.leader().applied_zxid)
        assert zxid >= 4

    def test_frontier_never_regresses(self, world):
        sim, ens = world
        zk = ens.client("c")

        def main():
            yield from zk.connect()
            yield from zk.create("/keep", b"x")
            yield from zk.get("/keep")
            high = (zk.last_epoch, zk.last_zxid)
            # A stale reply (older frontier) must not move us backwards.
            zk._advance_frontier({"epoch": 0, "zxid": 0})
            return high, (zk.last_epoch, zk.last_zxid)

        high, after = run(sim, main())
        assert after == high


class TestClientRotation:
    def test_rotates_off_behind_member_and_succeeds(self, world):
        """A read pinned at a member that answers ``server-behind``
        completes anyway: the client rotates to a caught-up member
        instead of surfacing stale state or an error."""
        sim, ens = world
        zk = ens.client("c")
        writer = ens.client("w")

        def main():
            yield from writer.connect()
            yield from zk.connect()
            yield from writer.create("/fresh", b"payload")
            yield from zk.get("/fresh")  # adopt the current frontier
            # Pin to a follower and force it to act permanently behind
            # (handlers are registered as bound methods, so patch the
            # dispatch table).
            lagged = ens.server(zk.servers[1])

            def refuse(src, args):
                raise RpcRejected("server-behind")

            lagged.rpc.register("zk.read", refuse)
            zk._server_idx = 1
            before_retries = zk.retries
            data, _stat = yield from zk.get("/fresh")
            return data, zk.retries - before_retries, zk.current_server()

        data, retries, server = run(sim, main())
        assert data == b"payload"
        assert retries >= 1, "client rotated off the behind member"
        assert server != zk.servers[1]

    def test_behind_member_everywhere_eventually_raises(self, world):
        """If every member refuses (frontier unreachable anywhere), the
        client surfaces the rejection after exhausting its rotation
        budget rather than spinning forever."""
        sim, ens = world
        zk = ens.client("c")

        def main():
            yield from zk.connect()
            zk.last_epoch = ens.leader().epoch
            zk.last_zxid = 10 ** 9  # impossible frontier
            try:
                yield from zk.get("/")
            except RpcRejected as rej:
                return rej.reason
            return "no-error"

        assert run(sim, main()) == "server-behind"
