"""A leader that loses its quorum must step down, not self-commit.

Regression suite for the minority-partitioned-leader family of bugs:
an earlier fix committed an explicit no-op when a proposal failed its
quorum, which let a cut-off leader inflate its own ``applied_zxid``
with unacked no-ops (its expiry scan keeps proposing), keep a
divergent tree after the heal (snapshot sync only loaded snapshots
with a *higher* zxid), and even win a later election on its inflated
zxid — replacing committed state ensemble-wide.

The fixes under test:

* a leader whose proposal round cannot reach a majority steps down;
* elections compare ``(epoch, zxid, name)`` so a deposed reign's
  orphaned tail cannot outrank the majority's history;
* snapshot sync is epoch-aware: crossing into a newer reign replaces
  local state even when the local zxid is equal or ahead.
"""

import pytest

from repro.net.failure import FailureInjector
from repro.net.latency import LanGigabit
from repro.net.simulator import Simulator
from repro.net.transport import Network
from repro.zk.ensemble import ZkEnsemble


@pytest.fixture
def world():
    sim = Simulator()
    net = Network(sim, latency=LanGigabit(seed=29))
    ens = ZkEnsemble(sim, net, size=3)
    ens.start()
    inj = FailureInjector(net)
    return sim, net, ens, inj


def drop_commits_from(net, leader_name: str) -> dict:
    """Togglable filter eating every commit notify ``leader_name`` sends."""
    state = {"on": False}

    def fn(src, dst, payload):
        if (state["on"] and src == leader_name
                and isinstance(payload, dict)
                and payload.get("kind") == "notify"
                and isinstance(payload.get("body"), dict)
                and payload["body"].get("zk") == "commit"):
            return False
        return True

    net.add_filter(fn)
    return state


class TestMinorityLeaderStepdown:
    def test_quorum_loss_freezes_applied_zxid(self, world):
        """The review scenario: a cut-off leader's expiry scan keeps
        proposing; pre-fix each failed round self-committed a no-op and
        inflated applied_zxid without any majority agreement."""
        sim, net, ens, inj = world
        zk = ens.client("doomed")

        def main():
            yield from zk.connect()
            yield from zk.create("/eph", b"", ephemeral=True)
            yield from zk.create("/data", b"keep")
            return True

        proc = sim.process(main())
        assert sim.run(until=proc) is True
        zk.crash()  # pings stop; the session will expire everywhere

        z0 = ens.server("zk0")
        applied_before = z0.applied_zxid
        part = inj.partition(["zk0"], ["zk1", "zk2"])
        # Long enough for several expiry-scan proposal rounds to fail.
        sim.run(until=sim.now + 6.0)

        assert z0.applied_zxid == applied_before, (
            "minority leader advanced its applied_zxid without a quorum")
        assert not z0.is_leader, "leader must step down after quorum loss"
        majority = [s for s in ens.servers[1:] if s.is_leader and s.running]
        assert len(majority) == 1
        assert majority[0].epoch > 1
        # The majority expired the dead session on its own.
        assert majority[0].tree.exists("/eph") is None

        part.heal()
        sim.run(until=sim.now + 5.0)
        leaders = [s for s in ens.servers if s.is_leader and s.running]
        assert len(leaders) == 1
        for server in ens.servers:
            assert server.applied_zxid == leaders[0].applied_zxid, \
                server.name
            assert server.tree.dump() == leaders[0].tree.dump(), server.name
        assert z0.tree.exists("/eph") is None
        assert z0.tree.exists("/data") is not None


class TestDivergedTailTruncation:
    def _diverge_zk0(self, sim, net, ens, inj):
        """Leave zk0 applied *ahead* of the majority on an orphan tail.

        Two creates commit on the leader (the followers acked the
        proposals, so quorum was met and the client saw success) but
        their commit notifies are eaten; zk0 is then cut off before
        the next beat reveals the gap.  Returns the partition.
        """
        state = drop_commits_from(net, "zk0")
        zk = ens.client("w")

        def main():
            yield from zk.connect()
            yield from zk.create("/base", b"")
            state["on"] = True
            yield from zk.create("/orphan-0", b"")
            yield from zk.create("/orphan-1", b"")
            return True

        proc = sim.process(main())
        assert sim.run(until=proc) is True
        part = inj.partition(["zk0"], ["zk1", "zk2"])
        state["on"] = False
        zk.crash()
        return part

    def test_newer_epoch_snapshot_truncates_orphan_tail(self, world):
        sim, net, ens, inj = world
        part = self._diverge_zk0(sim, net, ens, inj)
        z0 = ens.server("zk0")
        orphan_zxid = z0.applied_zxid

        sim.run(until=sim.now + 6.0)
        majority = [s for s in ens.servers[1:] if s.is_leader and s.running]
        assert len(majority) == 1
        new_leader = majority[0]
        # The majority moved on without the orphans and stayed behind
        # zk0's inflated frontier — pre-fix, the zxid-only snapshot
        # check would therefore never heal zk0.
        assert new_leader.applied_zxid <= orphan_zxid
        assert new_leader.tree.exists("/orphan-0") is None
        assert z0.tree.exists("/orphan-0") is not None

        part.heal()
        sim.run(until=sim.now + 5.0)
        assert z0.tree.exists("/orphan-0") is None, \
            "deposed leader kept its divergent tail after the heal"
        assert z0.tree.exists("/orphan-1") is None

        # Post-heal writes reach every member, zk0 included.
        zk = ens.client("late")
        zk._server_idx = 1

        def late():
            yield from zk.connect()
            yield from zk.create("/replacement", b"")
            yield from zk.close()
            return True

        proc = sim.process(late())
        assert sim.run(until=proc) is True
        sim.run(until=sim.now + 3.0)
        leaders = [s for s in ens.servers if s.is_leader and s.running]
        assert len(leaders) == 1
        for server in ens.servers:
            assert server.tree.exists("/replacement") is not None, \
                server.name
            assert server.tree.dump() == leaders[0].tree.dump(), server.name

    def test_election_prefers_newer_epoch_over_higher_zxid(self, world):
        """A deposed reign's orphaned tail must not win an election:
        pre-fix votes compared bare zxids, so the diverged ex-leader
        replaced the majority's committed history ensemble-wide."""
        sim, net, ens, inj = world
        part = self._diverge_zk0(sim, net, ens, inj)
        z0 = ens.server("zk0")

        sim.run(until=sim.now + 6.0)
        majority = [s for s in ens.servers[1:] if s.is_leader and s.running]
        assert len(majority) == 1
        survivor = next(s for s in ens.servers[1:]
                        if s is not majority[0])
        assert z0.applied_zxid > survivor.applied_zxid  # diverged ahead

        ens.crash(majority[0].name)
        part.heal()
        sim.run(until=sim.now + 8.0)

        leaders = [s for s in ens.servers if s.is_leader and s.running]
        assert len(leaders) == 1
        assert leaders[0].name == survivor.name, (
            "the diverged ex-leader out-voted the newer epoch's history")
        assert leaders[0].tree.exists("/orphan-0") is None
        assert z0.tree.exists("/orphan-0") is None
        assert z0.applied_zxid == leaders[0].applied_zxid
        assert z0.tree.dump() == leaders[0].tree.dump()
