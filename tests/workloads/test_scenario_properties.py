"""Property tests for the adversarial scenario matrix.

The scenario streams feed the chaos runner, so their guarantees are
load-bearing for every digest in the regression corpus: rotation
schedules must be exact, ramps monotone, and every draw independent of
``PYTHONHASHSEED``.
"""

import os
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.kv import _CDF_CACHE, ZipfGenerator, _zipf_cdf
from repro.workloads.scenarios import (SCENARIOS, OpIntent, ScenarioSpec,
                                       ScenarioStream, drift_hot_set,
                                       flash_fraction, get_scenario,
                                       scenario_matrix)


def stream_trace(spec: ScenarioSpec, seed: int = 7, stream_id: int = 0,
                 n: int = 200, dt: float = 0.1) -> list[tuple]:
    """A flattened (gap, kind, keys) trace for equality comparisons."""
    stream = ScenarioStream(spec, seed, stream_id)
    out = []
    now = 0.0
    for _ in range(n):
        now += dt
        intent = stream.next(now)
        out.append((round(stream.gap(), 12), intent.kind, intent.keys))
    return out


class TestZipfDistribution:
    @settings(max_examples=20, deadline=None)
    @given(theta=st.floats(min_value=0.3, max_value=1.5))
    def test_rank_order_head_beats_tail(self, theta):
        """Low ranks must be sampled at least as often as high ranks,
        aggregated over halves (exact per-rank ordering is noisy)."""
        gen = ZipfGenerator(space=20, theta=theta, seed=3)
        counts = [0] * 20
        for _ in range(6000):
            counts[gen.sample()] += 1
        head, tail = sum(counts[:10]), sum(counts[10:])
        assert head > tail, f"theta={theta}: head {head} <= tail {tail}"

    def test_tail_mass_shrinks_with_theta(self):
        """Higher theta concentrates mass: the tail half's share must
        strictly drop across a wide theta sweep."""
        shares = []
        for theta in (0.3, 0.99, 1.6):
            gen = ZipfGenerator(space=32, theta=theta, seed=11)
            counts = [0] * 32
            for _ in range(8000):
                counts[gen.sample()] += 1
            shares.append(sum(counts[16:]) / 8000)
        assert shares[0] > shares[1] > shares[2], shares

    def test_cdf_is_normalized_and_monotone(self):
        cdf = _zipf_cdf(64, 0.99)
        assert abs(cdf[-1] - 1.0) < 1e-9
        assert all(a < b for a, b in zip(cdf, cdf[1:]))


class TestZipfCdfCache:
    def test_cached_and_fresh_streams_identical(self):
        """The harmonic-table cache is a pure memoization: samples with
        a cold cache equal samples with a warm one."""
        params = (48, 0.99)
        _zipf_cdf(*params)  # warm
        warm = [ZipfGenerator(*params, seed=5).sample() for _ in range(500)]
        _CDF_CACHE.pop(params)  # cold
        cold = [ZipfGenerator(*params, seed=5).sample() for _ in range(500)]
        assert warm == cold

    def test_cache_keyed_per_params(self):
        _CDF_CACHE.clear()
        _zipf_cdf(10, 0.5)
        _zipf_cdf(10, 0.9)
        _zipf_cdf(12, 0.5)
        assert len(_CDF_CACHE) == 3
        assert _zipf_cdf(10, 0.5) is _CDF_CACHE[(10, 0.5)]


class TestDriftRotation:
    @settings(max_examples=50, deadline=None)
    @given(period=st.floats(min_value=0.1, max_value=10.0),
           epoch=st.integers(min_value=0, max_value=50),
           frac=st.floats(min_value=0.01, max_value=0.99))
    def test_constant_within_epoch(self, period, epoch, frac):
        """Interior points of one epoch share a hot set.  (Exact
        boundary instants are excluded: with arbitrary float periods
        ``(e * p) // p`` may land an ulp under ``e``, which is float
        behaviour, not a rotation-schedule property.)"""
        spec = ScenarioSpec(name="d", kind="drift", period=period)
        early = drift_hot_set(spec, (epoch + 0.01) * period)
        inside = drift_hot_set(spec, (epoch + frac) * period)
        assert early == inside

    @settings(max_examples=50, deadline=None)
    @given(epoch=st.integers(min_value=0, max_value=50))
    def test_rotates_exactly_at_period_multiples(self, epoch):
        spec = SCENARIOS["drift-diurnal"]
        before = drift_hot_set(spec, (epoch + 1) * spec.period - 1e-9)
        after = drift_hot_set(spec, (epoch + 1) * spec.period)
        assert before != after, "hot set must change at the boundary"
        assert before == drift_hot_set(spec, epoch * spec.period)

    def test_window_shape(self):
        spec = ScenarioSpec(name="d", kind="drift", n_keys=10, hot_size=3)
        assert drift_hot_set(spec, 0.0) == (0, 1, 2)
        assert drift_hot_set(spec, spec.period) == (3, 4, 5)
        # Wraps modulo the pool.
        assert drift_hot_set(spec, 3 * spec.period) == (9, 0, 1)


class TestFlashRamp:
    @settings(max_examples=50, deadline=None)
    @given(ts=st.lists(st.floats(min_value=0.0, max_value=20.0),
                       min_size=2, max_size=20))
    def test_monotone_nondecreasing(self, ts):
        spec = SCENARIOS["flash-crowd"]
        ts = sorted(ts)
        fracs = [flash_fraction(spec, t) for t in ts]
        assert all(a <= b for a, b in zip(fracs, fracs[1:]))

    def test_shape(self):
        spec = ScenarioSpec(name="f", kind="flash", flash_at=2.0,
                            ramp=4.0, peak_prob=0.8)
        assert flash_fraction(spec, 0.0) == 0.0
        assert flash_fraction(spec, 1.999) == 0.0
        assert flash_fraction(spec, 4.0) == pytest.approx(0.4)
        assert flash_fraction(spec, 6.0) == pytest.approx(0.8)
        assert flash_fraction(spec, 60.0) == pytest.approx(0.8)

    def test_flash_concentrates_traffic(self):
        spec = SCENARIOS["flash-crowd"]
        stream = ScenarioStream(spec, seed=3, stream_id=0)
        late = sum(1 for _ in range(600)
                   if "sc-0000" in stream.next(100.0).keys)
        stream2 = ScenarioStream(spec, seed=3, stream_id=0)
        early = sum(1 for _ in range(600)
                    if "sc-0000" in stream2.next(0.5).keys)
        assert late > 3 * max(early, 1)


class TestStormMix:
    def test_storm_emits_scans_and_appends(self):
        spec = SCENARIOS["trigger-storm"]
        stream = ScenarioStream(spec, seed=1, stream_id=0)
        kinds = [stream.next(0.0).kind for _ in range(400)]
        assert all(k in ("write_all", "read_all", "multi_read")
                   for k in kinds), "storm ops live on timelines only"
        scans = sum(k in ("read_all", "multi_read") for k in kinds)
        assert 0.4 < scans / len(kinds) < 0.8, "scan_prob=0.6 mix"

    def test_storm_keys_are_timelines(self):
        spec = SCENARIOS["trigger-storm"]
        stream = ScenarioStream(spec, seed=1, stream_id=0)
        for _ in range(100):
            intent = stream.next(0.0)
            assert all(k.startswith("tl-user") for k in intent.keys)

    def test_multi_read_fanout_bounded(self):
        spec = SCENARIOS["trigger-storm"]
        stream = ScenarioStream(spec, seed=2, stream_id=1)
        for _ in range(300):
            intent = stream.next(0.0)
            if intent.kind == "multi_read":
                assert 2 <= len(intent.keys) <= spec.scan_fanout
                assert list(intent.keys) == sorted(set(intent.keys))


class TestDeterminism:
    def test_identical_streams_same_seed(self):
        for spec in scenario_matrix():
            assert stream_trace(spec, seed=9) == stream_trace(spec, seed=9)

    def test_streams_differ_across_seed_and_id(self):
        spec = SCENARIOS["zipf-hot"]
        base = stream_trace(spec, seed=9, stream_id=0)
        assert base != stream_trace(spec, seed=10, stream_id=0)
        assert base != stream_trace(spec, seed=9, stream_id=1)

    @pytest.mark.parametrize("hashseed", ["0", "1", "31337"])
    def test_streams_stable_across_pythonhashseed(self, hashseed):
        """Spawn a fresh interpreter per PYTHONHASHSEED and compare a
        trace digest — process-randomized hashing must not leak in."""
        code = (
            "import hashlib, sys\n"
            "sys.path.insert(0, 'src')\n"
            "from tests.workloads.test_scenario_properties import "
            "stream_trace\n"
            "from repro.workloads.scenarios import scenario_matrix\n"
            "h = hashlib.sha256()\n"
            "for spec in scenario_matrix():\n"
            "    h.update(repr(stream_trace(spec, seed=4, n=120)).encode())\n"
            "print(h.hexdigest())\n"
        )
        env = dict(os.environ, PYTHONHASHSEED=hashseed,
                   PYTHONPATH="src")
        out = subprocess.run([sys.executable, "-c", code], env=env,
                             capture_output=True, text=True, timeout=120)
        assert out.returncode == 0, out.stderr
        digest = out.stdout.strip()
        # Every hashseed must agree with the in-process trace.
        import hashlib
        h = hashlib.sha256()
        for spec in scenario_matrix():
            h.update(repr(stream_trace(spec, seed=4, n=120)).encode())
        assert digest == h.hexdigest(), hashseed


class TestSpecPlumbing:
    def test_roundtrip(self):
        for spec in scenario_matrix():
            assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_bad_specs_rejected(self):
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", kind="nope")
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", kind="drift", hot_size=0)
        with pytest.raises(ValueError):
            OpIntent("launder_money", ("k",))
        with pytest.raises(ValueError):
            OpIntent("read_latest", ())
        with pytest.raises(ValueError):
            get_scenario("zipf-t9.99")

    def test_matrix_covers_all_kinds(self):
        kinds = {spec.kind for spec in scenario_matrix()}
        assert kinds == {"zipf", "drift", "flash", "storm"}
