"""Tests for the workload generators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.kv import (PAPER_VALUE, ZipfGenerator, paper_keys,
                                uniform_keys, zipfian_keys)
from repro.workloads.microblog import MicroblogGenerator, Tweet


class TestPaperKeys:
    def test_exact_shape(self):
        keys = paper_keys(100)
        for key in keys:
            assert len(key) == 20, "paper: 20-byte keys"
            assert key.startswith(b"test-")
            assert key[5:].isdigit()

    def test_paper_value_is_20_bytes(self):
        assert len(PAPER_VALUE) == 20

    def test_deterministic_per_seed(self):
        assert paper_keys(50, seed=1) == paper_keys(50, seed=1)
        assert paper_keys(50, seed=1) != paper_keys(50, seed=2)

    def test_mostly_unique(self):
        keys = paper_keys(10_000)
        assert len(set(keys)) > 9_990


class TestUniform:
    def test_in_space(self):
        keys = list(uniform_keys(1000, space=50, seed=1))
        assert len(keys) == 1000
        assert len(set(keys)) <= 50


class TestZipf:
    def test_rank_zero_most_popular(self):
        gen = ZipfGenerator(space=100, theta=0.99, seed=5)
        counts = [0] * 100
        for _ in range(20_000):
            counts[gen.sample()] += 1
        assert counts[0] == max(counts)
        assert counts[0] > 5 * (20_000 // 100), "head must be heavy"

    def test_samples_in_range(self):
        gen = ZipfGenerator(space=10, seed=1)
        assert all(0 <= gen.sample() < 10 for _ in range(1000))

    def test_bad_params(self):
        with pytest.raises(ValueError):
            ZipfGenerator(space=0)
        with pytest.raises(ValueError):
            ZipfGenerator(space=5, theta=0)

    def test_zipfian_keys_shape(self):
        keys = list(zipfian_keys(100, space=20, seed=2))
        assert len(keys) == 100
        assert all(k.startswith(b"zipf-") for k in keys)


class TestMicroblog:
    def test_tweet_stream_shape(self):
        gen = MicroblogGenerator(n_users=50, seed=1)
        tweets = list(gen.tweets(200))
        assert len(tweets) == 200
        assert len({t.tweet_id for t in tweets}) == 200
        for t in tweets:
            assert len(t.text) <= 140, "paper: tweets under 140 bytes"
            assert t.author.startswith("user")

    def test_timestamps_monotonic(self):
        gen = MicroblogGenerator(seed=1)
        tweets = list(gen.tweets(50, now=10.0, dt=0.5))
        for a, b in zip(tweets, tweets[1:]):
            assert b.timestamp > a.timestamp
        assert tweets[0].timestamp == 10.0

    def test_authorship_skewed(self):
        gen = MicroblogGenerator(n_users=100, theta=0.99, seed=3)
        tweets = list(gen.tweets(5000))
        by_author = {}
        for t in tweets:
            by_author[t.author] = by_author.get(t.author, 0) + 1
        top = max(by_author.values())
        assert top > 3 * (5000 / 100)

    def test_retweets_reference_existing(self):
        gen = MicroblogGenerator(retweet_prob=0.5, seed=4)
        tweets = list(gen.tweets(300))
        ids = {t.tweet_id for t in tweets}
        retweets = [t for t in tweets if t.retweet_of is not None]
        assert retweets, "with p=0.5 some retweets must occur"
        for t in retweets:
            assert t.retweet_of in ids

    def test_encode_decode_roundtrip(self):
        gen = MicroblogGenerator(seed=5)
        for tweet in gen.tweets(20):
            clone = Tweet.decode(tweet.tweet_id, tweet.encoded())
            assert clone == tweet

    def test_follow_edges(self):
        gen = MicroblogGenerator(n_users=30, seed=6)
        edges = list(gen.follow_edges(100))
        assert len(edges) == 100
        for e in edges:
            assert e.follower != e.followee

    def test_deterministic(self):
        a = [t.encoded() for t in MicroblogGenerator(seed=9).tweets(50)]
        b = [t.encoded() for t in MicroblogGenerator(seed=9).tweets(50)]
        assert a == b
