"""Tests for the gossip membership substrate."""

import pytest

from repro.gossip.membership import GossipCluster
from repro.net.latency import LanGigabit
from repro.net.simulator import Simulator
from repro.net.transport import Network


def build(size=8, **kwargs):
    sim = Simulator()
    net = Network(sim, latency=LanGigabit(seed=9))
    cluster = GossipCluster(sim, net, size=size, **kwargs)
    cluster.start()
    return sim, cluster


class TestConvergence:
    def test_full_membership_converges(self):
        sim, cluster = build(size=8)
        sim.run(until=10.0)
        assert cluster.converged()
        any_node = next(iter(cluster.nodes.values()))
        assert any_node.alive_members() == set(cluster.names)

    def test_join_propagates_to_everyone(self):
        sim, cluster = build(size=6)
        sim.run(until=5.0)
        cluster.add_node("newbie", interval=0.5, fanout=2)
        sim.run(until=sim.now + 6.0)
        for node in cluster.nodes.values():
            assert "newbie" in node.alive_members(), node.name

    def test_death_detected_everywhere(self):
        sim, cluster = build(size=6, fail_after=2.0)
        sim.run(until=5.0)
        cluster.nodes["g3"].stop()
        sim.run(until=sim.now + 8.0)
        for name, node in cluster.nodes.items():
            if node.running:
                assert "g3" not in node.alive_members(), name

    def test_deterministic(self):
        def run_once():
            sim, cluster = build(size=5, rng_seed=77)
            sim.run(until=6.0)
            return sorted((n.name, n.messages_sent)
                          for n in cluster.nodes.values())

        assert run_once() == run_once()


class TestMessageCost:
    def test_steady_state_rate_is_n_times_fanout(self):
        sim, cluster = build(size=10, interval=0.5, fanout=2)
        sim.run(until=5.0)
        before = cluster.total_messages()
        sim.run(until=10.0)
        sent = cluster.total_messages() - before
        rounds = 5.0 / 0.5
        expected = 10 * 2 * rounds
        assert expected * 0.8 <= sent <= expected * 1.2

    def test_view_payload_grows_with_cluster(self):
        """The §VII overhead argument: each gossip message carries the
        whole view, so bytes scale with membership size."""
        from repro.net.transport import estimate_size
        sim, cluster = build(size=12)
        sim.run(until=5.0)
        node = cluster.nodes["g0"]
        payload = {"gossip": {name: [e[0], e[2]]
                              for name, e in node.view.items()}}
        assert estimate_size(payload) > 12 * 8
