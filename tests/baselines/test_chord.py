"""Tests for the Chord-style multi-hop routing baseline."""

import pytest

from repro.baselines.chord import (ChordClient, ChordNode, ChordRing,
                                   chord_id)
from repro.net.latency import LanGigabit, NoLatency
from repro.net.simulator import Simulator
from repro.net.transport import Network


def build(n=8, latency=None):
    sim = Simulator()
    net = Network(sim, latency=latency or NoLatency())
    names = [f"ch{i}" for i in range(n)]
    ring = ChordRing(names)
    nodes = {name: ChordNode(sim, net, name, ring) for name in names}
    return sim, net, ring, nodes


class TestRingMath:
    def test_successor_wraps(self):
        ring = ChordRing(["a", "b", "c"])
        max_id = ring.ids[-1][0]
        assert ring.successor_of((max_id + 1) % (1 << 32)) == ring.ids[0][1]

    def test_owner_is_first_clockwise(self):
        ring = ChordRing(["a", "b", "c", "d"])
        for key in (b"k1", b"k2", b"k3"):
            owner = ring.owner_of_key(key)
            kid = chord_id(key)
            # No other node lies strictly between the key and its owner.
            oid = chord_id(owner.encode())
            for node_id, name in ring.ids:
                if name == owner:
                    continue
                if oid >= kid:
                    assert not (kid <= node_id < oid)

    def test_finger_table_length(self):
        ring = ChordRing(["a", "b", "c"])
        assert len(ring.finger_table("a")) == 32

    def test_empty_ring_rejected(self):
        with pytest.raises(ValueError):
            ChordRing([])


class TestLookup:
    def test_lookup_finds_owner_from_any_entry(self):
        sim, net, ring, nodes = build(n=8)
        key = b"lookup-key"
        expected = ring.owner_of_key(key)
        for entry in list(nodes)[:4]:
            client = ChordClient(sim, net, f"cli-{entry}", entry)

            def go(client=client):
                owner = yield from client._resolve(key)
                return owner

            proc = sim.process(go())
            assert sim.run(until=proc) == expected

    def test_set_get_roundtrip(self):
        sim, net, ring, nodes = build(n=6)
        client = ChordClient(sim, net, "cli", "ch0")

        def go():
            yield from client.set(b"k", b"v")
            return (yield from client.get(b"k"))

        proc = sim.process(go())
        assert sim.run(until=proc) == b"v"
        owner = ring.owner_of_key(b"k")
        assert nodes[owner].store.get(b"k") == b"v"

    def test_hops_logarithmic(self):
        sim, net, ring, nodes = build(n=32)
        client = ChordClient(sim, net, "cli", "ch0")

        def go():
            for i in range(60):
                yield from client._resolve(f"key-{i}".encode())
            return True

        proc = sim.process(go())
        sim.run(until=proc)
        mean_hops = sum(client.lookup_hops) / len(client.lookup_hops)
        # log2(32) = 5; fingers give ~log n / 2 expected hops.
        assert mean_hops <= 6.0, f"mean hops {mean_hops}"
        assert max(client.lookup_hops) <= 10

    def test_multi_hop_pays_latency(self):
        """Each hop is a real network round trip — the §VII cost."""
        sim, net, ring, nodes = build(n=16, latency=LanGigabit(seed=2))
        client = ChordClient(sim, net, "cli", "ch0")

        def go():
            for i in range(30):
                yield from client.get(f"key-{i}".encode())
            return True

        proc = sim.process(go())
        sim.run(until=proc)
        mean_latency = sum(client.op_latencies) / len(client.op_latencies)
        mean_hops = sum(client.lookup_hops) / len(client.lookup_hops)
        # latency must grow with the hop count (>= hops * one-way).
        assert mean_latency > mean_hops * 120e-6
