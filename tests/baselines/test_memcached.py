"""Tests for the memcached baseline cluster and sharding client."""

import pytest

from repro.baselines.memcached import MemcachedCluster
from repro.net.latency import LanGigabit
from repro.net.simulator import Simulator
from repro.net.transport import Network


@pytest.fixture
def world():
    sim = Simulator()
    net = Network(sim, latency=LanGigabit(seed=3))
    cluster = MemcachedCluster(sim, net, size=4)
    return sim, net, cluster


def run(sim, gen):
    proc = sim.process(gen)
    return sim.run(until=proc)


class TestMemcachedCluster:
    def test_set_get_roundtrip(self, world):
        sim, _net, cluster = world
        client = cluster.client()

        def script():
            yield from client.set(b"k", b"v")
            return (yield from client.get(b"k"))

        assert run(sim, script()) == b"v"

    def test_get_missing(self, world):
        sim, _net, cluster = world
        client = cluster.client()

        def script():
            return (yield from client.get(b"nope"))

        assert run(sim, script()) is None

    def test_sharding_spreads_keys(self, world):
        sim, _net, cluster = world
        client = cluster.client()

        def script():
            for i in range(100):
                yield from client.set(f"k{i}".encode(), b"v")
            return True

        run(sim, script())
        sizes = [len(s.store) for s in cluster.servers]
        assert sum(sizes) == 100
        assert all(size > 0 for size in sizes), "all shards must be used"

    def test_three_copies_on_three_servers(self, world):
        sim, _net, cluster = world
        client = cluster.client()

        def script():
            yield from client.set(b"replicated", b"v", copies=3)
            return True

        run(sim, script())
        holders = sum(1 for s in cluster.servers
                      if s.store.get(b"replicated") is not None)
        assert holders == 3
        assert cluster.total_items() == 3

    def test_sequential_copies_slower_than_single(self, world):
        sim, _net, cluster = world
        c1 = cluster.client("single")
        c3 = cluster.client("triple")

        def script():
            for i in range(50):
                yield from c1.set(f"a{i}".encode(), b"v", copies=1)
            for i in range(50):
                yield from c3.set(f"b{i}".encode(), b"v", copies=3)
            return True

        run(sim, script())
        t1 = sum(c1.write_latencies)
        t3 = sum(c3.write_latencies)
        assert t3 > 2.0 * t1, (
            "sequential 3-copy writes must cost ~3x a single write "
            f"(got {t3:.4f}s vs {t1:.4f}s)")

    def test_get_three_copies(self, world):
        sim, _net, cluster = world
        client = cluster.client()

        def script():
            yield from client.set(b"k", b"v", copies=3)
            return (yield from client.get(b"k", copies=3))

        assert run(sim, script()) == b"v"

    def test_delete(self, world):
        sim, _net, cluster = world
        client = cluster.client()

        def script():
            yield from client.set(b"k", b"v", copies=3)
            yield from client.delete(b"k", copies=3)
            return (yield from client.get(b"k", copies=3))

        assert run(sim, script()) is None

    def test_crashed_server_fails_its_shard_only(self, world):
        sim, _net, cluster = world
        client = cluster.client()

        def seed():
            for i in range(40):
                yield from client.set(f"k{i}".encode(), b"v")
            return True

        run(sim, seed())
        cluster.servers[0].crash()

        def read_all():
            hits = 0
            for i in range(40):
                value = yield from client.get(f"k{i}".encode())
                if value == b"v":
                    hits += 1
            return hits

        hits = run(sim, read_all())
        lost = 40 - hits
        assert 0 < lost < 40, "only the crashed shard's keys disappear"
        assert client.failures == lost
