"""Tests for ketama consistent hashing and its client integration."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.ketama import KetamaRing
from repro.baselines.memcached import MemcachedCluster
from repro.net.latency import NoLatency
from repro.net.simulator import Simulator
from repro.net.transport import Network


def keys(n, prefix=b"k"):
    return [prefix + str(i).encode() for i in range(n)]


class TestKetamaRing:
    def test_deterministic(self):
        ring = KetamaRing(["a", "b", "c"])
        assert all(ring.node_for(k) == ring.node_for(k) for k in keys(100))

    def test_empty_ring_rejected(self):
        with pytest.raises(ValueError):
            KetamaRing([]).node_for(b"k")

    def test_distribution_roughly_even(self):
        ring = KetamaRing(["a", "b", "c", "d"], points_per_server=160)
        counts = ring.distribution(keys(8000))
        expected = 8000 / 4
        for server, count in counts.items():
            assert 0.5 * expected < count < 1.6 * expected, counts

    def test_offsets_give_distinct_servers(self):
        ring = KetamaRing(["a", "b", "c"])
        for key in keys(50):
            owners = [ring.node_for(key, offset=i) for i in range(3)]
            assert len(set(owners)) == 3

    def test_remove_server_only_remaps_its_keys(self):
        ring = KetamaRing(["a", "b", "c", "d"])
        sample = keys(2000)
        before = {k: ring.node_for(k) for k in sample}
        ring.remove_server("b")
        moved_from_others = [
            k for k in sample
            if before[k] != "b" and ring.node_for(k) != before[k]]
        assert moved_from_others == [], (
            "ketama must only remap the removed server's keys")
        assert all(ring.node_for(k) != "b" for k in sample)

    def test_add_server_moves_bounded_fraction(self):
        ring = KetamaRing(["a", "b", "c"])
        sample = keys(3000)
        before = {k: ring.node_for(k) for k in sample}
        ring.add_server("d")
        moved = sum(1 for k in sample if ring.node_for(k) != before[k])
        # Ideal move fraction = 1/4; allow generous slack.
        assert moved < len(sample) * 0.45
        assert moved > 0

    def test_duplicate_add_is_noop(self):
        ring = KetamaRing(["a", "b"])
        points = len(ring._points)
        ring.add_server("a")
        assert len(ring._points) == points

    @settings(max_examples=40, deadline=None)
    @given(st.binary(min_size=1, max_size=16), st.integers(0, 2))
    def test_node_for_total(self, key, offset):
        ring = KetamaRing(["a", "b", "c"])
        assert ring.node_for(key, offset) in {"a", "b", "c"}


class TestKetamaClient:
    def test_roundtrip_with_ketama_sharding(self):
        sim = Simulator()
        net = Network(sim, latency=NoLatency())
        cluster = MemcachedCluster(sim, net, size=4)
        client = MemcachedClusterClient_ketama = None
        from repro.baselines.memcached import MemcachedClusterClient
        client = MemcachedClusterClient(sim, net, "kc", cluster.names,
                                        hashing="ketama")

        def script():
            for k in keys(50):
                yield from client.set(k, b"v", copies=3)
            hits = 0
            for k in keys(50):
                if (yield from client.get(k)) == b"v":
                    hits += 1
            return hits

        proc = sim.process(script())
        assert sim.run(until=proc) == 50
        assert cluster.total_items() == 150

    def test_unknown_strategy_rejected(self):
        sim = Simulator()
        net = Network(sim, latency=NoLatency())
        from repro.baselines.memcached import MemcachedClusterClient
        with pytest.raises(ValueError):
            MemcachedClusterClient(sim, net, "x", ["a"], hashing="rendezvous")
