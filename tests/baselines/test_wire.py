"""Tests for the wire-level memcached server/client."""

import pytest

from repro.baselines.wire import WireMemcachedClient, WireMemcachedServer
from repro.net.latency import LanGigabit
from repro.net.simulator import Simulator
from repro.net.transport import Network


@pytest.fixture
def world():
    sim = Simulator()
    net = Network(sim, latency=LanGigabit(seed=4))
    server = WireMemcachedServer(sim, net, "mc-wire")
    client = WireMemcachedClient(sim, net, "cli", "mc-wire")
    return sim, server, client


def run(sim, gen):
    proc = sim.process(gen)
    return sim.run(until=proc)


class TestWireRoundtrips:
    def test_set_get(self, world):
        sim, _server, client = world

        def script():
            reply = yield from client.set(b"k", b"hello")
            value = yield from client.get(b"k")
            return reply, value

        assert run(sim, script()) == (b"STORED", b"hello")

    def test_get_miss(self, world):
        sim, _server, client = world

        def script():
            return (yield from client.get(b"missing"))

        assert run(sim, script()) is None

    def test_delete(self, world):
        sim, _server, client = world

        def script():
            yield from client.set(b"k", b"v")
            first = yield from client.delete(b"k")
            second = yield from client.delete(b"k")
            return first, second

        assert run(sim, script()) == (b"DELETED", b"NOT_FOUND")

    def test_incr(self, world):
        sim, _server, client = world

        def script():
            yield from client.set(b"n", b"41")
            return (yield from client.incr(b"n", 1))

        assert run(sim, script()) == 42

    def test_incr_missing(self, world):
        sim, _server, client = world

        def script():
            return (yield from client.incr(b"nope"))

        assert run(sim, script()) is None

    def test_stats(self, world):
        sim, _server, client = world

        def script():
            yield from client.set(b"k", b"v")
            yield from client.get(b"k")
            return (yield from client.stats())

        stats = run(sim, script())
        assert stats["get_hits"] == "1"
        assert stats["curr_items"] == "1"

    def test_binary_value(self, world):
        sim, _server, client = world
        payload = bytes(range(256)).replace(b"\r\n", b"..")

        def script():
            yield from client.set(b"blob", payload)
            return (yield from client.get(b"blob"))

        assert run(sim, script()) == payload

    def test_pipelined_raw_commands(self, world):
        sim, _server, client = world

        def script():
            reply = yield from client.raw(
                b"set a 0 0 1\r\nx\r\nset b 0 0 1\r\ny\r\nget a b\r\n",
                terminators=(b"END\r\n",))
            return reply

        reply = run(sim, script())
        assert reply.count(b"STORED") == 2
        assert b"VALUE a" in reply and b"VALUE b" in reply

    def test_protocol_error_reported(self, world):
        sim, _server, client = world

        def script():
            return (yield from client.raw(b"nonsense command\r\n",
                                          terminators=(b"\r\n",)))

        assert run(sim, script()).startswith(b"CLIENT_ERROR")

    def test_crashed_server_times_out(self, world):
        sim, server, client = world
        client.timeout = 0.5
        server.crash()

        def script():
            try:
                yield from client.get(b"k")
            except TimeoutError:
                return "timed out"
            return "answered?!"

        assert run(sim, script()) == "timed out"

    def test_sessions_isolated_per_client(self, world):
        sim, server, client = world
        net = client.endpoint.network
        other = WireMemcachedClient(sim, net, "cli2", "mc-wire")

        def script():
            # Interleave partial writes from two clients; sessions must
            # not mix their parse buffers.
            client._send(b"set k 0 0 5\r\nhel")
            yield from other.set(b"j", b"ok")
            client._send(b"lo\r\n")
            reply = yield from client._read_until((b"STORED\r\n",))
            value = yield from client.get(b"k")
            return reply.strip(), value

        reply, value = run(sim, script())
        assert reply == b"STORED" and value == b"hello"

    def test_server_equivalent_to_direct_engine(self, world):
        """The wire path must agree with direct MemStore calls."""
        sim, server, client = world
        from repro.storage.memstore import MemStore
        direct = MemStore(memory_limit=4 << 20)
        ops = [(b"k%d" % (i % 5), b"v%d" % i) for i in range(20)]

        def script():
            for key, value in ops:
                yield from client.set(key, value)
                direct.set(key, value)
            mismatches = []
            for key, _v in ops:
                wire_value = yield from client.get(key)
                if wire_value != direct.get(key):
                    mismatches.append(key)
            return mismatches

        assert run(sim, script()) == []
