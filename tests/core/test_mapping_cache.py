"""MappingCache regression tests: changelog trimming and lease-loop
lifecycle.

Three churn bugs pinned down here:

* a *trimmed* changelog entry — listed by ``get_children`` but gone by
  the time the entry is read (the list/get race a changelog GC
  produces) — must still advance ``last_changelog_seq``; otherwise
  every later refresh re-lists and re-fetches the same dead entries
  forever;
* a *rolled-back* changelog — consumed entries vanishing outright when
  a deposed leader's applied tail is truncated by snapshot sync — must
  force a full reload; the forward-only incremental path would never
  revisit the reverted assignments;
* ``stop()`` followed by ``start_lease_loop()`` before the old loop's
  next wakeup must not revive the old loop through the shared running
  flag — only one sync process may run at a time.

The ZooKeeper client is faked so the race interleaving is exact and
the tests stay sub-millisecond.
"""

from types import SimpleNamespace

from repro.core.cache import MappingCache, ZkLayout
from repro.core.config import SednaConfig
from repro.net.simulator import Simulator
from repro.zk.znode import NoNodeError

NUM_VNODES = 8


class FakeZk:
    """A scripted ZooKeeper client covering exactly what MappingCache
    uses: ``get`` and ``get_children``, plus the endpoint handle the
    lease loop checks.

    ``trim(seq)`` models a changelog GC racing the refresh: the entry
    stays in the listing but its data read raises ``NoNodeError``.
    """

    def __init__(self, sim, num_vnodes=NUM_VNODES):
        self.sim = sim
        self.name = "fake-zk"
        self.rpc = SimpleNamespace(endpoint=SimpleNamespace(up=True))
        self.vnodes = {ZkLayout.vnode(v): b"node0"
                       for v in range(num_vnodes)}
        self.changelog: dict[str, bytes | None] = {}
        self.gets = 0
        self.lists = 0

    # -- test controls ------------------------------------------------
    def add_entry(self, seq: int, vnode_id: int) -> None:
        self.changelog[f"e-{seq:010d}"] = str(vnode_id).encode()

    def trim(self, seq: int) -> None:
        self.changelog[f"e-{seq:010d}"] = None

    def rollback(self, seq: int) -> None:
        """Erase an entry *entirely* — gone from the listing, not just
        unreadable.  Models a deposed leader's applied tail being
        truncated by snapshot sync: history the cache already consumed
        un-happens.  Distinct from ``trim``, which keeps the name
        listed."""
        del self.changelog[f"e-{seq:010d}"]

    def set_vnode(self, vnode_id: int, owner: str) -> None:
        self.vnodes[ZkLayout.vnode(vnode_id)] = owner.encode()

    # -- the MappingCache-facing API ----------------------------------
    def get(self, path):
        self.gets += 1
        yield self.sim.timeout(0.0)
        if path.startswith(ZkLayout.CHANGELOG + "/"):
            name = path.rsplit("/", 1)[1]
            data = self.changelog.get(name)
            if data is None:
                raise NoNodeError(path)
            return data, {"version": 0}
        if path not in self.vnodes:
            raise NoNodeError(path)
        return self.vnodes[path], {"version": 0}

    def get_children(self, path):
        self.lists += 1
        yield self.sim.timeout(0.0)
        assert path == ZkLayout.CHANGELOG
        return sorted(self.changelog)


def build(sim, **cfg):
    cfg.setdefault("num_vnodes", NUM_VNODES)
    zk = FakeZk(sim, cfg["num_vnodes"])
    cache = MappingCache(sim, zk, SednaConfig(**cfg), adaptive=False)
    proc = sim.process(cache.load_full())
    sim.run(until=proc)
    return zk, cache


def drive(sim, gen):
    proc = sim.process(gen)
    return sim.run(until=proc)


class TestChangelogTrim:
    def test_trimmed_tail_entry_advances_seq(self):
        sim = Simulator()
        zk, cache = build(sim)
        zk.add_entry(0, 1)
        zk.add_entry(1, 2)
        zk.add_entry(2, 3)
        zk.set_vnode(1, "node1")
        zk.set_vnode(2, "node2")
        zk.trim(2)  # GC races the refresh: listed, but data is gone

        def refresh():
            return (yield from cache.refresh())

        changed = drive(sim, refresh())
        assert changed == 2, "the two surviving entries still apply"
        # The trimmed tail entry's sequence must be consumed too.
        assert cache.last_changelog_seq == 2

        # A second refresh re-reads nothing: no get on dead entries.
        gets_before = zk.gets
        assert drive(sim, refresh()) == 0
        assert cache.last_changelog_seq == 2
        assert zk.gets == gets_before, (
            "refresh after a trimmed tail must not re-fetch dead entries")

    def test_fully_trimmed_changelog_is_silent(self):
        sim = Simulator()
        zk, cache = build(sim)
        zk.add_entry(0, 4)
        zk.add_entry(1, 5)
        zk.trim(0)
        zk.trim(1)

        def refresh():
            return (yield from cache.refresh())

        assert drive(sim, refresh()) == 0
        assert cache.last_changelog_seq == 1
        gets_before = zk.gets
        drive(sim, refresh())
        assert zk.gets == gets_before

    def test_refresh_stays_incremental_after_trim(self):
        """Entries appended after a trim are still picked up."""
        sim = Simulator()
        zk, cache = build(sim)
        zk.add_entry(0, 1)
        zk.trim(0)

        def refresh():
            return (yield from cache.refresh())

        drive(sim, refresh())
        zk.add_entry(1, 3)
        zk.set_vnode(3, "node3")
        assert drive(sim, refresh()) == 1
        assert cache.ring.owner(3) == "node3"
        assert cache.last_changelog_seq == 1


class TestChangelogRollback:
    """Consumed changelog history vanishing (a deposed leader's applied
    tail truncated by snapshot sync) must force a full reload — the
    incremental path only ever looks *forward* from
    ``last_changelog_seq`` and would miss the reverted assignments
    forever."""

    def consumed(self, sim, zk, cache):
        """Feed two reassignments through the incremental path."""
        zk.add_entry(0, 1)
        zk.set_vnode(1, "node1")
        zk.add_entry(1, 2)
        zk.set_vnode(2, "node2")
        assert drive(sim, self.refresh(cache)) == 2
        assert cache.last_changelog_seq == 1

    @staticmethod
    def refresh(cache):
        def gen():
            return (yield from cache.refresh())
        return gen()

    def test_rollback_reloads_and_repairs_ring(self):
        sim = Simulator()
        zk, cache = build(sim)
        self.consumed(sim, zk, cache)

        # The tail truncation un-happens entry 1: the entry vanishes
        # from the listing AND vnode 2's reassignment is reverted.
        zk.rollback(1)
        zk.set_vnode(2, "node0")

        full_loads = cache.full_loads
        assert drive(sim, self.refresh(cache)) == 1, \
            "exactly the reverted vnode changes back"
        assert cache.full_loads == full_loads + 1, \
            "newest < last must trigger a full reload"
        assert cache.ring.owner(2) == "node0"
        # Re-anchored to the surviving newest, not left at 1.
        assert cache.last_changelog_seq == 0

    def test_rollback_to_empty_changelog(self):
        sim = Simulator()
        zk, cache = build(sim)
        self.consumed(sim, zk, cache)
        zk.rollback(0)
        zk.rollback(1)
        zk.set_vnode(1, "node0")
        zk.set_vnode(2, "node0")
        assert drive(sim, self.refresh(cache)) == 2
        assert cache.last_changelog_seq == -1

    def test_refresh_stays_incremental_after_rollback(self):
        """The re-anchored sequence lets a re-minted entry at an old
        position be consumed by the normal forward path."""
        sim = Simulator()
        zk, cache = build(sim)
        self.consumed(sim, zk, cache)
        zk.rollback(1)
        zk.set_vnode(2, "node0")
        drive(sim, self.refresh(cache))

        zk.add_entry(1, 3)          # seq 1 re-minted by the new reign
        zk.set_vnode(3, "node3")
        full_loads = cache.full_loads
        assert drive(sim, self.refresh(cache)) == 1
        assert cache.full_loads == full_loads, "forward path suffices"
        assert cache.ring.owner(3) == "node3"
        assert cache.last_changelog_seq == 1

    def test_remint_past_position_skips_reload(self):
        """If the rolled-back range is re-minted *past* our position
        before we look, newest >= last and no reload fires — that gap
        is healed lazily by the reject→invalidate path, and the
        forward path consumes the re-minted entries normally."""
        sim = Simulator()
        zk, cache = build(sim)
        self.consumed(sim, zk, cache)
        zk.rollback(1)
        zk.add_entry(1, 4)          # re-minted before we ever listed
        zk.add_entry(2, 5)
        zk.set_vnode(4, "node4")
        zk.set_vnode(5, "node5")
        full_loads = cache.full_loads
        assert drive(sim, self.refresh(cache)) == 1, \
            "only seq 2 is new; re-minted seq 1 is behind the anchor"
        assert cache.full_loads == full_loads
        assert cache.ring.owner(5) == "node5"


class TestLeaseLoopLifecycle:
    def test_stop_start_leaves_exactly_one_loop(self):
        sim = Simulator()
        _zk, cache = build(sim, lease_base=1.0)

        cache.start_lease_loop()
        sim.run(until=sim.now + 0.5)   # old loop asleep until t0 + 1.0
        cache.stop()
        cache.start_lease_loop()       # restart before the old wakeup
        before = cache.incremental_refreshes
        sim.run(until=sim.now + 4.2)
        # One loop, one refresh per lease period: 4 wakeups in 4.2s.
        # A revived duplicate loop would roughly double this.
        assert cache.incremental_refreshes - before == 4

    def test_plain_restart_still_syncs(self):
        sim = Simulator()
        _zk, cache = build(sim, lease_base=1.0)
        cache.start_lease_loop()
        sim.run(until=sim.now + 2.5)
        cache.stop()
        sim.run(until=sim.now + 2.0)   # old loop fully retired
        refreshed = cache.incremental_refreshes
        cache.start_lease_loop()
        sim.run(until=sim.now + 2.2)
        assert cache.incremental_refreshes - refreshed == 2
