"""Integration tests: node failure, lazy recovery, read repair (§III.C-D)."""

import pytest

from repro.core.cluster import SednaCluster
from repro.core.config import SednaConfig
from repro.core.types import FullKey
from repro.storage.versioned import WriteOutcome
from repro.zk.server import ZkConfig


def build(n_nodes=5, **cfg_kwargs):
    cfg_kwargs.setdefault("num_vnodes", 32)
    cluster = SednaCluster(n_nodes=n_nodes, zk_size=3,
                           config=SednaConfig(**cfg_kwargs),
                           zk_config=ZkConfig(session_timeout=1.0))
    cluster.start()
    return cluster


class TestNodeCrash:
    def test_reads_survive_single_crash(self):
        cluster = build()
        client = cluster.client()

        def seed():
            for i in range(15):
                yield from client.write_latest(f"k{i}", f"v{i}")
            return True

        cluster.run(seed())
        cluster.crash_node("node2")

        def read_back():
            values = []
            for i in range(15):
                values.append((yield from client.read_latest(f"k{i}")))
            return values

        values = cluster.run(read_back())
        assert values == [f"v{i}" for i in range(15)]

    def test_writes_survive_single_crash(self):
        cluster = build()
        client = cluster.client()
        cluster.crash_node("node1")

        def write():
            statuses = []
            for i in range(15):
                statuses.append((yield from client.write_latest(f"w{i}", i)))
            return statuses

        statuses = cluster.run(write())
        assert all(s == WriteOutcome.OK for s in statuses)

    def test_ephemeral_znode_disappears_after_expiry(self):
        cluster = build()
        cluster.crash_node("node3")
        cluster.settle(5.0)
        leader = cluster.ensemble.leader()
        children = leader.tree.get_children("/sedna/real_nodes")
        assert "node3" not in children

    def test_lazy_recovery_restores_replication_factor(self):
        cluster = build()
        client = cluster.client()

        def seed():
            for i in range(10):
                yield from client.write_latest(f"r{i}", i)
            return True

        cluster.run(seed())
        cluster.crash_node("node2")
        cluster.settle(5.0)  # let the ZK session expire

        # Touch every key: reads trigger investigation + re-duplication.
        def touch():
            for i in range(10):
                yield from client.read_latest(f"r{i}")
            return True

        cluster.run(touch())
        cluster.settle(3.0)  # async duplication tasks finish

        def touch_again():
            for i in range(10):
                yield from client.read_latest(f"r{i}")
            return True

        cluster.run(touch_again())
        cluster.settle(3.0)

        missing = []
        for i in range(10):
            encoded = FullKey.of(f"r{i}").encoded()
            live = cluster.total_replicas_of(encoded)
            if live < 3:
                missing.append((f"r{i}", live))
        assert not missing, f"keys below replication factor: {missing}"

    def test_recovery_updates_zookeeper_mapping(self):
        cluster = build()
        client = cluster.client()

        def seed():
            for i in range(10):
                yield from client.write_latest(f"m{i}", i)
            return True

        cluster.run(seed())
        cluster.crash_node("node4")
        cluster.settle(5.0)

        def touch():
            for i in range(10):
                yield from client.read_latest(f"m{i}")
            return True

        cluster.run(touch())
        cluster.settle(3.0)

        # The dead node must no longer own the vnodes of the touched keys.
        leader = cluster.ensemble.leader()
        ring = cluster.nodes["node0"].cache.ring
        for i in range(10):
            vnode = ring.vnode_of(FullKey.of(f"m{i}").encoded())
            data, _ = leader.tree.get(f"/sedna/vnodes/{vnode}")
            assert data.decode() != "node4"

    def test_restart_rejoins_and_serves(self):
        cluster = build()
        client = cluster.client()

        def seed():
            yield from client.write_latest("before", "x")
            return True

        cluster.run(seed())
        cluster.crash_node("node1")
        cluster.settle(5.0)
        cluster.restart_node("node1")
        cluster.settle(1.0)
        assert cluster.nodes["node1"].running

        pinned = cluster.client(pinned="node1")

        def through_restarted():
            yield from pinned.write_latest("after", "y")
            return (yield from pinned.read_latest("after"))

        assert cluster.run(through_restarted()) == "y"


class TestReadRepair:
    def test_stale_replica_repaired_on_read(self):
        cluster = build()
        client = cluster.client()

        def seed():
            yield from client.write_latest("repair-me", "v1")
            return True

        cluster.run(seed())
        cluster.settle(0.2)

        encoded = FullKey.of("repair-me").encoded()
        holders = [n for n in cluster.nodes.values() if encoded in n.store]
        assert len(holders) == 3
        # Manually mutilate one replica to an older version.
        victim = holders[0]
        victim.store.delete(encoded)

        def read():
            return (yield from client.read_latest("repair-me"))

        assert cluster.run(read()) == "v1"
        cluster.settle(0.5)
        assert encoded in victim.store, "read repair must restore the copy"
        assert victim.store.read_latest(encoded).value == "v1"

    def test_quorum_fails_when_too_many_replicas_down(self):
        # 3 nodes, N=3: crashing two leaves only one live replica < W.
        cluster = build(n_nodes=3)
        client = cluster.client(pinned="node0")
        cluster.crash_node("node1")
        cluster.crash_node("node2")

        def write():
            return (yield from client.write_latest("doomed", "x"))

        status = cluster.run(write())
        assert status == WriteOutcome.FAILURE
