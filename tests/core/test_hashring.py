"""Unit and property tests for the consistent-hash ring."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hashring import ImbalanceTable, Ring, VnodeStatus


def balanced_ring(num_vnodes=64, nodes=("a", "b", "c", "d")):
    ring = Ring(num_vnodes)
    for v in range(num_vnodes):
        ring.assign(v, nodes[v % len(nodes)])
    return ring


class TestRingBasics:
    def test_rejects_empty_ring(self):
        with pytest.raises(ValueError):
            Ring(0)

    def test_vnode_of_in_range(self):
        ring = Ring(128)
        for i in range(500):
            assert 0 <= ring.vnode_of(f"key-{i}") < 128

    def test_vnode_of_deterministic(self):
        ring = Ring(128)
        assert ring.vnode_of("k") == ring.vnode_of("k")

    def test_hash_spreads_keys(self):
        ring = balanced_ring(num_vnodes=64)
        hits = [0] * 64
        for i in range(6400):
            hits[ring.vnode_of(f"key-{i:06d}")] += 1
        assert max(hits) < 4 * (6400 // 64)

    def test_assign_and_owner(self):
        ring = Ring(8)
        ring.assign(3, "n1")
        assert ring.owner(3) == "n1"
        assert ring.owner(0) == Ring.UNASSIGNED

    def test_vnodes_of_and_unassigned(self):
        ring = Ring(4)
        ring.assign(0, "a")
        ring.assign(2, "a")
        assert ring.vnodes_of("a") == [0, 2]
        assert ring.unassigned() == [1, 3]

    def test_load_counts(self):
        ring = balanced_ring(num_vnodes=8, nodes=("a", "b"))
        assert ring.load_counts() == {"a": 4, "b": 4}

    def test_snapshot_load_roundtrip(self):
        ring = balanced_ring()
        clone = Ring(ring.num_vnodes)
        clone.load(ring.snapshot())
        assert clone.assignment == ring.assignment

    def test_load_length_mismatch(self):
        with pytest.raises(ValueError):
            Ring(4).load(["a"] * 5)


class TestReplicaPlacement:
    def test_replicas_start_with_primary(self):
        ring = balanced_ring()
        for v in range(ring.num_vnodes):
            replicas = ring.replicas_for(v, 3)
            assert replicas[0] == ring.owner(v)

    def test_replicas_distinct(self):
        ring = balanced_ring()
        for v in range(ring.num_vnodes):
            replicas = ring.replicas_for(v, 3)
            assert len(replicas) == len(set(replicas)) == 3

    def test_successor_order(self):
        ring = Ring(6)
        for v, owner in enumerate(["a", "b", "c", "a", "b", "c"]):
            ring.assign(v, owner)
        assert ring.replicas_for(0, 3) == ["a", "b", "c"]
        assert ring.replicas_for(1, 3) == ["b", "c", "a"]

    def test_small_cluster_returns_fewer(self):
        ring = Ring(4)
        ring.assign(0, "only")
        ring.assign(1, "only")
        assert ring.replicas_for(0, 3) == ["only"]

    def test_exclude(self):
        ring = balanced_ring(nodes=("a", "b", "c", "d"))
        replicas = ring.replicas_for(0, 3, exclude=["a"])
        assert "a" not in replicas and len(replicas) == 3

    def test_walk_positions_matches_replicas(self):
        ring = balanced_ring()
        for v in (0, 7, 33):
            owners = [o for _i, o in ring.walk_positions(v, 3)]
            assert owners == ring.replicas_for(v, 3)

    def test_walk_positions_indices_are_owned(self):
        ring = balanced_ring()
        for idx, owner in ring.walk_positions(5, 3):
            assert ring.owner(idx) == owner

    def test_replicas_for_key_consistent(self):
        ring = balanced_ring()
        vnode, replicas = ring.replicas_for_key("some-key", 3)
        assert vnode == ring.vnode_of("some-key")
        assert replicas == ring.replicas_for(vnode, 3)


@settings(max_examples=50, deadline=None)
@given(st.integers(min_value=1, max_value=64),
       st.integers(min_value=1, max_value=8),
       st.integers(min_value=1, max_value=5))
def test_replica_invariants(num_vnodes, num_nodes, n):
    """Property: replica sets are duplicate-free, capped by cluster size,
    and led by the primary."""
    ring = Ring(num_vnodes)
    for v in range(num_vnodes):
        ring.assign(v, f"n{v % num_nodes}")
    present = len(set(ring.assignment))
    for v in range(num_vnodes):
        replicas = ring.replicas_for(v, n)
        assert len(replicas) == min(n, present)
        assert len(set(replicas)) == len(replicas)
        assert replicas[0] == ring.owner(v)


class TestImbalanceTable:
    def test_row_from_statuses(self):
        statuses = {0: VnodeStatus(keys=5, reads=10, writes=3),
                    1: VnodeStatus(keys=2, reads=1, writes=1)}
        row = ImbalanceTable.row_from_statuses(statuses)
        assert row == {"vnodes": 2, "keys": 7, "bytes": 0,
                       "reads": 11, "writes": 4}

    def test_most_least_loaded(self):
        table = ImbalanceTable()
        table.update("a", {"vnodes": 10})
        table.update("b", {"vnodes": 2})
        assert table.most_loaded() == "a"
        assert table.least_loaded() == "b"

    def test_empty_table(self):
        table = ImbalanceTable()
        assert table.most_loaded() is None
        assert table.least_loaded() is None
        assert table.spread() == 0.0

    def test_spread(self):
        table = ImbalanceTable()
        table.update("a", {"vnodes": 10})
        table.update("b", {"vnodes": 4})
        assert table.spread() == 6.0

    def test_remove(self):
        table = ImbalanceTable()
        table.update("a", {"vnodes": 1})
        table.remove("a")
        assert table.most_loaded() is None

    def test_tie_broken_deterministically(self):
        table = ImbalanceTable()
        table.update("b", {"vnodes": 5})
        table.update("a", {"vnodes": 5})
        assert table.most_loaded() == "b"
        assert table.least_loaded() == "a"
