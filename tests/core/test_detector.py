"""Tests for active failure detection (Table I)."""

import pytest

from repro.core.cluster import SednaCluster
from repro.core.config import SednaConfig
from repro.core.detector import ActiveDetector
from repro.core.types import FullKey
from repro.zk.server import ZkConfig


def build(n_nodes=5):
    cluster = SednaCluster(n_nodes=n_nodes, zk_size=3,
                           config=SednaConfig(num_vnodes=24,
                                              lease_base=0.3),
                           zk_config=ZkConfig(session_timeout=1.0))
    cluster.start()
    return cluster


def detectors_for(cluster, **kwargs):
    return [ActiveDetector(node, **kwargs)
            for node in cluster.nodes.values()]


class TestActiveDetector:
    def test_probes_run_quietly_on_healthy_cluster(self):
        cluster = build()
        dets = detectors_for(cluster, interval=0.5)
        for d in dets:
            d.start()
        cluster.settle(5.0)
        for d in dets:
            d.stop()
        assert all(d.probes > 0 for d in dets)
        assert all(d.deaths_confirmed == 0 for d in dets)
        assert all(d.proactive_recoveries == 0 for d in dets)

    def test_recovers_dead_node_without_any_traffic(self):
        """The gap active detection closes: full replication restored
        with ZERO client reads."""
        cluster = build()
        client = cluster.client()

        def seed():
            for i in range(25):
                yield from client.write_latest(f"ad{i}", f"v{i}")
            return True

        cluster.run(seed())
        dets = detectors_for(cluster, interval=0.5, repairs_per_pass=8)
        for d in dets:
            d.start()
        cluster.crash_node("node2")
        # No reads at all: only heartbeat expiry + active probes.
        cluster.settle(20.0)
        for d in dets:
            d.stop()

        live_dets = [d for d in dets if d.node.running]
        assert any(d.deaths_confirmed > 0 for d in live_dets)
        under = []
        for i in range(25):
            encoded = FullKey.of(f"ad{i}").encoded()
            copies = cluster.total_replicas_of(encoded)
            if copies < 3:
                under.append((f"ad{i}", copies))
        assert not under, f"still under-replicated without reads: {under}"

    def test_transient_silence_not_treated_as_death(self):
        """A node whose ZooKeeper session is alive is never repaired
        away, however unresponsive its data endpoint briefly is."""
        cluster = build()
        dets = detectors_for(cluster, interval=0.5, probe_timeout=0.2)
        for d in dets:
            d.start()
        # Take only the *data* endpoint down briefly; the -zk endpoint
        # (and so the session) stays up.
        cluster.network.endpoint("node3").crash()
        cluster.settle(3.0)
        cluster.network.endpoint("node3").restart()
        cluster.settle(2.0)
        for d in dets:
            d.stop()
        assert all(d.deaths_confirmed == 0 for d in dets), \
            "ephemeral-alive peers must never be declared dead"
        # Mapping unchanged: node3 still owns its vnodes.
        ring = cluster.nodes["node0"].cache.ring
        assert len(ring.vnodes_of("node3")) > 0

    def test_bounded_repairs_per_pass(self):
        cluster = build()
        client = cluster.client()

        def seed():
            for i in range(30):
                yield from client.write_latest(f"b{i}", i)
            return True

        cluster.run(seed())
        det = ActiveDetector(cluster.nodes["node0"], interval=1.0,
                             repairs_per_pass=2)
        det.start()
        cluster.crash_node("node1")
        cluster.settle(2.5)  # expiry + first detection pass
        first_burst = det.proactive_recoveries
        assert first_burst <= 2 * 2, (
            "repairs must be paced, not a thundering herd")
        cluster.settle(20.0)
        det.stop()
