"""Unit tests of QuorumCoordinator against scripted mock replicas.

The cluster integration tests exercise the coordinator end to end;
these tests pin down its *decision logic* in isolation: quorum
accounting, retry-on-stale-mapping, R-equality checking, read repair
targeting, and suspect notification — with replicas whose behaviour
(delay, refuse, silence, payload) is scripted per test.
"""

import pytest

from repro.core.cache import MappingCache
from repro.core.config import SednaConfig
from repro.core.coordinator import QuorumCoordinator, wire_elements
from repro.core.hashring import Ring
from repro.net.latency import NoLatency
from repro.net.rpc import RpcNode, RpcRejected
from repro.net.simulator import Simulator
from repro.net.transport import Network
from repro.storage.versioned import ValueElement, WriteOutcome


class FakeCache:
    """A MappingCache stand-in with a fixed ring and countable
    invalidations."""

    def __init__(self, config, owners):
        self.config = config
        self.ring = Ring(4)
        for v in range(4):
            self.ring.assign(v, owners[v % len(owners)])
        self.loaded = True
        self.invalidated = []

    def replicas_for_key(self, key):
        return self.ring.replicas_for_key(key, self.config.replicas)

    def invalidate(self, vnode_id):
        self.invalidated.append(vnode_id)
        return
        yield  # pragma: no cover - makes this a generator


class Replica:
    """A scripted replica server."""

    def __init__(self, sim, network, name):
        self.sim = sim
        self.name = name
        self.rpc = RpcNode(network, name)
        self.behaviour = "ok"           # ok | refuse | silent
        self.delay = 0.0
        self.elements: list[ValueElement] = []
        self.writes = []
        self.repairs = []
        self.deletes = []
        self.rpc.register("replica.write", self._write)
        self.rpc.register("replica.read", self._read)
        self.rpc.register("replica.repair", self._repair)
        self.rpc.register("replica.delete", self._delete)

    def _respond(self, value):
        if self.behaviour == "refuse":
            raise RpcRejected("not-owner")
        if self.behaviour == "silent":
            return self.sim.event()  # never triggers
        if self.delay > 0.0:
            ev = self.sim.event()
            self.sim.schedule_callback(self.delay,
                                       lambda: ev.succeed(value))
            return ev
        return value

    def _write(self, src, args):
        self.writes.append(args)
        return self._respond({"status": WriteOutcome.OK})

    def _read(self, src, args):
        return self._respond({"elements": wire_elements(self.elements)})

    def _repair(self, src, args):
        self.repairs.append(args)
        return {"status": "ok"}

    def _delete(self, src, args):
        self.deletes.append(args)
        return self._respond({"status": "ok"})


@pytest.fixture
def world():
    sim = Simulator()
    network = Network(sim, latency=NoLatency())
    config = SednaConfig(num_vnodes=4, request_timeout=0.5)
    replicas = {name: Replica(sim, network, name)
                for name in ("r0", "r1", "r2")}
    cache = FakeCache(config, ["r0", "r1", "r2"])
    coord_rpc = RpcNode(network, "coordinator")
    suspects = []
    coordinator = QuorumCoordinator(
        sim, coord_rpc, cache, config,
        on_suspect=lambda name, vnode: suspects.append(name))
    return sim, coordinator, replicas, cache, suspects


def drive(sim, gen):
    proc = sim.process(gen)
    return sim.run(until=proc)


WRITE_ARGS = {"key": "k", "value": "v", "ts": 1.0, "source": "cli",
              "mode": "latest"}


class TestWriteLogic:
    def test_happy_path_hits_all_three(self, world):
        sim, coordinator, replicas, _cache, suspects = world
        result = drive(sim, coordinator.coordinate_write(dict(WRITE_ARGS)))
        assert result["status"] == WriteOutcome.OK
        assert all(len(r.writes) == 1 for r in replicas.values())
        assert suspects == []

    def test_returns_at_w_without_waiting_for_slowest(self, world):
        sim, coordinator, replicas, _cache, _s = world
        replicas["r2"].delay = 10.0

        def go():
            result = yield from coordinator.coordinate_write(dict(WRITE_ARGS))
            return result, sim.now

        result, when = drive(sim, go())
        assert result["status"] == WriteOutcome.OK
        assert when < 1.0, "W=2 met by the two fast replicas"

    def test_silent_replica_flagged_suspect(self, world):
        sim, coordinator, replicas, _cache, suspects = world
        replicas["r1"].behaviour = "silent"
        result = drive(sim, coordinator.coordinate_write(dict(WRITE_ARGS)))
        assert result["status"] == WriteOutcome.OK
        sim.run(until=sim.now + 1.0)  # the silence deadline passes
        assert "r1" in suspects

    def test_refusal_flagged_suspect(self, world):
        sim, coordinator, replicas, _cache, suspects = world
        replicas["r0"].behaviour = "refuse"
        result = drive(sim, coordinator.coordinate_write(dict(WRITE_ARGS)))
        assert result["status"] == WriteOutcome.OK
        assert "r0" in suspects

    def test_quorum_failure_invalidates_and_retries_once(self, world):
        sim, coordinator, replicas, cache, _s = world
        for r in replicas.values():
            r.behaviour = "refuse"

        def go():
            with pytest.raises(RpcRejected):
                yield from coordinator.coordinate_write(dict(WRITE_ARGS))
            return True

        drive(sim, go())
        assert len(cache.invalidated) >= 1, "stale-mapping retry path"
        # Two attempts -> each replica refused twice.
        assert coordinator.coordinated_writes == 2

    def test_two_silent_replicas_fail_the_write(self, world):
        sim, coordinator, replicas, _cache, _s = world
        replicas["r0"].behaviour = "silent"
        replicas["r1"].behaviour = "silent"

        def go():
            with pytest.raises(RpcRejected, match="write-quorum-failed"):
                yield from coordinator.coordinate_write(dict(WRITE_ARGS))
            return sim.now

        when = drive(sim, go())
        assert when >= 2 * 0.5, "both attempts wait out the timeout"


class TestReadLogic:
    def _load(self, replicas, versions):
        for name, elements in versions.items():
            replicas[name].elements = elements

    def test_agreeing_replicas_no_repair(self, world):
        sim, coordinator, replicas, _cache, _s = world
        fresh = [ValueElement("w", 2.0, "new")]
        self._load(replicas, {"r0": fresh, "r1": fresh, "r2": fresh})
        result = drive(sim, coordinator.coordinate_read({"key": "k"}))
        assert result["found"] is True
        assert (result["value"], result["ts"], result["source"]) == (
            "new", 2.0, "w")
        sim.run(until=sim.now + 1.0)
        assert all(r.repairs == [] for r in replicas.values())
        assert coordinator.read_repairs == 0

    def test_stale_minority_repaired(self, world):
        sim, coordinator, replicas, _cache, _s = world
        fresh = [ValueElement("w", 2.0, "new")]
        stale = [ValueElement("w", 1.0, "old")]
        self._load(replicas, {"r0": fresh, "r1": fresh, "r2": stale})
        result = drive(sim, coordinator.coordinate_read({"key": "k"}))
        assert result["value"] == "new"
        sim.run(until=sim.now + 1.0)
        assert len(replicas["r2"].repairs) == 1
        repaired = replicas["r2"].repairs[0]["elements"]
        assert ("w", 2.0, "new") in repaired

    def test_fresh_minority_wins_and_spreads(self, world):
        """One replica holds the newest version: the merged read must
        return it and push it to the two stale replicas."""
        sim, coordinator, replicas, _cache, _s = world
        fresh = [ValueElement("w", 3.0, "newest")]
        stale = [ValueElement("w", 1.0, "old")]
        self._load(replicas, {"r0": stale, "r1": stale, "r2": fresh})
        result = drive(sim, coordinator.coordinate_read({"key": "k"}))
        # The coordinator may answer before r2's response arrives only
        # if R stale copies agree; the merged answer must still win
        # after repair.  Re-read to observe the converged value.
        sim.run(until=sim.now + 1.0)
        result2 = drive(sim, coordinator.coordinate_read({"key": "k"}))
        assert result2["value"] == "newest"

    def test_read_all_merges_value_lists(self, world):
        sim, coordinator, replicas, _cache, _s = world
        self._load(replicas, {
            "r0": [ValueElement("a", 1.0, "va")],
            "r1": [ValueElement("b", 2.0, "vb")],
            "r2": [],
        })
        result = drive(sim, coordinator.coordinate_read(
            {"key": "k", "mode": "all"}))
        sources = {source for source, _ts, _v in result["elements"]}
        assert sources == {"a", "b"}

    def test_missing_key_not_found(self, world):
        sim, coordinator, replicas, _cache, _s = world
        result = drive(sim, coordinator.coordinate_read({"key": "nope"}))
        assert result["found"] is False

    def test_read_quorum_failure(self, world):
        sim, coordinator, replicas, _cache, _s = world
        replicas["r0"].behaviour = "silent"
        replicas["r1"].behaviour = "silent"

        def go():
            with pytest.raises(RpcRejected, match="read-quorum-failed"):
                yield from coordinator.coordinate_read({"key": "k"})
            return True

        assert drive(sim, go()) is True


class TestDeleteLogic:
    def test_delete_quorum(self, world):
        sim, coordinator, _replicas, _cache, _s = world
        result = drive(sim, coordinator.coordinate_delete({"key": "k"}))
        assert result["status"] == "ok"
        assert len(result["acks"]) >= 2
        assert coordinator.coordinated_deletes == 1

    def test_not_enough_replicas_rejected_upfront(self, world):
        """Parity with the write path: a shrunken replica set must be
        rejected before any fan-out."""
        sim, coordinator, replicas, cache, _s = world
        for v in range(4):
            cache.ring.assign(v, "r0")

        def go():
            with pytest.raises(RpcRejected, match="not-enough-replicas"):
                yield from coordinator.coordinate_delete({"key": "k"})
            return True

        assert drive(sim, go()) is True
        assert all(r.deletes == [] for r in replicas.values()), (
            "rejected before any fan-out")

    def test_quorum_failure_invalidates_and_retries_once(self, world):
        """Parity with the write path: a refused quorum may mean a
        stale mapping — invalidate and retry once before failing."""
        sim, coordinator, replicas, cache, suspects = world
        for r in replicas.values():
            r.behaviour = "refuse"

        def go():
            with pytest.raises(RpcRejected, match="delete-quorum-failed"):
                yield from coordinator.coordinate_delete({"key": "k"})
            return True

        drive(sim, go())
        assert len(cache.invalidated) >= 1, "stale-mapping retry path"
        assert coordinator.coordinated_deletes == 2, "one retry"
        assert set(suspects) == {"r0", "r1", "r2"}

    def test_silent_laggard_suspected_after_delete(self, world):
        sim, coordinator, replicas, _cache, suspects = world
        replicas["r2"].behaviour = "silent"
        result = drive(sim, coordinator.coordinate_delete({"key": "k"}))
        assert result["status"] == "ok"
        sim.run(until=sim.now + 1.0)  # the silence deadline passes
        assert "r2" in suspects
