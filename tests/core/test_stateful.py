"""Model-based stateful test: the cluster vs a dict, under crash churn.

Hypothesis drives random interleavings of writes, reads, node crashes
and restarts against a live cluster, checking after every step that the
system agrees with a trivial sequential model.  The disciplines:

* at most one node is down at a time (so every quorum stays reachable
  and the model is exact — acknowledged writes must always read back);
* after a crash the machine settles past the ZooKeeper session timeout,
  mirroring the §III.D detection path.
"""

from hypothesis import settings
from hypothesis.stateful import (Bundle, RuleBasedStateMachine, initialize,
                                 invariant, precondition, rule)
from hypothesis import strategies as st

from repro.core.cluster import SednaCluster
from repro.core.config import SednaConfig
from repro.storage.versioned import WriteOutcome
from repro.zk.server import ZkConfig

KEYS = [f"sm{i}" for i in range(8)]


class ClusterMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.cluster = SednaCluster(
            n_nodes=5, zk_size=3,
            config=SednaConfig(num_vnodes=24),
            zk_config=ZkConfig(session_timeout=1.0))
        self.cluster.start()
        self.client = self.cluster.client("model-client")
        self.model: dict[str, str] = {}
        self.down: str | None = None
        self.counter = 0

    # -- operations -----------------------------------------------------
    @rule(key=st.sampled_from(KEYS))
    def write(self, key):
        self.counter += 1
        value = f"val-{self.counter}"

        def go():
            return (yield from self.client.write_latest(key, value))

        status = self.cluster.run(go())
        assert status == WriteOutcome.OK, \
            f"write must succeed with >= 4 live nodes, got {status}"
        self.model[key] = value

    @rule(key=st.sampled_from(KEYS))
    def read(self, key):
        def go():
            return (yield from self.client.read_latest(key))

        value = self.cluster.run(go())
        assert value == self.model.get(key), \
            f"{key}: cluster={value!r} model={self.model.get(key)!r}"

    @precondition(lambda self: self.down is None)
    @rule(victim=st.sampled_from([f"node{i}" for i in range(5)]))
    def crash(self, victim):
        self.cluster.crash_node(victim)
        self.down = victim
        # Let the ZooKeeper session expire so recovery can proceed.
        self.cluster.settle(3.0)

    @precondition(lambda self: self.down is not None)
    @rule()
    def restart(self):
        self.cluster.restart_node(self.down)
        self.down = None
        self.cluster.settle(0.5)

    @rule(duration=st.sampled_from([0.2, 1.0]))
    def let_time_pass(self, duration):
        self.cluster.settle(duration)

    # -- invariants -------------------------------------------------------
    @invariant()
    def zookeeper_has_a_leader(self):
        assert self.cluster.ensemble.leader() is not None

    @invariant()
    def live_nodes_stay_up(self):
        for name, node in self.cluster.nodes.items():
            if name != self.down:
                assert node.running, f"{name} died unexpectedly"


ClusterMachine.TestCase.settings = settings(
    max_examples=8, stateful_step_count=15, deadline=None)
TestClusterModel = ClusterMachine.TestCase
