"""Property-based tests (seeded random, no extra deps) for the
imbalance table, the ring bookkeeping and the pure migration planner.

Each test draws a few hundred random scenarios from ``random.Random``
seeded by the parametrized seed, so failures replay exactly.
"""

import math
import random

import pytest

from repro.core.hashring import (HEAT_WEIGHTS, ImbalanceTable, Ring,
                                 row_heat, vnode_heat)
from repro.core.rebalance import (activity_delta, pick_migration_vnode,
                                  plan_move)

NAMES = tuple(f"n{i}" for i in range(8))
SEEDS = range(12)


def random_row(rng):
    return {"vnodes": rng.randint(0, 12), "keys": rng.randint(0, 500),
            "bytes": rng.randint(0, 40000), "reads": rng.randint(0, 800),
            "writes": rng.randint(0, 400)}


def random_table(rng, max_nodes=8):
    table = ImbalanceTable()
    for name in rng.sample(NAMES, rng.randint(0, max_nodes)):
        table.update(name, random_row(rng))
    # A few churn operations: refreshes and removals.
    for _ in range(rng.randint(0, 6)):
        name = rng.choice(NAMES)
        if rng.random() < 0.3:
            table.remove(name)
        else:
            table.update(name, random_row(rng))
    return table


class TestImbalanceTableProperties:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_spread_most_least_consistency(self, seed):
        rng = random.Random(f"imbalance/{seed}")
        for _ in range(50):
            table = random_table(rng)
            for metric in ("vnodes", "keys", "reads", "writes"):
                most = table.most_loaded(metric)
                least = table.least_loaded(metric)
                if not table.rows:
                    assert most is None and least is None
                    assert table.spread(metric) == 0.0
                    continue
                values = [row.get(metric, 0)
                          for row in table.rows.values()]
                assert table.rows[most].get(metric, 0) == max(values)
                assert table.rows[least].get(metric, 0) == min(values)
                if len(table.rows) >= 2:
                    assert table.spread(metric) == float(max(values)
                                                         - min(values))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_heat_extremes_and_spread_agree(self, seed):
        rng = random.Random(f"heat/{seed}")
        for _ in range(50):
            table = random_table(rng)
            if not table.rows:
                assert table.hottest() is None
                assert table.coldest() is None
                assert table.mean_heat() == 0.0
                continue
            heats = {name: table.heat(name) for name in table.rows}
            hottest = table.hottest()
            coldest = table.coldest()
            assert heats[hottest] == max(heats.values())
            assert heats[coldest] == min(heats.values())
            if len(table.rows) >= 2:
                assert table.heat_spread() == pytest.approx(
                    heats[hottest] - heats[coldest])
            assert table.mean_heat() == pytest.approx(
                sum(heats.values()) / len(heats))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_heat_tiebreak_is_insertion_order_independent(self, seed):
        rng = random.Random(f"tie/{seed}")
        row = random_row(rng)
        names = list(rng.sample(NAMES, 4))
        forward = ImbalanceTable()
        backward = ImbalanceTable()
        for name in names:
            forward.update(name, dict(row))
        for name in reversed(names):
            backward.update(name, dict(row))
        assert forward.hottest() == backward.hottest()
        assert forward.coldest() == backward.coldest()

    def test_row_heat_matches_weights(self):
        row = {"vnodes": 2, "keys": 10, "reads": 5, "writes": 3}
        expected = (2 * HEAT_WEIGHTS["vnodes"] + 10 * HEAT_WEIGHTS["keys"]
                    + 5 * HEAT_WEIGHTS["reads"]
                    + 3 * HEAT_WEIGHTS["writes"])
        assert row_heat(row) == pytest.approx(expected)
        # Missing fields count as zero.
        assert row_heat({}) == 0.0
        # One idle vnode still carries the base weight.
        assert vnode_heat({}) == HEAT_WEIGHTS["vnodes"]


class TestRingProperties:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_load_counts_agree_with_vnodes_of(self, seed):
        rng = random.Random(f"ring/{seed}")
        for _ in range(30):
            ring = Ring(rng.randint(1, 48))
            for _ in range(rng.randint(0, 120)):
                vnode = rng.randrange(ring.num_vnodes)
                owner = rng.choice(NAMES + (Ring.UNASSIGNED,))
                ring.assign(vnode, owner)
            counts = ring.load_counts()
            for owner in ring.real_nodes():
                assert counts[owner] == len(ring.vnodes_of(owner))
            assert sum(counts.values()) == (ring.num_vnodes
                                            - len(ring.unassigned()))
            # Every vnode is either unassigned or owned by exactly the
            # node its vnodes_of() reports.
            for vnode in range(ring.num_vnodes):
                owner = ring.owner(vnode)
                if owner != Ring.UNASSIGNED:
                    assert vnode in ring.vnodes_of(owner)


class TestPlannerProperties:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("mode", ("heat", "count"))
    def test_plan_never_moves_to_current_owner(self, seed, mode):
        rng = random.Random(f"plan/{mode}/{seed}")
        for _ in range(80):
            rows = {name: random_row(rng)
                    for name in rng.sample(NAMES, rng.randint(0, 6))}
            plan = plan_move(rows, mode=mode)
            if plan is None:
                continue
            donor, receiver, limit = plan
            assert donor != receiver
            assert donor in rows and receiver in rows
            assert limit > 0

    @pytest.mark.parametrize("seed", SEEDS)
    def test_heat_plan_picks_extremes_and_bounds_the_move(self, seed):
        rng = random.Random(f"planheat/{seed}")
        for _ in range(80):
            rows = {name: random_row(rng)
                    for name in rng.sample(NAMES, rng.randint(2, 6))}
            plan = plan_move(rows, mode="heat")
            heats = {name: row_heat(row) for name, row in rows.items()}
            if plan is None:
                continue
            donor, receiver, limit = plan
            assert heats[donor] == max(heats.values())
            assert heats[receiver] == min(heats.values())
            gap = heats[donor] - heats[receiver]
            # Moving a vnode at the limit can never overshoot the gap.
            assert 2 * limit <= gap
            assert limit >= HEAT_WEIGHTS["vnodes"]

    @pytest.mark.parametrize("seed", SEEDS)
    def test_count_plan_respects_threshold(self, seed):
        rng = random.Random(f"plancount/{seed}")
        for _ in range(80):
            rows = {name: random_row(rng)
                    for name in rng.sample(NAMES, rng.randint(2, 6))}
            threshold = rng.randint(0, 5)
            plan = plan_move(rows, mode="count", threshold=threshold)
            counts = [row.get("vnodes", 0) for row in rows.values()]
            spread = max(counts) - min(counts)
            if spread <= threshold:
                assert plan is None
            else:
                assert plan is not None
                donor, receiver, limit = plan
                assert rows[donor]["vnodes"] == max(counts)
                assert rows[receiver]["vnodes"] == min(counts)
                assert limit == math.inf

    @pytest.mark.parametrize("seed", SEEDS)
    def test_picked_vnode_fits_limit_and_is_stable(self, seed):
        rng = random.Random(f"pick/{seed}")
        for _ in range(80):
            owned = rng.sample(range(48), rng.randint(0, 10))
            stats = {v: {"keys": rng.randint(0, 50),
                         "reads": rng.randint(0, 100),
                         "writes": rng.randint(0, 60)}
                     for v in owned if rng.random() < 0.8}
            limit = rng.choice((math.inf, rng.uniform(0.0, 200.0)))
            choice = pick_migration_vnode(owned, stats, limit)
            if choice is None:
                assert all(vnode_heat(stats.get(v, {})) > limit
                           for v in owned)
                continue
            assert choice in owned
            heat = vnode_heat(stats.get(choice, {}))
            assert heat <= limit
            for v in owned:
                other = vnode_heat(stats.get(v, {}))
                if other <= limit:
                    # Strictly hotter candidates don't exist; equal
                    # heat resolves to the lowest vnode id.
                    assert other < heat or (other == heat
                                            and v >= choice)
            shuffled = list(owned)
            rng.shuffle(shuffled)
            assert pick_migration_vnode(shuffled, stats, limit) == choice


class TestActivityDelta:
    def test_counters_are_differenced_and_clamped(self):
        current = {"vnodes": 3, "keys": 10, "reads": 100, "writes": 40}
        previous = {"vnodes": 5, "keys": 30, "reads": 60, "writes": 90}
        delta = activity_delta(current, previous)
        assert delta["reads"] == 40          # 100 - 60
        assert delta["writes"] == 0          # clamped: counter reset
        assert delta["vnodes"] == 3          # gauges pass through
        assert delta["keys"] == 10

    def test_no_baseline_passes_through(self):
        row = {"reads": 7, "writes": 3}
        assert activity_delta(row, None) == row
