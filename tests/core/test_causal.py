"""End-to-end tests of the causal (DVV) replication mode.

Concurrent blind writes must both survive as siblings; a write carrying
the context of a read (or of a write ack, which hands back the covered
siblings) supersedes exactly what that context covers — docs §16.
"""

import pytest

from repro.core.cluster import SednaCluster
from repro.core.config import SednaConfig
from repro.storage.versioned import WriteOutcome


def small_cluster(n_nodes=4, **cfg_kwargs):
    cfg_kwargs.setdefault("num_vnodes", 32)
    cluster = SednaCluster(n_nodes=n_nodes, zk_size=3,
                           config=SednaConfig(**cfg_kwargs))
    cluster.start()
    return cluster


@pytest.fixture(scope="module")
def cluster():
    return small_cluster()


class TestCausalWriteRead:
    def test_blind_concurrent_writes_both_survive(self, cluster):
        c1 = cluster.client("dvv-a")
        c2 = cluster.client("dvv-b")

        def script():
            a1 = yield from c1.write_causal("conc", "from-a")
            a2 = yield from c2.write_causal("conc", "from-b")
            read = yield from c1.read_causal("conc")
            return a1, a2, read

        a1, a2, read = cluster.run(script())
        assert a1.ok and a2.ok
        assert a1.dot is not None and a2.dot is not None
        assert sorted(read.values) == ["from-a", "from-b"]

    def test_context_write_reconciles_siblings(self, cluster):
        c1 = cluster.client("dvv-c")
        c2 = cluster.client("dvv-d")

        def script():
            yield from c1.write_causal("recon", "left")
            yield from c2.write_causal("recon", "right")
            read = yield from c1.read_causal("recon")
            ack = yield from c1.write_causal("recon", "merged",
                                             context=read.context)
            after = yield from c1.read_causal("recon")
            return read, ack, after

        read, ack, after = cluster.run(script())
        assert len(read.siblings) == 2
        assert ack.ok
        assert after.values == ["merged"]

    def test_write_ack_hands_back_covered_siblings(self, cluster):
        """The ack context may cover siblings the writer never read —
        so the ack must carry their values (informed supersession)."""
        c1 = cluster.client("dvv-e")
        c2 = cluster.client("dvv-f")

        def script():
            yield from c1.write_causal("handed", "unseen")
            ack = yield from c2.write_causal("handed", "mine")
            return ack

        ack = cluster.run(script())
        assert ack.ok
        assert "unseen" in [v for _s, _t, v in ack.siblings]

    def test_stale_context_keeps_newer_sibling(self, cluster):
        c1 = cluster.client("dvv-g")
        c2 = cluster.client("dvv-h")

        def script():
            yield from c1.write_causal("stale", "v1")
            read = yield from c1.read_causal("stale")   # covers v1 only
            yield from c2.write_causal("stale", "v2")   # concurrent
            yield from c1.write_causal("stale", "v3", context=read.context)
            final = yield from c2.read_causal("stale")
            return final

        final = cluster.run(script())
        assert sorted(final.values) == ["v2", "v3"]

    def test_missing_key_reads_empty(self, cluster):
        client = cluster.client("dvv-i")

        def script():
            return (yield from client.read_causal("causal-never-written"))

        result = cluster.run(script())
        assert result.found is False
        assert result.siblings == () and result.context == ()

    def test_smart_client_causal_roundtrip(self, cluster):
        client = cluster.smart_client("dvv-smart")

        def script():
            yield from client.connect()
            ack = yield from client.write_causal("smart", "v")
            read = yield from client.read_causal("smart")
            ack2 = yield from client.write_causal("smart", "w",
                                                  context=read.context)
            after = yield from client.read_causal("smart")
            return ack, read, ack2, after

        ack, read, ack2, after = cluster.run(script())
        assert ack.status == WriteOutcome.OK and ack2.ok
        assert read.values == ["v"]
        assert after.values == ["w"]


class TestCausalReplication:
    def test_siblings_replicated_and_repaired(self, cluster):
        """After anti-entropy-free quiesce, every replica of the key
        holds the merged row (read repair pushed it)."""
        c1 = cluster.client("dvv-j")
        c2 = cluster.client("dvv-k")

        def script():
            yield from c1.write_causal("spread", "x")
            yield from c2.write_causal("spread", "y")
            read = yield from c1.read_causal("spread")
            return read

        read = cluster.run(script())
        cluster.settle(0.5)
        assert len(read.siblings) == 2
        from repro.core.types import FullKey
        encoded = FullKey.of("spread").encoded()
        shapes = set()
        holders = 0
        for node in cluster.nodes.values():
            row = node.store.dvv_rows.get(encoded)
            if row is not None:
                holders += 1
                shapes.add(row.shape())
        assert holders == 3          # replication factor
        assert len(shapes) == 1      # all converged on the merged row

    def test_metrics_track_siblings(self, cluster):
        """dvv.siblings histogram observes on every causal update."""
        from repro.obs import Observability
        obs = Observability(metrics=True, tracing=False)
        local = SednaCluster(n_nodes=3, zk_size=1,
                             config=SednaConfig(num_vnodes=16), obs=obs)
        local.start()
        a = local.client("m-a")
        b = local.client("m-b")

        def script():
            yield from a.write_causal("mk", "1")
            yield from b.write_causal("mk", "2")
            return True

        local.run(script())
        series = obs.snapshot()["series"]
        sib = {name: m for name, m in series.items()
               if name.endswith("dvv.siblings")}
        assert sib, f"no dvv.siblings series in {sorted(series)[:10]}"
        # Two causal updates observed somewhere in the cluster.
        assert sum(m.get("count", 0) for m in sib.values()) >= 2
        assert any(name.endswith("dvv.context_misses")
                   for name in series)
