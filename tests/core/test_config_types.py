"""Unit tests for SednaConfig validation and the hierarchical key model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import SednaConfig
from repro.core.types import DEFAULT_DATASET, DEFAULT_TABLE, FullKey


class TestConfig:
    def test_defaults_valid(self):
        cfg = SednaConfig()
        assert cfg.replicas == 3
        assert cfg.read_quorum + cfg.write_quorum > cfg.replicas
        assert cfg.write_quorum > cfg.replicas / 2

    def test_paper_example_quorum(self):
        # §III.C: "if there are 3 copies for each data, and R equals 2,
        # W equals 2. These two formulas are satisfied."
        SednaConfig(replicas=3, read_quorum=2, write_quorum=2)

    def test_r_plus_w_must_exceed_n(self):
        with pytest.raises(ValueError, match="R \\+ W > N"):
            SednaConfig(replicas=3, read_quorum=1, write_quorum=2)

    def test_w_must_exceed_half_n(self):
        with pytest.raises(ValueError, match="W > N/2"):
            SednaConfig(replicas=4, read_quorum=4, write_quorum=2)

    def test_single_replica_allowed(self):
        SednaConfig(replicas=1, read_quorum=1, write_quorum=1)

    def test_bad_vnodes(self):
        with pytest.raises(ValueError):
            SednaConfig(num_vnodes=0)

    def test_bad_persistence(self):
        with pytest.raises(ValueError):
            SednaConfig(persistence="raid")

    @settings(max_examples=50, deadline=None)
    @given(st.integers(1, 7), st.integers(1, 7), st.integers(1, 7))
    def test_validation_property(self, n, r, w):
        """Property: construction succeeds iff both paper constraints hold."""
        valid = (r + w > n) and (w > n / 2) and r <= 10 and w <= 10
        if valid:
            SednaConfig(replicas=n, read_quorum=r, write_quorum=w)
        else:
            with pytest.raises(ValueError):
                SednaConfig(replicas=n, read_quorum=r, write_quorum=w)


class TestFullKey:
    def test_of_defaults(self):
        fk = FullKey.of("k1")
        assert fk.dataset == DEFAULT_DATASET
        assert fk.table == DEFAULT_TABLE
        assert fk.key == "k1"

    def test_encode_decode_roundtrip(self):
        fk = FullKey(dataset="ds", table="tweets", key="id-123")
        assert FullKey.decode(fk.encoded()) == fk

    def test_encoded_distinct_across_tables(self):
        a = FullKey(dataset="d", table="t1", key="k")
        b = FullKey(dataset="d", table="t2", key="k")
        assert a.encoded() != b.encoded()

    def test_key_may_contain_slashes_and_colons(self):
        fk = FullKey(dataset="d", table="t", key="a/b:c")
        assert FullKey.decode(fk.encoded()).key == "a/b:c"

    def test_rejects_separator_byte(self):
        with pytest.raises(ValueError):
            FullKey(dataset="d", table="t", key="bad\x1fkey")

    def test_rejects_empty_components(self):
        with pytest.raises(ValueError):
            FullKey(dataset="", table="t", key="k")

    def test_table_prefix_matches_members_only(self):
        fk = FullKey(dataset="d", table="t", key="k")
        assert fk.encoded().startswith(fk.table_prefix())
        other = FullKey(dataset="d", table="u", key="k")
        assert not other.encoded().startswith(fk.table_prefix())

    def test_dataset_prefix(self):
        fk = FullKey(dataset="d", table="t", key="k")
        assert fk.encoded().startswith(fk.dataset_prefix())

    def test_prefix_for(self):
        assert FullKey.prefix_for("d") == FullKey(
            dataset="d", table="t", key="k").dataset_prefix()
        assert FullKey.prefix_for("d", "t") == FullKey(
            dataset="d", table="t", key="k").table_prefix()

    def test_str_human_readable(self):
        assert str(FullKey(dataset="d", table="t", key="k")) == "d/t/k"

    @settings(max_examples=50, deadline=None)
    @given(st.text(min_size=1, max_size=10).filter(lambda s: "\x1f" not in s),
           st.text(min_size=1, max_size=10).filter(lambda s: "\x1f" not in s),
           st.text(min_size=1, max_size=20).filter(lambda s: "\x1f" not in s))
    def test_roundtrip_property(self, ds, table, key):
        fk = FullKey(dataset=ds, table=table, key=key)
        assert FullKey.decode(fk.encoded()) == fk
