"""The full production posture: all background services on at once."""

import pytest

from repro.core.cluster import SednaCluster
from repro.core.config import SednaConfig
from repro.core.types import FullKey
from repro.storage.versioned import WriteOutcome
from repro.zk.server import ZkConfig


class TestMaintenanceMode:
    def test_services_start_and_stop(self):
        cluster = SednaCluster(n_nodes=3, zk_size=3,
                               config=SednaConfig(num_vnodes=16))
        cluster.start()
        services = cluster.enable_maintenance()
        assert len(services["anti_entropy"]) == 3
        assert len(services["gc"]) == 3
        assert len(services["detector"]) == 3
        assert len(services["rebalance"]) == 1
        cluster.settle(3.0)
        cluster.disable_maintenance()
        assert all(not s.running
                   for group in services.values() for s in group)

    def test_maintenance_does_not_disturb_steady_state(self):
        cluster = SednaCluster(n_nodes=4, zk_size=3,
                               config=SednaConfig(num_vnodes=32))
        cluster.start()
        client = cluster.client()

        def seed():
            for i in range(25):
                yield from client.write_latest(f"mm{i}", f"v{i}")
            return True

        cluster.run(seed())
        services = cluster.enable_maintenance()
        cluster.settle(20.0)
        cluster.disable_maintenance()
        # Quiet cluster: nothing moved, nothing dropped, nobody repaired.
        assert all(m.keys_pulled == 0 and m.keys_pushed == 0
                   for m in services["anti_entropy"])
        assert all(g.rows_dropped == 0 for g in services["gc"])
        assert all(d.deaths_confirmed == 0 for d in services["detector"])
        assert services["rebalance"][0].moves == 0

        def verify():
            wrong = 0
            for i in range(25):
                if (yield from client.read_latest(f"mm{i}")) != f"v{i}":
                    wrong += 1
            return wrong

        assert cluster.run(verify()) == 0

    def test_crash_heals_hands_free(self):
        """The whole §III story end to end, untouched by any client:
        crash -> heartbeat expiry -> active detection -> recovery ->
        anti-entropy convergence, with zero reads."""
        cluster = SednaCluster(n_nodes=5, zk_size=3,
                               config=SednaConfig(num_vnodes=24,
                                                  lease_base=0.3),
                               zk_config=ZkConfig(session_timeout=1.0))
        cluster.start()
        client = cluster.client()

        def seed():
            for i in range(20):
                yield from client.write_latest(f"hf{i}", f"v{i}")
            return True

        cluster.run(seed())
        cluster.enable_maintenance()
        cluster.crash_node("node1")
        cluster.settle(30.0)  # no traffic at all
        cluster.disable_maintenance()

        under = [i for i in range(20)
                 if cluster.total_replicas_of(
                     FullKey.of(f"hf{i}").encoded()) < 3]
        assert under == [], f"hands-free healing left {under} degraded"
