"""Integration tests: full Sedna cluster end-to-end behaviour."""

import pytest

from repro.core.cluster import SednaCluster
from repro.core.config import SednaConfig
from repro.core.types import FullKey
from repro.storage.versioned import WriteOutcome
from repro.zk.server import ZkConfig


def small_cluster(n_nodes=4, **cfg_kwargs):
    cfg_kwargs.setdefault("num_vnodes", 32)
    cluster = SednaCluster(n_nodes=n_nodes, zk_size=3,
                           config=SednaConfig(**cfg_kwargs))
    cluster.start()
    return cluster


@pytest.fixture(scope="module")
def cluster():
    return small_cluster()


class TestWriteRead:
    def test_write_then_read_latest(self, cluster):
        client = cluster.client()

        def script():
            status = yield from client.write_latest("k1", "v1")
            value = yield from client.read_latest("k1")
            return status, value

        status, value = cluster.run(script())
        assert status == WriteOutcome.OK
        assert value == "v1"

    def test_read_missing_returns_none(self, cluster):
        client = cluster.client()

        def script():
            return (yield from client.read_latest("never-written"))

        assert cluster.run(script()) is None

    def test_overwrite_visible(self, cluster):
        client = cluster.client()

        def script():
            yield from client.write_latest("k2", "old")
            yield from client.write_latest("k2", "new")
            return (yield from client.read_latest("k2"))

        assert cluster.run(script()) == "new"

    def test_write_all_value_list(self, cluster):
        c1 = cluster.client("wa-c1")
        c2 = cluster.client("wa-c2")

        def script():
            yield from c1.write_all("shared", "from-c1")
            yield from c2.write_all("shared", "from-c2")
            return (yield from c1.read_all("shared"))

        elements = cluster.run(script())
        assert {e.source for e in elements} == {"wa-c1", "wa-c2"}

    def test_delete(self, cluster):
        client = cluster.client()

        def script():
            yield from client.write_latest("k3", "v")
            ok = yield from client.delete("k3")
            value = yield from client.read_latest("k3")
            return ok, value

        ok, value = cluster.run(script())
        assert ok and value is None

    def test_tables_isolate_keys(self, cluster):
        client = cluster.client()

        def script():
            yield from client.write_latest("k", "in-t1", table="t1")
            yield from client.write_latest("k", "in-t2", table="t2")
            v1 = yield from client.read_latest("k", table="t1")
            v2 = yield from client.read_latest("k", table="t2")
            return v1, v2

        assert cluster.run(script()) == ("in-t1", "in-t2")

    def test_latencies_recorded(self, cluster):
        client = cluster.client()

        def script():
            yield from client.write_latest("lat", "v")
            yield from client.read_latest("lat")
            return True

        cluster.run(script())
        assert len(client.write_latencies) == 1
        assert len(client.read_latencies) == 1
        assert 0 < client.write_latencies[0] < 0.1


class TestReplication:
    def test_each_key_on_n_replicas(self, cluster):
        client = cluster.client()

        def script():
            for i in range(20):
                yield from client.write_latest(f"rep-{i}", i)
            return True

        cluster.run(script())
        cluster.settle(0.5)
        for i in range(20):
            encoded = FullKey.of(f"rep-{i}").encoded()
            assert cluster.total_replicas_of(encoded) == 3, f"rep-{i}"

    def test_any_coordinator_sees_data(self, cluster):
        writer = cluster.client("w", pinned="node0")

        def write():
            yield from writer.write_latest("everywhere", "yes")
            return True

        cluster.run(write())
        for name in cluster.node_names[1:]:
            reader = cluster.client(pinned=name)

            def read():
                return (yield from reader.read_latest("everywhere"))

            assert cluster.run(read()) == "yes", name

    def test_concurrent_writers_converge(self, cluster):
        clients = [cluster.client(f"cc-{i}") for i in range(4)]

        def writer(c, value):
            status = yield from c.write_latest("contended", value)
            return status

        cluster.run_all([writer(c, f"v{i}") for i, c in enumerate(clients)])
        cluster.settle(0.5)

        reader = cluster.client()

        def read():
            return (yield from reader.read_latest("contended"))

        final = cluster.run(read())
        assert final in {"v0", "v1", "v2", "v3"}

    def test_outdated_write_rejected(self, cluster):
        client = cluster.client("stale-writer")

        def script():
            first = yield from client.write_latest("ts-key", "fresh")
            # Force a stale timestamp by rewinding the client clock.
            client._last_ts -= 10.0
            old_ts = client._last_ts + 1e-9
            args = {"key": FullKey.of("ts-key").encoded(), "value": "stale",
                    "ts": old_ts, "source": client.name, "mode": "latest"}
            result = yield from client._request("sedna.write", args)
            return first, result["status"]

        first, second = cluster.run(script())
        assert first == WriteOutcome.OK
        assert second == WriteOutcome.OUTDATED


class TestClusterShape:
    def test_balanced_assignment(self, cluster):
        counts = [len(node.cache.ring.vnodes_of(name))
                  for name, node in cluster.nodes.items()]
        assert max(counts) - min(counts) <= 1

    def test_all_nodes_running(self, cluster):
        assert all(node.running for node in cluster.nodes.values())

    def test_real_node_znodes_registered(self, cluster):
        leader = cluster.ensemble.leader()
        children = leader.tree.get_children("/sedna/real_nodes")
        assert set(children) == set(cluster.node_names)

    def test_stats_shape(self, cluster):
        stats = cluster.stats()
        assert len(stats["nodes"]) == len(cluster.node_names)
        assert stats["zk"]["leader"] is not None


class TestClientFailover:
    def test_round_robin_client_survives_dead_coordinator(self, cluster):
        """The thin client retries the next coordinator on timeout."""
        client = cluster.client("failover-client")
        cluster.crash_node("node3")
        try:
            def script():
                ok = 0
                for i in range(12):  # round-robin passes the dead node
                    value = yield from client.write_latest(f"fo{i}", i)
                    if value == "ok":
                        ok += 1
                return ok

            assert cluster.run(script()) == 12
        finally:
            cluster.restart_node("node3")
            cluster.settle(1.0)

    def test_smart_client_read_latest_element(self, cluster):
        client = cluster.smart_client("element-reader")

        def script():
            yield from client.connect()
            yield from client.write_latest("elem", "payload")
            element = yield from client.read_latest_element("elem")
            missing = yield from client.read_latest_element("no-such")
            return element, missing

        element, missing = cluster.run(script())
        assert element.value == "payload"
        assert element.source == "element-reader"
        assert missing is None
