"""Tests for the anti-entropy replica reconciliation."""

import pytest

from repro.core.antientropy import AntiEntropyManager, digest_diff
from repro.core.cluster import SednaCluster
from repro.core.config import SednaConfig
from repro.core.types import FullKey
from repro.storage.versioned import ValueElement


class TestDigestDiff:
    def test_identical_digests(self):
        d = {"k": [("s", 1.0)]}
        assert digest_diff(d, dict(d)) == ([], [])

    def test_peer_has_extra_key(self):
        pull, push = digest_diff({}, {"k": [("s", 1.0)]})
        assert pull == ["k"] and push == []

    def test_we_have_extra_key(self):
        pull, push = digest_diff({"k": [("s", 1.0)]}, {})
        assert pull == [] and push == ["k"]

    def test_peer_newer_same_source(self):
        pull, push = digest_diff({"k": [("s", 1.0)]}, {"k": [("s", 2.0)]})
        assert pull == ["k"] and push == []

    def test_divergent_sources_sync_both_ways(self):
        pull, push = digest_diff({"k": [("a", 1.0)]}, {"k": [("b", 1.0)]})
        assert pull == ["k"] and push == ["k"]

    def test_multiple_keys_sorted(self):
        pull, push = digest_diff({}, {"b": [("s", 1.0)], "a": [("s", 1.0)]})
        assert pull == ["a", "b"]


def build():
    cluster = SednaCluster(n_nodes=3, zk_size=3,
                           config=SednaConfig(num_vnodes=24))
    cluster.start()
    return cluster


def holders_of(cluster, encoded):
    return [node for node in cluster.nodes.values()
            if node.running and encoded in node.store]


class TestAntiEntropyManager:
    def _seed(self, cluster, n=15):
        client = cluster.client()

        def seed():
            for i in range(n):
                yield from client.write_latest(f"ae{i}", f"v{i}")
            return True

        cluster.run(seed())
        cluster.settle(0.2)

    def test_repairs_silently_diverged_replica(self):
        """A replica mutilated behind the cluster's back converges with
        no reads at all — pure background reconciliation."""
        cluster = build()
        self._seed(cluster)
        encoded = FullKey.of("ae3").encoded()
        victim = holders_of(cluster, encoded)[0]
        victim.store.delete(encoded)
        assert len(holders_of(cluster, encoded)) == 2

        managers = [AntiEntropyManager(node, interval=0.5, vnodes_per_pass=24)
                    for node in cluster.nodes.values()]
        for m in managers:
            m.start()
        cluster.settle(3.0)
        for m in managers:
            m.stop()
        assert len(holders_of(cluster, encoded)) == 3
        restored = victim.store.read_latest(encoded)
        assert restored is not None and restored.value == "v3"

    def test_pulls_newer_version_from_peer(self):
        cluster = build()
        self._seed(cluster)
        encoded = FullKey.of("ae5").encoded()
        fresh, stale = holders_of(cluster, encoded)[:2]
        # Plant a newer version only on one replica.
        fresh.store.merge_elements(
            encoded, [ValueElement("oracle", 1e9, "future-value")])

        manager = AntiEntropyManager(stale, interval=0.5, vnodes_per_pass=24)
        manager.start()
        cluster.settle(3.0)
        manager.stop()
        assert stale.store.read_latest(encoded).value == "future-value"
        assert manager.keys_pulled >= 1

    def test_pushes_our_newer_version_to_peer(self):
        cluster = build()
        self._seed(cluster)
        encoded = FullKey.of("ae7").encoded()
        fresh, stale = holders_of(cluster, encoded)[:2]
        fresh.store.merge_elements(
            encoded, [ValueElement("oracle", 1e9, "pushed-value")])

        manager = AntiEntropyManager(fresh, interval=0.5, vnodes_per_pass=24)
        manager.start()
        cluster.settle(3.0)
        manager.stop()
        assert stale.store.read_latest(encoded).value == "pushed-value"
        assert manager.keys_pushed >= 1

    def test_quiet_cluster_moves_nothing(self):
        cluster = build()
        self._seed(cluster)
        cluster.settle(1.0)
        managers = [AntiEntropyManager(node, interval=0.5, vnodes_per_pass=24)
                    for node in cluster.nodes.values()]
        for m in managers:
            m.start()
        cluster.settle(3.0)
        for m in managers:
            m.stop()
        assert all(m.keys_pulled == 0 and m.keys_pushed == 0
                   for m in managers), "converged replicas must not churn"
        assert all(m.passes > 0 for m in managers)

    def test_full_convergence_property(self):
        """After enough passes every replica of every key has identical
        element sets (the eventual-consistency invariant)."""
        cluster = build()
        self._seed(cluster, n=20)
        # Randomly mutilate several replicas.
        import random
        rng = random.Random(5)
        for i in range(0, 20, 3):
            encoded = FullKey.of(f"ae{i}").encoded()
            holders = holders_of(cluster, encoded)
            victim = rng.choice(holders)
            victim.store.delete(encoded)

        managers = [AntiEntropyManager(node, interval=0.4, vnodes_per_pass=24)
                    for node in cluster.nodes.values()]
        for m in managers:
            m.start()
        cluster.settle(4.0)
        for m in managers:
            m.stop()

        ring = cluster.nodes["node0"].cache.ring
        for i in range(20):
            encoded = FullKey.of(f"ae{i}").encoded()
            replicas = ring.replicas_for(ring.vnode_of(encoded), 3)
            element_sets = []
            for name in replicas:
                elements = cluster.nodes[name].store.read_all(encoded)
                element_sets.append(
                    sorted((e.source, e.timestamp, e.value)
                           for e in elements))
            assert element_sets[0] == element_sets[1] == element_sets[2], \
                f"ae{i} diverged: {element_sets}"
