"""Tests for the zero-hop SmartSednaClient (§VII)."""

import pytest

from repro.core.cluster import SednaCluster
from repro.core.config import SednaConfig
from repro.core.types import FullKey
from repro.storage.versioned import WriteOutcome


@pytest.fixture(scope="module")
def cluster():
    c = SednaCluster(n_nodes=4, zk_size=3,
                     config=SednaConfig(num_vnodes=32))
    c.start()
    return c


class TestSmartClient:
    def test_connect_then_roundtrip(self, cluster):
        client = cluster.smart_client()

        def script():
            yield from client.connect()
            status = yield from client.write_latest("sk", "sv")
            value = yield from client.read_latest("sk")
            return status, value

        assert cluster.run(script()) == (WriteOutcome.OK, "sv")

    def test_writes_reach_three_replicas(self, cluster):
        client = cluster.smart_client()

        def script():
            yield from client.connect()
            for i in range(10):
                yield from client.write_latest(f"sr{i}", i)
            return True

        cluster.run(script())
        cluster.settle(0.5)
        for i in range(10):
            encoded = FullKey.of(f"sr{i}").encoded()
            assert cluster.total_replicas_of(encoded) == 3

    def test_interoperates_with_proxy_client(self, cluster):
        smart = cluster.smart_client("interop-smart")
        proxy = cluster.client("interop-proxy")

        def script():
            yield from smart.connect()
            yield from smart.write_latest("cross", "from-smart")
            via_proxy = yield from proxy.read_latest("cross")
            yield from proxy.write_latest("cross", "from-proxy")
            via_smart = yield from smart.read_latest("cross")
            return via_proxy, via_smart

        assert cluster.run(script()) == ("from-smart", "from-proxy")

    def test_smart_is_faster_than_proxy(self, cluster):
        """The zero-hop path must beat the extra coordinator hop."""
        smart = cluster.smart_client("race-smart")
        proxy = cluster.client("race-proxy")

        def script():
            yield from smart.connect()
            for i in range(30):
                yield from smart.write_latest(f"fast{i}", i)
            for i in range(30):
                yield from proxy.write_latest(f"slow{i}", i)
            return True

        cluster.run(script())
        smart_mean = sum(smart.write_latencies) / len(smart.write_latencies)
        proxy_mean = sum(proxy.write_latencies) / len(proxy.write_latencies)
        assert smart_mean < proxy_mean

    def test_write_all_and_read_all(self, cluster):
        c1 = cluster.smart_client("swa1")
        c2 = cluster.smart_client("swa2")

        def script():
            yield from c1.connect()
            yield from c2.connect()
            yield from c1.write_all("multi", "a")
            yield from c2.write_all("multi", "b")
            return (yield from c1.read_all("multi"))

        elements = cluster.run(script())
        assert {e.source for e in elements} == {"swa1", "swa2"}

    def test_delete(self, cluster):
        client = cluster.smart_client()

        def script():
            yield from client.connect()
            yield from client.write_latest("gone", "x")
            yield from client.delete("gone")
            return (yield from client.read_latest("gone"))

        assert cluster.run(script()) is None

    def test_close_releases_session(self, cluster):
        client = cluster.smart_client("closing")

        def script():
            yield from client.connect()
            yield from client.close()
            return client.zk.session_id

        assert cluster.run(script()) is None
