"""Chaos tests: consistency invariants under network failure injection.

The paper's §III.C consistency argument (R + W > N quorum overlap plus
eventual convergence) is exercised here under adverse conditions the
evaluation never ran: message loss, partitions, and crash/restart
churn.  The invariants checked:

* **acknowledged durability** — every write acknowledged ``ok`` is
  readable afterwards (quorum overlap guarantees at least one fresh
  replica serves any R-quorum);
* **no resurrection** — a value overwritten by an acknowledged newer
  write never reappears;
* **convergence** — once the network heals and anti-entropy runs,
  every replica of every key holds identical element sets.
"""

import pytest

from repro.core.antientropy import AntiEntropyManager
from repro.core.cluster import SednaCluster
from repro.core.config import SednaConfig
from repro.core.types import FullKey
from repro.storage.versioned import WriteOutcome
from repro.zk.server import ZkConfig


def build(seed=42, **cfg):
    cfg.setdefault("num_vnodes", 32)
    cluster = SednaCluster(n_nodes=5, zk_size=3, seed=seed,
                           config=SednaConfig(**cfg),
                           zk_config=ZkConfig(session_timeout=1.0))
    cluster.start()
    return cluster


class TestMessageLoss:
    def test_acknowledged_writes_survive_loss(self):
        cluster = build()
        # 10% loss on the whole fabric (ZooKeeper included).
        loss = cluster.failures.message_loss(0.10, seed=7)
        client = cluster.client()
        acked = []

        def write_phase():
            for i in range(60):
                status = yield from client.write_latest(f"c{i}", f"v{i}")
                if status == WriteOutcome.OK:
                    acked.append(i)
            return True

        cluster.run(write_phase())
        loss.stop()
        cluster.settle(2.0)
        assert len(acked) > 30, "10% loss should not fail most writes"

        def read_phase():
            wrong = []
            for i in acked:
                value = yield from client.read_latest(f"c{i}")
                if value != f"v{i}":
                    wrong.append((i, value))
            return wrong

        wrong = cluster.run(read_phase())
        assert wrong == [], f"acknowledged writes lost: {wrong}"

    def test_heavy_loss_degrades_but_stays_safe(self):
        cluster = build()
        loss = cluster.failures.message_loss(0.35, seed=3)
        client = cluster.client()
        outcomes = {"ok": [], "failed": []}

        def write_phase():
            for i in range(40):
                status = yield from client.write_latest(f"h{i}", f"v{i}")
                (outcomes["ok"] if status == WriteOutcome.OK
                 else outcomes["failed"]).append(i)
            return True

        cluster.run(write_phase())
        loss.stop()
        cluster.settle(2.0)

        def read_phase():
            wrong = []
            for i in outcomes["ok"]:
                value = yield from client.read_latest(f"h{i}")
                if value != f"v{i}":
                    wrong.append(i)
            return wrong

        assert cluster.run(read_phase()) == []


class TestPartition:
    def test_minority_partition_rejects_then_heals(self):
        cluster = build()
        client = cluster.client(pinned="node0")

        def seed():
            status = yield from client.write_latest("island", "before")
            return status

        assert cluster.run(seed()) == WriteOutcome.OK

        # Cut node0 (our coordinator) plus node1 off from everything,
        # including the ZooKeeper ensemble.
        minority = ["node0", "node0-zk", "node1", "node1-zk"]
        everyone = ([f"node{i}" for i in range(2, 5)]
                    + [f"node{i}-zk" for i in range(2, 5)]
                    + ["zk0", "zk1", "zk2"]
                    + [client.name])
        part = cluster.failures.partition(minority, everyone)
        cluster.settle(1.0)

        majority_client = cluster.client(pinned="node3")

        def majority_write():
            return (yield from majority_client.write_latest("island",
                                                            "after"))

        # Majority side keeps accepting writes (quorum reachable among
        # the surviving replicas after lazy recovery).
        cluster.settle(4.0)

        def touch():
            return (yield from majority_client.read_latest("island"))

        cluster.run(touch())
        cluster.settle(3.0)
        status = cluster.run(majority_write())
        assert status == WriteOutcome.OK

        part.heal()
        cluster.settle(2.0)

        def read_after_heal():
            return (yield from majority_client.read_latest("island"))

        assert cluster.run(read_after_heal()) == "after"

    def test_no_resurrection_after_heal_with_antientropy(self):
        cluster = build()
        client = cluster.client(pinned="node2")

        def seed():
            yield from client.write_latest("zombie", "v1")
            return True

        cluster.run(seed())

        # Partition one replica holder away, then overwrite the key.
        encoded = FullKey.of("zombie").encoded()
        holder = next(n for n in cluster.nodes.values()
                      if encoded in n.store and n.name != "node2")
        island = [holder.name, f"{holder.name}-zk"]
        mainland = [n for n in cluster.network.endpoints
                    if n not in island]
        part = cluster.failures.partition(island, mainland)
        cluster.settle(4.0)

        def overwrite():
            return (yield from client.write_latest("zombie", "v2"))

        # May need lazy recovery of the partitioned replica first.
        cluster.run(overwrite())
        cluster.settle(3.0)

        part.heal()
        managers = [AntiEntropyManager(node, interval=0.5,
                                       vnodes_per_pass=32)
                    for node in cluster.nodes.values() if node.running]
        for m in managers:
            m.start()
        cluster.settle(4.0)
        for m in managers:
            m.stop()

        def read_everywhere():
            values = []
            for name in cluster.node_names:
                reader = cluster.client(pinned=name)
                values.append((yield from reader.read_latest("zombie")))
            return values

        values = cluster.run(read_everywhere())
        assert all(v == "v2" for v in values), (
            f"stale v1 resurrected: {values}")


class TestCrashChurn:
    def test_rolling_crashes_keep_data(self):
        cluster = build(persistence="wal")
        client = cluster.client()

        def seed():
            for i in range(30):
                yield from client.write_latest(f"r{i}", f"v{i}")
            return True

        cluster.run(seed())

        def touch_all():
            for i in range(30):
                yield from client.read_latest(f"r{i}")
            return True

        # Roll a crash through three different nodes.
        for victim in ("node1", "node3", "node0"):
            cluster.crash_node(victim)
            cluster.settle(4.0)       # session expiry
            cluster.run(touch_all())  # lazy recovery
            cluster.settle(3.0)
            cluster.restart_node(victim)
            cluster.settle(1.0)

        def verify():
            wrong = []
            for i in range(30):
                value = yield from client.read_latest(f"r{i}")
                if value != f"v{i}":
                    wrong.append((i, value))
            return wrong

        assert cluster.run(verify()) == []

    def test_replica_sets_converge_after_churn(self):
        cluster = build()
        client = cluster.client()

        def seed():
            for i in range(20):
                yield from client.write_latest(f"s{i}", i)
            return True

        cluster.run(seed())
        cluster.crash_node("node4")
        cluster.settle(4.0)

        def touch():
            for i in range(20):
                yield from client.read_latest(f"s{i}")
            return True

        cluster.run(touch())
        cluster.settle(3.0)
        cluster.run(touch())
        cluster.settle(3.0)

        managers = [AntiEntropyManager(node, interval=0.5,
                                       vnodes_per_pass=32)
                    for node in cluster.nodes.values() if node.running]
        for m in managers:
            m.start()
        cluster.settle(3.0)
        for m in managers:
            m.stop()

        ring = cluster.nodes["node0"].cache.ring
        for i in range(20):
            encoded = FullKey.of(f"s{i}").encoded()
            replicas = ring.replicas_for(ring.vnode_of(encoded), 3)
            sets = []
            for name in replicas:
                node = cluster.nodes[name]
                if not node.running:
                    continue
                sets.append(sorted(
                    (e.source, e.timestamp, e.value)
                    for e in node.store.read_all(encoded)))
            assert sets and all(s == sets[0] for s in sets), \
                f"s{i} diverged across {replicas}"
