"""Integration tests for the §III.D join protocol and mapping cache."""

import pytest

from repro.core.cache import ZkLayout
from repro.core.cluster import SednaCluster
from repro.core.config import SednaConfig
from repro.core.node import SednaNode
from repro.persistence.disk import SimDisk
from repro.storage.versioned import WriteOutcome


class TestJoinBootstrap:
    def test_join_mode_assigns_every_vnode(self):
        cluster = SednaCluster(n_nodes=3, zk_size=3,
                               config=SednaConfig(num_vnodes=24))
        cluster.start(bootstrap="join")
        ring = cluster.nodes["node0"].cache.ring
        cluster.settle(2.0)
        # Read authoritative assignment from ZooKeeper.
        leader = cluster.ensemble.leader()
        owners = []
        for v in range(24):
            data, _ = leader.tree.get(ZkLayout.vnode(v))
            owners.append(data.decode())
        assert all(o != "" for o in owners), "every vnode must find an owner"
        assert set(owners) <= set(cluster.node_names)

    def test_join_mode_roughly_balanced(self):
        cluster = SednaCluster(n_nodes=3, zk_size=3,
                               config=SednaConfig(num_vnodes=24))
        cluster.start(bootstrap="join")
        cluster.settle(2.0)
        leader = cluster.ensemble.leader()
        counts = {name: 0 for name in cluster.node_names}
        for v in range(24):
            data, _ = leader.tree.get(ZkLayout.vnode(v))
            if data.decode() in counts:
                counts[data.decode()] += 1
        # Concurrent claiming cannot be perfect, but nobody should hold
        # everything and nobody should starve badly.
        assert max(counts.values()) <= 24
        assert sum(counts.values()) == 24

    def test_join_mode_serves_requests(self):
        cluster = SednaCluster(n_nodes=3, zk_size=3,
                               config=SednaConfig(num_vnodes=24))
        cluster.start(bootstrap="join")
        client = cluster.client()

        def script():
            status = yield from client.write_latest("jk", "jv")
            value = yield from client.read_latest("jk")
            return status, value

        assert cluster.run(script()) == (WriteOutcome.OK, "jv")


class TestLateJoiner:
    def test_new_node_steals_from_overloaded(self):
        cluster = SednaCluster(n_nodes=2, zk_size=3,
                               config=SednaConfig(num_vnodes=30))
        cluster.start()
        client = cluster.client()

        def seed():
            for i in range(20):
                yield from client.write_latest(f"k{i}", i)
            return True

        cluster.run(seed())

        # A third node arrives after the fact.
        disk = SimDisk()
        newcomer = SednaNode(cluster.sim, cluster.network, "node2",
                             cluster.ensemble.names, cluster.config,
                             cluster.zk_config, disk=disk)
        cluster.nodes["node2"] = newcomer
        cluster.node_names.append("node2")
        cluster.disks["node2"] = disk
        proc = cluster.sim.process(newcomer.join())
        cluster.sim.run(until=proc)
        cluster.settle(2.0)

        taken = len(newcomer.cache.ring.vnodes_of("node2"))
        assert taken >= 30 // 3 - 2, f"newcomer only acquired {taken} vnodes"

    def test_stolen_vnode_data_transferred(self):
        cluster = SednaCluster(n_nodes=2, zk_size=3,
                               config=SednaConfig(num_vnodes=16))
        cluster.start()
        client = cluster.client()

        def seed():
            for i in range(30):
                yield from client.write_latest(f"k{i}", i)
            return True

        cluster.run(seed())

        disk = SimDisk()
        newcomer = SednaNode(cluster.sim, cluster.network, "node2",
                             cluster.ensemble.names, cluster.config,
                             cluster.zk_config, disk=disk)
        cluster.nodes["node2"] = newcomer
        cluster.node_names.append("node2")
        proc = cluster.sim.process(newcomer.join())
        cluster.sim.run(until=proc)
        cluster.settle(2.0)

        stolen = newcomer.cache.ring.vnodes_of("node2")
        with_data = [v for v in stolen if newcomer.vnode_keys.get(v)]
        keys_seeded = any(newcomer.vnode_keys.get(v) for v in stolen)
        # Some stolen vnodes may legitimately hold no keys; but if any
        # stolen vnode had data at the old owner it must have moved.
        assert newcomer.running
        if stolen and keys_seeded:
            for v in with_data:
                for key in newcomer.vnode_keys[v]:
                    assert key in newcomer.store


class TestMappingCacheSync:
    def test_lease_doubles_when_quiet(self):
        cluster = SednaCluster(n_nodes=3, zk_size=3,
                               config=SednaConfig(num_vnodes=16,
                                                  lease_base=0.5,
                                                  lease_max=4.0))
        cluster.start()
        node = cluster.nodes["node0"]
        start_lease = node.cache.lease
        cluster.settle(10.0)  # nothing changes in ZK
        assert node.cache.lease > start_lease
        assert node.cache.lease <= 4.0

    def test_lease_halves_on_churn(self):
        cluster = SednaCluster(n_nodes=4, zk_size=3,
                               config=SednaConfig(num_vnodes=16,
                                                  lease_base=2.0,
                                                  lease_min=0.25))
        cluster.start()
        node = cluster.nodes["node0"]
        cluster.settle(0.1)

        # Churn the mapping from outside (as a rebalance would).
        def churn():
            zk = cluster.ensemble.client("churner")
            yield from zk.connect()
            for round_ in range(6):
                for v in range(0, 16, 2):
                    data, stat = yield from zk.get(ZkLayout.vnode(v))
                    owner = data.decode()
                    flipped = ("node1" if owner != "node1" else "node2")
                    yield from zk.set(ZkLayout.vnode(v), flipped.encode(),
                                      version=stat["version"])
                    yield from zk.create(f"{ZkLayout.CHANGELOG}/e-",
                                         str(v).encode(), sequential=True)
                yield cluster.sim.timeout(1.0)
            return True

        cluster.run(churn())
        assert node.cache.lease < 2.0

    def test_changelog_refresh_updates_ring(self):
        cluster = SednaCluster(n_nodes=3, zk_size=3,
                               config=SednaConfig(num_vnodes=16,
                                                  lease_base=0.5))
        cluster.start()
        node = cluster.nodes["node0"]

        def reassign():
            zk = cluster.ensemble.client("admin")
            yield from zk.connect()
            data, stat = yield from zk.get(ZkLayout.vnode(5))
            yield from zk.set(ZkLayout.vnode(5), b"node1",
                              version=stat["version"])
            yield from zk.create(f"{ZkLayout.CHANGELOG}/e-", b"5",
                                 sequential=True)
            return data.decode()

        cluster.run(reassign())
        cluster.settle(3.0)  # a couple of lease periods
        assert node.cache.ring.owner(5) == "node1"

    def test_refresh_reads_only_changed_vnodes(self):
        cluster = SednaCluster(n_nodes=3, zk_size=3,
                               config=SednaConfig(num_vnodes=16,
                                                  lease_base=0.5))
        cluster.start()
        node = cluster.nodes["node0"]
        reads_after_boot = node.cache.vnode_reads
        cluster.settle(5.0)  # quiet: refreshes should read ~no vnodes
        assert node.cache.vnode_reads - reads_after_boot <= 2
