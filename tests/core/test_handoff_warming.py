"""Vnode handoff warming: freshly claimed replicas refuse reads.

A node that claims a vnode pulls the previous owner's rows, but writes
routed through still-stale mapping caches keep landing on the old
replica set for up to a lease.  Until the delayed catch-up pull runs,
the claimer answering reads could return stale data (the chaos
harness caught this as an R+W>N freshness violation under churn) — so
the replica refuses with "warming" and the coordinator waits the
window out instead of failing the read.
"""

from repro.core.cluster import SednaCluster
from repro.core.config import SednaConfig
from repro.core.types import FullKey
from repro.net.rpc import RpcRejected
from repro.zk.server import ZkConfig


def build():
    cluster = SednaCluster(n_nodes=4, zk_size=3,
                           config=SednaConfig(num_vnodes=16,
                                              lease_base=0.3),
                           zk_config=ZkConfig(session_timeout=1.0))
    cluster.start()
    return cluster


def replica_set(cluster, key):
    ring = cluster.nodes["node0"].cache.ring
    return ring.replicas_for_key(key, cluster.config.replicas)


class TestHandoffWarming:
    def test_warming_replica_refuses_reads(self):
        cluster = build()
        client = cluster.smart_client("c1")
        cluster.run(client.connect())
        key = FullKey.of("wk").encoded()
        vnode_id, replicas = replica_set(cluster, key)
        cluster.run(client.coordinator.coordinate_write(
            {"key": key, "value": "v", "ts": 1.0, "source": "c1",
             "mode": "latest"}))
        holder = cluster.nodes[replicas[0]]
        holder._status(vnode_id).warming = True

        def probe():
            try:
                yield from client.rpc.call(
                    holder.name, "replica.read",
                    {"vnode": vnode_id, "key": key}, timeout=1.0)
            except RpcRejected as rej:
                return str(rej)
            return "answered"

        assert "warming" in cluster.run(probe())

    def test_coordinator_waits_out_warming(self):
        """Even with a read quorum blocked by warming replicas, the
        read returns the correct value once the window clears."""
        cluster = build()
        client = cluster.smart_client("c1")
        cluster.run(client.connect())
        key = FullKey.of("wk2").encoded()
        vnode_id, replicas = replica_set(cluster, key)
        cluster.run(client.coordinator.coordinate_write(
            {"key": key, "value": "fresh", "ts": 2.0, "source": "c1",
             "mode": "latest"}))
        # Block a full read quorum: all but one replica warming.
        statuses = [cluster.nodes[r]._status(vnode_id)
                    for r in replicas[:-1]]
        for status in statuses:
            status.warming = True

        def clearer():
            yield cluster.sim.timeout(0.8)
            for status in statuses:
                status.warming = False
            return True

        def reader():
            t0 = cluster.sim.now
            result = yield from client.coordinator.coordinate_read(
                {"key": key, "mode": "latest"})
            return result, cluster.sim.now - t0

        results = cluster.run_all([clearer(), reader()])
        result, elapsed = results[1]
        assert result["found"] and result["value"] == "fresh"
        assert elapsed >= 0.8, "read must have waited for the handoff"

    def test_warming_persists_until_catchup_succeeds(self):
        """A predecessor that crashed mid-churn must not end warming.

        The delayed catch-up used to ignore its own failures: the pull
        from the dead predecessor timed out, the digest round swallowed
        its timeouts too, and a ``finally`` cleared ``warming`` anyway —
        silently re-opening the stale-read window.  Now the flag only
        clears once the pull succeeds or a digest-sync reaches *every*
        current replica (bounded retries before availability wins).
        """
        cluster = build()
        client = cluster.smart_client("c1")
        cluster.run(client.connect())
        key = FullKey.of("wk4").encoded()
        vnode_id, replicas = replica_set(cluster, key)
        cluster.run(client.coordinator.coordinate_write(
            {"key": key, "value": "acked", "ts": 4.0, "source": "c1",
             "mode": "latest"}))

        claimer = cluster.nodes[
            (set(cluster.nodes) - set(replicas)).pop()]
        predecessor = replicas[0]
        cluster.crash_node(predecessor)

        status = claimer._status(vnode_id)
        status.warming = True
        cluster.sim.process(
            claimer._finish_handoff(vnode_id, predecessor, status),
            name="handoff-under-test")

        # Past the old unconditional clear point (~lease*2 + pull and
        # digest timeouts): the catch-up cannot have completed — the
        # predecessor is down and unpullable, and the digest round
        # cannot reach it either — so reads must still be refused.
        cluster.settle(4.5)
        assert status.warming, (
            "warming cleared although the catch-up never succeeded")

        # Once the predecessor is back a retry completes the sync.
        cluster.restart_node(predecessor)
        cluster.settle(8.0)
        assert not status.warming
        assert claimer.store.read_all(key), (
            "catch-up ended without the acked value")

    def test_writes_accepted_while_warming(self):
        cluster = build()
        client = cluster.smart_client("c1")
        cluster.run(client.connect())
        key = FullKey.of("wk3").encoded()
        vnode_id, replicas = replica_set(cluster, key)
        for name in replicas:
            cluster.nodes[name]._status(vnode_id).warming = True
        result = cluster.run(client.coordinator.coordinate_write(
            {"key": key, "value": "v", "ts": 3.0, "source": "c1",
             "mode": "latest"}))
        assert result["status"] == "ok"
