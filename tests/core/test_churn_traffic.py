"""Membership churn while client traffic is live.

The join protocol moves vnodes (with data) while the cluster serves;
recovery rewrites mappings while coordinators race it.  These tests
interleave all of it and check nothing acknowledged is ever lost.
"""

import pytest

from repro.core.cluster import SednaCluster
from repro.core.config import SednaConfig
from repro.core.node import SednaNode
from repro.persistence.disk import SimDisk
from repro.storage.versioned import WriteOutcome
from repro.zk.server import ZkConfig


def build(n_nodes=4):
    cluster = SednaCluster(n_nodes=n_nodes, zk_size=3,
                           config=SednaConfig(num_vnodes=32,
                                              lease_base=0.3),
                           zk_config=ZkConfig(session_timeout=1.0))
    cluster.start()
    return cluster


class TestJoinDuringTraffic:
    def test_writes_continue_while_node_joins(self):
        cluster = build()
        client = cluster.client()
        acked = []
        join_done = {}

        def writer():
            for i in range(80):
                status = yield from client.write_latest(f"jt{i}", f"v{i}")
                if status == WriteOutcome.OK:
                    acked.append(i)
                yield cluster.sim.timeout(0.05)
            return True

        def joiner():
            yield cluster.sim.timeout(1.0)  # join mid-stream
            disk = SimDisk()
            newcomer = SednaNode(cluster.sim, cluster.network, "node4",
                                 cluster.ensemble.names, cluster.config,
                                 cluster.zk_config, disk=disk)
            cluster.nodes["node4"] = newcomer
            cluster.node_names.append("node4")
            yield from newcomer.join()
            join_done["at"] = cluster.sim.now
            return True

        cluster.run_all([writer(), joiner()])
        cluster.settle(3.0)
        assert "at" in join_done
        assert len(acked) >= 75, f"only {len(acked)} of 80 acked"

        def verify():
            wrong = []
            for i in acked:
                value = yield from client.read_latest(f"jt{i}")
                if value != f"v{i}":
                    wrong.append(i)
            return wrong

        assert cluster.run(verify()) == []

    def test_crash_during_traffic_no_acked_loss(self):
        cluster = build(n_nodes=5)
        client = cluster.client()
        acked = []

        def writer():
            for i in range(100):
                status = yield from client.write_latest(f"ct{i}", f"v{i}")
                if status == WriteOutcome.OK:
                    acked.append(i)
                yield cluster.sim.timeout(0.04)
            return True

        def crasher():
            yield cluster.sim.timeout(1.5)
            cluster.crash_node("node2")
            return True

        cluster.run_all([writer(), crasher()])
        cluster.settle(4.0)

        def verify():
            wrong = []
            for i in acked:
                value = yield from client.read_latest(f"ct{i}")
                if value != f"v{i}":
                    wrong.append((i, value))
            return wrong

        wrong = cluster.run(verify())
        assert wrong == [], f"acked writes lost across crash: {wrong}"

    def test_crash_and_rejoin_during_traffic(self):
        cluster = build(n_nodes=5)
        client = cluster.client()
        acked = []

        def writer():
            for i in range(120):
                status = yield from client.write_latest(f"rr{i}", f"v{i}")
                if status == WriteOutcome.OK:
                    acked.append(i)
                yield cluster.sim.timeout(0.05)
            return True

        def churner():
            yield cluster.sim.timeout(1.0)
            cluster.crash_node("node1")
            yield cluster.sim.timeout(3.0)  # past session expiry
            yield from cluster.nodes["node1"].restart()
            return True

        cluster.run_all([writer(), churner()])
        cluster.settle(4.0)
        assert cluster.nodes["node1"].running

        def verify():
            wrong = []
            for i in acked:
                value = yield from client.read_latest(f"rr{i}")
                if value != f"v{i}":
                    wrong.append(i)
            return wrong

        assert cluster.run(verify()) == []
