"""Tests for the orphan-replica garbage collector."""

import pytest

from repro.core.cache import ZkLayout
from repro.core.cluster import SednaCluster
from repro.core.config import SednaConfig
from repro.core.gc import GarbageCollector
from repro.core.node import SednaNode
from repro.core.types import FullKey
from repro.persistence.disk import SimDisk


def cluster_with_newcomer(n_keys=40):
    """2-node cluster + data, then a third node joins and steals vnodes,
    leaving orphaned rows on the original owners."""
    cluster = SednaCluster(n_nodes=2, zk_size=3,
                           config=SednaConfig(num_vnodes=18, lease_base=0.5))
    cluster.start()
    client = cluster.client()

    def seed():
        for i in range(n_keys):
            yield from client.write_latest(f"g{i}", f"v{i}")
        return True

    cluster.run(seed())
    disk = SimDisk()
    newcomer = SednaNode(cluster.sim, cluster.network, "node2",
                         cluster.ensemble.names, cluster.config,
                         cluster.zk_config, disk=disk)
    cluster.nodes["node2"] = newcomer
    cluster.node_names.append("node2")
    proc = cluster.sim.process(newcomer.join())
    cluster.sim.run(until=proc)
    cluster.settle(3.0)  # leases pick up the new mapping
    return cluster, client, n_keys


class TestGarbageCollector:
    def test_drops_orphans_only(self):
        cluster, client, n_keys = cluster_with_newcomer()
        node0 = cluster.nodes["node0"]
        orphans_before = GarbageCollector(node0)._orphaned_vnodes()
        # With only 2 original nodes and N=3, every vnode replicates on
        # both of them; after node2 takes over some vnodes, original
        # nodes may STILL be in those replica sets (3 nodes = N), so
        # orphans exist only if replicas < cluster size.  Force some:
        # shrink the replica factor view by checking the invariant
        # instead — GC must never drop a row its node still replicates.
        gc = GarbageCollector(node0, interval=0.5, vnodes_per_pass=18)
        gc.start()
        cluster.settle(3.0)
        gc.stop()
        ring = node0.cache.ring
        for vnode_id, keys in node0.vnode_keys.items():
            if keys:
                assert node0.name in ring.replicas_for(vnode_id, 3) or \
                    not keys, "live replica data must remain"

        def verify():
            wrong = 0
            for i in range(n_keys):
                value = yield from client.read_latest(f"g{i}")
                if value != f"v{i}":
                    wrong += 1
            return wrong

        assert cluster.run(verify()) == 0

    def test_collects_after_ownership_moves_away(self):
        """5-node cluster: move a vnode's whole neighbourhood away from
        one holder and watch GC reclaim its rows."""
        cluster = SednaCluster(n_nodes=5, zk_size=3,
                               config=SednaConfig(num_vnodes=20,
                                                  lease_base=0.3))
        cluster.start()
        client = cluster.client()

        def seed():
            for i in range(50):
                yield from client.write_latest(f"m{i}", f"v{i}")
            return True

        cluster.run(seed())
        node0 = cluster.nodes["node0"]
        rows_before = len(node0.store)
        assert rows_before > 0

        # Admin: take every vnode away from node0.
        def strip():
            zk = cluster.ensemble.client("admin")
            yield from zk.connect()
            for v in range(20):
                data, stat = yield from zk.get(ZkLayout.vnode(v))
                if data.decode() == "node0":
                    new_owner = f"node{1 + v % 4}"
                    yield from zk.set(ZkLayout.vnode(v), new_owner.encode(),
                                      version=stat["version"])
                    yield from zk.create(f"{ZkLayout.CHANGELOG}/e-",
                                         str(v).encode(), sequential=True)
            return True

        cluster.run(strip())
        cluster.settle(3.0)  # caches resync

        gc = GarbageCollector(node0, interval=0.5, vnodes_per_pass=20)
        gc.start()
        cluster.settle(5.0)
        gc.stop()
        assert len(node0.store) < rows_before
        assert gc.rows_dropped > 0

        def verify():
            wrong = 0
            for i in range(50):
                value = yield from client.read_latest(f"m{i}")
                if value != f"v{i}":
                    wrong += 1
            return wrong

        assert cluster.run(verify()) == 0, \
            "GC must push before dropping: no data loss"

    def test_gc_pushes_unique_versions_before_dropping(self):
        """If the orphaned holder has the ONLY up-to-date copy, GC must
        hand it to the new replica set, not destroy it."""
        cluster = SednaCluster(n_nodes=4, zk_size=3,
                               config=SednaConfig(num_vnodes=16,
                                                  lease_base=0.3))
        cluster.start()
        client = cluster.client()

        def seed():
            yield from client.write_latest("precious", "unique")
            return True

        cluster.run(seed())
        node_map = cluster.nodes
        encoded = FullKey.of("precious").encoded()
        holder = next(n for n in node_map.values() if encoded in n.store)
        others = [n for n in node_map.values()
                  if n is not holder and encoded in n.store]
        # Delete the copies everywhere else (silent divergence).
        for other in others:
            other.store.delete(encoded)

        # Move the key's vnode ownership away from the holder.
        vnode = holder.cache.ring.vnode_of(encoded)

        def strip():
            zk = cluster.ensemble.client("admin")
            yield from zk.connect()
            for v, owner in holder.cache.ring.walk_positions(vnode, 3):
                if owner == holder.name:
                    new_owner = next(n.name for n in node_map.values()
                                     if n.name != holder.name)
                    data, stat = yield from zk.get(ZkLayout.vnode(v))
                    yield from zk.set(ZkLayout.vnode(v), new_owner.encode(),
                                      version=stat["version"])
                    yield from zk.create(f"{ZkLayout.CHANGELOG}/e-",
                                         str(v).encode(), sequential=True)
            return True

        cluster.run(strip())
        cluster.settle(3.0)

        gc = GarbageCollector(holder, interval=0.5, vnodes_per_pass=16)
        gc.start()
        cluster.settle(5.0)
        gc.stop()

        def read():
            return (yield from client.read_latest("precious"))

        assert cluster.run(read()) == "unique"

    def test_quiet_on_stable_cluster(self):
        cluster = SednaCluster(n_nodes=3, zk_size=3,
                               config=SednaConfig(num_vnodes=16))
        cluster.start()
        client = cluster.client()

        def seed():
            for i in range(20):
                yield from client.write_latest(f"q{i}", i)
            return True

        cluster.run(seed())
        gcs = [GarbageCollector(node, interval=0.5, vnodes_per_pass=16)
               for node in cluster.nodes.values()]
        for gc in gcs:
            gc.start()
        cluster.settle(3.0)
        for gc in gcs:
            gc.stop()
        assert all(gc.rows_dropped == 0 for gc in gcs)
