"""Unit tests for the measurement helpers."""

import pytest

from repro.core.stats import LatencySeries, percentile, summarize


class TestPercentile:
    def test_single_value(self):
        assert percentile([5.0], 99) == 5.0

    def test_median_odd(self):
        assert percentile([1, 2, 3], 50) == 2

    def test_median_interpolated(self):
        assert percentile([1, 2, 3, 4], 50) == 2.5

    def test_extremes(self):
        data = list(range(101))
        assert percentile(data, 0) == 0
        assert percentile(data, 100) == 100

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_order_independent(self):
        assert percentile([3, 1, 2], 50) == percentile([1, 2, 3], 50)

    def test_two_elements_interpolates(self):
        assert percentile([10.0, 20.0], 50) == pytest.approx(15.0)
        assert percentile([10.0, 20.0], 95) == pytest.approx(19.5)
        assert percentile([10.0, 20.0], 0) == 10.0
        assert percentile([10.0, 20.0], 100) == 20.0


class TestSummarize:
    def test_empty(self):
        assert summarize([]) == {"count": 0}

    def test_fields(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s["count"] == 3
        assert s["mean"] == pytest.approx(2.0)
        assert s["min"] == 1.0 and s["max"] == 3.0
        assert s["total"] == pytest.approx(6.0)

    def test_generator_input(self):
        s = summarize(x / 10 for x in range(1, 4))
        assert s["count"] == 3
        assert s["total"] == pytest.approx(0.6)

    def test_singleton(self):
        s = summarize([0.25])
        assert s["count"] == 1
        assert s["mean"] == s["min"] == s["max"] == 0.25
        assert s["p50"] == s["p95"] == s["p99"] == 0.25


class TestLatencySeries:
    def test_accumulates_ms(self):
        series = LatencySeries("w")
        for _ in range(10):
            series.record(0.001)
        assert series.total_ms == pytest.approx(10.0)
        assert series.count == 10

    def test_sampling_every(self):
        series = LatencySeries("w")
        for _ in range(2500):
            series.record(0.001, every=1000)
        assert [n for n, _ in series.points] == [1000, 2000]
        series.finish()
        assert series.points[-1][0] == 2500

    def test_finish_idempotent_at_boundary(self):
        series = LatencySeries("w")
        for _ in range(1000):
            series.record(0.001, every=1000)
        series.finish()
        assert [n for n, _ in series.points] == [1000]

    def test_finish_empty_is_noop(self):
        series = LatencySeries("w")
        series.finish()
        series.finish()
        assert series.points == []
        assert series.count == 0

    def test_finish_flushes_short_tail(self):
        series = LatencySeries("w")
        for _ in range(7):
            series.record(0.002, every=1000)
        assert series.points == []  # below the first sample boundary
        series.finish()
        assert series.points == [(7, pytest.approx(14.0))]
        series.finish()  # repeated finish adds nothing
        assert len(series.points) == 1

    def test_record_rejects_bad_every(self):
        series = LatencySeries("w")
        with pytest.raises(ValueError):
            series.record(0.001, every=0)
        with pytest.raises(ValueError):
            series.record(0.001, every=-5)
        assert series.count == 0
