"""Invariant tests for the jump-consistent-hash placement backend.

Jump consistent hash (Lamping & Veach) earns its place only if it
actually delivers the two properties the ISSUE names: *monotonic
minimal remapping* when the cluster grows, and key spread no worse
than the ketama baseline.  These tests pin both, plus the pure-function
determinism every bootstrapping node relies on.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.ketama import KetamaRing
from repro.core.config import SednaConfig
from repro.core.hashring import Ring, build_assignment, jump_hash


def node_names(n):
    return [f"n{i}" for i in range(n)]


class TestJumpHashFunction:
    def test_range(self):
        for key in range(1000):
            assert 0 <= jump_hash(key * 0x9E3779B97F4A7C15, 7) < 7

    def test_single_bucket(self):
        assert jump_hash(123456789, 1) == 0

    def test_rejects_no_buckets(self):
        with pytest.raises(ValueError):
            jump_hash(1, 0)

    def test_deterministic(self):
        assert [jump_hash(k, 11) for k in range(64)] \
            == [jump_hash(k, 11) for k in range(64)]

    @given(key=st.integers(min_value=0, max_value=(1 << 64) - 1),
           buckets=st.integers(min_value=1, max_value=200))
    @settings(max_examples=200)
    def test_monotone_under_growth(self, key, buckets):
        """The defining jump-hash property: adding bucket n either
        leaves the key in place or moves it to the NEW bucket — never
        shuffles it between existing ones."""
        before = jump_hash(key, buckets)
        after = jump_hash(key, buckets + 1)
        assert after == before or after == buckets


class TestBuildAssignment:
    def test_modulo_matches_historical_striping(self):
        nodes = node_names(3)
        assert build_assignment(8, nodes) \
            == [nodes[v % 3] for v in range(8)]

    def test_unknown_placement_rejected(self):
        with pytest.raises(ValueError, match="unknown placement"):
            build_assignment(8, node_names(3), "ketama")

    def test_needs_nodes(self):
        with pytest.raises(ValueError):
            build_assignment(8, [], "jump")

    def test_jump_is_deterministic(self):
        a = build_assignment(512, node_names(9), "jump")
        b = build_assignment(512, node_names(9), "jump")
        assert a == b

    def test_jump_covers_every_node(self):
        owners = set(build_assignment(1024, node_names(10), "jump"))
        assert owners == set(node_names(10))

    def test_jump_minimal_remap_on_add(self):
        """Growing n -> n+1 moves only vnodes that land on the new node
        (monotone), and about 1/(n+1) of them (minimal)."""
        num_vnodes = 4096
        for n in (3, 9, 31):
            before = build_assignment(num_vnodes, node_names(n), "jump")
            after = build_assignment(num_vnodes, node_names(n + 1), "jump")
            new_node = f"n{n}"
            moved = 0
            for old, new in zip(before, after):
                if new != old:
                    assert new == new_node, \
                        "jump placement shuffled between existing nodes"
                    moved += 1
            expected = num_vnodes / (n + 1)
            assert expected * 0.5 <= moved <= expected * 1.5, \
                f"n={n}: moved {moved}, expected ~{expected:.0f}"

    def test_jump_remove_last_is_exact_inverse(self):
        """Shrinking by dropping the highest node restores the smaller
        placement exactly — the monotonicity property read backwards."""
        small = build_assignment(2048, node_names(7), "jump")
        grown = build_assignment(2048, node_names(8), "jump")
        shrunk = build_assignment(2048, node_names(7), "jump")
        assert shrunk == small
        assert sum(a != b for a, b in zip(small, grown)) > 0

    def test_modulo_remap_on_add_is_catastrophic(self):
        """The contrast motivating the backend: striping reshuffles
        nearly everything when the node count changes."""
        num_vnodes = 4096
        before = build_assignment(num_vnodes, node_names(9), "modulo")
        after = build_assignment(num_vnodes, node_names(10), "modulo")
        moved = sum(a != b for a, b in zip(before, after))
        assert moved > num_vnodes * 0.5

    @given(n=st.integers(min_value=1, max_value=40),
           num_vnodes=st.integers(min_value=1, max_value=1024))
    @settings(max_examples=60)
    def test_jump_monotone_property(self, n, num_vnodes):
        before = build_assignment(num_vnodes, node_names(n), "jump")
        after = build_assignment(num_vnodes, node_names(n + 1), "jump")
        for old, new in zip(before, after):
            assert new == old or new == f"n{n}"


class TestSpreadVsKetama:
    def test_key_spread_no_worse_than_ketama_10k_keys(self):
        """10k keys through vnode-mod + jump placement spread at least
        as evenly across 10 nodes as the same keys through the ketama
        continuum (100 points/server) — the placement-quality bar.

        Ring sized at the paper's ~100+ vnodes per node scale; with a
        coarse ring the key→vnode hash variance dominates and neither
        side's placement matters."""
        nodes = node_names(10)
        num_vnodes = 4096
        ring = Ring(num_vnodes)
        ring.load(build_assignment(num_vnodes, nodes, "jump"))
        ketama = KetamaRing(nodes, points_per_server=100)

        jump_load = dict.fromkeys(nodes, 0)
        ketama_load = dict.fromkeys(nodes, 0)
        for i in range(10_000):
            key = f"bench-key-{i:06d}"
            jump_load[ring.owner(ring.vnode_of(key))] += 1
            ketama_load[ketama.node_for(key.encode())] += 1

        def imbalance(load):
            return max(load.values()) / (min(load.values()) or 1)

        assert imbalance(jump_load) <= imbalance(ketama_load), \
            (jump_load, ketama_load)

    def test_vnode_count_spread_beats_ketama_points(self):
        """Per-node vnode counts under jump stay within a tight band of
        the ideal num_vnodes/n."""
        nodes = node_names(10)
        counts = dict.fromkeys(nodes, 0)
        for owner in build_assignment(4096, nodes, "jump"):
            counts[owner] += 1
        ideal = 4096 / 10
        for owner, got in counts.items():
            assert 0.75 * ideal <= got <= 1.25 * ideal, counts


class TestConfigPlumbing:
    def test_config_accepts_jump(self):
        assert SednaConfig(placement="jump").placement == "jump"

    def test_config_default_is_modulo(self):
        assert SednaConfig().placement == "modulo"

    def test_config_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown placement"):
            SednaConfig(placement="rendezvous")


class TestClusterBootstrap:
    def test_cluster_boots_and_serves_with_jump_placement(self):
        from repro.core.cluster import SednaCluster

        cluster = SednaCluster(
            n_nodes=3, zk_size=1,
            config=SednaConfig(num_vnodes=12, placement="jump"), seed=7)
        cluster.start()
        ring = cluster.nodes["node0"].cache.ring
        assert ring.snapshot() == build_assignment(
            12, cluster.node_names, "jump")

        client = cluster.client()
        sim = cluster.sim

        def workload():
            status = yield from client.write_latest("k1", "v1")
            value = yield from client.read_latest("k1")
            return status, value

        proc = sim.process(workload())
        status, value = sim.run(until=proc)
        assert status == "ok"
        assert value == "v1"
