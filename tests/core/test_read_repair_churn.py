"""Read-repair under churn: the membership-churn wait path and
late-responder repair of ``QuorumCoordinator.coordinate_read``.

Covers the paths that only fire when replica responses straddle the
quorum decision:

* an apparent miss met by the first R (empty) replies waits out the
  remaining replicas before concluding — a recent write may live only
  on a replica whose reply is still in flight after the mapping moved;
* laggards answering *after* the quorum are checked and repaired
  fire-and-forget;
* a read whose first fan-out is cut off by a partition that heals
  mid-operation retries after invalidation and repairs the stale
  replica it finds.
"""

import pytest

from repro.core.cache import MappingCache
from repro.core.cluster import SednaCluster
from repro.core.config import SednaConfig
from repro.core.coordinator import QuorumCoordinator
from repro.core.hashring import Ring
from repro.core.types import FullKey
from repro.net.latency import NoLatency
from repro.net.rpc import RpcNode, RpcRejected
from repro.net.simulator import Simulator
from repro.net.transport import Network
from repro.storage.versioned import ValueElement, WriteOutcome
from repro.zk.server import ZkConfig

from .test_coordinator_unit import FakeCache, Replica, drive


@pytest.fixture
def world():
    sim = Simulator()
    network = Network(sim, latency=NoLatency())
    config = SednaConfig(num_vnodes=4, request_timeout=0.5)
    replicas = {name: Replica(sim, network, name)
                for name in ("r0", "r1", "r2")}
    cache = FakeCache(config, ["r0", "r1", "r2"])
    coord_rpc = RpcNode(network, "coordinator")
    suspects = []
    coordinator = QuorumCoordinator(
        sim, coord_rpc, cache, config,
        on_suspect=lambda name, vnode: suspects.append(name))
    return sim, coordinator, replicas, cache, suspects


class TestChurnWaitPath:
    def test_late_responder_saves_an_apparent_miss(self, world):
        """Two fast empty replies meet R; the one replica that actually
        holds the fresh write answers late — the coordinator must wait
        it out instead of answering not-found."""
        sim, coordinator, replicas, _cache, _s = world
        replicas["r2"].elements = [ValueElement("w", 5.0, "survivor")]
        replicas["r2"].delay = 0.2  # inside the wait window

        result = drive(sim, coordinator.coordinate_read({"key": "k"}))
        assert result["found"] is True
        assert result["value"] == "survivor"
        assert set(result["responders"]) == {"r0", "r1", "r2"}

    def test_wait_path_repairs_the_empty_repliers(self, world):
        sim, coordinator, replicas, _cache, _s = world
        replicas["r2"].elements = [ValueElement("w", 5.0, "survivor")]
        replicas["r2"].delay = 0.2

        drive(sim, coordinator.coordinate_read({"key": "k"}))
        sim.run(until=sim.now + 1.0)
        repaired = {name for name, r in replicas.items() if r.repairs}
        assert {"r0", "r1"} <= repaired
        payloads = [tuple(e) for e in replicas["r0"].repairs[0]["elements"]]
        assert ("w", 5.0, "survivor") in payloads

    def test_wait_path_gives_up_at_the_deadline(self, world):
        """A silent third replica cannot stall the miss forever."""
        sim, coordinator, replicas, _cache, _s = world
        replicas["r2"].elements = [ValueElement("w", 5.0, "survivor")]
        replicas["r2"].behaviour = "silent"

        def go():
            result = yield from coordinator.coordinate_read({"key": "k"})
            return result, sim.now

        result, when = drive(sim, go())
        assert result["found"] is False
        assert when <= 1.5, "bounded by the request timeout"

    def test_late_stale_responder_repaired_fire_and_forget(self, world):
        """A laggard that answers after the quorum with a stale (empty)
        row gets the merged freshest elements pushed to it."""
        sim, coordinator, replicas, _cache, _s = world
        fresh = [ValueElement("w", 3.0, "new")]
        replicas["r0"].elements = fresh
        replicas["r1"].elements = fresh
        replicas["r2"].elements = []      # freshly recovered, empty row
        replicas["r2"].delay = 0.3        # answers after the quorum

        result = drive(sim, coordinator.coordinate_read({"key": "k"}))
        assert result["value"] == "new"
        sim.run(until=sim.now + 1.0)
        assert len(replicas["r2"].repairs) == 1
        payloads = [tuple(e) for e in replicas["r2"].repairs[0]["elements"]]
        assert ("w", 3.0, "new") in payloads


class TestPartitionHealMidOperation:
    def build(self):
        cluster = SednaCluster(
            n_nodes=5, zk_size=3, seed=42,
            config=SednaConfig(num_vnodes=32),
            zk_config=ZkConfig(session_timeout=1.0))
        cluster.start()
        return cluster

    def test_read_retries_after_heal_and_repairs_stale_replica(self):
        """First fan-out is cut off by an active Partition; it heals
        mid-operation (inside the request-timeout window), the
        invalidate-and-retry pass succeeds and read repair converges
        the replica that missed the overwrite."""
        cluster = self.build()
        sim = cluster.sim
        client = cluster.client(pinned="node0")
        encoded = FullKey.of("healme").encoded()

        def seed():
            status = yield from client.write_latest("healme", "v1")
            return status

        assert cluster.run(seed()) == WriteOutcome.OK
        cluster.settle(1.0)

        ring = cluster.nodes["node0"].cache.ring
        vnode_id, replicas = ring.replicas_for_key(encoded, 3)
        assert len(replicas) == 3

        # Overwrite while one replica holder is partitioned away: it
        # stays stale on v1.
        stale = replicas[-1]
        island = [stale, f"{stale}-zk"]
        mainland = [n for n in cluster.network.endpoints if n not in island]
        part1 = cluster.failures.partition(island, mainland)

        def overwrite():
            return (yield from client.write_latest("healme", "v2"))

        assert cluster.run(overwrite()) == WriteOutcome.OK
        part1.heal()

        # Now cut the two *fresh* replicas away from a smart reader and
        # heal mid-operation: the first fan-out times out against the
        # majority, the retry (post-heal) must find v2 and repair the
        # stale replica.
        fresh = [r for r in replicas if r != stale]
        island2 = [n for r in fresh for n in (r, f"{r}-zk")]
        mainland2 = [n for n in cluster.network.endpoints
                     if n not in island2]

        reader = cluster.smart_client("healer")

        def connect():
            yield from reader.connect()
            return True

        cluster.run(connect())

        part2 = cluster.failures.partition(island2, mainland2)
        # Heal inside the first fan-out's request-timeout window.
        sim.schedule_callback(0.2, part2.heal)

        def read_during_heal():
            value = yield from reader.read_latest("healme")
            return value

        value = cluster.run(read_during_heal())
        assert value == "v2"
        assert reader.coordinator.read_repairs >= 1

        cluster.settle(2.0)
        stale_node = cluster.nodes[stale]
        latest = stale_node.store.read_latest(encoded)
        assert latest is not None and latest.value == "v2", (
            "read repair must converge the replica that missed v2")
