"""Integration tests for the data-balance manager (§III.A/B)."""

import pytest

from repro.core.cache import ZkLayout
from repro.core.cluster import SednaCluster
from repro.core.config import SednaConfig
from repro.core.rebalance import Rebalancer
from repro.zk.server import ZkConfig


def build_skewed(num_vnodes=24, n_nodes=3):
    """A cluster whose mapping is deliberately piled onto node0."""
    cluster = SednaCluster(n_nodes=n_nodes, zk_size=3,
                           config=SednaConfig(
                               num_vnodes=num_vnodes,
                               imbalance_push_interval=0.5,
                               lease_base=0.5),
                           zk_config=ZkConfig(session_timeout=1.0))
    cluster.start()

    def skew():
        zk = cluster.ensemble.client("admin")
        yield from zk.connect()
        for v in range(num_vnodes):
            data, stat = yield from zk.get(ZkLayout.vnode(v))
            # Pile node1's share onto node0; node2 keeps its third.
            if data.decode() == "node1":
                yield from zk.set(ZkLayout.vnode(v), b"node0",
                                  version=stat["version"])
                yield from zk.create(f"{ZkLayout.CHANGELOG}/e-",
                                     str(v).encode(), sequential=True)
        return True

    cluster.run(skew())
    cluster.settle(3.0)  # caches pick up the skew; imbalance rows pushed
    return cluster


def authoritative_counts(cluster):
    leader = cluster.ensemble.leader()
    counts = {name: 0 for name, node in cluster.nodes.items()
              if node.running}
    for v in range(cluster.config.num_vnodes):
        data, _ = leader.tree.get(ZkLayout.vnode(v))
        owner = data.decode()
        counts[owner] = counts.get(owner, 0) + 1
    return counts


class TestRebalancer:
    def test_reduces_spread(self):
        cluster = build_skewed()
        before = authoritative_counts(cluster)
        assert max(before.values()) - min(before.values()) > 4, \
            "test setup must be skewed"
        rebalancer = Rebalancer(cluster.nodes["node1"], interval=1.0,
                                threshold=1, max_moves_per_pass=4)
        rebalancer.start()
        cluster.settle(30.0)
        rebalancer.stop()
        after = authoritative_counts(cluster)
        spread = max(after.values()) - min(after.values())
        assert spread <= 3, f"spread still {spread}: {after}"
        assert rebalancer.moves > 0

    def test_moves_are_changelogged(self):
        cluster = build_skewed()
        leader = cluster.ensemble.leader()
        entries_before = len(leader.tree.get_children(ZkLayout.CHANGELOG))
        rebalancer = Rebalancer(cluster.nodes["node2"], interval=1.0,
                                threshold=1)
        rebalancer.start()
        cluster.settle(15.0)
        rebalancer.stop()
        entries_after = len(leader.tree.get_children(ZkLayout.CHANGELOG))
        assert entries_after - entries_before >= rebalancer.moves

    def test_data_still_readable_after_rebalance(self):
        cluster = build_skewed()
        client = cluster.client()

        def seed():
            for i in range(30):
                yield from client.write_latest(f"rb{i}", i)
            return True

        cluster.run(seed())
        rebalancer = Rebalancer(cluster.nodes["node1"], interval=1.0,
                                threshold=1)
        rebalancer.start()
        cluster.settle(25.0)
        rebalancer.stop()

        def read_back():
            values = []
            for i in range(30):
                values.append((yield from client.read_latest(f"rb{i}")))
            return values

        assert cluster.run(read_back()) == list(range(30))

    def test_balanced_cluster_untouched(self):
        cluster = SednaCluster(n_nodes=3, zk_size=3,
                               config=SednaConfig(
                                   num_vnodes=24,
                                   imbalance_push_interval=0.5))
        cluster.start()
        cluster.settle(2.0)
        rebalancer = Rebalancer(cluster.nodes["node0"], interval=1.0,
                                threshold=1)
        rebalancer.start()
        cluster.settle(10.0)
        rebalancer.stop()
        assert rebalancer.moves == 0
        assert rebalancer.passes > 0

    def test_dead_node_rows_pruned(self):
        cluster = SednaCluster(n_nodes=3, zk_size=3,
                               config=SednaConfig(
                                   num_vnodes=24,
                                   imbalance_push_interval=0.5),
                               zk_config=ZkConfig(session_timeout=1.0))
        cluster.start()
        cluster.settle(2.0)  # imbalance rows exist for everyone
        cluster.crash_node("node2")
        cluster.settle(4.0)  # ZK session expires
        rebalancer = Rebalancer(cluster.nodes["node0"], interval=1.0,
                                threshold=1)
        rebalancer.start()
        cluster.settle(5.0)
        rebalancer.stop()
        assert rebalancer.rows_dropped >= 1
        leader = cluster.ensemble.leader()
        rows = leader.tree.get_children(ZkLayout.IMBALANCE)
        assert "node2" not in rows

    def test_concurrent_rebalancers_are_safe(self):
        cluster = build_skewed()
        r1 = Rebalancer(cluster.nodes["node1"], interval=1.0, threshold=1)
        r2 = Rebalancer(cluster.nodes["node2"], interval=1.1, threshold=1)
        r1.start()
        r2.start()
        cluster.settle(30.0)
        r1.stop()
        r2.stop()
        after = authoritative_counts(cluster)
        # Version-checked moves: no vnode lost, no duplicate ownership.
        assert sum(after.values()) == cluster.config.num_vnodes
        assert max(after.values()) - min(after.values()) <= 3
