"""Integration tests for the data-balance manager (§III.A/B)."""

import pytest

from repro.core.cache import ZkLayout
from repro.core.cluster import SednaCluster
from repro.core.config import SednaConfig
from repro.core.rebalance import Rebalancer, pick_migration_vnode
from repro.zk.server import ZkConfig


def build_skewed(num_vnodes=24, n_nodes=3):
    """A cluster whose mapping is deliberately piled onto node0."""
    cluster = SednaCluster(n_nodes=n_nodes, zk_size=3,
                           config=SednaConfig(
                               num_vnodes=num_vnodes,
                               imbalance_push_interval=0.5,
                               lease_base=0.5),
                           zk_config=ZkConfig(session_timeout=1.0))
    cluster.start()

    def skew():
        zk = cluster.ensemble.client("admin")
        yield from zk.connect()
        for v in range(num_vnodes):
            data, stat = yield from zk.get(ZkLayout.vnode(v))
            # Pile node1's share onto node0; node2 keeps its third.
            if data.decode() == "node1":
                yield from zk.set(ZkLayout.vnode(v), b"node0",
                                  version=stat["version"])
                yield from zk.create(f"{ZkLayout.CHANGELOG}/e-",
                                     str(v).encode(), sequential=True)
        return True

    cluster.run(skew())
    cluster.settle(3.0)  # caches pick up the skew; imbalance rows pushed
    return cluster


def authoritative_counts(cluster):
    leader = cluster.ensemble.leader()
    counts = {name: 0 for name, node in cluster.nodes.items()
              if node.running}
    for v in range(cluster.config.num_vnodes):
        data, _ = leader.tree.get(ZkLayout.vnode(v))
        owner = data.decode()
        counts[owner] = counts.get(owner, 0) + 1
    return counts


class TestRebalancer:
    def test_reduces_spread(self):
        cluster = build_skewed()
        before = authoritative_counts(cluster)
        assert max(before.values()) - min(before.values()) > 4, \
            "test setup must be skewed"
        rebalancer = Rebalancer(cluster.nodes["node1"], interval=1.0,
                                threshold=1, max_moves_per_pass=4)
        rebalancer.start()
        cluster.settle(30.0)
        rebalancer.stop()
        after = authoritative_counts(cluster)
        spread = max(after.values()) - min(after.values())
        assert spread <= 3, f"spread still {spread}: {after}"
        assert rebalancer.moves > 0

    def test_moves_are_changelogged(self):
        cluster = build_skewed()
        leader = cluster.ensemble.leader()
        entries_before = len(leader.tree.get_children(ZkLayout.CHANGELOG))
        rebalancer = Rebalancer(cluster.nodes["node2"], interval=1.0,
                                threshold=1)
        rebalancer.start()
        cluster.settle(15.0)
        rebalancer.stop()
        entries_after = len(leader.tree.get_children(ZkLayout.CHANGELOG))
        assert entries_after - entries_before >= rebalancer.moves

    def test_data_still_readable_after_rebalance(self):
        cluster = build_skewed()
        client = cluster.client()

        def seed():
            for i in range(30):
                yield from client.write_latest(f"rb{i}", i)
            return True

        cluster.run(seed())
        rebalancer = Rebalancer(cluster.nodes["node1"], interval=1.0,
                                threshold=1)
        rebalancer.start()
        cluster.settle(25.0)
        rebalancer.stop()

        def read_back():
            values = []
            for i in range(30):
                values.append((yield from client.read_latest(f"rb{i}")))
            return values

        assert cluster.run(read_back()) == list(range(30))

    def test_balanced_cluster_untouched(self):
        cluster = SednaCluster(n_nodes=3, zk_size=3,
                               config=SednaConfig(
                                   num_vnodes=24,
                                   imbalance_push_interval=0.5))
        cluster.start()
        cluster.settle(2.0)
        rebalancer = Rebalancer(cluster.nodes["node0"], interval=1.0,
                                threshold=1)
        rebalancer.start()
        cluster.settle(10.0)
        rebalancer.stop()
        assert rebalancer.moves == 0
        assert rebalancer.passes > 0

    def test_dead_node_rows_pruned(self):
        cluster = SednaCluster(n_nodes=3, zk_size=3,
                               config=SednaConfig(
                                   num_vnodes=24,
                                   imbalance_push_interval=0.5),
                               zk_config=ZkConfig(session_timeout=1.0))
        cluster.start()
        cluster.settle(2.0)  # imbalance rows exist for everyone
        cluster.crash_node("node2")
        cluster.settle(4.0)  # ZK session expires
        rebalancer = Rebalancer(cluster.nodes["node0"], interval=1.0,
                                threshold=1)
        rebalancer.start()
        cluster.settle(5.0)
        rebalancer.stop()
        assert rebalancer.rows_dropped >= 1
        leader = cluster.ensemble.leader()
        rows = leader.tree.get_children(ZkLayout.IMBALANCE)
        assert "node2" not in rows

    def test_concurrent_rebalancers_are_safe(self):
        cluster = build_skewed()
        r1 = Rebalancer(cluster.nodes["node1"], interval=1.0, threshold=1)
        r2 = Rebalancer(cluster.nodes["node2"], interval=1.1, threshold=1)
        r1.start()
        r2.start()
        cluster.settle(30.0)
        r1.stop()
        r2.stop()
        after = authoritative_counts(cluster)
        # Version-checked moves: no vnode lost, no duplicate ownership.
        assert sum(after.values()) == cluster.config.num_vnodes
        assert max(after.values()) - min(after.values()) <= 3


class TestPickVnode:
    """Regression for the ``owned[0]`` bug: the donor vnode is chosen
    by per-vnode activity with a deterministic tiebreak."""

    def test_hottest_vnode_wins_not_owned0(self):
        stats = {4: {"reads": 2, "writes": 0},
                 7: {"reads": 50, "writes": 20},
                 9: {"reads": 5, "writes": 1}}
        assert pick_migration_vnode([4, 7, 9], stats) == 7

    def test_tie_breaks_to_lowest_vnode_id(self):
        assert pick_migration_vnode([9, 5, 2], {}) == 2
        same = {5: {"reads": 3}, 9: {"reads": 3}}
        assert pick_migration_vnode([9, 5], same) == 5

    def test_order_of_owned_list_is_irrelevant(self):
        stats = {1: {"writes": 9}, 2: {"writes": 1}, 3: {"writes": 5}}
        for owned in ([1, 2, 3], [3, 2, 1], [2, 3, 1]):
            assert pick_migration_vnode(owned, stats) == 1

    def test_limit_excludes_overheated_vnodes(self):
        stats = {1: {"writes": 1000}, 2: {"reads": 3}}
        assert pick_migration_vnode([1, 2], stats, limit=50.0) == 2

    def test_no_candidate_under_limit(self):
        stats = {1: {"writes": 1000}}
        assert pick_migration_vnode([1], stats, limit=50.0) is None
        assert pick_migration_vnode([], {}) is None


class TestLiveMigration:
    def seed_keys(self, cluster, n=40):
        client = cluster.client()

        def seed():
            for i in range(n):
                yield from client.write_latest(f"mig{i}", i)
            return True

        cluster.run(seed())
        return client

    def test_chunked_migration_ships_all_keys(self):
        cluster = build_skewed()
        client = self.seed_keys(cluster)
        rebalancer = Rebalancer(cluster.nodes["node1"], interval=1.0,
                                threshold=1, chunk_bytes=64)
        rebalancer.start()
        cluster.settle(30.0)
        rebalancer.stop()
        assert rebalancer.moves > 0
        # Tiny chunk budget forces multi-chunk streams.
        assert rebalancer.chunks > rebalancer.moves
        assert rebalancer.bytes_moved > 0
        ledger = rebalancer.ledger()
        assert all(m["state"] in ("done", "aborted") or m["attempts"] >= 0
                   for m in ledger)

        def read_back():
            values = []
            for i in range(40):
                values.append((yield from client.read_latest(f"mig{i}")))
            return values

        assert cluster.run(read_back()) == list(range(40))

    def test_transfer_failure_lands_in_ledger_and_retries(self):
        """Satellite bugfix: a failed transfer is recorded and retried
        next pass instead of silently swallowed — the keys arrive."""
        cluster = build_skewed()
        client = self.seed_keys(cluster)
        # Cut the receiver-to-be (node1 owns nothing, so it is the
        # coldest node) off the data plane; its ZK session endpoint
        # stays up so no recovery path interferes.
        others = [n for n in cluster.network.endpoints if n != "node1"]
        part = cluster.failures.partition(["node1"], others)
        rebalancer = Rebalancer(cluster.nodes["node2"], interval=1.0,
                                threshold=1, max_attempts=20)
        rebalancer.start()
        cluster.settle(4.0)
        assert rebalancer.transfer_failures > 0, \
            "partitioned receiver must fail at least one transfer step"
        assert rebalancer.moves == 0
        part.heal()
        cluster.settle(25.0)
        rebalancer.stop()
        assert rebalancer.moves > 0
        retried = [m for m in rebalancer.ledger()
                   if m["state"] == "done" and m["attempts"] > 0]
        assert retried, "a previously failed migration must complete"
        # The receiver really holds the migrated vnodes' rows.
        node1 = cluster.nodes["node1"]
        owned = cluster.nodes["node2"].cache.ring.vnodes_of("node1")
        moved_here = [m for m in rebalancer.ledger()
                      if m["state"] == "done" and m["receiver"] == "node1"
                      and m["vnode"] in owned]
        assert moved_here
        held = 0
        for m in moved_here:
            for key in sorted(node1.vnode_keys.get(m["vnode"], set())):
                if node1.store.read_all(key):
                    held += 1
        assert held > 0, "migrated keys must be present on the receiver"

        def read_back():
            values = []
            for i in range(40):
                values.append((yield from client.read_latest(f"mig{i}")))
            return values

        assert cluster.run(read_back()) == list(range(40))

    def test_forwarding_window_covers_concurrent_writes(self):
        """Writes racing a migration are double-applied to the receiver
        so no acked write is lost across the cutover."""
        cluster = build_skewed()
        n_keys = 120
        client = self.seed_keys(cluster, n=n_keys)
        # A tiny per-pass byte budget parks every copy mid-stream, so
        # forwarding windows stay open across whole pass intervals
        # while the churn below rewrites the migrating keys.
        rebalancer = Rebalancer(cluster.nodes["node1"], interval=0.5,
                                threshold=1, chunk_bytes=128,
                                pass_byte_budget=256)
        rebalancer.start()

        def churn():
            # Rewrite every key repeatedly while migrations stream.
            for round_no in range(6):
                for i in range(n_keys):
                    yield from client.write_latest(f"mig{i}",
                                                   round_no * 1000 + i)
            return True

        cluster.run(churn())
        cluster.settle(30.0)
        rebalancer.stop()
        assert rebalancer.moves > 0
        forwards = sum(node.migration_forwards
                       for node in cluster.nodes.values())
        assert forwards > 0, "no write hit an open forwarding window"

        def read_back():
            values = []
            for i in range(n_keys):
                values.append((yield from client.read_latest(f"mig{i}")))
            return values

        assert cluster.run(read_back()) == [5000 + i
                                            for i in range(n_keys)]
