"""Batched quorum operations: vnode grouping, RPC budget, per-key
statuses, partial-retry safety and read coalescing.

The headline acceptance numbers live in the integration half (a 64-key
``multi_read`` over 3 vnodes costs at most N x 3 = 9 replica RPCs; a
herd of 8 concurrent readers costs one fan-out); the unit half pins
down the per-group decision logic against scripted replicas, mirroring
``test_coordinator_unit.py``.
"""

import pytest

from repro.core.cluster import SednaCluster
from repro.core.config import SednaConfig
from repro.core.coordinator import QuorumCoordinator, wire_elements
from repro.core.hashring import Ring
from repro.net.latency import NoLatency
from repro.net.rpc import RpcNode, RpcRejected
from repro.net.simulator import Simulator
from repro.net.transport import Network
from repro.storage.versioned import ValueElement, WriteOutcome


# ======================================================================
# Integration: full cluster, smart client
# ======================================================================

@pytest.fixture(scope="module")
def batch_cluster():
    cluster = SednaCluster(n_nodes=3, zk_size=1,
                           config=SednaConfig(num_vnodes=3), seed=7)
    cluster.start()
    return cluster


class TestBatchRpcBudget:
    def test_64_key_multi_read_is_at_most_9_rpcs(self, batch_cluster):
        cluster = batch_cluster
        smart = cluster.smart_client("budget-client")
        keys = [f"budget-{i}" for i in range(64)]

        def script():
            yield from smart.connect()
            statuses = yield from smart.multi_write(
                {k: f"v-{k}" for k in keys})
            before = smart.rpc.calls_issued
            values = yield from smart.multi_read(keys)
            after = smart.rpc.calls_issued
            return statuses, values, after - before

        statuses, values, rpcs = cluster.run(script())
        assert all(s == WriteOutcome.OK for s in statuses.values())
        assert values == {k: f"v-{k}" for k in keys}
        # 3 vnodes x 3 replicas: one replica.mread per replica per
        # vnode-group, instead of 64 x 3 = 192 single-key fan-outs.
        assert rpcs <= 9, f"multi_read cost {rpcs} RPCs"

    def test_multi_write_budget_matches(self, batch_cluster):
        cluster = batch_cluster
        smart = cluster.smart_client("budget-writer")
        keys = [f"wbudget-{i}" for i in range(32)]

        def script():
            yield from smart.connect()
            before = smart.rpc.calls_issued
            statuses = yield from smart.multi_write(
                {k: "x" for k in keys})
            after = smart.rpc.calls_issued
            return statuses, after - before

        statuses, rpcs = cluster.run(script())
        assert all(s == WriteOutcome.OK for s in statuses.values())
        assert rpcs <= 9, f"multi_write cost {rpcs} RPCs"

    def test_multi_delete_then_miss(self, batch_cluster):
        cluster = batch_cluster
        smart = cluster.smart_client("budget-deleter")
        keys = [f"dbudget-{i}" for i in range(8)]

        def script():
            yield from smart.connect()
            yield from smart.multi_write({k: "x" for k in keys})
            deleted = yield from smart.multi_delete(keys)
            values = yield from smart.multi_read(keys)
            return deleted, values

        deleted, values = cluster.run(script())
        assert all(deleted.values())
        assert all(v is None for v in values.values())

    def test_thin_client_batch_api(self, batch_cluster):
        """The server-coordinated client speaks the same batch surface
        through sedna.mwrite/mread/mdelete."""
        cluster = batch_cluster
        client = cluster.client("thin-batch")
        keys = [f"thin-{i}" for i in range(8)]

        def script():
            statuses = yield from client.multi_write(
                {k: k.upper() for k in keys})
            values = yield from client.multi_read(keys)
            all_lists = yield from client.multi_read_all(keys[:2])
            deleted = yield from client.multi_delete(keys[:2])
            return statuses, values, all_lists, deleted

        statuses, values, all_lists, deleted = cluster.run(script())
        assert all(s == WriteOutcome.OK for s in statuses.values())
        assert values == {k: k.upper() for k in keys}
        assert {e.value for e in all_lists[keys[0]]} == {keys[0].upper()}
        assert deleted == {keys[0]: True, keys[1]: True}


class TestReadCoalescing:
    def test_concurrent_herd_shares_one_round(self, batch_cluster):
        cluster = batch_cluster
        smart = cluster.smart_client("herd-client")

        def write():
            yield from smart.connect()
            yield from smart.write_latest("herd-key", "herd-value")

        cluster.run(write())
        before_rpcs = smart.rpc.calls_issued
        before_coalesced = smart.coordinator.coalesced_reads
        results = cluster.run_all(
            [smart.read_latest("herd-key") for _ in range(8)])
        herd_rpcs = smart.rpc.calls_issued - before_rpcs
        coalesced = smart.coordinator.coalesced_reads - before_coalesced
        assert results == ["herd-value"] * 8
        assert coalesced == 7, "seven of eight readers shared the round"
        assert herd_rpcs <= 3, f"herd cost {herd_rpcs} RPCs, not one fan-out"

    def test_sequential_reads_do_not_coalesce(self, batch_cluster):
        """Back-to-back (non-overlapping) reads each lead their own
        round — coalescing must never serve a round that started before
        the reader invoked."""
        cluster = batch_cluster
        smart = cluster.smart_client("seq-client")

        def script():
            yield from smart.connect()
            yield from smart.write_latest("seq-key", "v")
            base = smart.coordinator.coalesced_reads
            yield from smart.read_latest("seq-key")
            yield from smart.read_latest("seq-key")
            return smart.coordinator.coalesced_reads - base

        assert cluster.run(script()) == 0


# ======================================================================
# Unit: scripted replicas
# ======================================================================

class BatchReplica:
    """A scripted replica speaking the batch protocol."""

    def __init__(self, sim, network, name):
        self.sim = sim
        self.name = name
        self.rpc = RpcNode(network, name)
        self.rows = {}                  # key -> [ValueElement]
        self.refuse_vnodes = set()      # always refuse these groups
        self.refuse_vnodes_once = set()  # refuse first call only
        self.mwrites = []
        self.mreads = []
        self.mdeletes = []
        self.installs = []
        self.rpc.register("replica.mwrite", self._mwrite)
        self.rpc.register("replica.mread", self._mread)
        self.rpc.register("replica.mdelete", self._mdelete)
        self.rpc.register("replica.install", self._install)

    def _gate(self, vnode):
        if vnode in self.refuse_vnodes:
            raise RpcRejected("not-owner")
        if vnode in self.refuse_vnodes_once:
            self.refuse_vnodes_once.discard(vnode)
            raise RpcRejected("not-owner")

    def _mwrite(self, src, args):
        self._gate(args["vnode"])
        self.mwrites.append(args)
        return {"statuses": {e["key"]: WriteOutcome.OK
                             for e in args["entries"]}}

    def _mread(self, src, args):
        self._gate(args["vnode"])
        self.mreads.append(args)
        rows = {k: wire_elements(self.rows[k])
                for k in args["keys"] if self.rows.get(k)}
        return {"rows": rows}

    def _mdelete(self, src, args):
        self._gate(args["vnode"])
        self.mdeletes.append(args)
        return {"statuses": {k: "ok" for k in args["keys"]}}

    def _install(self, src, args):
        self.installs.append(args)
        return {"status": "ok"}


class BatchCache:
    """Fixed 4-vnode ring over three replicas, countable invalidations."""

    def __init__(self, config, owners=("r0", "r1", "r2")):
        self.config = config
        self.ring = Ring(4)
        for v in range(4):
            self.ring.assign(v, owners[v % len(owners)])
        self.loaded = True
        self.invalidated = []

    def replicas_for_key(self, key):
        return self.ring.replicas_for_key(key, self.config.replicas)

    def invalidate(self, vnode_id):
        self.invalidated.append(vnode_id)
        return
        yield  # pragma: no cover - generator form


@pytest.fixture
def batch_world():
    sim = Simulator()
    network = Network(sim, latency=NoLatency())
    config = SednaConfig(num_vnodes=4, request_timeout=0.5)
    replicas = {name: BatchReplica(sim, network, name)
                for name in ("r0", "r1", "r2")}
    cache = BatchCache(config)
    coordinator = QuorumCoordinator(
        sim, RpcNode(network, "coordinator"), cache, config)
    return sim, coordinator, replicas, cache


def drive(sim, gen):
    proc = sim.process(gen)
    return sim.run(until=proc)


def keys_in_distinct_vnodes(ring, count, tag="bk"):
    """Probe for ``count`` keys hashing into distinct vnodes."""
    found = {}
    i = 0
    while len(found) < count:
        key = f"{tag}-{i}"
        v = ring.vnode_of(key)
        found.setdefault(v, key)
        i += 1
    return dict(sorted(found.items()))  # vnode -> key


def mwrite_args(keys):
    return {"entries": [{"key": k, "value": f"v-{k}", "ts": 1.0,
                         "source": "cli", "mode": "latest"}
                        for k in keys]}


class TestMultiWriteGroups:
    def test_groups_by_vnode_one_rpc_per_replica(self, batch_world):
        sim, coordinator, replicas, _cache = batch_world
        by_vnode = keys_in_distinct_vnodes(_cache.ring, 2)
        keys = list(by_vnode.values())
        result = drive(sim, coordinator.coordinate_multi_write(
            mwrite_args(keys)))
        for k in keys:
            assert result["results"][k]["status"] == WriteOutcome.OK
        for r in replicas.values():
            assert len(r.mwrites) == 2, "one mwrite per vnode-group"
            assert {m["vnode"] for m in r.mwrites} == set(by_vnode)

    def test_partial_quorum_failure_is_per_key(self, batch_world):
        """One vnode-group failing its quorum must not fail the keys of
        a group that met its quorum."""
        sim, coordinator, replicas, _cache = batch_world
        by_vnode = keys_in_distinct_vnodes(_cache.ring, 2)
        bad_vnode, good_vnode = sorted(by_vnode)
        for r in replicas.values():
            r.refuse_vnodes.add(bad_vnode)
        result = drive(sim, coordinator.coordinate_multi_write(
            mwrite_args(list(by_vnode.values()))))
        assert (result["results"][by_vnode[bad_vnode]]["status"]
                == WriteOutcome.FAILURE)
        good = result["results"][by_vnode[good_vnode]]
        assert good["status"] == WriteOutcome.OK
        assert len(good["acks"]) >= 2

    def test_stale_group_retry_does_not_reapply_acked_group(
            self, batch_world):
        """A stale-mapping retry re-sends only the failed group's
        entries: keys already acked under their own quorum are never
        applied twice."""
        sim, coordinator, replicas, cache = batch_world
        by_vnode = keys_in_distinct_vnodes(cache.ring, 2)
        stale_vnode, fine_vnode = sorted(by_vnode)
        for r in replicas.values():
            r.refuse_vnodes_once.add(stale_vnode)
        result = drive(sim, coordinator.coordinate_multi_write(
            mwrite_args(list(by_vnode.values()))))
        for k in by_vnode.values():
            assert result["results"][k]["status"] == WriteOutcome.OK
        assert stale_vnode in cache.invalidated
        for r in replicas.values():
            sent = [m["vnode"] for m in r.mwrites]
            assert sent.count(fine_vnode) == 1, (
                "acked group re-sent on a sibling group's retry")
            assert sent.count(stale_vnode) == 1, (
                "retried group applies exactly once (refusals apply "
                "nothing)")


class TestMultiReadGroups:
    def test_per_key_found_and_miss(self, batch_world):
        sim, coordinator, replicas, cache = batch_world
        by_vnode = keys_in_distinct_vnodes(cache.ring, 2)
        hit, miss = list(by_vnode.values())
        for r in replicas.values():
            r.rows[hit] = [ValueElement("w", 2.0, "val")]
        result = drive(sim, coordinator.coordinate_multi_read(
            {"keys": [hit, miss]}))
        assert result["results"][hit]["found"] is True
        assert result["results"][hit]["value"] == "val"
        assert result["results"][miss]["found"] is False

    def test_stale_replica_gets_batched_install(self, batch_world):
        sim, coordinator, replicas, cache = batch_world
        by_vnode = keys_in_distinct_vnodes(cache.ring, 1)
        key = next(iter(by_vnode.values()))
        fresh = [ValueElement("w", 2.0, "new")]
        replicas["r0"].rows[key] = fresh
        replicas["r1"].rows[key] = fresh
        replicas["r2"].rows[key] = [ValueElement("w", 1.0, "old")]
        result = drive(sim, coordinator.coordinate_multi_read(
            {"keys": [key]}))
        assert result["results"][key]["value"] == "new"
        sim.run(until=sim.now + 1.0)
        installed = [i for i in replicas["r2"].installs
                     if key in i["rows"]]
        assert installed, "stale replica repaired via replica.install"
        assert ("w", 2.0, "new") in installed[0]["rows"][key]
        assert coordinator.read_repairs >= 1

    def test_mode_all_merges_lists(self, batch_world):
        sim, coordinator, replicas, cache = batch_world
        by_vnode = keys_in_distinct_vnodes(cache.ring, 1)
        key = next(iter(by_vnode.values()))
        replicas["r0"].rows[key] = [ValueElement("a", 1.0, "va")]
        replicas["r1"].rows[key] = [ValueElement("b", 2.0, "vb")]
        result = drive(sim, coordinator.coordinate_multi_read(
            {"keys": [key], "mode": "all"}))
        sources = {s for s, _t, _v in result["results"][key]["elements"]}
        assert sources == {"a", "b"}

    def test_group_quorum_failure_per_key_status(self, batch_world):
        sim, coordinator, replicas, cache = batch_world
        by_vnode = keys_in_distinct_vnodes(cache.ring, 2)
        bad_vnode, good_vnode = sorted(by_vnode)
        for r in replicas.values():
            r.refuse_vnodes.add(bad_vnode)
            r.rows[by_vnode[good_vnode]] = [ValueElement("w", 1.0, "x")]
        result = drive(sim, coordinator.coordinate_multi_read(
            {"keys": list(by_vnode.values())}))
        assert result["results"][by_vnode[bad_vnode]]["status"] == "failure"
        assert result["results"][by_vnode[good_vnode]]["value"] == "x"


class TestMultiDeleteGroups:
    def test_per_key_acks(self, batch_world):
        sim, coordinator, replicas, cache = batch_world
        by_vnode = keys_in_distinct_vnodes(cache.ring, 2)
        keys = list(by_vnode.values())
        result = drive(sim, coordinator.coordinate_multi_delete(
            {"keys": keys}))
        for k in keys:
            assert result["results"][k]["status"] == "ok"
            assert len(result["results"][k]["acks"]) >= 2
        for r in replicas.values():
            assert {m["vnode"] for m in r.mdeletes} == set(by_vnode)
