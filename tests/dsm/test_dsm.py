"""Tests for the distributed shared memory helpers."""

import pytest

from repro.core.cluster import SednaCluster
from repro.core.config import SednaConfig
from repro.dsm import SharedCounter, SharedSet, SharedValue


@pytest.fixture(scope="module")
def cluster():
    c = SednaCluster(n_nodes=3, zk_size=3,
                     config=SednaConfig(num_vnodes=32))
    c.start()
    return c


class TestSharedValue:
    def test_set_get(self, cluster):
        reg = SharedValue(cluster.client("sv1"), "mode")

        def script():
            yield from reg.set("fast")
            return (yield from reg.get())

        assert cluster.run(script()) == "fast"

    def test_default_when_unset(self, cluster):
        reg = SharedValue(cluster.client("sv2"), "never-set")

        def script():
            return (yield from reg.get(default="fallback"))

        assert cluster.run(script()) == "fallback"

    def test_last_writer_wins_across_clients(self, cluster):
        a = SharedValue(cluster.client("sv3a"), "lww")
        b = SharedValue(cluster.client("sv3b"), "lww")

        def script():
            yield from a.set("first")
            yield from b.set("second")
            return (yield from a.get())

        assert cluster.run(script()) == "second"

    def test_namespaced_per_name(self, cluster):
        c = cluster.client("sv4")
        r1 = SharedValue(c, "name-a")
        r2 = SharedValue(c, "name-b")

        def script():
            yield from r1.set(1)
            yield from r2.set(2)
            return (yield from r1.get()), (yield from r2.get())

        assert cluster.run(script()) == (1, 2)


class TestSharedCounter:
    def test_increment_decrement(self, cluster):
        counter = SharedCounter(cluster.client("sc1"), "hits")

        def script():
            yield from counter.increment(5)
            yield from counter.decrement(2)
            return (yield from counter.value())

        assert cluster.run(script()) == 3

    def test_concurrent_writers_never_lose_updates(self, cluster):
        """The CRDT property write_all provides: increments from
        different clients merge, they do not overwrite."""
        counters = [SharedCounter(cluster.client(f"sc2-{i}"), "shared-hits")
                    for i in range(4)]

        def writer(counter, n):
            for _ in range(n):
                yield from counter.increment()
            return True

        cluster.run_all([writer(c, 10) for c in counters])

        def read():
            return (yield from counters[0].value())

        assert cluster.run(read()) == 40

    def test_negative_amounts_rejected(self, cluster):
        counter = SharedCounter(cluster.client("sc3"), "x")
        with pytest.raises(ValueError):
            next(counter.increment(-1))
        with pytest.raises(ValueError):
            next(counter.decrement(-1))

    def test_zero_when_untouched(self, cluster):
        counter = SharedCounter(cluster.client("sc4"), "fresh-counter")

        def script():
            return (yield from counter.value())

        assert cluster.run(script()) == 0


class TestSharedSet:
    def test_add_and_members(self, cluster):
        shared = SharedSet(cluster.client("ss1"), "tags")

        def script():
            yield from shared.add("alpha")
            yield from shared.add("beta")
            yield from shared.add("alpha")  # idempotent
            return (yield from shared.members())

        assert sorted(cluster.run(script())) == ["alpha", "beta"]

    def test_union_across_writers(self, cluster):
        a = SharedSet(cluster.client("ss2a"), "union")
        b = SharedSet(cluster.client("ss2b"), "union")

        def script():
            yield from a.add_many(["x", "y"])
            yield from b.add_many(["y", "z"])
            return (yield from a.members())

        assert sorted(cluster.run(script())) == ["x", "y", "z"]

    def test_contains(self, cluster):
        shared = SharedSet(cluster.client("ss3"), "membership")

        def script():
            yield from shared.add(42)
            return ((yield from shared.contains(42)),
                    (yield from shared.contains(7)))

        assert cluster.run(script()) == (True, False)

    def test_empty_set(self, cluster):
        shared = SharedSet(cluster.client("ss4"), "empty")

        def script():
            return (yield from shared.members())

        assert cluster.run(script()) == []
