"""Unit tests for the invariant checkers, focused on the freshness /
durability-loss carve-out (the seed-2 anomaly root cause).

A write acked at W quorum is only guaranteed visible to later reads
while at least one acker still holds it.  When every acker crashes
(memory-first store, asynchronous persistence) the value is provably
gone — the checker must report that as an *expected* durability loss,
not a freshness violation, and must keep hard-failing staleness
whenever any acker survived.
"""

from repro.chaos.history import History
from repro.chaos.invariants import (FinalState, check_freshness,
                                    check_migrations)


def _history(read_status="found", read_ts=1.0, read_src="c1"):
    """w1(ts=1, acks n1,n2) -> w2(ts=2, acks n2,n3) -> read at t=5."""
    h = History()
    w1 = h.begin("c1", "write_latest", "k", 1.0, value="a", ts=1.0)
    h.complete(w1, 1.1, "ok", acks=("n1", "n2"))
    w2 = h.begin("c1", "write_latest", "k", 2.0, value="b", ts=2.0)
    h.complete(w2, 2.1, "ok", acks=("n2", "n3"))
    r = h.begin("c2", "read_latest", "k", 5.0)
    if read_status == "found":
        h.complete(r, 5.1, "found", result_ts=read_ts,
                   result_source=read_src, result_value="a",
                   responders=("n1",))
    else:
        h.complete(r, 5.1, read_status, responders=("n1",))
    return h


class TestDurabilityLossCarveOut:
    def test_stale_read_is_hard_violation_without_crashes(self):
        anomalies = check_freshness(_history(), FinalState())
        assert [a.invariant for a in anomalies] == ["freshness"]
        assert not anomalies[0].expected

    def test_whole_ack_set_crashed_downgrades_to_expected(self):
        crashes = ((3.0, "n2"), (4.0, "n3"))
        anomalies = check_freshness(_history(), FinalState(),
                                    crashes=crashes)
        assert [a.invariant for a in anomalies] == ["durability-loss"]
        assert anomalies[0].expected
        assert "all ackers crashed" in anomalies[0].detail

    def test_surviving_acker_keeps_hard_violation(self):
        crashes = ((3.0, "n2"),)  # n3, an acker of w2, stayed up
        anomalies = check_freshness(_history(), FinalState(),
                                    crashes=crashes)
        assert [a.invariant for a in anomalies] == ["freshness"]
        assert not anomalies[0].expected

    def test_crash_before_ack_does_not_excuse(self):
        # Crashes predating the ack can't have wiped the write.
        crashes = ((0.5, "n2"), (0.5, "n3"))
        anomalies = check_freshness(_history(), FinalState(),
                                    crashes=crashes)
        assert [a.invariant for a in anomalies] == ["freshness"]

    def test_crash_after_read_does_not_excuse(self):
        crashes = ((6.0, "n2"), (6.0, "n3"))
        anomalies = check_freshness(_history(), FinalState(),
                                    crashes=crashes)
        assert [a.invariant for a in anomalies] == ["freshness"]

    def test_fresh_read_reports_nothing(self):
        anomalies = check_freshness(
            _history(read_ts=2.0), FinalState(),
            crashes=((3.0, "n2"), (4.0, "n3")))
        assert anomalies == []

    def test_miss_with_every_ack_set_lost_is_expected(self):
        crashes = ((3.0, "n1"), (3.0, "n2"), (4.0, "n3"))
        anomalies = check_freshness(_history(read_status="miss"),
                                    FinalState(), crashes=crashes)
        assert [a.invariant for a in anomalies] == ["durability-loss"]
        assert anomalies[0].expected

    def test_miss_with_surviving_acker_is_hard(self):
        crashes = ((3.0, "n2"), (4.0, "n3"))  # n1 still holds w1
        anomalies = check_freshness(_history(read_status="miss"),
                                    FinalState(), crashes=crashes)
        assert [a.invariant for a in anomalies] == ["freshness"]


def _migration_history(deleted=False):
    """One acked write (and optionally a delete) of key ``k``."""
    h = History()
    w = h.begin("c1", "write_latest", "k", 1.0, value="a", ts=1.0)
    h.complete(w, 1.1, "ok", acks=("n1", "n2"))
    if deleted:
        d = h.begin("c1", "delete", "k", 2.0)
        h.complete(d, 2.1, "ok", acks=("n1", "n2"))
    return h


def _migrated_state(holders):
    """Key ``k`` lives on vnode 4, replicas n2 (post-cutover) and n1."""
    return FinalState(replica_sets={"k": (4, ["n2", "n1"])},
                      holders={"k": holders})


def _entry(state="done", **over):
    entry = {"vnode": 4, "donor": "n1", "receiver": "n2",
             "state": state, "attempts": 0, "chunks": 1,
             "bytes": 64, "reason": ""}
    entry.update(over)
    return entry


class TestMigrationInvariant:
    def test_done_migration_with_holder_is_clean(self):
        anomalies = check_migrations(
            _migration_history(),
            _migrated_state({"n2": [("c1", 1.0, "a")]}),
            migrations=(_entry(),))
        assert anomalies == []

    def test_done_migration_without_holder_flags_key(self):
        anomalies = check_migrations(
            _migration_history(), _migrated_state({}),
            migrations=(_entry(),))
        assert [a.invariant for a in anomalies] == ["migration"]
        assert not anomalies[0].expected
        assert "vnode 4" in anomalies[0].detail
        assert "n1 -> n2" in anomalies[0].detail

    def test_unresolved_ledger_entry_is_an_anomaly(self):
        anomalies = check_migrations(
            _migration_history(),
            _migrated_state({"n2": [("c1", 1.0, "a")]}),
            migrations=(_entry(state="copying"),))
        assert [a.invariant for a in anomalies] == ["migration"]
        assert "unresolved" in anomalies[0].detail

    def test_aborted_migration_makes_no_claim(self):
        # An aborted copy left the donor authoritative; the global
        # durability checker covers the key, not invariant 6.
        anomalies = check_migrations(
            _migration_history(), _migrated_state({}),
            migrations=(_entry(state="aborted", reason="quiesce"),))
        assert anomalies == []

    def test_deleted_key_is_not_flagged(self):
        anomalies = check_migrations(
            _migration_history(deleted=True), _migrated_state({}),
            migrations=(_entry(),))
        assert anomalies == []

    def test_other_vnodes_keys_ignored(self):
        state = FinalState(replica_sets={"k": (9, ["n2", "n1"])},
                           holders={"k": {}})
        assert check_migrations(_migration_history(), state,
                                migrations=(_entry(),)) == []

    def test_no_ledger_no_work(self):
        assert check_migrations(_migration_history(),
                                _migrated_state({})) == []
