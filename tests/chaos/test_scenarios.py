"""Scenario-driven chaos runs: smoke + determinism (tier-1)."""

import pytest

from repro.chaos.runner import ChaosRunner
from repro.workloads.scenarios import SCENARIOS


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_scenario_run_is_deterministic(name):
    """Same (scenario, seed) twice → byte-identical digests, and the
    report is tagged with the scenario name."""
    runs = [ChaosRunner(seed=3, profile="mixed", duration=3.0,
                        scenario=name).run() for _ in range(2)]
    assert runs[0].digest == runs[1].digest
    assert runs[0].scenario == name
    assert runs[0].history, "scenario stream must drive real ops"


def test_scenario_accepts_spec_object():
    spec = SCENARIOS["zipf-hot"]
    report = ChaosRunner(seed=1, profile="crash", duration=3.0,
                         scenario=spec).run()
    assert report.scenario == "zipf-hot"


def test_distinct_scenarios_distinct_histories():
    digests = {
        name: ChaosRunner(seed=5, profile="mixed", duration=3.0,
                          scenario=name).run().digest
        for name in sorted(SCENARIOS)
    }
    assert len(set(digests.values())) == len(digests), digests


def test_unknown_scenario_rejected():
    with pytest.raises(ValueError):
        ChaosRunner(seed=1, scenario="zipf-imaginary")


def test_default_workload_unchanged_without_scenario():
    """scenario=None keeps the historical chaos mix byte-identical —
    the scenario path must be purely additive (golden digests rely on
    it, this is the fast canary)."""
    a = ChaosRunner(seed=2, profile="mixed", duration=3.0).run()
    b = ChaosRunner(seed=2, profile="mixed", duration=3.0).run()
    assert a.digest == b.digest
    assert a.scenario == ""
