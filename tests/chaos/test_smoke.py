"""Fast chaos smoke: one mixed-profile run must hold every invariant.

Tier-1: one short seeded run with crashes, partitions and message
loss, quiesced and checked against all five safety invariants.  The
long multi-seed sweeps live in ``test_invariants_sweep.py`` behind the
``slow`` marker.
"""

from repro.chaos import ChaosRunner
from repro.chaos.schedule import PROFILES, ScheduleGenerator


class TestChaosSmoke:
    def test_mixed_run_holds_invariants_and_is_hazard_clean(self):
        report = ChaosRunner(seed=1, profile="mixed", duration=8.0,
                             hazards=True).run()
        assert report.ok, "\n".join(str(a) for a in report.anomalies)
        assert not report.hazards, report.hazard_report

    def test_run_exercises_real_faults_and_ops(self):
        report = ChaosRunner(seed=1, profile="mixed", duration=8.0).run()
        assert report.crashes >= 1
        assert {"partition", "heal"} <= report.schedule.kinds
        for kind in ("write_latest", "write_all", "read_latest",
                     "read_all", "delete", "multi_write", "multi_read",
                     "multi_delete"):
            assert report.op_counts.get(kind, 0) > 0, kind
        assert len(report.history) > 50

    def test_schedule_generation_is_deterministic(self):
        names = [f"node{i}" for i in range(6)]
        a = ScheduleGenerator(names, seed=9, profile="mixed").generate()
        b = ScheduleGenerator(names, seed=9, profile="mixed").generate()
        assert a.to_bytes() == b.to_bytes()
        c = ScheduleGenerator(names, seed=10, profile="mixed").generate()
        assert a.to_bytes() != c.to_bytes()

    def test_every_profile_generates_its_fault_family(self):
        names = [f"node{i}" for i in range(6)]
        family = {"crash": {"crash"}, "partition": {"partition", "heal"},
                  "loss": {"loss_start", "loss_stop"},
                  "churn": {"crash", "restart"}}
        for profile in PROFILES:
            sched = ScheduleGenerator(names, seed=3,
                                      profile=profile).generate()
            assert sched.events, profile
            if profile in family:
                assert family[profile] <= sched.kinds, (profile,
                                                        sched.kinds)

    def test_max_down_respected(self):
        """Crashed and islanded nodes *together* stay within the cap."""
        names = [f"node{i}" for i in range(6)]
        for seed in range(10):
            sched = ScheduleGenerator(names, seed=seed, profile="mixed",
                                      max_down=2).generate()
            down: set[str] = set()
            islanded: set[str] = set()
            worst = 0
            for ev in sched.events:
                if ev.kind == "crash":
                    down |= set(ev.targets)
                elif ev.kind == "restart":
                    down -= set(ev.targets)
                elif ev.kind == "partition":
                    islanded |= set(ev.targets)
                elif ev.kind == "heal":
                    islanded -= set(ev.targets)
                worst = max(worst, len(down | islanded))
            assert worst <= 2, (seed, worst)
