"""Chaos sweeps with the rebalancer live: chunked migrations race the
fault schedule and invariant 6 ("no acked write lost or key unreachable
across a migration") must hold.

The quick checks below run in tier-1; the seeds 0-7 acceptance sweep is
marked ``slow`` (``pytest -m slow tests/chaos``).
"""

import pytest

from repro.chaos import ChaosRunner


def run_migration(seed, duration=8.0):
    return ChaosRunner(seed=seed, profile="migration", duration=duration,
                       rebalance=True).run()


def ledger_fingerprint(report):
    return tuple((m["vnode"], m["donor"], m["receiver"], m["state"],
                  m["attempts"], m["chunks"], m["bytes"], m["reason"])
                 for m in report.migrations)


class TestMigrationChaosQuick:
    def test_invariants_hold_with_live_migrations(self):
        report = run_migration(seed=0)
        assert report.ok, report.describe()
        assert report.migrations, "rebalancer drove no migrations"
        assert any(m["state"] == "done" for m in report.migrations), \
            "no migration committed despite faults"
        # Quiesce resolves every ledger entry one way or the other.
        assert all(m["state"] in ("done", "aborted")
                   for m in report.migrations)

    def test_rerun_is_byte_identical(self):
        a = run_migration(seed=3)
        b = run_migration(seed=3)
        assert a.ok and b.ok, (a.describe(), b.describe())
        assert a.digest == b.digest
        assert a.history.to_bytes() == b.history.to_bytes()
        assert ledger_fingerprint(a) == ledger_fingerprint(b)


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(8))
def test_migration_sweep(seed):
    """Acceptance criterion: seeds 0-7, zero invariant violations and a
    byte-identical rerun per seed."""
    a = run_migration(seed, duration=10.0)
    assert a.ok, a.describe()
    b = run_migration(seed, duration=10.0)
    assert b.ok, b.describe()
    assert a.digest == b.digest
    assert ledger_fingerprint(a) == ledger_fingerprint(b)
