"""Replay the seeded regression corpus (tier-1).

Every ``tests/chaos/regressions/*.json`` entry is a (scenario, config,
seed) cell the explorer once flagged — an invariant violation, a
fitness regression, or a pin on a fixed bug.  Each replay must hold
every invariant AND reproduce the recorded end-state digest
byte-for-byte: a digest drift here means the deterministic
interleaving changed, exactly the regression class the corpus exists
to catch.

Entries are auto-discovered; landing a new regression is just dropping
the explorer's JSON into the corpus directory (``python -m
repro.explore`` does it on promotion).
"""

from pathlib import Path

import pytest

from repro.tools.explorer import (CORPUS_SCHEMA, load_corpus,
                                  replay_corpus_entry)

CORPUS_DIR = Path(__file__).resolve().parent / "regressions"

CORPUS = load_corpus(CORPUS_DIR)


def test_corpus_is_stocked():
    """The PR that lands the corpus ships at least three entries."""
    assert len(CORPUS) >= 3


def test_entries_well_formed():
    for path, entry in CORPUS:
        assert entry["schema"] == CORPUS_SCHEMA, path.name
        for field in ("name", "reason", "runner", "scenario", "config",
                      "digest", "fitness"):
            assert field in entry, f"{path.name} missing {field!r}"


@pytest.mark.parametrize(
    "path,entry", CORPUS, ids=[p.stem for p, _ in CORPUS])
def test_replay_holds_invariants_and_digest(path, entry):
    report = replay_corpus_entry(entry)
    hard = [a for a in report.anomalies if not a.expected]
    assert report.ok, (
        f"{path.name}: replay violated invariants: "
        + "; ".join(str(a) for a in hard))
    assert report.digest == entry["digest"], (
        f"{path.name}: end-state digest drifted — the recorded "
        f"interleaving no longer reproduces (recorded "
        f"{entry['digest'][:12]}…, got {report.digest[:12]}…)")
