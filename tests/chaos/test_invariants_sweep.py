"""Long chaos sweeps: every profile × many seeds holds every invariant.

Marked ``slow`` — excluded from the default (tier-1) run; execute with
``pytest -m slow tests/chaos``.
"""

import pytest

from repro.chaos import ChaosRunner
from repro.chaos.schedule import PROFILES

SEEDS = (1, 2, 3, 4, 5)


@pytest.mark.slow
@pytest.mark.parametrize("profile", PROFILES)
@pytest.mark.parametrize("seed", SEEDS)
def test_invariants_hold(seed, profile):
    report = ChaosRunner(seed=seed, profile=profile, duration=10.0).run()
    assert report.ok, report.describe()


@pytest.mark.slow
def test_longer_mixed_runs():
    for seed in (11, 12):
        report = ChaosRunner(seed=seed, profile="mixed",
                             duration=20.0).run()
        assert report.ok, report.describe()
