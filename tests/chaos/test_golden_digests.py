"""Golden end-state digest guard: kernel refactors must not move a
single event.

The fixture (``golden_digests.json``) was recorded from the
pre-overhaul kernel; every config × seed digest is the sha256 of the
run's serialized history — its replay identity.  A mismatch means the
deterministic interleaving changed, which for a pure performance
change is a regression by definition (see ``repro.chaos.goldens`` for
the regen policy).

The quick tier-1 guard replays seed 0 of each canonical config; the
full seeds 0–7 sweep is marked ``slow`` (CI runs it; locally:
``pytest -m slow tests/chaos/test_golden_digests.py``).
"""

import pytest

from repro.chaos.goldens import (GOLDEN_CONFIGS, GOLDEN_SEEDS, golden_path,
                                 load_goldens, run_config)


@pytest.fixture(scope="module")
def goldens():
    return load_goldens()


class TestFixtureShape:
    def test_fixture_exists_and_covers_all_configs(self, goldens):
        assert set(goldens) == set(GOLDEN_CONFIGS)
        for name, digests in goldens.items():
            assert set(digests) == set(GOLDEN_SEEDS), name
            for digest in digests.values():
                assert len(digest) == 64 and int(digest, 16) >= 0

    def test_fixture_is_checked_in(self):
        assert golden_path().is_file()


@pytest.mark.parametrize("config", sorted(GOLDEN_CONFIGS))
def test_quick_guard_seed0(config, goldens):
    """One seed per config in tier-1: catches any kernel change that
    moves the interleaving, at ~1/8th the full sweep's cost."""
    report = run_config(config, 0)
    assert report.ok, report.describe()
    assert report.digest == goldens[config][0], (
        f"{config} seed=0 digest moved — the deterministic interleaving "
        f"changed.  If this was a deliberate protocol/workload change, "
        f"regenerate with `python -m repro.chaos.goldens --regen` and "
        f"review the diff; if it accompanies a kernel/RPC refactor, it "
        f"is a determinism regression.")


@pytest.mark.slow
@pytest.mark.parametrize("config", sorted(GOLDEN_CONFIGS))
@pytest.mark.parametrize("seed", GOLDEN_SEEDS)
def test_full_golden_sweep(config, seed, goldens):
    report = run_config(config, seed)
    assert report.ok, report.describe()
    assert report.digest == goldens[config][seed], \
        f"{config} seed={seed} digest moved"
