"""Replay identity: a chaos run is fully determined by its seed.

The history digest covers every operation record (invocation and
response times, acks, responders, results) plus the per-method message
tallies — two runs matching on it executed the same interleaving.
"""

from repro.chaos import ChaosRunner


def run(seed: int, profile: str = "mixed"):
    return ChaosRunner(seed=seed, profile=profile, duration=6.0).run()


class TestReplayIdentity:
    def test_same_seed_identical_history(self):
        a = run(seed=2)
        b = run(seed=2)
        assert a.digest == b.digest
        assert a.history.to_bytes() == b.history.to_bytes()
        assert a.schedule.to_bytes() == b.schedule.to_bytes()
        assert a.end_time == b.end_time

    def test_different_seed_differs(self):
        assert run(seed=2).digest != run(seed=3).digest

    def test_profile_changes_history(self):
        assert run(seed=2, profile="crash").digest != run(seed=2).digest
