"""Chaos sweeps of the causal (DVV) mode: the "no concurrent write
silently lost" invariant under partition profiles.

The quick checks run in tier-1; the seeds 0-7 acceptance sweep is
marked ``slow`` (``pytest -m slow tests/chaos``).  The same seeds run
in ``lww`` mode feed the paired BENCH_dvv comparison (see
``benchmarks/test_dvv_sweep.py``).
"""

import pytest

from repro.chaos import ChaosRunner
from repro.chaos.invariants import causal_outcomes, lww_concurrent_losses


def run_causal(seed, mode="dvv", duration=8.0):
    return ChaosRunner(seed=seed, profile="partition", duration=duration,
                       causal=mode).run()


class TestCausalChaosQuick:
    def test_no_concurrent_write_silently_lost(self):
        report = run_causal(seed=0)
        assert report.ok, report.describe()
        fates = causal_outcomes(report.history, report.state)
        assert fates["acked"] > 0, "workload drove no causal writes"
        assert fates["lost"] == 0, report.describe()
        # The partition window actually manufactured concurrency.
        assert fates["preserved"] + fates["superseded"] == fates["acked"]

    def test_rerun_is_byte_identical(self):
        a = run_causal(seed=2)
        b = run_causal(seed=2)
        assert a.ok and b.ok, (a.describe(), b.describe())
        assert a.digest == b.digest
        assert a.history.to_bytes() == b.history.to_bytes()

    def test_default_mode_untouched_by_causal_code(self):
        """A causal=None run draws the same rng stream and serializes
        the same history bytes as before the causal mode existed: no
        causal ops, no ctx/dot fields in any line."""
        report = ChaosRunner(seed=1, profile="partition",
                             duration=6.0).run()
        assert report.ok, report.describe()
        assert not report.history.causal_keys()
        for record in report.history.records:
            assert record.ctx == () and record.dot is None
            assert record.to_line().count("|") == 14

    def test_lww_mode_same_draws_plain_writes(self):
        """lww mode maps the causal slice onto write_latest and still
        holds the classic invariants (nothing about LWW is *unsafe* in
        the checked sense — it just destroys concurrent updates, which
        lww_concurrent_losses tallies)."""
        report = run_causal(seed=0, mode="lww")
        assert report.ok, report.describe()
        assert not report.history.causal_keys()
        cw = [k for k in report.history.written_keys() if "cw-" in k]
        assert cw, "lww causal slice wrote no cw keys"
        losses = lww_concurrent_losses(report.history, report.state,
                                       keys=cw)
        assert sum(losses.values()) > 0, \
            "expected LWW to blindly destroy at least one concurrent update"


@pytest.mark.slow
@pytest.mark.parametrize("seed", range(8))
def test_causal_sweep(seed):
    """Acceptance criterion: seeds 0-7 under the partition profile,
    DVV preserves every concurrent write (zero silently lost) and the
    rerun is byte-identical."""
    a = run_causal(seed, duration=10.0)
    assert a.ok, a.describe()
    fates = causal_outcomes(a.history, a.state)
    assert fates["lost"] == 0, a.describe()
    assert fates["acked"] > 0
    b = run_causal(seed, duration=10.0)
    assert a.digest == b.digest
