"""Config-explorer tests: determinism, promotion, corpus roundtrip."""

import json

import pytest

from repro.obs.fitness import SCORE_WEIGHTS, extract_fitness
from repro.tools.explorer import (CORPUS_SCHEMA, ConfigPoint, explore,
                                  format_tables, grid_points, load_corpus,
                                  random_points, replay_corpus_entry,
                                  run_cell, write_corpus_entry)
from repro.workloads.scenarios import SCENARIOS

TINY = dict(seed=0, duration=2.0, profile="crash", n_nodes=4,
            rebalance=False)


@pytest.fixture(scope="module")
def tiny_search():
    specs = [SCENARIOS["zipf-hot"], SCENARIOS["flash-crowd"]]
    points = random_points(2, seed=0)
    return explore(specs, points, corpus_dir=None, **TINY)


class TestPoints:
    def test_random_points_deterministic_and_distinct(self):
        a = random_points(6, seed=3)
        b = random_points(6, seed=3)
        assert a == b
        assert len(set(a)) == 6
        assert a[0] == ConfigPoint(), "baseline config leads every search"
        assert random_points(6, seed=4) != a

    def test_grid_covers_space(self):
        grid = grid_points()
        assert len(grid) == 4 * 3 * 3 * 3 * 2
        assert len(set(grid)) == len(grid)
        assert grid_points(limit=5) == grid[:5]

    def test_point_roundtrip_and_config(self):
        for point in random_points(4, seed=1):
            assert ConfigPoint.from_dict(point.to_dict()) == point
            config = point.to_config()
            assert config.read_quorum == point.read_quorum
            assert config.write_quorum == point.write_quorum
            opts = point.rebalance_opts()
            assert opts["weights"]["writes"] == point.heat_write_weight


class TestSearch:
    def test_search_is_deterministic(self, tiny_search):
        again = explore([SCENARIOS["zipf-hot"], SCENARIOS["flash-crowd"]],
                        random_points(2, seed=0), corpus_dir=None, **TINY)
        assert json.dumps(tiny_search, sort_keys=True) == \
            json.dumps(again, sort_keys=True)

    def test_payload_shape(self, tiny_search):
        assert set(tiny_search["scenarios"]) == {"zipf-hot", "flash-crowd"}
        for result in tiny_search["scenarios"].values():
            assert result["best"] == result["table"][0]
            scores = [row["fitness"]["score"] for row in result["table"]]
            assert scores == sorted(scores)
            bests = [t["best_so_far"] for t in result["trajectory"]]
            assert bests == [min(scores[:i + 1])
                             for i in range(len(scores))]

    def test_score_matches_weights(self, tiny_search):
        for result in tiny_search["scenarios"].values():
            for row in result["table"]:
                fit = row["fitness"]
                want = round(sum(w * fit[f]
                                 for f, w in sorted(SCORE_WEIGHTS.items())),
                             6)
                assert fit["score"] == want

    def test_tables_render(self, tiny_search):
        text = format_tables(tiny_search)
        assert "== zipf-hot" in text and "== flash-crowd" in text
        for row in tiny_search["scenarios"]["zipf-hot"]["table"]:
            assert row["label"] in text


class TestCorpusRoundtrip:
    def test_promotion_writes_replayable_entries(self, tmp_path):
        """With corpus_bound=0.5 every non-best cell regresses past the
        bound, so promotion must trigger and the entry must replay to
        the recorded digest."""
        out = explore([SCENARIOS["zipf-hot"]], random_points(2, seed=0),
                      corpus_dir=tmp_path, corpus_bound=0.5, **TINY)
        promoted = out["scenarios"]["zipf-hot"]["promoted"]
        corpus = load_corpus(tmp_path)
        assert [p.name for p, _ in corpus] == sorted(promoted)
        assert corpus, "bound 0.5 must promote at least one cell"
        path, entry = corpus[0]
        assert entry["schema"] == CORPUS_SCHEMA
        report = replay_corpus_entry(entry)
        assert report.digest == entry["digest"]

    def test_replay_rejects_unknown_schema(self):
        with pytest.raises(ValueError):
            replay_corpus_entry({"schema": "bogus/9"})

    def test_write_entry_name_is_stable(self, tmp_path):
        spec = SCENARIOS["zipf-hot"]
        point = ConfigPoint()
        report = run_cell(spec, point, **TINY)
        from repro.tools.explorer import corpus_entry
        entry = corpus_entry(spec, point, digest=report.digest,
                             fitness=extract_fitness(report),
                             reason="test", **TINY)
        p1 = write_corpus_entry(tmp_path, entry)
        p2 = write_corpus_entry(tmp_path, entry)
        assert p1 == p2, "same cell → same filename (idempotent)"
        assert p1.name.startswith("zipf-hot-")


class TestFitness:
    def test_fitness_requires_obs(self):
        from repro.chaos.runner import ChaosRunner
        report = ChaosRunner(seed=1, duration=2.0, profile="crash",
                             scenario="zipf-hot").run()
        with pytest.raises(ValueError):
            extract_fitness(report)

    def test_fitness_fields(self, tiny_search):
        fit = tiny_search["scenarios"]["zipf-hot"]["best"]["fitness"]
        assert fit["ops"] > 0
        assert fit["violations"] == 0
        assert 0.0 <= fit["failure_ratio"] <= 1.0
        assert fit["p99_read_s"] >= 0.0
