"""Tests for the cluster inspection tooling."""

import pytest

from repro.core.cluster import SednaCluster
from repro.core.config import SednaConfig
from repro.tools.inspect import (describe_cluster, node_summary,
                                 replication_health, ring_summary,
                                 zk_summary)


@pytest.fixture(scope="module")
def cluster():
    c = SednaCluster(n_nodes=3, zk_size=3,
                     config=SednaConfig(num_vnodes=24))
    c.start()
    client = c.client()

    def seed():
        for i in range(10):
            yield from client.write_latest(f"i{i}", i)
        return True

    c.run(seed())
    return c


class TestSummaries:
    def test_ring_summary(self, cluster):
        ring = ring_summary(cluster)
        assert ring["num_vnodes"] == 24
        assert sum(ring["owners"].values()) == 24
        assert ring["unassigned"] == 0
        assert ring["spread"] <= 1

    def test_zk_summary(self, cluster):
        zk = zk_summary(cluster)
        assert zk["leader"] is not None
        assert len(zk["members"]) == 3
        roles = [m["role"] for m in zk["members"]]
        assert roles.count("leader") == 1

    def test_node_summary(self, cluster):
        rows = node_summary(cluster)
        assert len(rows) == 3
        assert all(row["running"] for row in rows)
        assert sum(row["keys"] for row in rows) == 30  # 10 keys x 3 replicas

    def test_replication_health(self, cluster):
        health = replication_health(cluster, [f"i{i}" for i in range(10)])
        assert health["histogram"] == {3: 10}
        assert health["under_replicated"] == []

    def test_replication_health_flags_missing(self, cluster):
        health = replication_health(cluster, ["never-written"])
        assert health["histogram"] == {0: 1}
        assert health["under_replicated"] == ["never-written"]


class TestDescribe:
    def test_full_report_renders(self, cluster):
        report = describe_cluster(cluster,
                                  sample_keys=[f"i{i}" for i in range(5)])
        assert "ZooKeeper sub-cluster" in report
        assert "Ring: 24 vnodes" in report
        assert "Real nodes" in report
        assert "Replication health" in report
        assert "node0" in report and "zk0" in report

    def test_report_shows_down_node(self, cluster):
        cluster.crash_node("node2")
        try:
            report = describe_cluster(cluster)
            assert "DOWN" in report
        finally:
            cluster.restart_node("node2")
