"""Fixture: every rpc call carries a timeout."""


class Client:
    def __init__(self, rpc):
        self.rpc = rpc

    def ping_kw(self, dst):
        return self.rpc.call(dst, "ping", {}, timeout=1.0)

    def ping_pos(self, dst):
        return self.rpc.call(dst, "ping", {}, 1.0)
