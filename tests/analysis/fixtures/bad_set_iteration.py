"""Fixture: fan-out loops over bare sets (hash order)."""


def send(member):
    return member


def fan_out_literal():
    for member in {"a", "b", "c"}:
        send(member)


def fan_out_variable(names):
    members = set(names)
    for member in members:
        send(member)


def ship_rows():
    rows = {"r1", "r2"}
    return list(rows)


class Tracker:
    def __init__(self):
        self.peers: set[str] = set()

    def broadcast(self):
        return [send(p) for p in self.peers]
