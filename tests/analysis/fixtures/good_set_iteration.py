"""Fixture: set fan-out goes through sorted()."""


def send(member):
    return member


def fan_out(peers: set):
    for member in sorted(peers):
        send(member)


def ship_rows():
    rows = {"r1", "r2"}
    return sorted(rows)


def membership_only(peers: set, name: str) -> bool:
    # Membership tests and set algebra are order-free: not flagged.
    return name in peers and bool(peers & {"a"})
