"""Fixture: a real violation carrying an inline waiver."""

import time


def host_profile():
    # repro: allow[wall-clock] -- host-only profiling helper
    return time.time()
