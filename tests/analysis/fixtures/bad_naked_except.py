"""Fixture: except clauses that swallow everything silently."""


def swallow_bare(op):
    try:
        op()
    except Exception:
        pass


def swallow_all(op):
    try:
        op()
    except:  # noqa: E722
        pass
