"""Fixture: rpc call that can block forever."""


class Client:
    def __init__(self, rpc):
        self.rpc = rpc

    def ping(self, dst):
        return self.rpc.call(dst, "ping", {})
