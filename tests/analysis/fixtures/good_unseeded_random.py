"""Fixture: every RNG is a seeded instance."""

import random


def pick(rng: random.Random, items):
    return rng.choice(items)


def make_rng(seed: int) -> random.Random:
    return random.Random(seed)
