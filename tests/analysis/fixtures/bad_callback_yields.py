"""Fixture: schedule_callback targets that cannot work."""


def tick(sim):
    yield sim.timeout(1.0)


def drain(sim):
    sim.run(until=5.0)


def boot(sim):
    sim.schedule_callback(0.5, tick)
    sim.schedule_callback(0.5, drain)
