"""Fixture: stable hashing via zlib.crc32."""

import zlib


def bucket(key: str, buckets: int) -> int:
    return zlib.crc32(key.encode()) % buckets
