"""Fixture: sim.process targets are generator functions."""


def worker(sim):
    yield sim.timeout(1.0)


def delegating(sim):
    yield from worker(sim)


def boot(sim):
    sim.process(worker(sim))
    sim.process(delegating(sim))
