"""Fixture: builtin hash() is PYTHONHASHSEED-randomized."""


def bucket(key: str, buckets: int) -> int:
    return hash(key) % buckets
