"""Fixture: narrow or observable exception handling."""


def tolerate(op, log):
    try:
        op()
    except ValueError:
        pass
    except Exception:
        log.append("failed")
