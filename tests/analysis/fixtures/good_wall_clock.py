"""Fixture: simulated time comes from the kernel."""


def stamp(sim):
    return sim.now
