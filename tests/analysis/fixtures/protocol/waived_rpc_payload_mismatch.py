# Same fault as the bad fixture, suppressed by an inline waiver.


class Node:
    def __init__(self, rpc):
        self.rpc = rpc
        self.rpc.register("fx.write", self._h_write)

    def _h_write(self, src, args):
        return args["key"], args["value"], args.get("mode")

    def do(self):
        # repro: allow[rpc-payload-mismatch]
        ok = yield from self.rpc.call("peer", "fx.write",
                                      {"key": b"k", "valu": b"v"},
                                      timeout=1.0)
        return ok
