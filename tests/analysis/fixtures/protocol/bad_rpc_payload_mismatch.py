# Seeded fault: the call site misspells "value" as "valu", so the
# payload misses a key the handler reads unconditionally AND carries a
# key the handler never looks at.


class Node:
    def __init__(self, rpc):
        self.rpc = rpc
        self.rpc.register("fx.write", self._h_write)

    def _h_write(self, src, args):
        return args["key"], args["value"], args.get("mode")

    def do(self):
        ok = yield from self.rpc.call("peer", "fx.write",
                                      {"key": b"k", "valu": b"v"},
                                      timeout=1.0)
        return ok
