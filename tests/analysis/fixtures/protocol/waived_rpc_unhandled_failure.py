# Same fault as the bad fixture, suppressed by an inline waiver.


class Node:
    def __init__(self, sim, rpc):
        self.sim = sim
        self.rpc = rpc
        self.rpc.register("fx.ping", self._h_ping)
        self.sim.process(self._loop(), name="prober")

    def _h_ping(self, src, args):
        return "pong"

    def _loop(self):
        while True:
            yield from self._probe()

    def _probe(self):
        # repro: allow[rpc-unhandled-failure]
        reply = yield from self.rpc.call("peer", "fx.ping", {},
                                         timeout=1.0)
        return reply
