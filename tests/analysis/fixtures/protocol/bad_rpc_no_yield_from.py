# Seeded fault: rpc.call returns a generator; calling it without
# ``yield from`` creates the generator and never runs the request.


class Node:
    def __init__(self, rpc):
        self.rpc = rpc
        self.rpc.register("fx.op", self._h_op)

    def _h_op(self, src, args):
        return "ok"

    def do(self):
        result = self.rpc.call("peer", "fx.op", {}, timeout=1.0)
        return result
