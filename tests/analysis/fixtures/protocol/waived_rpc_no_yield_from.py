# Same fault as the bad fixture, suppressed by an inline waiver.


class Node:
    def __init__(self, rpc):
        self.rpc = rpc
        self.rpc.register("fx.op", self._h_op)

    def _h_op(self, src, args):
        return "ok"

    def do(self):
        # repro: allow[rpc-no-yield-from]
        result = self.rpc.call("peer", "fx.op", {}, timeout=1.0)
        return result
