# Same fault as the bad fixture, suppressed by an inline waiver.


def worker(n):
    yield n


def main():
    # repro: allow[generator-dropped]
    worker(3)
    return "done"
