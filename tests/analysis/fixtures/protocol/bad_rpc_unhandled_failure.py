# Seeded fault: the probe's RpcTimeout escapes through _loop all the
# way to the sim.process target -- no try on the path, no call_retry.


class Node:
    def __init__(self, sim, rpc):
        self.sim = sim
        self.rpc = rpc
        self.rpc.register("fx.ping", self._h_ping)
        self.sim.process(self._loop(), name="prober")

    def _h_ping(self, src, args):
        return "pong"

    def _loop(self):
        while True:
            yield from self._probe()

    def _probe(self):
        reply = yield from self.rpc.call("peer", "fx.ping", {},
                                         timeout=1.0)
        return reply
