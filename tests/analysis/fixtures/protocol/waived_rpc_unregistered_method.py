# Same fault as the bad fixture, suppressed by an inline waiver.


class Node:
    def __init__(self, rpc):
        self.rpc = rpc
        self.rpc.register("fx.known", self._h_known)

    def _h_known(self, src, args):
        return args["x"]

    def do(self):
        ok = yield from self.rpc.call("peer", "fx.known", {"x": 1},
                                      timeout=1.0)
        # repro: allow[rpc-unregistered-method]
        bad = yield from self.rpc.call("peer", "fx.missing", {"x": 1},
                                       timeout=1.0)
        return ok, bad
