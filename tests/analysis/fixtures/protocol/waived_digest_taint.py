# Same fault as the bad fixture, suppressed by an inline waiver.
import time


class History:
    def __init__(self):
        self.records = []

    def digest(self):
        return summarize(self.records)


def summarize(records):
    return stamp(len(records))


def stamp(n):
    # repro: allow[digest-taint, wall-clock]
    return (n, time.time())
