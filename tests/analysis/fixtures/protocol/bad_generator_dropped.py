# Seeded fault: a generator called as a bare statement does nothing.


def worker(n):
    yield n


def main():
    worker(3)
    return "done"
