# Seeded fault: a call site names a method no register() site registers.


class Node:
    def __init__(self, rpc):
        self.rpc = rpc
        self.rpc.register("fx.known", self._h_known)

    def _h_known(self, src, args):
        return args["x"]

    def do(self):
        ok = yield from self.rpc.call("peer", "fx.known", {"x": 1},
                                      timeout=1.0)
        bad = yield from self.rpc.call("peer", "fx.missing", {"x": 1},
                                       timeout=1.0)
        return ok, bad
