# Seeded fault: a wall-clock read two calls away from History.digest()
# taints the recorded state.  The per-file lint sees only stamp(); the
# interprocedural pass connects it to the digest surface.
import time


class History:
    def __init__(self):
        self.records = []

    def digest(self):
        return summarize(self.records)


def summarize(records):
    return stamp(len(records))


def stamp(n):
    return (n, time.time())  # repro: allow[wall-clock]
