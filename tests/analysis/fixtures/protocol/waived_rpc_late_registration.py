# Same fault as the bad fixture, suppressed by an inline waiver.


class Node:
    def __init__(self, rpc):
        self.rpc = rpc
        self.rpc.register("fx.early", self._h_early)

    def _h_early(self, src, args):
        return "ok"

    def _h_late(self, src, args):
        return "ok"

    def serve_loop(self):
        yield 1
        # repro: allow[rpc-late-registration]
        self.rpc.register("fx.late", self._h_late)

    def client(self):
        a = yield from self.rpc.call("peer", "fx.early", {}, timeout=1.0)
        b = yield from self.rpc.call("peer", "fx.late", {}, timeout=1.0)
        return a, b
