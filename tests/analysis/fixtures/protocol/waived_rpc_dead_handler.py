# Same fault as the bad fixture, suppressed by an inline waiver.


class Node:
    def __init__(self, rpc):
        self.rpc = rpc
        self.rpc.register("fx.used", self._h_used)
        # repro: allow[rpc-dead-handler]
        self.rpc.register("fx.dead", self._h_dead)

    def _h_used(self, src, args):
        return "ok"

    def _h_dead(self, src, args):
        return "never reached"

    def do(self):
        result = yield from self.rpc.call("peer", "fx.used", {},
                                          timeout=1.0)
        return result
