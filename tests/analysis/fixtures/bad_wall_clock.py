"""Fixture: reads the host clock inside sim code."""

import time


def stamp():
    return time.time()
