"""Fixture: module-global RNG, shared across every run."""

import random
import uuid


def pick(items):
    return random.choice(items)


def fresh_id():
    return uuid.uuid4()
