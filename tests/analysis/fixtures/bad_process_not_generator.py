"""Fixture: sim.process target that never yields."""


def worker(sim):
    sim.now


def boot(sim):
    sim.process(worker(sim))
