"""Fixture: schedule_callback targets are plain callables."""


def fire(log):
    log.append("fired")


def boot(sim, log):
    sim.schedule_callback(0.5, fire)
