"""Dynamic tie-hazard detector: seeded races, suppression, neutrality.

The core scenario: two callbacks scheduled for the same simulated
instant from *different* source lines, both writing one tracked key.
Neither is an ancestor of the other, so their relative order is a
sequence-number accident — the detector must flag exactly that pair,
with both scheduling sites, and produce a byte-identical report when
the identical program runs again.
"""

from __future__ import annotations

from repro.analysis.hazards import HazardDetector
from repro.chaos import ChaosRunner
from repro.net.simulator import Simulator
from repro.storage.versioned import VersionedStore


def _race() -> HazardDetector:
    sim = Simulator()
    detector = HazardDetector().attach(sim)
    shared = detector.tracked_dict("shared")

    def writer_a():
        shared["k"] = "a"

    def writer_b():
        shared["k"] = "b"

    sim.schedule_callback(1.0, writer_a)
    sim.schedule_callback(1.0, writer_b)
    sim.run(until=2.0)
    detector.detach()
    return detector


class TestTieHazard:
    def test_same_instant_writers_are_flagged_with_both_sites(self):
        detector = _race()
        assert len(detector.hazards) == 1
        hazard = detector.hazards[0]
        assert hazard.time == 1.0
        assert hazard.state_key == "shared['k']"
        assert "write" in hazard.first_access
        assert "write" in hazard.second_access
        # Both event sites point at the two distinct schedule lines here.
        assert "test_hazard_detector.py" in hazard.first_site
        assert "test_hazard_detector.py" in hazard.second_site
        assert hazard.first_site != hazard.second_site

    def test_report_is_deterministic_across_identical_runs(self):
        first, second = _race(), _race()
        assert first.report() == second.report()
        assert [h.key() for h in first.hazards] == \
               [h.key() for h in second.hazards]

    def test_causally_ordered_same_instant_is_not_a_hazard(self):
        sim = Simulator()
        detector = HazardDetector().attach(sim)
        shared = detector.tracked_dict("shared")

        def second():
            shared["k"] = 2

        def first():
            shared["k"] = 1
            sim.schedule_callback(0.0, second)  # child: same instant

        sim.schedule_callback(1.0, first)
        sim.run(until=2.0)
        detector.detach()
        assert detector.ok, detector.report()

    def test_different_instants_are_not_a_hazard(self):
        sim = Simulator()
        detector = HazardDetector().attach(sim)
        shared = detector.tracked_dict("shared")
        sim.schedule_callback(1.0, lambda: shared.__setitem__("k", 1))
        sim.schedule_callback(2.0, lambda: shared.__setitem__("k", 2))
        sim.run(until=3.0)
        detector.detach()
        assert detector.ok, detector.report()

    def test_concurrent_reads_are_not_a_hazard(self):
        sim = Simulator()
        detector = HazardDetector().attach(sim)
        shared = detector.tracked_dict("shared", {"k": 0})
        sim.schedule_callback(1.0, lambda: shared.get("k"))
        sim.schedule_callback(1.0, lambda: shared.get("k"))
        sim.run(until=2.0)
        detector.detach()
        assert detector.ok, detector.report()

    def test_read_write_race_is_flagged(self):
        sim = Simulator()
        detector = HazardDetector().attach(sim)
        shared = detector.tracked_dict("shared", {"k": 0})
        sim.schedule_callback(1.0, lambda: shared.get("k"))
        sim.schedule_callback(1.0, lambda: shared.__setitem__("k", 1))
        sim.run(until=2.0)
        detector.detach()
        assert len(detector.hazards) == 1
        accesses = {detector.hazards[0].first_access.split(" ")[0],
                    detector.hazards[0].second_access.split(" ")[0]}
        assert accesses == {"read", "write"}


class TestStoreTracking:
    def test_tracked_store_reports_per_key(self):
        sim = Simulator()
        detector = HazardDetector().attach(sim)
        store = detector.track_store("node0", VersionedStore())

        sim.schedule_callback(1.0,
                              lambda: store.write_latest("k", b"a", 1.0,
                                                         "src1"))
        sim.schedule_callback(1.0,
                              lambda: store.write_latest("k", b"b", 1.0,
                                                         "src2"))
        sim.run(until=2.0)
        detector.detach()
        assert len(detector.hazards) == 1
        assert detector.hazards[0].state_key == "node0/k"


class TestNeutrality:
    def test_tracing_does_not_perturb_the_run(self):
        plain = ChaosRunner(seed=3, profile="mixed", duration=3.0).run()
        traced = ChaosRunner(seed=3, profile="mixed", duration=3.0,
                             hazards=True).run()
        assert traced.digest == plain.digest
        assert traced.end_time == plain.end_time
        assert traced.op_counts == plain.op_counts
