"""Per-rule fixtures for the determinism lint.

Every rule has a ``bad_<rule>.py`` fixture it must fire on (and fire
*alone* — fixtures are single-rule by construction) and a
``good_<rule>.py`` fixture it must stay quiet on.  Plus: inline
waivers, parse errors, CLI exit status, and the meta-check that the
shipped source tree itself lints clean.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis.lint import (LintReport, RULES, lint_file, lint_paths,
                                 lint_source, main)

FIXTURES = Path(__file__).parent / "fixtures"
SRC = Path(__file__).resolve().parents[2] / "src"


def _slug(rule: str) -> str:
    return rule.replace("-", "_")


@pytest.mark.parametrize("rule", sorted(RULES))
class TestPerRuleFixtures:
    def test_fires_on_bad_fixture(self, rule):
        violations = lint_file(FIXTURES / f"bad_{_slug(rule)}.py")
        hits = [v for v in violations if v.rule == rule]
        assert hits, f"{rule} did not fire on its bad fixture"
        assert not any(v.waived for v in hits)
        # Fixtures are single-rule: nothing else may fire.
        assert {v.rule for v in violations} == {rule}, violations

    def test_quiet_on_good_fixture(self, rule):
        violations = lint_file(FIXTURES / f"good_{_slug(rule)}.py")
        assert violations == [], [v.render() for v in violations]


class TestWaivers:
    def test_waiver_suppresses_but_is_recorded(self):
        violations = lint_file(FIXTURES / "waived.py")
        assert len(violations) == 1
        assert violations[0].rule == "wall-clock"
        assert violations[0].waived
        report = LintReport(violations=violations, files_checked=1)
        assert report.ok and report.active == []

    def test_waiver_on_same_line(self):
        src = "import time\nts = time.time()  # repro: allow[wall-clock]\n"
        (violation,) = lint_source(src)
        assert violation.waived

    def test_wildcard_waiver(self):
        src = "import time\n# repro: allow[*]\nts = time.time()\n"
        (violation,) = lint_source(src)
        assert violation.waived

    def test_waiver_for_other_rule_does_not_apply(self):
        src = "import time\n# repro: allow[builtin-hash]\nts = time.time()\n"
        (violation,) = lint_source(src)
        assert not violation.waived


class TestHarness:
    def test_parse_error_is_a_finding_not_a_crash(self):
        (violation,) = lint_source("def broken(:\n", path="x.py")
        assert violation.rule == "parse-error"

    def test_source_tree_is_clean(self):
        report = lint_paths([SRC])
        assert report.files_checked > 50
        assert report.ok, report.render()

    def test_cli_exit_status_counts_violations(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import time\n\nts = time.time()\n",
                       encoding="utf-8")
        assert main([str(bad)]) == 1
        assert main([str(FIXTURES / "good_wall_clock.py")]) == 0
        capsys.readouterr()

    def test_cli_json_format(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("h = hash('k')\n", encoding="utf-8")
        assert main([str(bad), "--format", "json"]) == 1
        out = capsys.readouterr().out
        assert '"builtin-hash"' in out
