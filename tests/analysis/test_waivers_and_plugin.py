"""Waiver-dialect edge cases and pytest-plugin failure reporting.

The waiver comment (``# repro: allow[rule-id]``) is shared between the
per-file determinism lint and the interprocedural protocol analyzer,
so its parsing edge cases get pinned here once, against the shared
:func:`repro.analysis.lint.is_waived`, plus end-to-end through
``lint_source``.  The second half drives the pytest plugin's *failure*
paths in subprocess sessions — the success path runs on every tier-1
session, so only the error reporting needs dedicated coverage.
"""

from __future__ import annotations

import subprocess
import sys
import textwrap
from pathlib import Path

from repro.analysis.lint import is_waived, lint_source

REPO = Path(__file__).resolve().parents[2]


def _lint(source: str):
    return lint_source(textwrap.dedent(source), path="waiver_fixture.py")


class TestWaiverParsing:
    def test_multiple_rule_ids_on_one_line(self):
        lines = ["x = 1  # repro: allow[wall-clock, unseeded-random]"]
        assert is_waived(lines, "wall-clock", 1)
        assert is_waived(lines, "unseeded-random", 1)
        assert not is_waived(lines, "builtin-hash", 1)

    def test_unknown_rule_id_does_not_suppress_others(self):
        lines = ["x = 1  # repro: allow[no-such-rule]"]
        assert not is_waived(lines, "wall-clock", 1)
        # A list with one unknown entry still waives the known ones.
        mixed = ["x = 1  # repro: allow[no-such-rule, wall-clock]"]
        assert is_waived(mixed, "wall-clock", 1)
        assert not is_waived(mixed, "unseeded-random", 1)

    def test_star_waives_every_rule(self):
        lines = ["x = 1  # repro: allow[*]"]
        for rule in ("wall-clock", "builtin-hash", "rpc-timeout"):
            assert is_waived(lines, rule, 1)

    def test_waiver_on_comment_only_line_above(self):
        lines = [
            "# repro: allow[wall-clock]",
            "now = time.time()",
        ]
        assert is_waived(lines, "wall-clock", 2)

    def test_waiver_two_lines_above_does_not_apply(self):
        lines = [
            "# repro: allow[wall-clock]",
            "",
            "now = time.time()",
        ]
        assert not is_waived(lines, "wall-clock", 3)

    def test_line_numbers_out_of_range_are_harmless(self):
        lines = ["# repro: allow[wall-clock]"]
        assert not is_waived(lines, "wall-clock", 99)
        assert not is_waived([], "wall-clock", 1)
        # Line 1 has no "line above"; the lookup must not wrap around
        # to the end of the file.
        tail = ["x = 1", "# repro: allow[wall-clock]"]
        assert not is_waived(tail, "wall-clock", 1)

    def test_lint_source_marks_waived_not_dropped(self):
        violations = _lint(
            """
            import time

            def f():
                return time.time()  # repro: allow[wall-clock]
            """
        )
        hits = [v for v in violations if v.rule == "wall-clock"]
        assert hits and all(v.waived for v in hits)

    def test_lint_source_comma_list_covers_both_rules_on_one_line(self):
        violations = _lint(
            """
            import time

            def f():
                # repro: allow[wall-clock, builtin-hash]
                return hash(str(time.time()))
            """
        )
        assert {v.rule for v in violations} >= {"wall-clock",
                                                "builtin-hash"}
        assert all(v.waived for v in violations)

    def test_lint_source_unknown_id_leaves_finding_active(self):
        violations = _lint(
            """
            import time

            def f():
                return time.time()  # repro: allow[not-a-rule]
            """
        )
        hits = [v for v in violations if v.rule == "wall-clock"]
        assert hits and not any(v.waived for v in hits)


def _run_pytest(tmp_path: Path, *extra: str) -> subprocess.CompletedProcess:
    """One isolated pytest session with the plugin loaded explicitly."""
    (tmp_path / "test_dummy.py").write_text(
        "def test_ok():\n    assert True\n", encoding="utf-8")
    return subprocess.run(
        [sys.executable, "-m", "pytest", "-q", "-p", "no:cacheprovider",
         "-p", "repro.analysis.pytest_plugin", *extra, "test_dummy.py"],
        cwd=tmp_path, capture_output=True, text=True,
        env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"},
    )


class TestPluginFailureReporting:
    def test_lint_failure_aborts_session_with_usage_error(self, tmp_path):
        bad = tmp_path / "dirty.py"
        bad.write_text(
            "import time\n\ndef f():\n    return time.time()\n",
            encoding="utf-8")
        proc = _run_pytest(tmp_path, f"--repro-lint-paths={bad}")
        # pytest.UsageError exits with code 4 before collection.
        assert proc.returncode == 4
        err = proc.stderr + proc.stdout
        assert "determinism lint failed" in err
        assert "wall-clock" in err
        assert "docs/protocols.md" in err

    def test_protocol_failure_aborts_after_clean_lint(self, tmp_path):
        pkg = tmp_path / "src" / "repro"
        pkg.mkdir(parents=True)
        (pkg / "__init__.py").write_text("", encoding="utf-8")
        (pkg / "mod.py").write_text(textwrap.dedent(
            """
            class Client:
                def __init__(self, rpc):
                    self.rpc = rpc

                def fetch(self):
                    out = yield from self.rpc.call(
                        "peer", "fx.nowhere", {}, timeout=1.0)
                    return out
            """), encoding="utf-8")
        clean = tmp_path / "clean.py"
        clean.write_text("X = 1\n", encoding="utf-8")
        proc = _run_pytest(
            tmp_path, f"--repro-lint-paths={clean}", "--repro-protocol")
        assert proc.returncode == 4
        err = proc.stderr + proc.stdout
        assert "protocol analysis failed" in err
        assert "rpc-unregistered-method" in err
        assert "docs/protocols.md" in err

    def test_protocol_env_flag_reports_success_summary(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("X = 1\n", encoding="utf-8")
        proc = subprocess.run(
            [sys.executable, "-m", "pytest", "-q", "-p",
             "no:cacheprovider", "-p", "repro.analysis.pytest_plugin",
             f"--repro-lint-paths={clean}", "test_dummy.py"],
            cwd=_seed_dummy(tmp_path), capture_output=True, text=True,
            env={"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin",
                 "REPRO_PROTOCOL_ANALYSIS": "1"},
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "repro protocol analysis:" in proc.stdout
        assert "0 new finding(s)" in proc.stdout


def _seed_dummy(tmp_path: Path) -> Path:
    (tmp_path / "test_dummy.py").write_text(
        "def test_ok():\n    assert True\n", encoding="utf-8")
    return tmp_path
