"""Fixture suite and unit tests for the interprocedural analyzer.

Every protocol rule has a ``bad_<slug>.py`` fixture it must fire on
(and fire *alone*) and a ``waived_<slug>.py`` twin where the same
finding is suppressed by an inline ``# repro: allow[rule-id]``.  Plus:
dispatch-wrapper discovery, aliased registration, recursive payload
read-sets, baseline round-trips, CLI behaviour, and the meta-checks
that the shipped tree analyzes clean and fast enough to ride the
pytest plugin.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.analysis.protocol import (
    PROTOCOL_RULES,
    analyze_paths,
    analyze_protocol_for_pytest,
    baseline_key,
    build_analyzer,
    load_baseline,
    main,
    render_method_table,
    write_baseline,
)

FIXTURES = Path(__file__).parent / "fixtures" / "protocol"
REPO = Path(__file__).resolve().parents[2]

_TREE_CACHE = []


def _tree_analyzer():
    """The full-tree analyzer, built once per test session (same roots
    as the CLI default from the repo root)."""
    if not _TREE_CACHE:
        analyzer = build_analyzer(
            [REPO / "src" / "repro"],
            [REPO / "tests", REPO / "benchmarks", REPO / "examples"])
        analyzer.run()
        _TREE_CACHE.append(analyzer)
    return _TREE_CACHE[0]


def _slug(rule: str) -> str:
    return rule.replace("-", "_")


def _analyze(path: Path):
    return analyze_paths([path]).violations


@pytest.mark.parametrize("rule", sorted(PROTOCOL_RULES))
class TestPerRuleFixtures:
    def test_fires_on_bad_fixture(self, rule):
        violations = _analyze(FIXTURES / f"bad_{_slug(rule)}.py")
        hits = [v for v in violations if v.rule == rule]
        assert hits, f"{rule} did not fire on its bad fixture"
        assert not any(v.waived for v in hits)
        # Fixtures are single-rule by construction.
        assert {v.rule for v in violations} == {rule}, \
            [v.render() for v in violations]

    def test_waiver_suppresses_same_fault(self, rule):
        violations = _analyze(FIXTURES / f"waived_{_slug(rule)}.py")
        hits = [v for v in violations if v.rule == rule]
        assert hits, f"{rule} fixture with waiver no longer fires at all"
        assert all(v.waived for v in hits), \
            [v.render() for v in hits if not v.waived]


class TestInterprocedural:
    def test_unregistered_method_through_dispatch_wrapper(self, tmp_path):
        """Method literals routed through a forwarding wrapper still
        reach the conformance check (the Coordinator._replica_call
        pattern)."""
        (tmp_path / "mod.py").write_text(
            "class C:\n"
            "    def __init__(self, rpc):\n"
            "        self.rpc = rpc\n"
            "        self.rpc.register('fx.real', self._h)\n"
            "    def _h(self, src, args):\n"
            "        return 'ok'\n"
            "    def _request(self, method, args):\n"
            "        result = yield from self.rpc.call('peer', method,\n"
            "                                          args, timeout=1.0)\n"
            "        return result\n"
            "    def go(self):\n"
            "        a = yield from self._request('fx.real', {})\n"
            "        b = yield from self._request('fx.ghost', {})\n"
            "        return a, b\n", encoding="utf-8")
        violations = _analyze(tmp_path)
        assert [v.rule for v in violations] == ["rpc-unregistered-method"]
        assert "fx.ghost" in violations[0].message

    def test_aliased_registration_is_extracted(self, tmp_path):
        """``r = self.rpc.register; r("m", h)`` counts as a register
        site (the SednaNode/ZkServer idiom)."""
        (tmp_path / "mod.py").write_text(
            "class C:\n"
            "    def __init__(self, rpc):\n"
            "        self.rpc = rpc\n"
            "        r = self.rpc.register\n"
            "        r('fx.alias', self._h)\n"
            "    def _h(self, src, args):\n"
            "        return 'ok'\n", encoding="utf-8")
        violations = _analyze(tmp_path)
        assert [v.rule for v in violations] == ["rpc-dead-handler"]
        assert "fx.alias" in violations[0].message

    def test_payload_read_set_follows_forwarded_args(self, tmp_path):
        """A handler that hands ``args`` to a helper inherits the
        helper's key reads (the node-handler -> coordinate_* pattern):
        the call site owes 'key' even though the handler body never
        subscripts args itself."""
        (tmp_path / "mod.py").write_text(
            "class C:\n"
            "    def __init__(self, rpc):\n"
            "        self.rpc = rpc\n"
            "        self.rpc.register('fx.fwd', self._h)\n"
            "    def _h(self, src, args):\n"
            "        return self._apply(args)\n"
            "    def _apply(self, args):\n"
            "        return args['key'], args.get('mode')\n"
            "    def go(self):\n"
            "        r = yield from self.rpc.call('peer', 'fx.fwd',\n"
            "                                     {'wrong': 1},\n"
            "                                     timeout=1.0)\n"
            "        return r\n", encoding="utf-8")
        violations = _analyze(tmp_path)
        assert {v.rule for v in violations} == {"rpc-payload-mismatch"}
        messages = " ".join(v.message for v in violations)
        assert "key" in messages and "wrong" in messages

    def test_dict_copy_with_added_keys_resolves(self, tmp_path):
        """``retry = dict(payload); retry['extra'] = 1`` resolves to
        the source dict's keys plus the addition (coordinator retry
        idiom) -- no false mismatch."""
        (tmp_path / "mod.py").write_text(
            "class C:\n"
            "    def __init__(self, rpc):\n"
            "        self.rpc = rpc\n"
            "        self.rpc.register('fx.w', self._h)\n"
            "    def _h(self, src, args):\n"
            "        return args['key'], args.get('extra')\n"
            "    def go(self):\n"
            "        payload = {'key': 1}\n"
            "        retry = dict(payload)\n"
            "        retry['extra'] = 1\n"
            "        r = yield from self.rpc.call('peer', 'fx.w', retry,\n"
            "                                     timeout=1.0)\n"
            "        return r\n", encoding="utf-8")
        assert _analyze(tmp_path) == []

    def test_try_on_caller_level_protects_failure_escape(self, tmp_path):
        """A try/except RpcTimeout one frame up the call chain keeps
        rpc-unhandled-failure quiet."""
        (tmp_path / "mod.py").write_text(
            "class C:\n"
            "    def __init__(self, sim, rpc):\n"
            "        self.sim = sim\n"
            "        self.rpc = rpc\n"
            "        self.rpc.register('fx.p', self._h)\n"
            "        self.sim.process(self._loop(), name='x')\n"
            "    def _h(self, src, args):\n"
            "        return 'ok'\n"
            "    def _loop(self):\n"
            "        while True:\n"
            "            try:\n"
            "                yield from self._probe()\n"
            "            except RpcTimeout:\n"
            "                pass\n"
            "    def _probe(self):\n"
            "        r = yield from self.rpc.call('peer', 'fx.p', {},\n"
            "                                     timeout=1.0)\n"
            "        return r\n", encoding="utf-8")
        assert _analyze(tmp_path) == []

    def test_call_retry_is_accepted_mitigation(self, tmp_path):
        """call_retry sites never feed rpc-unhandled-failure."""
        (tmp_path / "mod.py").write_text(
            "class C:\n"
            "    def __init__(self, sim, rpc):\n"
            "        self.sim = sim\n"
            "        self.rpc = rpc\n"
            "        self.rpc.register('fx.p', self._h)\n"
            "        self.sim.process(self._loop(), name='x')\n"
            "    def _h(self, src, args):\n"
            "        return 'ok'\n"
            "    def _loop(self):\n"
            "        r = yield from self.rpc.call_retry('peer', 'fx.p',\n"
            "                                           {}, timeout=1.0)\n"
            "        yield r\n", encoding="utf-8")
        assert _analyze(tmp_path) == []

    def test_taint_does_not_cross_out_of_digest_closure(self, tmp_path):
        """A wall-clock read in a function *not* reachable from the
        digest surface is the per-file lint's business, not taint."""
        (tmp_path / "mod.py").write_text(
            "import time\n"
            "class History:\n"
            "    def digest(self):\n"
            "        return 'clean'\n"
            "def unrelated():\n"
            "    return time.time()\n", encoding="utf-8")
        assert _analyze(tmp_path) == []


class TestBaseline:
    def test_round_trip_and_matching(self, tmp_path):
        violations = _analyze(FIXTURES / "bad_rpc_dead_handler.py")
        path = tmp_path / "baseline.json"
        write_baseline(path, violations)
        known = load_baseline(path)
        assert known == {baseline_key(v) for v in violations}

    def test_baseline_keys_carry_no_line_numbers(self, tmp_path):
        violations = _analyze(FIXTURES / "bad_rpc_dead_handler.py")
        path = tmp_path / "baseline.json"
        write_baseline(path, violations)
        data = json.loads(path.read_text(encoding="utf-8"))
        assert data["version"] == 1
        assert all(set(f) == {"rule", "path", "message"}
                   for f in data["findings"])

    def test_cli_baseline_suppresses_known_findings(self, tmp_path,
                                                    capsys):
        fixture = FIXTURES / "bad_rpc_dead_handler.py"
        baseline = tmp_path / "baseline.json"
        assert main([str(fixture), "--calls-from", str(tmp_path),
                     "--write-baseline", "--baseline",
                     str(baseline)]) == 0
        assert main([str(fixture), "--calls-from", str(tmp_path),
                     "--baseline", str(baseline)]) == 0
        # Without the baseline the same finding is fatal again.
        assert main([str(fixture), "--calls-from", str(tmp_path)]) == 1
        capsys.readouterr()


class TestCli:
    def test_exit_status_counts_new_findings(self, capsys):
        assert main([str(FIXTURES / "bad_generator_dropped.py"),
                     "--calls-from", str(FIXTURES)]) == 1
        assert main([str(FIXTURES / "waived_generator_dropped.py"),
                     "--calls-from", str(FIXTURES)]) == 0
        capsys.readouterr()

    def test_json_format(self, capsys):
        main([str(FIXTURES / "bad_rpc_no_yield_from.py"),
              "--calls-from", str(FIXTURES), "--json"])
        out = capsys.readouterr().out
        findings = json.loads(out)
        assert findings and findings[0]["rule"] == "rpc-no-yield-from"

    def test_table_lists_registered_methods(self, capsys):
        main([str(FIXTURES / "bad_rpc_dead_handler.py"),
              "--calls-from", str(FIXTURES), "--table"])
        out = capsys.readouterr().out
        assert "| `fx.used` |" in out
        assert "*(dead)*" in out  # fx.dead has no caller anywhere


class TestRealTree:
    def test_shipped_tree_is_clean_and_fast(self):
        t0 = time.monotonic()
        new, summary = analyze_protocol_for_pytest(
            REPO, baseline=REPO / "tests/analysis/protocol_baseline.json")
        elapsed = time.monotonic() - t0
        assert new == [], [v.render() for v in new]
        assert "0 new finding(s)" in summary
        # Acceptance bound: viable as a pytest-plugin pass.
        assert elapsed < 10.0, f"protocol analysis took {elapsed:.1f}s"

    def test_wire_surface_extraction_is_complete(self):
        methods = {r["method"] for r in _tree_analyzer().method_table()}
        # Spot-check the protocol families documented in
        # docs/protocols.md; renames must show up here.
        for expected in ("sedna.write", "sedna.cread", "replica.write",
                         "replica.ping", "replica.fetch", "migrate.begin",
                         "zk.propose", "zk.vote_req", "mc.mget",
                         "stats.vnodes"):
            assert expected in methods, expected
        # The notify-path zk control messages must NOT be RPC methods.
        assert "zk.commit" not in methods
        assert "zk.new_leader" not in methods

    def test_known_dispatch_wrappers_are_discovered(self):
        wrappers = set(_tree_analyzer().wrappers)
        for expected in ("repro.core.coordinator.QuorumCoordinator"
                         "._replica_call",
                         "repro.core.client.SednaClient._request",
                         "repro.zk.client.ZkClient._call",
                         "repro.zk.server.ZkServer._forward"):
            assert expected in wrappers, sorted(wrappers)


class TestGeneratedDocsTable:
    def test_docs_table_matches_extraction(self):
        """Drift check: docs/protocols.md carries the generated wire
        table verbatim; regenerate with
        ``python -m repro.analysis.protocol --table``."""
        rendered = render_method_table(_tree_analyzer().method_table())
        docs = (REPO / "docs" / "protocols.md").read_text(encoding="utf-8")
        assert rendered in docs, (
            "docs/protocols.md RPC table is stale; regenerate with "
            "'python -m repro.analysis.protocol --table' and paste "
            "between the markers")
