"""Smoke tests: every shipped example runs to completion.

Each example is executed in-process (runpy) with stdout captured; the
assertions check the banner lines that prove the interesting part
actually happened.
"""

import io
import runpy
import sys
from contextlib import redirect_stdout
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[2] / "examples"


def run_example(name: str) -> str:
    buffer = io.StringIO()
    with redirect_stdout(buffer):
        runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return buffer.getvalue()


def test_quickstart():
    out = run_example("quickstart.py")
    assert "read_latest -> 'hello, sedna'" in out
    assert "after lazy recovery: 3" in out


def test_microblog_search():
    out = run_example("microblog_search.py")
    assert "crawl->searchable freshness" in out
    assert "0 action errors" in out


def test_realtime_analytics():
    out = run_example("realtime_analytics.py")
    assert "trending dashboard" in out
    assert "converged value: 0" in out


def test_failure_recovery():
    out = run_example("failure_recovery.py")
    assert "40/40 keys intact" in out


def test_elastic_scaling():
    out = run_example("elastic_scaling.py")
    assert "300/300 keys correct after scaling" in out
    assert "post-GC verification: 300/300" in out


def test_coordination():
    out = run_example("coordination.py")
    assert "every job consumed exactly once" in out
