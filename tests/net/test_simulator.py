"""Unit tests for the DES kernel."""

import pytest

from repro.net.simulator import (AllOf, AnyOf, Event, Interrupt,
                                 SimulationError, Simulator)


@pytest.fixture
def sim():
    return Simulator()


class TestEvent:
    def test_starts_pending(self, sim):
        ev = sim.event()
        assert not ev.triggered
        assert not ev.processed
        assert ev.ok is None

    def test_succeed_sets_value(self, sim):
        ev = sim.event()
        ev.succeed(42)
        assert ev.triggered and ev.ok
        assert ev.value == 42

    def test_double_succeed_raises(self, sim):
        ev = sim.event()
        ev.succeed()
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_fail_requires_exception(self, sim):
        ev = sim.event()
        with pytest.raises(SimulationError):
            ev.fail("not an exception")

    def test_fail_then_succeed_raises(self, sim):
        ev = sim.event()
        ev.fail(ValueError("x"))
        with pytest.raises(SimulationError):
            ev.succeed()

    def test_unwaited_failed_event_surfaces(self, sim):
        ev = sim.event()
        ev.fail(ValueError("boom"))
        with pytest.raises(ValueError, match="boom"):
            sim.run()


class TestTimeout:
    def test_advances_clock(self, sim):
        sim.timeout(2.5)
        sim.run()
        assert sim.now == 2.5

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.timeout(-1.0)

    def test_zero_delay_fires_now(self, sim):
        fired = []
        ev = sim.timeout(0.0, value="v")
        ev.callbacks.append(lambda e: fired.append(e.value))
        sim.run()
        assert fired == ["v"] and sim.now == 0.0

    def test_ordering_is_fifo_at_same_time(self, sim):
        order = []
        for i in range(5):
            ev = sim.timeout(1.0, value=i)
            ev.callbacks.append(lambda e: order.append(e.value))
        sim.run()
        assert order == [0, 1, 2, 3, 4]


class TestProcess:
    def test_simple_process_runs(self, sim):
        trace = []

        def worker():
            trace.append(sim.now)
            yield sim.timeout(1.0)
            trace.append(sim.now)
            return "done"

        proc = sim.process(worker())
        result = sim.run(until=proc)
        assert result == "done"
        assert trace == [0.0, 1.0]

    def test_process_is_joinable_event(self, sim):
        def child():
            yield sim.timeout(3.0)
            return 7

        def parent():
            value = yield sim.process(child())
            return value * 2

        proc = sim.process(parent())
        assert sim.run(until=proc) == 14
        assert sim.now == 3.0

    def test_process_exception_fails_event(self, sim):
        def bad():
            yield sim.timeout(1.0)
            raise RuntimeError("kaput")

        proc = sim.process(bad())
        with pytest.raises(RuntimeError, match="kaput"):
            sim.run(until=proc)

    def test_yield_failed_event_throws_in(self, sim):
        def waiter(ev):
            try:
                yield ev
            except ValueError as err:
                return f"caught {err}"

        ev = sim.event()
        proc = sim.process(waiter(ev))
        sim.schedule_callback(1.0, lambda: ev.fail(ValueError("vex")))
        assert sim.run(until=proc) == "caught vex"

    def test_yield_already_processed_event(self, sim):
        ev = sim.event()
        ev.succeed("early")
        sim.run()
        assert ev.processed

        def late():
            value = yield ev
            return value

        proc = sim.process(late())
        assert sim.run(until=proc) == "early"
        assert sim.now == 0.0

    def test_yield_non_event_raises_in_process(self, sim):
        def bad():
            yield 42

        proc = sim.process(bad())
        with pytest.raises(SimulationError, match="invalid target"):
            sim.run(until=proc)

    def test_interrupt_waiting_process(self, sim):
        def sleeper():
            try:
                yield sim.timeout(100.0)
                return "slept"
            except Interrupt as irq:
                return f"interrupted:{irq.cause}"

        proc = sim.process(sleeper())

        def interrupter():
            yield sim.timeout(1.0)
            proc.interrupt("wake")

        sim.process(interrupter())
        assert sim.run(until=proc) == "interrupted:wake"
        assert sim.now == 1.0

    def test_interrupt_finished_process_errors(self, sim):
        def quick():
            yield sim.timeout(0.0)

        proc = sim.process(quick())
        sim.run()
        with pytest.raises(SimulationError):
            proc.interrupt()

    def test_is_alive(self, sim):
        def worker():
            yield sim.timeout(5.0)

        proc = sim.process(worker())
        assert proc.is_alive
        sim.run()
        assert not proc.is_alive


class TestConditions:
    def test_any_of_first_wins(self, sim):
        def racer():
            fast = sim.timeout(1.0, value="fast")
            slow = sim.timeout(5.0, value="slow")
            result = yield AnyOf(sim, (fast, slow))
            return (fast in result, slow in result, sim.now)

        proc = sim.process(racer())
        fast_in, slow_in, when = sim.run(until=proc)
        assert fast_in and not slow_in and when == 1.0

    def test_all_of_waits_for_all(self, sim):
        def gatherer():
            evs = [sim.timeout(t, value=t) for t in (1.0, 3.0, 2.0)]
            result = yield AllOf(sim, evs)
            return sorted(result.values()), sim.now

        proc = sim.process(gatherer())
        values, when = sim.run(until=proc)
        assert values == [1.0, 2.0, 3.0] and when == 3.0

    def test_any_of_propagates_failure(self, sim):
        def racer(ev):
            try:
                yield AnyOf(sim, (ev, sim.timeout(10.0)))
            except ValueError:
                return "failed"
            return "ok"

        ev = sim.event()
        proc = sim.process(racer(ev))
        sim.schedule_callback(1.0, lambda: ev.fail(ValueError()))
        assert sim.run(until=proc) == "failed"

    def test_empty_all_of_triggers_immediately(self, sim):
        cond = AllOf(sim, ())
        assert cond.triggered and cond.value == {}

    def test_condition_with_pretriggered_children(self, sim):
        ev = sim.event()
        ev.succeed("x")
        sim.run()
        cond = AnyOf(sim, (ev,))
        assert cond.triggered


class TestRun:
    def test_run_until_time_stops_clock_exactly(self, sim):
        sim.timeout(10.0)
        sim.run(until=4.0)
        assert sim.now == 4.0

    def test_run_into_past_rejected(self, sim):
        sim.timeout(1.0)
        sim.run()
        with pytest.raises(SimulationError):
            sim.run(until=0.5)

    def test_run_dry_before_event_raises(self, sim):
        ev = sim.event()
        with pytest.raises(SimulationError, match="ran dry"):
            sim.run(until=ev)

    def test_peek(self, sim):
        assert sim.peek() == float("inf")
        sim.timeout(3.0)
        assert sim.peek() == 3.0

    def test_determinism(self):
        def build_and_run(seed):
            import random
            rng = random.Random(seed)
            s = Simulator()
            trace = []

            def worker(wid):
                for _ in range(10):
                    yield s.timeout(rng.random())
                    trace.append((round(s.now, 9), wid))

            for wid in range(5):
                s.process(worker(wid))
            s.run()
            return trace

        assert build_and_run(7) == build_and_run(7)

    def test_schedule_callback(self, sim):
        hits = []
        sim.schedule_callback(2.0, lambda: hits.append(sim.now))
        sim.run()
        assert hits == [2.0]
