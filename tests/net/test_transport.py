"""Unit tests for the simulated transport and latency models."""

import pytest

from repro.net.latency import LanGigabit, NoLatency, UniformLatency
from repro.net.simulator import Simulator
from repro.net.transport import Network, estimate_size


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def net(sim):
    return Network(sim, latency=NoLatency())


class TestEstimateSize:
    def test_primitives(self):
        assert estimate_size(None) == 1
        assert estimate_size(True) == 1
        assert estimate_size(3) == 8
        assert estimate_size(2.5) == 8
        assert estimate_size("abcd") == 4
        assert estimate_size(b"abcd") == 4

    def test_containers_recurse(self):
        assert estimate_size(["ab", "cd"]) == 8 + 2 + 2
        assert estimate_size({"k": "vv"}) == 8 + 1 + 2

    def test_deep_nesting_bounded(self):
        deep = "x"
        for _ in range(20):
            deep = [deep]
        assert estimate_size(deep) < 1000


class TestLatencyModels:
    def test_no_latency(self):
        assert NoLatency().delay(10_000) == 0.0

    def test_lan_gigabit_sub_millisecond_for_small_messages(self):
        model = LanGigabit(seed=1)
        delays = [model.delay(100) for _ in range(100)]
        assert all(0.0 < d < 0.001 for d in delays), "paper: sub-ms RTT"

    def test_bandwidth_term_grows_with_size(self):
        model = LanGigabit(jitter=0.0)
        assert model.delay(1_000_000) > model.delay(100) + 0.005

    def test_jitter_deterministic_per_seed(self):
        a = [LanGigabit(seed=5).delay(10) for _ in range(10)]
        b = [LanGigabit(seed=5).delay(10) for _ in range(10)]
        assert a == b

    def test_uniform_latency_range(self):
        model = UniformLatency(propagation=0.01, jitter=0.005, seed=3)
        for _ in range(50):
            d = model.delay(10**9)  # size irrelevant
            assert 0.01 <= d <= 0.015


class TestEndpointMessaging:
    def test_send_and_pull_receive(self, sim, net):
        a, b = net.endpoint("a"), net.endpoint("b")

        def receiver():
            msg = yield b.recv()
            return (msg.src, msg.payload)

        proc = sim.process(receiver())
        a.send("b", {"hello": 1})
        assert sim.run(until=proc) == ("a", {"hello": 1})

    def test_push_handler(self, sim, net):
        got = []
        a, b = net.endpoint("a"), net.endpoint("b")
        b.on_message(lambda m: got.append(m.payload))
        a.send("b", "one")
        a.send("b", "two")
        sim.run()
        assert got == ["one", "two"]

    def test_backlog_drained_when_handler_installed(self, sim, net):
        a, b = net.endpoint("a"), net.endpoint("b")
        a.send("b", "early")
        sim.run()
        got = []
        b.on_message(lambda m: got.append(m.payload))
        assert got == ["early"]

    def test_latency_applied(self, sim):
        net = Network(sim, latency=UniformLatency(propagation=0.25, jitter=0.0))
        a, b = net.endpoint("a"), net.endpoint("b")

        def receiver():
            msg = yield b.recv()
            return sim.now, msg.delivered_at

        proc = sim.process(receiver())
        a.send("b", "x")
        now, delivered = sim.run(until=proc)
        assert now == pytest.approx(0.25)
        assert delivered == pytest.approx(0.25)

    def test_message_ordering_preserved_fixed_latency(self, sim):
        net = Network(sim, latency=UniformLatency(propagation=0.1, jitter=0.0))
        a, b = net.endpoint("a"), net.endpoint("b")
        got = []
        b.on_message(lambda m: got.append(m.payload))
        for i in range(10):
            a.send("b", i)
        sim.run()
        assert got == list(range(10))

    def test_send_to_unknown_endpoint_drops(self, sim, net):
        a = net.endpoint("a")
        a.send("ghost", "x")
        sim.run()
        assert net.dropped == 1

    def test_counters(self, sim, net):
        a, b = net.endpoint("a"), net.endpoint("b")
        b.on_message(lambda m: None)
        a.send("b", "xyz")
        sim.run()
        assert a.sent_count == 1 and b.recv_count == 1
        assert a.sent_bytes == 3 and b.recv_bytes == 3


class TestCrash:
    def test_crashed_endpoint_drops_incoming(self, sim, net):
        a, b = net.endpoint("a"), net.endpoint("b")
        got = []
        b.on_message(lambda m: got.append(m.payload))
        b.crash()
        a.send("b", "lost")
        sim.run()
        assert got == [] and net.dropped == 1

    def test_crashed_endpoint_cannot_send(self, sim, net):
        a = net.endpoint("a")
        net.endpoint("b")
        a.crash()
        with pytest.raises(RuntimeError):
            a.send("b", "x")

    def test_restart_resumes_delivery(self, sim, net):
        a, b = net.endpoint("a"), net.endpoint("b")
        got = []
        b.on_message(lambda m: got.append(m.payload))
        b.crash()
        a.send("b", "lost")
        sim.run()
        b.restart()
        a.send("b", "found")
        sim.run()
        assert got == ["found"]

    def test_message_in_flight_to_crashing_node_lost(self, sim):
        net = Network(sim, latency=UniformLatency(propagation=1.0, jitter=0.0))
        a, b = net.endpoint("a"), net.endpoint("b")
        got = []
        b.on_message(lambda m: got.append(m.payload))
        a.send("b", "inflight")
        sim.schedule_callback(0.5, b.crash)
        sim.run()
        assert got == []


class TestFilters:
    def test_filter_drops(self, sim, net):
        a, b = net.endpoint("a"), net.endpoint("b")
        got = []
        b.on_message(lambda m: got.append(m.payload))
        net.add_filter(lambda src, dst, payload: payload != "bad")
        a.send("b", "bad")
        a.send("b", "good")
        sim.run()
        assert got == ["good"]
        assert net.dropped == 1

    def test_filter_removal(self, sim, net):
        a, b = net.endpoint("a"), net.endpoint("b")
        got = []
        b.on_message(lambda m: got.append(m.payload))
        flt = lambda src, dst, payload: False
        net.add_filter(flt)
        a.send("b", "x")
        net.remove_filter(flt)
        a.send("b", "y")
        sim.run()
        assert got == ["y"]
