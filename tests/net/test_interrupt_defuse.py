"""Regression tests for interrupt defusing (mark-defused wakeups).

The pre-overhaul kernel detached an interrupted process from its
awaited event by scanning ``callbacks.remove`` — but a *scheduled*
interrupt event could still be in the queue when the process finished
at the same timestamp, and its resume callback then advanced a
finished generator: ``SimulationError: <Process ...> already
triggered``.  The kernel now defuses stale wakeups with an identity
guard (``event is not self._target``), which both fixes the crash and
makes interrupt O(1) instead of O(waiters).

These tests pin the new contract:

* racing interrupts at one simulated instant deliver exactly ONE
  :class:`Interrupt`, carrying the LATEST cause;
* an event abandoned by an interrupt may still fire without resuming
  the process a second time;
* a process that finishes while a stale interrupt event is queued is
  left alone when that event pops.
"""

import pytest

from repro.net.simulator import Interrupt, Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestDoubleInterruptSameInstant:
    def test_single_delivery_latest_cause_wins(self, sim):
        """Two interrupts from the same callback: the old kernel let the
        first (dangling) interrupt event advance the already-finished
        generator and crashed; now the stale one is defused and the
        victim sees one Interrupt with the second cause."""
        interrupts_seen = []

        def victim():
            try:
                yield sim.timeout(10.0)
            except Interrupt as irq:
                interrupts_seen.append(irq.cause)
                return f"interrupted:{irq.cause}"
            return "done"

        proc = sim.process(victim())

        def interrupter():
            yield sim.timeout(1.0)
            proc.interrupt("first")
            proc.interrupt("second")

        sim.process(interrupter())
        assert sim.run(until=proc) == "interrupted:second"
        assert interrupts_seen == ["second"]
        assert sim.now == 1.0

    def test_triple_interrupt_still_single_delivery(self, sim):
        seen = []

        def victim():
            while True:
                try:
                    yield sim.timeout(10.0)
                except Interrupt as irq:
                    seen.append((sim.now, irq.cause))

        proc = sim.process(victim())

        def interrupter():
            yield sim.timeout(1.0)
            for cause in ("a", "b", "c"):
                proc.interrupt(cause)
            yield sim.timeout(1.0)
            proc.interrupt("later")

        sim.process(interrupter())
        sim.run(until=3.0)
        assert seen == [(1.0, "c"), (2.0, "later")]

    def test_victim_finishing_on_interrupt_defuses_stale_event(self, sim):
        """The exact ISSUE shape: the victim returns *at the same
        timestamp* a second interrupt event is still queued for.  The
        stale event must pop as a no-op instead of resuming the
        finished generator."""

        def victim():
            try:
                yield sim.timeout(10.0)
            except Interrupt:
                return "finished-at-interrupt-time"

        proc = sim.process(victim())

        def interrupter():
            yield sim.timeout(1.0)
            proc.interrupt(1)
            proc.interrupt(2)  # queued after; victim is finished when it pops

        sim.process(interrupter())
        assert sim.run(until=proc) == "finished-at-interrupt-time"
        sim.run()  # drain: the stale interrupt event pops harmlessly
        assert not proc.is_alive


class TestAbandonedEventDefuse:
    def test_abandoned_event_fires_without_double_resume(self, sim):
        """Interrupting a waiter leaves its resume callback on the
        abandoned event (no O(n) removal); when that event fires the
        stale callback must be dropped by the guard."""
        trace = []

        def victim():
            try:
                yield sim.timeout(2.0)
                trace.append("timeout-delivered")
            except Interrupt:
                trace.append(("interrupted", sim.now))
            yield sim.timeout(5.0)
            trace.append(("second-wait-done", sim.now))

        proc = sim.process(victim())
        sim.schedule_callback(1.0, lambda: proc.interrupt())
        sim.run()
        # The abandoned t=2.0 timeout fired mid-way through the second
        # wait; the guard must not have resumed the process early.
        assert trace == [("interrupted", 1.0), ("second-wait-done", 6.0)]

    def test_interrupt_finished_process_still_errors(self, sim):
        """Defusing must not soften the explicit-misuse error."""
        from repro.net.simulator import SimulationError

        def quick():
            yield sim.timeout(0.1)
            return "done"

        proc = sim.process(quick())
        sim.run(until=proc)
        with pytest.raises(SimulationError):
            proc.interrupt()
