"""Unit tests for the callback-driven :class:`QuorumWait` primitive.

QuorumWait replaced the rescan-based ``gather_quorum`` loop and the
coordinator's private ``_quorum_fanout``; these tests pin down the
semantics both call sites rely on: attribution, same-instant
absorption, fail-fast vs collect-laggards, deadline behaviour, and the
O(1) bookkeeping of timed-out RPC calls.
"""

import pytest

from repro.net.latency import NoLatency
from repro.net.rpc import (QuorumWait, RpcError, RpcNode, RpcRejected,
                           RpcTimeout, gather_quorum)
from repro.net.simulator import Simulator
from repro.net.transport import Network


@pytest.fixture
def sim():
    return Simulator()


def drive(sim, gen):
    proc = sim.process(gen)
    return sim.run(until=proc)


def deferred(sim, delay, value=None, exc=None):
    """An event that succeeds (or fails) after ``delay`` seconds."""
    ev = sim.event()
    ev.callbacks.append(lambda _e: None)  # observable, not mandatory

    def fire():
        if exc is not None:
            ev.fail(exc)
        else:
            ev.succeed(value)

    sim.schedule_callback(delay, fire)
    return ev


class TestQuorumMet:
    def test_succeeds_with_attribution(self, sim):
        calls = [("r0", deferred(sim, 0.1, "a")),
                 ("r1", deferred(sim, 0.3, "b")),
                 ("r2", deferred(sim, 9.9, "never"))]
        wait = QuorumWait(sim, calls, needed=2, timeout=1.0)
        oks, fails = drive(sim, wait.wait())
        assert oks == [("r0", "a"), ("r1", "b")]
        assert fails == []
        assert wait.settled

    def test_same_instant_replies_are_absorbed(self, sim):
        """Three acks landing at the same simulated instant all appear
        in ``oks`` even though the second one met the quorum — the
        settle defers one zero-delay callback."""
        calls = [(n, deferred(sim, 0.2, n)) for n in ("r0", "r1", "r2")]
        wait = QuorumWait(sim, calls, needed=2, timeout=1.0)
        oks, _fails = drive(sim, wait.wait())
        assert [n for n, _v in oks] == ["r0", "r1", "r2"]

    def test_already_processed_events_count_at_construction(self, sim):
        done = sim.event()
        done.succeed("early")
        sim.run(until=sim.now + 0.01)  # let the event process
        calls = [("r0", done), ("r1", deferred(sim, 0.1, "late"))]
        wait = QuorumWait(sim, calls, needed=2, timeout=1.0)
        oks, _fails = drive(sim, wait.wait())
        assert ("r0", "early") in oks
        assert ("r1", "late") in oks

    def test_mixed_failures_still_meet_quorum(self, sim):
        calls = [("r0", deferred(sim, 0.1, exc=RpcRejected("not-owner"))),
                 ("r1", deferred(sim, 0.2, "b")),
                 ("r2", deferred(sim, 0.3, "c"))]
        wait = QuorumWait(sim, calls, needed=2, timeout=1.0)
        oks, fails = drive(sim, wait.wait())
        assert [n for n, _v in oks] == ["r1", "r2"]
        assert [n for n, _e in fails] == ["r0"]


class TestQuorumFailure:
    def test_fail_fast_on_impossible_quorum(self, sim):
        """Two failures out of three with needed=2 settles immediately,
        long before the deadline."""
        calls = [("r0", deferred(sim, 0.1, exc=RpcRejected("x"))),
                 ("r1", deferred(sim, 0.2, exc=RpcRejected("y"))),
                 ("r2", deferred(sim, 50.0, "too-late"))]
        wait = QuorumWait(sim, calls, needed=2, timeout=100.0)

        def waiter():
            with pytest.raises(RpcError):
                yield from wait.wait()
            return sim.now

        settled_at = drive(sim, waiter())
        assert settled_at < 1.0, "fail_fast settles without the deadline"
        assert len(wait.fails) == 2

    def test_collect_laggards_waits_for_all(self, sim):
        """fail_fast=False keeps the wait open while calls are still
        outstanding, even once the quorum is arithmetically dead."""
        calls = [("r0", deferred(sim, 0.1, exc=RpcRejected("x"))),
                 ("r1", deferred(sim, 0.2, exc=RpcRejected("y"))),
                 ("r2", deferred(sim, 0.9, "straggler"))]
        wait = QuorumWait(sim, calls, needed=2, timeout=5.0,
                          fail_fast=False)

        def waiter():
            with pytest.raises(RpcError):
                yield from wait.wait()
            return sim.now

        settled_at = drive(sim, waiter())
        assert settled_at >= 0.9, "waited for the straggler"
        assert [n for n, _v in wait.oks] == ["r2"]

    def test_collect_laggards_can_still_succeed_late(self, sim):
        calls = [("r0", deferred(sim, 0.1, exc=RpcRejected("x"))),
                 ("r1", deferred(sim, 0.5, "b")),
                 ("r2", deferred(sim, 0.9, "c"))]
        wait = QuorumWait(sim, calls, needed=2, timeout=5.0,
                          fail_fast=False)
        oks, fails = drive(sim, wait.wait())
        assert [n for n, _v in oks] == ["r1", "r2"]
        assert len(fails) == 1

    def test_deadline_raises_timeout(self, sim):
        calls = [("r0", deferred(sim, 0.1, "a")),
                 ("r1", deferred(sim, 99.0, "never")),
                 ("r2", deferred(sim, 99.0, "never"))]
        wait = QuorumWait(sim, calls, needed=2, timeout=0.5)

        def waiter():
            with pytest.raises(RpcTimeout):
                yield from wait.wait()
            return sim.now

        assert drive(sim, waiter()) == pytest.approx(0.5)
        assert wait.oks == [("r0", "a")]

    def test_late_replies_not_recorded_after_settle(self, sim):
        calls = [("r0", deferred(sim, 0.1, "a")),
                 ("r1", deferred(sim, 0.2, "b")),
                 ("r2", deferred(sim, 0.4, "late"))]
        wait = QuorumWait(sim, calls, needed=2, timeout=1.0)
        oks, _fails = drive(sim, wait.wait())
        assert [n for n, _v in oks] == ["r0", "r1"]
        sim.run(until=sim.now + 1.0)
        assert [n for n, _v in wait.oks] == ["r0", "r1"]


class TestGatherQuorumWrapper:
    def test_returns_plain_values(self, sim):
        events = [deferred(sim, 0.1, "a"),
                  deferred(sim, 0.2, exc=RpcRejected("no")),
                  deferred(sim, 0.3, "c")]
        oks, fails = drive(sim, gather_quorum(sim, events, 2, 1.0))
        assert oks == ["a", "c"]
        assert len(fails) == 1 and isinstance(fails[0], RpcRejected)

    def test_timeout_propagates(self, sim):
        events = [deferred(sim, 9.0, "a")]

        def waiter():
            with pytest.raises(RpcTimeout):
                yield from gather_quorum(sim, events, 1, 0.2)
            return True

        assert drive(sim, waiter())


class TestRpcNodeCleanup:
    def test_timed_out_call_is_forgotten(self, sim):
        """call() learns its id at issue time, so timeout cleanup is a
        single O(1) pop; the pending map must end empty so it never
        leaks across thousands of timed-out calls."""
        net = Network(sim, latency=NoLatency())
        client = RpcNode(net, "cleanup-client")
        # No server registered at "ghost": the call can only time out.

        def caller():
            with pytest.raises(RpcTimeout):
                yield from client.call("ghost", "m", None, timeout=0.2)
            return True

        assert drive(sim, caller())
        assert client._pending == {}
        assert client.calls_timed_out == 1

    def test_answered_call_is_forgotten(self, sim):
        net = Network(sim, latency=NoLatency())
        client = RpcNode(net, "ans-client")
        server = RpcNode(net, "ans-server")
        server.register("ping", lambda src, args: "pong")

        def caller():
            return (yield from client.call("ans-server", "ping", None,
                                           timeout=1.0))

        assert drive(sim, caller()) == "pong"
        assert client._pending == {}
