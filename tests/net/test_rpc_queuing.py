"""Tests for the RPC server's single service queue (Fig. 8 substrate)."""

import pytest

from repro.net.latency import NoLatency
from repro.net.rpc import RpcNode
from repro.net.simulator import AllOf, Simulator
from repro.net.transport import Network


@pytest.fixture
def world():
    sim = Simulator()
    net = Network(sim, latency=NoLatency())
    return sim, net


class TestServiceQueue:
    def test_sequential_requests_pay_service_each(self, world):
        sim, net = world
        client = RpcNode(net, "c")
        server = RpcNode(net, "s", service_time=0.01)
        server.register("op", lambda src, args: "ok")

        def caller():
            for _ in range(5):
                yield from client.call("s", "op", None, timeout=1.0)
            return sim.now

        proc = sim.process(caller())
        assert sim.run(until=proc) == pytest.approx(0.05)

    def test_concurrent_requests_queue(self, world):
        """Ten simultaneous requests: completions spaced by the service
        time, total = 10 * service (an M/D/1 busy period)."""
        sim, net = world
        server = RpcNode(net, "s", service_time=0.01)
        server.register("op", lambda src, args: "ok")
        completions = []

        def one_client(i):
            client = RpcNode(net, f"c{i}")
            yield from client.call("s", "op", None, timeout=5.0)
            completions.append(sim.now)

        procs = [sim.process(one_client(i)) for i in range(10)]
        sim.run(until=AllOf(sim, procs))
        assert completions[-1] == pytest.approx(0.10)
        gaps = [b - a for a, b in zip(completions, completions[1:])]
        assert all(g == pytest.approx(0.01) for g in gaps)

    def test_queue_drains_then_idles(self, world):
        """After a burst the queue empties; later requests start fresh
        (no phantom backlog)."""
        sim, net = world
        client = RpcNode(net, "c")
        server = RpcNode(net, "s", service_time=0.01)
        server.register("op", lambda src, args: "ok")

        def caller():
            yield from client.call("s", "op", None, timeout=1.0)
            yield sim.timeout(1.0)  # long idle gap
            t0 = sim.now
            yield from client.call("s", "op", None, timeout=1.0)
            return sim.now - t0

        proc = sim.process(caller())
        assert sim.run(until=proc) == pytest.approx(0.01)

    def test_zero_service_time_is_instant(self, world):
        sim, net = world
        client = RpcNode(net, "c")
        server = RpcNode(net, "s", service_time=0.0)
        server.register("op", lambda src, args: "ok")

        def caller():
            yield from client.call("s", "op", None, timeout=1.0)
            return sim.now

        proc = sim.process(caller())
        assert sim.run(until=proc) == 0.0

    def test_utilization_slowdown_shape(self, world):
        """The Fig. 8 mechanism in miniature: per-client latency rises
        as offered load approaches the server's capacity."""
        sim, net = world
        server = RpcNode(net, "s", service_time=0.01)
        server.register("op", lambda src, args: "ok")

        def measure(n_clients, label):
            latencies = []

            def client_loop(i):
                client = RpcNode(net, f"{label}{i}")
                for _ in range(20):
                    t0 = sim.now
                    yield from client.call("s", "op", None, timeout=10.0)
                    latencies.append(sim.now - t0)
                    yield sim.timeout(0.02)  # think time

            procs = [sim.process(client_loop(i)) for i in range(n_clients)]
            sim.run(until=AllOf(sim, procs))
            return sum(latencies) / len(latencies)

        solo = measure(1, "solo")
        crowd = measure(4, "crowd")
        assert crowd > solo, (
            f"contention must raise latency: {crowd} vs {solo}")
