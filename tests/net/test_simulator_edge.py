"""Edge-case and property tests for the DES kernel beyond the basics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.simulator import (AllOf, AnyOf, Event, Interrupt,
                                 SimulationError, Simulator)


@pytest.fixture
def sim():
    return Simulator()


class TestDefusedEvents:
    def test_defused_pending_event_can_still_be_succeeded(self, sim):
        """A waiter that abandons an event (callbacks=None) must not
        crash the kernel when the event later triggers."""
        ev = sim.event()
        ev.callbacks = None
        ev.succeed("late")
        sim.run()  # must not raise

    def test_defused_failed_event_does_not_raise(self, sim):
        ev = sim.event()
        ev.callbacks = None
        ev.fail(ValueError("ignored"))
        sim.run()  # must not raise


class TestInterruptSemantics:
    def test_interrupt_cause_is_delivered(self, sim):
        causes = []

        def sleeper():
            try:
                yield sim.timeout(100)
            except Interrupt as irq:
                causes.append(irq.cause)

        proc = sim.process(sleeper())
        sim.schedule_callback(1.0, lambda: proc.interrupt({"why": "test"}))
        sim.run()
        assert causes == [{"why": "test"}]

    def test_interrupted_process_can_wait_again(self, sim):
        trace = []

        def sleeper():
            try:
                yield sim.timeout(100)
            except Interrupt:
                trace.append(("interrupted", sim.now))
            yield sim.timeout(1.0)
            trace.append(("resumed", sim.now))

        proc = sim.process(sleeper())
        sim.schedule_callback(2.0, lambda: proc.interrupt())
        sim.run()
        assert trace == [("interrupted", 2.0), ("resumed", 3.0)]

    def test_interrupt_detaches_from_original_event(self, sim):
        """After an interrupt, the originally awaited event firing must
        not resume the process a second time."""
        resumptions = []

        def sleeper():
            try:
                yield sim.timeout(2.0)
            except Interrupt:
                pass
            resumptions.append(sim.now)
            yield sim.timeout(10.0)

        proc = sim.process(sleeper())
        sim.schedule_callback(1.0, lambda: proc.interrupt())
        sim.run(until=5.0)
        assert resumptions == [1.0]


class TestConditionEdgeCases:
    def test_allof_fails_fast_on_first_failure(self, sim):
        def waiter():
            bad = sim.event()
            slow = sim.timeout(100.0)
            sim.schedule_callback(1.0, lambda: bad.fail(ValueError("x")))
            try:
                yield AllOf(sim, (bad, slow))
            except ValueError:
                return sim.now
            return None

        proc = sim.process(waiter())
        assert sim.run(until=proc) == 1.0

    def test_nested_conditions(self, sim):
        def waiter():
            a = sim.timeout(1.0, value="a")
            b = sim.timeout(2.0, value="b")
            c = sim.timeout(3.0, value="c")
            inner = AllOf(sim, (a, b))
            outer = AnyOf(sim, (inner, c))
            yield outer
            return sim.now

        proc = sim.process(waiter())
        assert sim.run(until=proc) == 2.0

    def test_condition_value_snapshot(self, sim):
        def waiter():
            fast = sim.timeout(1.0, value="f")
            slow = sim.timeout(5.0, value="s")
            result = yield AnyOf(sim, (fast, slow))
            return dict(result)

        proc = sim.process(waiter())
        result = sim.run(until=proc)
        assert list(result.values()) == ["f"]


class TestProcessLifecycle:
    def test_immediate_return_process(self, sim):
        def noop():
            return "done"
            yield  # pragma: no cover

        proc = sim.process(noop())
        assert sim.run(until=proc) == "done"

    def test_chained_joins(self, sim):
        def leaf():
            yield sim.timeout(1.0)
            return 1

        def middle():
            value = yield sim.process(leaf())
            return value + 1

        def root():
            value = yield sim.process(middle())
            return value + 1

        proc = sim.process(root())
        assert sim.run(until=proc) == 3

    def test_many_joiners_on_one_process(self, sim):
        def worker():
            yield sim.timeout(1.0)
            return "shared"

        shared = sim.process(worker())
        results = []

        def joiner():
            value = yield shared
            results.append(value)

        for _ in range(5):
            sim.process(joiner())
        sim.run()
        assert results == ["shared"] * 5


@settings(max_examples=40, deadline=None)
@given(st.lists(st.floats(min_value=0.001, max_value=10.0),
                min_size=1, max_size=30))
def test_clock_monotonic_property(delays):
    """Property: observed time never goes backwards, and the final
    clock equals the max cumulative path."""
    sim = Simulator()
    observed = []

    def chain():
        for d in delays:
            yield sim.timeout(d)
            observed.append(sim.now)

    sim.process(chain())
    sim.run()
    assert observed == sorted(observed)
    assert observed[-1] == pytest.approx(sum(delays))


@settings(max_examples=30, deadline=None)
@given(st.integers(min_value=1, max_value=20),
       st.integers(min_value=0, max_value=2**32 - 1))
def test_parallel_processes_deterministic_property(n_procs, seed):
    """Property: any process mix replays identically."""
    import random

    def run_once():
        rng = random.Random(seed)
        sim = Simulator()
        trace = []

        def worker(wid):
            for _ in range(5):
                yield sim.timeout(rng.random())
                trace.append((round(sim.now, 12), wid))

        for wid in range(n_procs):
            sim.process(worker(wid))
        sim.run()
        return trace

    assert run_once() == run_once()
