"""Unit tests for failure injection."""

import pytest

from repro.net.failure import FailureInjector, MessageLoss, Partition
from repro.net.latency import NoLatency
from repro.net.simulator import Simulator
from repro.net.transport import Network


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def net(sim):
    return Network(sim, latency=NoLatency())


def wire(net, names):
    boxes = {}
    for name in names:
        ep = net.endpoint(name)
        inbox = []
        ep.on_message(lambda m, inbox=inbox: inbox.append(m.payload))
        boxes[name] = inbox
    return boxes


class TestPartition:
    def test_partition_cuts_both_directions(self, sim, net):
        boxes = wire(net, ["a", "b"])
        Partition(net, ["a"], ["b"])
        net.endpoint("a").send("b", "ab")
        net.endpoint("b").send("a", "ba")
        sim.run()
        assert boxes["a"] == [] and boxes["b"] == []

    def test_traffic_within_group_unaffected(self, sim, net):
        boxes = wire(net, ["a1", "a2", "b"])
        Partition(net, ["a1", "a2"], ["b"])
        net.endpoint("a1").send("a2", "intra")
        sim.run()
        assert boxes["a2"] == ["intra"]

    def test_heal_restores(self, sim, net):
        boxes = wire(net, ["a", "b"])
        part = Partition(net, ["a"], ["b"])
        net.endpoint("a").send("b", "lost")
        part.heal()
        assert not part.active
        net.endpoint("a").send("b", "found")
        sim.run()
        assert boxes["b"] == ["found"]

    def test_double_heal_is_noop(self, sim, net):
        part = Partition(net, ["a"], ["b"])
        part.heal()
        part.heal()  # must not raise


class TestMessageLoss:
    def test_rate_zero_drops_nothing(self, sim, net):
        boxes = wire(net, ["a", "b"])
        MessageLoss(net, 0.0)
        for i in range(50):
            net.endpoint("a").send("b", i)
        sim.run()
        assert len(boxes["b"]) == 50

    def test_rate_one_drops_everything(self, sim, net):
        boxes = wire(net, ["a", "b"])
        loss = MessageLoss(net, 1.0)
        for i in range(50):
            net.endpoint("a").send("b", i)
        sim.run()
        assert boxes["b"] == [] and loss.dropped == 50

    def test_partial_loss_deterministic(self, sim):
        def run(seed):
            s = Simulator()
            n = Network(s, latency=NoLatency())
            boxes = wire(n, ["a", "b"])
            MessageLoss(n, 0.3, seed=seed)
            for i in range(100):
                n.endpoint("a").send("b", i)
            s.run()
            return boxes["b"]

        assert run(9) == run(9)
        assert 40 <= len(run(9)) <= 95

    def test_scope_restricts_loss(self, sim, net):
        boxes = wire(net, ["a", "b", "c"])
        MessageLoss(net, 1.0, scope=["c"])
        net.endpoint("a").send("b", "safe")
        net.endpoint("a").send("c", "doomed")
        sim.run()
        assert boxes["b"] == ["safe"] and boxes["c"] == []

    def test_invalid_rate_rejected(self, net):
        with pytest.raises(ValueError):
            MessageLoss(net, 1.5)

    def test_stop(self, sim, net):
        boxes = wire(net, ["a", "b"])
        loss = MessageLoss(net, 1.0)
        loss.stop()
        net.endpoint("a").send("b", "x")
        sim.run()
        assert boxes["b"] == ["x"]


class TestFailureInjector:
    def test_crash_restart(self, sim, net):
        boxes = wire(net, ["a", "b"])
        inj = FailureInjector(net)
        inj.crash("b")
        net.endpoint("a").send("b", "lost")
        sim.run()
        inj.restart("b")
        net.endpoint("a").send("b", "ok")
        sim.run()
        assert boxes["b"] == ["ok"]

    def test_heal_all(self, sim, net):
        boxes = wire(net, ["a", "b", "c"])
        inj = FailureInjector(net)
        inj.partition(["a"], ["b"])
        inj.partition(["a"], ["c"])
        inj.heal_all()
        net.endpoint("a").send("b", "1")
        net.endpoint("a").send("c", "2")
        sim.run()
        assert boxes["b"] == ["1"] and boxes["c"] == ["2"]
