"""Unit tests for the RPC layer and quorum gathering."""

import pytest

from repro.net.latency import NoLatency, UniformLatency
from repro.net.rpc import (RpcError, RpcNode, RpcRejected, RpcTimeout,
                           gather_quorum)
from repro.net.simulator import Simulator
from repro.net.transport import Network


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def net(sim):
    return Network(sim, latency=NoLatency())


def make_pair(net):
    client = RpcNode(net, "client")
    server = RpcNode(net, "server")
    return client, server


class TestBasicCalls:
    def test_call_returns_handler_result(self, sim, net):
        client, server = make_pair(net)
        server.register("echo", lambda src, args: {"from": src, "args": args})

        def caller():
            result = yield from client.call("server", "echo", [1, 2], timeout=1.0)
            return result

        proc = sim.process(caller())
        assert sim.run(until=proc) == {"from": "client", "args": [1, 2]}

    def test_unknown_method_is_refused(self, sim, net):
        client, _server = make_pair(net)

        def caller():
            try:
                yield from client.call("server", "nope", None, timeout=1.0)
            except RpcRejected as rej:
                return rej.reason
            return "no error"

        proc = sim.process(caller())
        assert sim.run(until=proc) == "no-such-method:nope"

    def test_handler_rejection_propagates(self, sim, net):
        client, server = make_pair(net)

        def refuse(src, args):
            raise RpcRejected("not-owner")

        server.register("get", refuse)

        def caller():
            with pytest.raises(RpcRejected, match="not-owner"):
                yield from client.call("server", "get", None, timeout=1.0)
            return "ok"

        proc = sim.process(caller())
        assert sim.run(until=proc) == "ok"

    def test_call_to_dead_node_times_out(self, sim, net):
        client, server = make_pair(net)
        server.register("echo", lambda src, args: args)
        server.endpoint.crash()

        def caller():
            with pytest.raises(RpcTimeout):
                yield from client.call("server", "echo", 1, timeout=0.5)
            return sim.now

        proc = sim.process(caller())
        assert sim.run(until=proc) == pytest.approx(0.5)
        assert client.calls_timed_out == 1

    def test_late_reply_after_timeout_ignored(self, sim):
        net = Network(sim, latency=UniformLatency(propagation=1.0, jitter=0.0))
        client = RpcNode(net, "client")
        server = RpcNode(net, "server")
        server.register("slow", lambda src, args: "late")

        def caller():
            with pytest.raises(RpcTimeout):
                yield from client.call("server", "slow", None, timeout=0.5)
            # Let the late response arrive; nothing should blow up.
            yield sim.timeout(5.0)
            return "survived"

        proc = sim.process(caller())
        assert sim.run(until=proc) == "survived"

    def test_deferred_event_result(self, sim, net):
        client, server = make_pair(net)

        def deferred(src, args):
            ev = sim.event()
            sim.schedule_callback(0.3, lambda: ev.succeed("eventually"))
            return ev

        server.register("defer", deferred)

        def caller():
            result = yield from client.call("server", "defer", None, timeout=1.0)
            return result, sim.now

        proc = sim.process(caller())
        result, when = sim.run(until=proc)
        assert result == "eventually"
        assert when == pytest.approx(0.3)

    def test_service_time_charged(self, sim, net):
        client = RpcNode(net, "client")
        server = RpcNode(net, "server", service_time=0.01)
        server.register("echo", lambda src, args: args)

        def caller():
            yield from client.call("server", "echo", 1, timeout=1.0)
            return sim.now

        proc = sim.process(caller())
        assert sim.run(until=proc) == pytest.approx(0.01)

    def test_stats_counters(self, sim, net):
        client, server = make_pair(net)
        server.register("echo", lambda src, args: args)

        def caller():
            yield from client.call("server", "echo", 1, timeout=1.0)
            yield from client.call("server", "echo", 2, timeout=1.0)

        sim.process(caller())
        sim.run()
        assert client.calls_issued == 2
        assert server.requests_served == 2


class TestGatherQuorum:
    def _fanout(self, sim, net, n_servers, handler_for):
        client = RpcNode(net, "client")
        for i in range(n_servers):
            server = RpcNode(net, f"s{i}")
            server.register("op", handler_for(i))
        return client

    def test_quorum_met(self, sim, net):
        client = self._fanout(sim, net, 3, lambda i: (lambda src, args: f"v{i}"))

        def coordinator():
            events = [client.call_async(f"s{i}", "op", None) for i in range(3)]
            oks, fails = yield from gather_quorum(sim, events, needed=2, timeout=1.0)
            return len(oks) >= 2 and not fails

        proc = sim.process(coordinator())
        assert sim.run(until=proc) is True

    def test_quorum_returns_as_soon_as_met(self, sim):
        net = Network(sim, latency=NoLatency())
        client = RpcNode(net, "client")
        delays = {0: 0.1, 1: 0.2, 2: 5.0}
        for i in range(3):
            server = RpcNode(net, f"s{i}")

            def make(i=i):
                def handler(src, args):
                    ev = sim.event()
                    sim.schedule_callback(delays[i], lambda: ev.succeed(i))
                    return ev
                return handler

            server.register("op", make())

        def coordinator():
            events = [client.call_async(f"s{i}", "op", None) for i in range(3)]
            oks, _ = yield from gather_quorum(sim, events, needed=2, timeout=10.0)
            return sim.now, len(oks)

        proc = sim.process(coordinator())
        when, count = sim.run(until=proc)
        assert when == pytest.approx(0.2), "must not wait for the slow third replica"
        assert count == 2

    def test_quorum_timeout(self, sim, net):
        client = RpcNode(net, "client")
        # No servers exist at all.
        def coordinator():
            events = [client.call_async(f"s{i}", "op", None) for i in range(3)]
            with pytest.raises(RpcTimeout):
                yield from gather_quorum(sim, events, needed=2, timeout=0.5)
            return sim.now

        proc = sim.process(coordinator())
        assert sim.run(until=proc) == pytest.approx(0.5)

    def test_quorum_unreachable_fails_fast(self, sim, net):
        client = self._fanout(
            sim, net, 3,
            lambda i: (lambda src, args: (_ for _ in ()).throw(RpcRejected("no"))))

        def coordinator():
            events = [client.call_async(f"s{i}", "op", None) for i in range(3)]
            with pytest.raises(RpcError):
                yield from gather_quorum(sim, events, needed=2, timeout=10.0)
            return sim.now

        proc = sim.process(coordinator())
        # Fails as soon as 2 of 3 refused, far before the 10 s deadline.
        assert sim.run(until=proc) < 1.0

    def test_quorum_tolerates_minority_failures(self, sim, net):
        def handler_for(i):
            if i == 0:
                def bad(src, args):
                    raise RpcRejected("broken")
                return bad
            return lambda src, args: f"v{i}"

        client = self._fanout(sim, net, 3, handler_for)

        def coordinator():
            events = [client.call_async(f"s{i}", "op", None) for i in range(3)]
            oks, fails = yield from gather_quorum(sim, events, needed=2, timeout=1.0)
            return sorted(oks), len(fails)

        proc = sim.process(coordinator())
        oks, nfails = sim.run(until=proc)
        assert oks == ["v1", "v2"]
        assert nfails <= 1
