"""Tests for the network tap, plus protocol-cost assertions built on it."""

import pytest

from repro.core.cluster import SednaCluster
from repro.core.config import SednaConfig
from repro.net.latency import NoLatency
from repro.net.rpc import RpcNode
from repro.net.simulator import Simulator
from repro.net.transport import Network
from repro.net.tap import NetworkTap


class TestTapBasics:
    def test_records_requests_and_responses(self):
        sim = Simulator()
        net = Network(sim, latency=NoLatency())
        tap = NetworkTap(net)
        client = RpcNode(net, "c")
        server = RpcNode(net, "s")
        server.register("echo", lambda src, args: args)

        def go():
            yield from client.call("s", "echo", 1, timeout=1.0)

        sim.process(go())
        sim.run()
        assert tap.count(kind="req", method="echo") == 1
        assert tap.count(kind="resp") == 1

    def test_pass_through_never_drops(self):
        sim = Simulator()
        net = Network(sim, latency=NoLatency())
        NetworkTap(net)
        a, b = net.endpoint("a"), net.endpoint("b")
        got = []
        b.on_message(lambda m: got.append(m.payload))
        a.send("b", "x")
        sim.run()
        assert got == ["x"] and net.dropped == 0

    def test_detach_and_clear(self):
        sim = Simulator()
        net = Network(sim, latency=NoLatency())
        tap = NetworkTap(net)
        a = net.endpoint("a")
        net.endpoint("b")
        a.send("b", {"kind": "req", "id": 1, "method": "m", "args": None})
        tap.clear()
        tap.detach()
        a.send("b", {"kind": "req", "id": 2, "method": "m", "args": None})
        sim.run()
        assert tap.records == []

    def test_predicate_filters(self):
        sim = Simulator()
        net = Network(sim, latency=NoLatency())
        tap = NetworkTap(net, predicate=lambda r: r.dst == "b")
        a = net.endpoint("a")
        net.endpoint("b")
        net.endpoint("c")
        a.send("b", "to-b")
        a.send("c", "to-c")
        sim.run()
        assert tap.count(dst="b") == 1
        assert tap.count(dst="c") == 0
        assert tap.count() == 1

    def test_between_is_bidirectional(self):
        sim = Simulator()
        net = Network(sim, latency=NoLatency())
        tap = NetworkTap(net)
        a, b = net.endpoint("a"), net.endpoint("b")
        net.endpoint("c")
        a.send("b", "fwd")
        b.send("a", "back")
        a.send("c", "other")
        sim.run()
        pair = tap.between("a", "b")
        assert [(r.src, r.dst) for r in pair] == [("a", "b"), ("b", "a")]
        assert tap.between("b", "a") == pair

    def test_reset_starts_fresh_window(self):
        sim = Simulator()
        net = Network(sim, latency=NoLatency())
        tap = NetworkTap(net)
        a = net.endpoint("a")
        net.endpoint("b")
        a.send("b", "one")
        a.send("b", "two")
        sim.run()
        assert tap.reset() == 2
        a.send("b", "three")
        sim.run()
        assert len(tap.records) == 1
        assert tap.reset() == 1
        assert tap.records == []


class TestTraceSlicing:
    def test_tap_slices_traffic_per_request_trace(self):
        from repro.obs import Observability
        obs = Observability(metrics=False, tracing=True)
        cluster = SednaCluster(n_nodes=3, zk_size=3,
                               config=SednaConfig(num_vnodes=16), obs=obs)
        cluster.start()
        client = cluster.client("t")
        tap = NetworkTap(cluster.network)

        def go():
            yield from client.write_latest("k", "v")
            yield from client.read_latest("k")
            return True

        cluster.run(go())
        tap.detach()
        trace_ids = sorted({r.trace for r in tap.records
                            if r.trace is not None})
        assert len(trace_ids) == 2, "one trace per client op"
        write_tr, read_tr = trace_ids
        # Each request's remote fan-out is attributed to its own trace
        # (the coordinator is itself one of the 3 replicas, so 2 of the
        # replica ops cross the network per request).
        assert tap.count(kind="req", method="replica.write",
                         trace=write_tr) == 2
        assert tap.count(kind="req", method="replica.write",
                         trace=read_tr) == 0
        assert tap.count(kind="req", method="replica.read",
                         trace=read_tr) == 2
        assert len(tap.for_trace(write_tr)) == tap.count(trace=write_tr)


class TestProtocolCosts:
    """The tap proves the paper's message-economy claims."""

    @pytest.fixture(scope="class")
    def world(self):
        cluster = SednaCluster(n_nodes=4, zk_size=3,
                               config=SednaConfig(num_vnodes=32))
        cluster.start()
        client = cluster.smart_client("cost")

        def connect():
            yield from client.connect()
            return True

        cluster.run(connect())
        return cluster, client

    def test_one_write_costs_exactly_n_replica_messages(self, world):
        cluster, client = world
        tap = NetworkTap(cluster.network)

        def one_write():
            yield from client.write_latest("cost-key", "v")
            return True

        cluster.run(one_write())
        tap.detach()
        writes = tap.count(kind="req", method="replica.write")
        assert writes == 3, (
            "a zero-hop quorum write is exactly N=3 replica requests, "
            f"saw {writes}")

    def test_one_read_costs_exactly_n_replica_messages(self, world):
        cluster, client = world
        tap = NetworkTap(cluster.network)

        def one_read():
            yield from client.read_latest("cost-key")
            return True

        cluster.run(one_read())
        tap.detach()
        assert tap.count(kind="req", method="replica.read") == 3

    def test_steady_state_ops_never_touch_zookeeper(self, world):
        """§III.E: 'mostly Sedna read the information from ZooKeeper
        service instead of writing' — and with a warm cache, reads and
        writes touch ZooKeeper not at all."""
        cluster, client = world
        tap = NetworkTap(cluster.network,
                         predicate=lambda r: r.dst.startswith("zk")
                         and r.kind == "req"
                         and r.src.startswith("cost"))

        def workload():
            for i in range(20):
                yield from client.write_latest(f"ss{i}", i)
                yield from client.read_latest(f"ss{i}")
            return True

        cluster.run(workload())
        tap.detach()
        zk_data_ops = tap.select(method="zk.read") \
            + tap.select(method="zk.write")
        assert zk_data_ops == [], (
            f"steady-state KV traffic leaked to ZooKeeper: {zk_data_ops}")
