"""Tests for the network tap, plus protocol-cost assertions built on it."""

import pytest

from repro.core.cluster import SednaCluster
from repro.core.config import SednaConfig
from repro.net.latency import NoLatency
from repro.net.rpc import RpcNode
from repro.net.simulator import Simulator
from repro.net.transport import Network
from repro.net.tap import NetworkTap


class TestTapBasics:
    def test_records_requests_and_responses(self):
        sim = Simulator()
        net = Network(sim, latency=NoLatency())
        tap = NetworkTap(net)
        client = RpcNode(net, "c")
        server = RpcNode(net, "s")
        server.register("echo", lambda src, args: args)

        def go():
            yield from client.call("s", "echo", 1, timeout=1.0)

        sim.process(go())
        sim.run()
        assert tap.count(kind="req", method="echo") == 1
        assert tap.count(kind="resp") == 1

    def test_pass_through_never_drops(self):
        sim = Simulator()
        net = Network(sim, latency=NoLatency())
        NetworkTap(net)
        a, b = net.endpoint("a"), net.endpoint("b")
        got = []
        b.on_message(lambda m: got.append(m.payload))
        a.send("b", "x")
        sim.run()
        assert got == ["x"] and net.dropped == 0

    def test_detach_and_clear(self):
        sim = Simulator()
        net = Network(sim, latency=NoLatency())
        tap = NetworkTap(net)
        a = net.endpoint("a")
        net.endpoint("b")
        a.send("b", {"kind": "req", "id": 1, "method": "m", "args": None})
        tap.clear()
        tap.detach()
        a.send("b", {"kind": "req", "id": 2, "method": "m", "args": None})
        sim.run()
        assert tap.records == []

    def test_predicate_filters(self):
        sim = Simulator()
        net = Network(sim, latency=NoLatency())
        tap = NetworkTap(net, predicate=lambda r: r.dst == "b")
        a = net.endpoint("a")
        net.endpoint("b")
        net.endpoint("c")
        a.send("b", "to-b")
        a.send("c", "to-c")
        sim.run()
        assert {r.dst for r in tap.records} == {"b"}


class TestProtocolCosts:
    """The tap proves the paper's message-economy claims."""

    @pytest.fixture(scope="class")
    def world(self):
        cluster = SednaCluster(n_nodes=4, zk_size=3,
                               config=SednaConfig(num_vnodes=32))
        cluster.start()
        client = cluster.smart_client("cost")

        def connect():
            yield from client.connect()
            return True

        cluster.run(connect())
        return cluster, client

    def test_one_write_costs_exactly_n_replica_messages(self, world):
        cluster, client = world
        tap = NetworkTap(cluster.network)

        def one_write():
            yield from client.write_latest("cost-key", "v")
            return True

        cluster.run(one_write())
        tap.detach()
        writes = tap.count(kind="req", method="replica.write")
        assert writes == 3, (
            "a zero-hop quorum write is exactly N=3 replica requests, "
            f"saw {writes}")

    def test_one_read_costs_exactly_n_replica_messages(self, world):
        cluster, client = world
        tap = NetworkTap(cluster.network)

        def one_read():
            yield from client.read_latest("cost-key")
            return True

        cluster.run(one_read())
        tap.detach()
        assert tap.count(kind="req", method="replica.read") == 3

    def test_steady_state_ops_never_touch_zookeeper(self, world):
        """§III.E: 'mostly Sedna read the information from ZooKeeper
        service instead of writing' — and with a warm cache, reads and
        writes touch ZooKeeper not at all."""
        cluster, client = world
        tap = NetworkTap(cluster.network,
                         predicate=lambda r: r.dst.startswith("zk")
                         and r.kind == "req"
                         and r.src.startswith("cost"))

        def workload():
            for i in range(20):
                yield from client.write_latest(f"ss{i}", i)
                yield from client.read_latest(f"ss{i}")
            return True

        cluster.run(workload())
        tap.detach()
        zk_data_ops = [r for r in tap.records
                       if r.method in ("zk.read", "zk.write")]
        assert zk_data_ops == [], (
            f"steady-state KV traffic leaked to ZooKeeper: {zk_data_ops}")
