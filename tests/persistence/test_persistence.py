"""Unit + integration tests for the persistence strategies (§III.C)."""

import pytest

from repro.core.cluster import SednaCluster
from repro.core.config import SednaConfig
from repro.net.simulator import Simulator
from repro.persistence.disk import SimDisk
from repro.persistence.strategy import (NoPersistence, SnapshotPersistence,
                                        WalPersistence, make_strategy)
from repro.storage.versioned import ValueElement
from repro.zk.server import ZkConfig


class TestSimDisk:
    def test_append_and_read(self):
        disk = SimDisk()
        disk.append("log", ("k", 1))
        disk.append("log", ("k", 2))
        assert disk.read_log("log") == [("k", 1), ("k", 2)]

    def test_read_missing_log(self):
        assert SimDisk().read_log("nope") == []

    def test_truncate(self):
        disk = SimDisk()
        disk.append("log", 1)
        disk.truncate_log("log")
        assert disk.read_log("log") == []

    def test_blob_roundtrip(self):
        disk = SimDisk()
        disk.write_blob("snap", {"a": 1})
        assert disk.read_blob("snap") == {"a": 1}
        assert disk.read_blob("missing", "d") == "d"


class TestStrategies:
    def test_factory(self):
        disk = SimDisk()
        assert isinstance(make_strategy("none", disk, "n", 1.0), NoPersistence)
        assert isinstance(make_strategy("snapshot", disk, "n", 1.0),
                          SnapshotPersistence)
        assert isinstance(make_strategy("wal", disk, "n", 1.0), WalPersistence)
        with pytest.raises(ValueError):
            make_strategy("raid", disk, "n", 1.0)

    def test_none_recovers_nothing(self):
        strategy = NoPersistence()
        strategy.on_write("k", ValueElement("s", 1.0, "v"))
        assert strategy.recover() == {}
        assert strategy.write_delay() == 0.0

    def test_wal_recovers_everything(self):
        disk = SimDisk()
        strategy = WalPersistence(disk, "n")
        strategy.on_write("k1", ValueElement("s", 1.0, "v1"))
        strategy.on_write("k1", ValueElement("s", 2.0, "v2"))
        strategy.on_write("k2", ValueElement("t", 1.0, "w"))
        recovered = WalPersistence(disk, "n").recover()
        assert set(recovered) == {"k1", "k2"}
        (el,) = [e for e in recovered["k1"] if e.source == "s"]
        assert el.value == "v2", "newest per source wins on replay"

    def test_wal_has_write_delay(self):
        assert WalPersistence(SimDisk(), "n").write_delay() > 0.0

    def test_wal_compaction_preserves_data(self):
        disk = SimDisk()
        store_rows = {}
        strategy = WalPersistence(disk, "n", compact_every=5)
        strategy.start(None, lambda: store_rows)
        for i in range(12):
            el = ValueElement("s", float(i), f"v{i}")
            store_rows[f"k{i}"] = [el]
            strategy.on_write(f"k{i}", el)
        assert len(disk.read_log("n.wal")) < 12, "log must have compacted"
        recovered = WalPersistence(disk, "n").recover()
        assert set(recovered) == {f"k{i}" for i in range(12)}

    def test_snapshot_periodic_flush(self):
        sim = Simulator()
        disk = SimDisk()
        rows = {"k": [ValueElement("s", 1.0, "v")]}
        strategy = SnapshotPersistence(disk, "n", interval=1.0)
        strategy.start(sim, lambda: rows)
        sim.run(until=2.5)
        strategy.stop()
        recovered = SnapshotPersistence(disk, "n", interval=1.0).recover()
        assert "k" in recovered

    def test_snapshot_loses_post_flush_writes(self):
        sim = Simulator()
        disk = SimDisk()
        rows = {"k": [ValueElement("s", 1.0, "v")]}
        strategy = SnapshotPersistence(disk, "n", interval=1.0)
        strategy.start(sim, lambda: rows)
        sim.run(until=1.5)  # one flush happened
        rows["late"] = [ValueElement("s", 2.0, "late")]
        strategy.stop()
        recovered = SnapshotPersistence(disk, "n", interval=1.0).recover()
        assert "k" in recovered and "late" not in recovered


class TestClusterPersistence:
    def _roundtrip(self, persistence):
        cluster = SednaCluster(
            n_nodes=3, zk_size=3,
            config=SednaConfig(num_vnodes=16, persistence=persistence,
                               snapshot_interval=1.0),
            zk_config=ZkConfig(session_timeout=1.0))
        cluster.start()
        client = cluster.client()

        def seed():
            for i in range(10):
                yield from client.write_latest(f"p{i}", f"v{i}")
            return True

        cluster.run(seed())
        cluster.settle(3.0)  # allow at least one snapshot interval
        victim = cluster.nodes["node1"]
        keys_before = len(victim.store)
        cluster.crash_node("node1")
        cluster.settle(3.0)
        cluster.restart_node("node1")
        cluster.settle(1.0)
        return keys_before, len(victim.store), cluster

    def test_wal_restores_local_data(self):
        before, after, _cluster = self._roundtrip("wal")
        assert before > 0
        assert after >= before

    def test_snapshot_restores_local_data(self):
        before, after, _cluster = self._roundtrip("snapshot")
        assert before > 0
        assert after >= before

    def test_none_restores_nothing_locally(self):
        cluster = SednaCluster(
            n_nodes=3, zk_size=3,
            config=SednaConfig(num_vnodes=16, persistence="none"),
            zk_config=ZkConfig(session_timeout=1.0))
        cluster.start()
        client = cluster.client()

        def seed():
            for i in range(10):
                yield from client.write_latest(f"p{i}", f"v{i}")
            return True

        cluster.run(seed())
        victim = cluster.nodes["node1"]
        assert len(victim.store) > 0
        cluster.crash_node("node1")
        cluster.settle(3.0)
        # Restart with recovery from disk only (no reads yet).
        proc = cluster.sim.process(victim.restart())
        cluster.sim.run(until=proc)
        assert len(victim.store) == 0, "no persistence: memory starts empty"

    def test_whole_cluster_power_loss_recoverable_with_wal(self):
        """§III.C: 'like the power shortage of the cluster, we can still
        recover the data from lost by the periodic data flushing'."""
        cluster = SednaCluster(
            n_nodes=3, zk_size=3,
            config=SednaConfig(num_vnodes=16, persistence="wal"),
            zk_config=ZkConfig(session_timeout=1.0))
        cluster.start()
        client = cluster.client()

        def seed():
            for i in range(10):
                yield from client.write_latest(f"pl{i}", i)
            return True

        cluster.run(seed())
        cluster.settle(1.0)
        for name in list(cluster.node_names):
            cluster.crash_node(name)
        cluster.settle(5.0)
        for name in list(cluster.node_names):
            cluster.restart_node(name)
        cluster.settle(2.0)

        reader = cluster.client("post-outage")

        def read_back():
            values = []
            for i in range(10):
                values.append((yield from reader.read_latest(f"pl{i}")))
            return values

        assert cluster.run(read_back()) == list(range(10))
