"""Unit tests for the intrusive LRU list."""

import pytest

from repro.storage.lru import LruList, LruNode


def fill(lru, items):
    nodes = [LruNode(i) for i in items]
    for n in nodes:
        lru.push_front(n)
    return nodes


class TestLruList:
    def test_push_front_order(self):
        lru = LruList()
        fill(lru, [1, 2, 3])
        assert [n.item for n in lru] == [3, 2, 1]
        assert len(lru) == 3

    def test_pop_back_returns_lru(self):
        lru = LruList()
        fill(lru, [1, 2, 3])
        assert lru.pop_back().item == 1
        assert lru.pop_back().item == 2
        assert len(lru) == 1

    def test_pop_back_empty_returns_none(self):
        assert LruList().pop_back() is None

    def test_touch_moves_to_front(self):
        lru = LruList()
        nodes = fill(lru, [1, 2, 3])
        lru.touch(nodes[0])  # item 1 was the tail
        assert [n.item for n in lru] == [1, 3, 2]

    def test_touch_head_is_noop(self):
        lru = LruList()
        nodes = fill(lru, [1, 2])
        lru.touch(nodes[1])
        assert [n.item for n in lru] == [2, 1]

    def test_unlink_middle(self):
        lru = LruList()
        nodes = fill(lru, [1, 2, 3])
        lru.unlink(nodes[1])
        assert [n.item for n in lru] == [3, 1]
        assert nodes[1].owner is None

    def test_unlink_only_element(self):
        lru = LruList()
        nodes = fill(lru, [1])
        lru.unlink(nodes[0])
        assert lru.head is None and lru.tail is None and len(lru) == 0

    def test_double_push_rejected(self):
        lru = LruList()
        node = LruNode(1)
        lru.push_front(node)
        with pytest.raises(ValueError):
            lru.push_front(node)

    def test_unlink_foreign_node_rejected(self):
        lru, other = LruList(), LruList()
        node = LruNode(1)
        other.push_front(node)
        with pytest.raises(ValueError):
            lru.unlink(node)

    def test_reinsert_after_unlink(self):
        lru = LruList()
        node = LruNode("x")
        lru.push_front(node)
        lru.unlink(node)
        lru.push_front(node)
        assert [n.item for n in lru] == ["x"]

    def test_many_operations_consistent(self):
        lru = LruList()
        nodes = fill(lru, range(100))
        for n in nodes[::2]:
            lru.unlink(n)
        assert len(lru) == 50
        assert [n.item for n in lru] == list(range(99, 0, -2))
