"""Seeded property tests for :class:`repro.storage.versioned.DvvRow`.

Dotted-version-vector rows (docs/protocols.md §16) back the causal
replication mode; their merge must be a join (associative, commutative,
idempotent) for anti-entropy and read repair to converge regardless of
delivery order.  Random histories are generated with seeded
``random.Random`` streams so every failure replays exactly.
"""

import random

import pytest

from repro.storage.versioned import (DvvRow, ctx_covers, unwire_context,
                                     unwire_dvv_row, wire_context,
                                     wire_dvv_row)

SEEDS = range(12)
REPLICAS = ["nodeA", "nodeB", "nodeC"]
CLIENTS = ["c0", "c1", "c2"]


def random_history(rng, n_events, cap=None):
    """Replay ``n_events`` random causal writes onto per-replica rows.

    Each event picks a coordinator replica and either a blind write or
    a context write (context = the vv of some replica's current row,
    as a reader would have obtained it); the updated row is then merged
    into a random subset of the other replicas — partial replication,
    like a quorum that never finished.
    """
    rows = {rep: DvvRow() for rep in REPLICAS}
    ts = 0.0
    for _ in range(n_events):
        rep = rng.choice(REPLICAS)
        source = rng.choice(CLIENTS)
        ts += rng.uniform(0.01, 0.5)
        if rng.random() < 0.5:
            ctx = {}
        else:
            ctx = dict(rows[rng.choice(REPLICAS)].vv)
        rows[rep].update(ctx, source, ts, f"{source}@{ts:.3f}", rep,
                         cap=cap)
        for other in REPLICAS:
            if other != rep and rng.random() < 0.6:
                rows[other].merge(wire_copy(rows[rep]), cap=cap)
    return rows


def wire_copy(row):
    """Independent copy via the wire form (what replication ships)."""
    return unwire_dvv_row(wire_dvv_row(row))


def merged(*rows, cap=None):
    out = DvvRow()
    for row in rows:
        out.merge(wire_copy(row), cap=cap)
    return out


class TestMergeAlgebra:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_commutative(self, seed):
        rng = random.Random(f"dvv-comm-{seed}")
        rows = random_history(rng, 25)
        a, b = rows["nodeA"], rows["nodeB"]
        ab = merged(a, b)
        ba = merged(b, a)
        assert ab.shape() == ba.shape()
        assert sorted(ab.values()) == sorted(ba.values())

    @pytest.mark.parametrize("seed", SEEDS)
    def test_associative(self, seed):
        rng = random.Random(f"dvv-assoc-{seed}")
        rows = random_history(rng, 25)
        a, b, c = (rows[r] for r in REPLICAS)
        left = merged(merged(a, b), c)
        right = merged(a, merged(b, c))
        assert left.shape() == right.shape()

    @pytest.mark.parametrize("seed", SEEDS)
    def test_idempotent(self, seed):
        rng = random.Random(f"dvv-idem-{seed}")
        rows = random_history(rng, 25)
        for rep in REPLICAS:
            row = rows[rep]
            before = row.shape()
            changed, _pruned = row.merge(wire_copy(row))
            assert not changed
            assert row.shape() == before

    @pytest.mark.parametrize("seed", SEEDS)
    def test_merge_never_invents_or_duplicates_dots(self, seed):
        rng = random.Random(f"dvv-dots-{seed}")
        rows = random_history(rng, 30)
        join = merged(*rows.values())
        dots = [s.dot for s in join.siblings]
        assert len(dots) == len(set(dots))
        union = {s.dot for row in rows.values() for s in row.siblings}
        assert set(dots) <= union
        # Every surviving sibling is covered by the join's vv.
        for sib in join.siblings:
            assert ctx_covers(join.vv, sib.dot)


class TestContextSemantics:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_context_dominance_leaves_no_sibling(self, seed):
        """A write whose context covers the whole row replaces it."""
        rng = random.Random(f"dvv-dom-{seed}")
        rows = random_history(rng, 20)
        row = rows[rng.choice(REPLICAS)]
        ctx = dict(row.vv)
        dot, _pruned = row.update(ctx, "writer", 99.0, "reconciled",
                                  "nodeA")
        assert [s.value for s in row.siblings] == ["reconciled"]
        assert row.siblings[0].dot == dot

    @pytest.mark.parametrize("seed", SEEDS)
    def test_blind_writes_all_survive(self, seed):
        """N concurrent blind writes on one replica = N siblings."""
        rng = random.Random(f"dvv-blind-{seed}")
        row = DvvRow()
        n = rng.randint(2, 8)
        for i in range(n):
            row.update({}, f"c{i}", float(i + 1), f"v{i}", "nodeA")
        assert len(row.siblings) == n
        assert sorted(row.values()) == sorted(f"v{i}" for i in range(n))

    @pytest.mark.parametrize("seed", SEEDS)
    def test_partial_context_keeps_concurrent_sibling(self, seed):
        rng = random.Random(f"dvv-partial-{seed}")
        row = DvvRow()
        row.update({}, "c0", 1.0, "left", "nodeA")
        ctx = dict(row.vv)            # covers "left" only
        row.update({}, "c1", 2.0, "right", "nodeB")
        row.update(ctx, "c2", 3.0, "over-left", "nodeA")
        values = set(row.values())
        assert values == {"right", "over-left"}, values
        del rng  # seed reserved for parametrized replay symmetry


class TestSiblingCap:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_cap_honored_and_survivors_newest(self, seed):
        rng = random.Random(f"dvv-cap-{seed}")
        cap = rng.randint(2, 5)
        rows = random_history(rng, 40, cap=cap)
        for rep in REPLICAS:
            row = rows[rep]
            assert len(row.siblings) <= cap
            for sib in row.siblings:
                assert ctx_covers(row.vv, sib.dot)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_pruned_dots_cannot_resurrect(self, seed):
        """A capped-out sibling stays covered by the vv, so re-merging
        an old copy that still holds it does not bring it back."""
        rng = random.Random(f"dvv-resurrect-{seed}")
        row = DvvRow()
        for i in range(8):
            row.update({}, f"c{i}", float(i + 1), f"v{i}", "nodeA")
        stale = wire_copy(row)         # uncapped copy with all 8
        _pruned = row._cap(3)
        assert len(row.siblings) == 3
        changed, _ = row.merge(stale, cap=3)
        assert len(row.siblings) == 3
        surviving = sorted(row.values())
        # The newest three (highest storage order) survive.
        assert surviving == sorted(f"v{i}" for i in range(5, 8))
        del rng, changed


class TestWireForm:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_roundtrip_preserves_shape(self, seed):
        rng = random.Random(f"dvv-wire-{seed}")
        rows = random_history(rng, 25)
        for row in rows.values():
            assert wire_copy(row).shape() == row.shape()

    def test_context_roundtrip(self):
        ctx = {"nodeB": 4, "nodeA": 2}
        blob = wire_context(ctx)
        assert blob == [["nodeA", 2], ["nodeB", 4]]
        assert unwire_context(blob) == ctx
        assert unwire_context(None) == {}
