"""Store-side batch primitives backing the replica.m* handlers.

``VersionedStore.write_multi``/``read_multi`` serve ``replica.mwrite``
and ``replica.mread``; ``MemStore.get_multi``/``set_multi`` are the
cache-engine counterparts (memcached's multi-key round-trip).
"""

from repro.storage.memstore import MemStore, StoreResult
from repro.storage.versioned import VersionedStore, WriteOutcome


class TestVersionedWriteMulti:
    def test_one_outcome_per_key(self):
        store = VersionedStore()
        statuses = store.write_multi([
            ("a", "va", 1.0, "s1", "latest"),
            ("b", "vb", 2.0, "s1", "latest"),
        ])
        assert statuses == {"a": WriteOutcome.OK, "b": WriteOutcome.OK}
        assert store.read_latest("a").value == "va"
        assert store.read_latest("b").value == "vb"

    def test_outdated_entries_flagged_individually(self):
        store = VersionedStore()
        store.write_latest("a", "new", 5.0, "s1")
        statuses = store.write_multi([
            ("a", "stale", 1.0, "s1", "latest"),
            ("b", "fresh", 1.0, "s1", "latest"),
        ])
        assert statuses["a"] == WriteOutcome.OUTDATED
        assert statuses["b"] == WriteOutcome.OK
        assert store.read_latest("a").value == "new"

    def test_duplicate_key_last_entry_wins(self):
        store = VersionedStore()
        statuses = store.write_multi([
            ("k", "first", 2.0, "s1", "latest"),
            ("k", "stale", 1.0, "s1", "latest"),
        ])
        # Second entry is outdated against the first; its outcome is
        # the one reported.
        assert statuses["k"] == WriteOutcome.OUTDATED
        assert store.read_latest("k").value == "first"

    def test_mixed_modes_in_one_batch(self):
        store = VersionedStore()
        statuses = store.write_multi([
            ("k", "x", 1.0, "src-a", "all"),
            ("k", "y", 1.5, "src-b", "all"),
        ])
        assert statuses["k"] == WriteOutcome.OK
        assert {e.source for e in store.read_all("k")} == {"src-a", "src-b"}


class TestVersionedReadMulti:
    def test_absent_keys_map_to_empty_lists(self):
        store = VersionedStore()
        store.write_latest("a", "va", 1.0, "s1")
        rows = store.read_multi(["a", "missing"])
        assert [e.value for e in rows["a"]] == ["va"]
        assert rows["missing"] == []

    def test_matches_per_key_read_all(self):
        store = VersionedStore()
        for i in range(5):
            store.write_all(f"k{i}", f"v{i}", float(i), f"src{i}")
        rows = store.read_multi([f"k{i}" for i in range(5)])
        for i in range(5):
            assert rows[f"k{i}"] == store.read_all(f"k{i}")


class TestMemStoreBatch:
    def test_get_multi_skips_misses(self):
        store = MemStore()
        store.set(b"a", b"1")
        store.set(b"b", b"2")
        assert store.get_multi([b"a", b"b", b"ghost"]) == {
            b"a": b"1", b"b": b"2"}

    def test_set_multi_one_result_per_key(self):
        store = MemStore()
        results = store.set_multi({b"a": b"1", b"b": b"2"})
        assert results == {b"a": StoreResult.STORED,
                           b"b": StoreResult.STORED}
        assert store.get(b"a") == b"1"
        assert store.get(b"b") == b"2"

    def test_get_multi_is_protocol_alias_of_get_many(self):
        assert MemStore.get_multi is MemStore.get_many
