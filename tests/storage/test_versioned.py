"""Unit and property tests for the versioned row store."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.versioned import (Row, ValueElement, VersionedStore,
                                     WriteOutcome)


@pytest.fixture
def store():
    return VersionedStore()


class TestWriteLatest:
    def test_first_write_ok(self, store):
        assert store.write_latest("k", "v", 1.0, "s1") == WriteOutcome.OK
        assert store.read_latest("k").value == "v"

    def test_newer_timestamp_overwrites(self, store):
        store.write_latest("k", "old", 1.0, "s1")
        assert store.write_latest("k", "new", 2.0, "s2") == WriteOutcome.OK
        el = store.read_latest("k")
        assert el.value == "new" and el.source == "s2"

    def test_older_timestamp_outdated(self, store):
        store.write_latest("k", "new", 2.0, "s1")
        assert store.write_latest("k", "old", 1.0, "s2") == WriteOutcome.OUTDATED
        assert store.read_latest("k").value == "new"

    def test_equal_timestamp_tie_broken_by_source(self, store):
        store.write_latest("k", "a", 1.0, "s1")
        # same ts, higher source wins (deterministic across replicas)
        assert store.write_latest("k", "b", 1.0, "s2") == WriteOutcome.OK
        assert store.write_latest("k", "c", 1.0, "s0") == WriteOutcome.OUTDATED
        assert store.read_latest("k").value == "b"

    def test_write_latest_collapses_value_list(self, store):
        store.write_all("k", "a", 1.0, "s1")
        store.write_all("k", "b", 1.0, "s2")
        store.write_latest("k", "only", 2.0, "s3")
        assert len(store.read_all("k")) == 1

    def test_counters(self, store):
        store.write_latest("k", "v", 1.0, "s")
        store.write_latest("k", "w", 0.5, "s")
        assert store.writes_ok == 1 and store.writes_outdated == 1


class TestWriteAll:
    def test_each_source_keeps_own_element(self, store):
        store.write_all("k", "v1", 1.0, "s1")
        store.write_all("k", "v2", 1.0, "s2")
        elements = store.read_all("k")
        assert {e.source for e in elements} == {"s1", "s2"}

    def test_same_source_newer_updates(self, store):
        store.write_all("k", "old", 1.0, "s1")
        assert store.write_all("k", "new", 2.0, "s1") == WriteOutcome.OK
        elements = store.read_all("k")
        assert len(elements) == 1 and elements[0].value == "new"

    def test_same_source_older_outdated(self, store):
        store.write_all("k", "new", 2.0, "s1")
        assert store.write_all("k", "old", 1.0, "s1") == WriteOutcome.OUTDATED

    def test_other_sources_timestamps_irrelevant(self, store):
        store.write_all("k", "v", 100.0, "s1")
        # s2's element is compared only against s2's own history (§III.F)
        assert store.write_all("k", "w", 1.0, "s2") == WriteOutcome.OK

    def test_read_latest_picks_freshest_element(self, store):
        store.write_all("k", "a", 1.0, "s1")
        store.write_all("k", "b", 3.0, "s2")
        store.write_all("k", "c", 2.0, "s3")
        assert store.read_latest("k").value == "b"


class TestReadsAndDelete:
    def test_read_missing(self, store):
        assert store.read_latest("nope") is None
        assert store.read_all("nope") == []

    def test_delete(self, store):
        store.write_latest("k", "v", 1.0, "s")
        assert store.delete("k") is True
        assert store.delete("k") is False
        assert store.read_latest("k") is None

    def test_len_contains_keys(self, store):
        store.write_latest("a", 1, 1.0, "s")
        store.write_latest("b", 2, 1.0, "s")
        assert len(store) == 2 and "a" in store
        assert set(store.keys()) == {"a", "b"}


class TestDirtyTracking:
    def test_write_sets_dirty(self, store):
        store.write_latest("k", "v", 1.0, "s")
        assert store.row("k").dirty
        assert store.dirty_count == 1

    def test_outdated_write_does_not_set_dirty(self, store):
        store.write_latest("k", "v", 2.0, "s")
        store.drain_dirty()
        store.write_latest("k", "w", 1.0, "s")
        assert store.dirty_count == 0

    def test_drain_clears_flags_in_order(self, store):
        store.write_latest("b", 1, 1.0, "s")
        store.write_latest("a", 2, 1.0, "s")
        drained = store.drain_dirty()
        assert [k for k, _ in drained] == ["b", "a"], "dirty order, not key order"
        assert store.dirty_count == 0
        assert not store.row("a").dirty

    def test_rewrite_moves_key_to_back_of_dirty_order(self, store):
        store.write_latest("a", 1, 1.0, "s")
        store.write_latest("b", 1, 1.0, "s")
        store.write_latest("a", 2, 2.0, "s")
        assert [k for k, _ in store.drain_dirty()] == ["b", "a"]

    def test_drain_limit(self, store):
        for i in range(5):
            store.write_latest(f"k{i}", i, 1.0, "s")
        assert len(store.drain_dirty(limit=2)) == 2
        assert store.dirty_count == 3


class TestMonitors:
    def test_register_on_missing_key_creates_row(self, store):
        store.register_monitor("future", "m1")
        assert store.row("future").monitors == {"m1"}

    def test_monitors_survive_writes(self, store):
        store.register_monitor("k", "m1")
        store.write_latest("k", "v", 1.0, "s")
        assert store.row("k").monitors == {"m1"}

    def test_unregister(self, store):
        store.register_monitor("k", "m1")
        store.unregister_monitor("k", "m1")
        assert store.row("k").monitors == set()
        store.unregister_monitor("nope", "m1")  # no-op


class TestReplicationSupport:
    def test_snapshot_range(self, store):
        store.write_latest("a:1", 1, 1.0, "s")
        store.write_latest("b:1", 2, 1.0, "s")
        snap = store.snapshot_range(lambda k: k.startswith("a"))
        assert set(snap) == {"a:1"}

    def test_merge_newest_wins_per_source(self, store):
        store.write_all("k", "mine", 2.0, "s1")
        store.merge_elements("k", [
            ValueElement("s1", 1.0, "stale"),
            ValueElement("s2", 3.0, "fresh"),
        ])
        elements = {e.source: e.value for e in store.read_all("k")}
        assert elements == {"s1": "mine", "s2": "fresh"}

    def test_merge_is_idempotent(self, store):
        incoming = [ValueElement("s1", 1.0, "v")]
        store.merge_elements("k", incoming)
        store.merge_elements("k", incoming)
        assert len(store.read_all("k")) == 1

    def test_merge_tie_broken_by_source(self, store):
        """Regression: merge_elements must use the same (timestamp,
        source) order as write_latest — a strict ``timestamp >`` alone
        made replicas disagree on equal-timestamp ties depending on
        whether the element arrived by write or by merge."""
        store.write_all("k", "low", 1.0, "s1")
        changed = store.merge_elements("k", [ValueElement("s1", 1.0,
                                                          "low-again")])
        assert not changed          # equal (ts, source): not newer
        store.merge_elements("k", [ValueElement("s2", 1.0, "high")])
        # Two replicas that saw the writes in opposite orders converge
        # on the same latest: (1.0, "s2") > (1.0, "s1").
        other = VersionedStore()
        other.merge_elements("k", [ValueElement("s2", 1.0, "high")])
        other.merge_elements("k", [ValueElement("s1", 1.0, "low")])
        assert (store.read_latest("k").source
                == other.read_latest("k").source == "s2")

    def test_merge_into_lww_row_stays_collapsed(self, store):
        """Regression: anti-entropy re-inflated write_latest rows.

        A write_latest row holds exactly one element; per-source merge
        append used to tack superseded sources back on, so digests
        never converged and anti-entropy churned forever.  Merging
        with ``lww=True`` (the flag replication now ships) must prune
        back to the single latest element."""
        store.write_latest("k", "new", 2.0, "s2")
        changed = store.merge_elements(
            "k", [ValueElement("s1", 1.0, "stale")], lww=True)
        elements = store.read_all("k")
        assert len(elements) == 1 and elements[0].value == "new"
        del changed

    def test_lww_merge_digests_converge(self):
        """Two replicas of a write_latest key reach identical element
        sets (hence identical anti-entropy digests) after one exchange
        in each direction — the perpetual-churn proof."""
        a, b = VersionedStore(), VersionedStore()
        a.write_latest("k", "v1", 1.0, "s1")
        a.write_latest("k", "v2", 2.0, "s2")   # collapsed to one on a
        b.write_latest("k", "v1", 1.0, "s1")   # b missed the second write
        digest = lambda s: [(e.source, e.timestamp)          # noqa: E731
                            for e in s.read_all("k")]
        # Exchange both ways, shipping the lww flag like replication.
        b.merge_elements("k", a.read_all("k"), lww=a.rows["k"].lww)
        a.merge_elements("k", b.read_all("k"), lww=b.rows["k"].lww)
        assert digest(a) == digest(b) == [("s2", 2.0)]
        # Idempotent from here: another round changes nothing.
        assert not b.merge_elements("k", a.read_all("k"),
                                    lww=a.rows["k"].lww)
        assert not a.merge_elements("k", b.read_all("k"),
                                    lww=b.rows["k"].lww)


# -- property tests -------------------------------------------------------

timestamps = st.floats(min_value=0, max_value=1e6, allow_nan=False)
sources = st.sampled_from(["s1", "s2", "s3"])


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(timestamps, sources, st.integers()), max_size=50))
def test_write_latest_converges_to_max_timestamp(writes):
    """Property: after any write sequence, read_latest returns the write
    with the maximal (timestamp, source) — replica-order independence."""
    store = VersionedStore()
    for ts, src, val in writes:
        store.write_latest("k", val, ts, src)
    if writes:
        best = max(writes, key=lambda w: (w[0], w[1]))
        got = store.read_latest("k")
        assert (got.timestamp, got.source) == (best[0], best[1])


@settings(max_examples=60, deadline=None)
@given(st.permutations(list(range(8))))
def test_write_latest_order_independence(order):
    """Property: final state is identical for any delivery order (the
    lock-free claim of §III.F)."""
    writes = [(float(i), f"s{i % 3}", f"v{i}") for i in range(8)]
    store = VersionedStore()
    for idx in order:
        ts, src, val = writes[idx]
        store.write_latest("k", val, ts, src)
    got = store.read_latest("k")
    assert got.value == "v7"


@settings(max_examples=60, deadline=None)
@given(st.lists(st.tuples(sources, timestamps, st.integers()), max_size=40))
def test_write_all_keeps_newest_per_source(writes):
    """Property: value list holds exactly the newest element per source."""
    store = VersionedStore()
    expected: dict = {}
    for src, ts, val in writes:
        store.write_all("k", val, ts, src)
        if src not in expected or ts > expected[src][0]:
            expected[src] = (ts, val)
    got = {e.source: (e.timestamp, e.value) for e in store.read_all("k")}
    assert got == expected
