"""Tests for the memcached text protocol codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.memstore import MemStore
from repro.storage.protocol import (ParseError, ProtocolSession, Request,
                                    execute, parse_request)


@pytest.fixture
def store():
    return MemStore(memory_limit=4 << 20)


@pytest.fixture
def session(store):
    return ProtocolSession(store)


class TestParser:
    def test_set_roundtrip(self):
        req, rest = parse_request(b"set k 7 0 5\r\nhello\r\n")
        assert req.verb == b"set"
        assert req.keys == [b"k"] and req.flags == 7
        assert req.data == b"hello" and rest == b""

    def test_incomplete_line_waits(self):
        req, rest = parse_request(b"set k 0 0 5")
        assert req is None and rest == b"set k 0 0 5"

    def test_incomplete_data_block_waits(self):
        buffer = b"set k 0 0 10\r\nhell"
        req, rest = parse_request(buffer)
        assert req is None and rest == buffer

    def test_data_block_missing_terminator(self):
        with pytest.raises(ParseError):
            parse_request(b"set k 0 0 5\r\nhelloXX\r\n")

    def test_cas_has_extra_field(self):
        req, _ = parse_request(b"cas k 0 0 3 42\r\nabc\r\n")
        assert req.cas == 42

    def test_noreply_flag(self):
        req, _ = parse_request(b"set k 0 0 1 noreply\r\nx\r\n")
        assert req.noreply

    def test_multi_key_get(self):
        req, _ = parse_request(b"get a b c\r\n")
        assert req.keys == [b"a", b"b", b"c"]

    def test_unknown_verb(self):
        with pytest.raises(ParseError):
            parse_request(b"frobnicate k\r\n")

    def test_bad_numeric_field(self):
        with pytest.raises(ParseError):
            parse_request(b"set k zero 0 1\r\nx\r\n")

    def test_key_too_long(self):
        key = b"k" * 251
        with pytest.raises(ParseError):
            parse_request(b"get " + key + b"\r\n")

    def test_incr_parse(self):
        req, _ = parse_request(b"incr n 5\r\n")
        assert req.verb == b"incr" and req.delta == 5

    def test_delete_parse(self):
        req, _ = parse_request(b"delete k noreply\r\n")
        assert req.noreply

    def test_pipelined_commands_split(self):
        buffer = b"get a\r\nget b\r\n"
        req1, rest = parse_request(buffer)
        assert req1.keys == [b"a"]
        req2, rest = parse_request(rest)
        assert req2.keys == [b"b"] and rest == b""


class TestExecute:
    def test_set_then_get(self, store):
        resp = execute(store, Request(verb=b"set", keys=[b"k"], flags=3,
                                      data=b"hello"))
        assert resp == b"STORED\r\n"
        resp = execute(store, Request(verb=b"get", keys=[b"k"]))
        assert resp == b"VALUE k 3 5\r\nhello\r\nEND\r\n"

    def test_get_miss(self, store):
        assert execute(store, Request(verb=b"get", keys=[b"nope"])) \
            == b"END\r\n"

    def test_gets_includes_cas(self, store):
        execute(store, Request(verb=b"set", keys=[b"k"], data=b"v"))
        resp = execute(store, Request(verb=b"gets", keys=[b"k"]))
        assert resp.startswith(b"VALUE k 0 1 ")
        cas = int(resp.split(b"\r\n")[0].rsplit(b" ", 1)[1])
        assert cas > 0

    def test_cas_flow(self, store):
        execute(store, Request(verb=b"set", keys=[b"k"], data=b"v1"))
        resp = execute(store, Request(verb=b"gets", keys=[b"k"]))
        cas = int(resp.split(b"\r\n")[0].rsplit(b" ", 1)[1])
        ok = execute(store, Request(verb=b"cas", keys=[b"k"], data=b"v2",
                                    cas=cas))
        assert ok == b"STORED\r\n"
        stale = execute(store, Request(verb=b"cas", keys=[b"k"], data=b"v3",
                                       cas=cas))
        assert stale == b"EXISTS\r\n"

    def test_add_replace(self, store):
        assert execute(store, Request(verb=b"add", keys=[b"k"], data=b"a")) \
            == b"STORED\r\n"
        assert execute(store, Request(verb=b"add", keys=[b"k"], data=b"b")) \
            == b"NOT_STORED\r\n"
        assert execute(store, Request(verb=b"replace", keys=[b"k"],
                                      data=b"c")) == b"STORED\r\n"

    def test_incr_decr(self, store):
        execute(store, Request(verb=b"set", keys=[b"n"], data=b"10"))
        assert execute(store, Request(verb=b"incr", keys=[b"n"], delta=5)) \
            == b"15\r\n"
        assert execute(store, Request(verb=b"decr", keys=[b"n"], delta=20)) \
            == b"0\r\n"

    def test_incr_missing(self, store):
        assert execute(store, Request(verb=b"incr", keys=[b"n"], delta=1)) \
            == b"NOT_FOUND\r\n"

    def test_incr_non_numeric(self, store):
        execute(store, Request(verb=b"set", keys=[b"n"], data=b"abc"))
        resp = execute(store, Request(verb=b"incr", keys=[b"n"], delta=1))
        assert resp.startswith(b"CLIENT_ERROR")

    def test_delete(self, store):
        execute(store, Request(verb=b"set", keys=[b"k"], data=b"v"))
        assert execute(store, Request(verb=b"delete", keys=[b"k"])) \
            == b"DELETED\r\n"
        assert execute(store, Request(verb=b"delete", keys=[b"k"])) \
            == b"NOT_FOUND\r\n"

    def test_stats_and_version(self, store):
        resp = execute(store, Request(verb=b"stats"))
        assert resp.startswith(b"STAT ") and resp.endswith(b"END\r\n")
        assert execute(store, Request(verb=b"version")).startswith(b"VERSION")

    def test_flush_all(self, store):
        execute(store, Request(verb=b"set", keys=[b"k"], data=b"v"))
        assert execute(store, Request(verb=b"flush_all")) == b"OK\r\n"
        assert execute(store, Request(verb=b"get", keys=[b"k"])) == b"END\r\n"


class TestSession:
    def test_full_conversation(self, session):
        out = session.feed(b"set greeting 0 0 5\r\nhello\r\nget greeting\r\n")
        assert out == (b"STORED\r\nVALUE greeting 0 5\r\nhello\r\nEND\r\n")

    def test_byte_at_a_time(self, session):
        stream = b"set k 0 0 2\r\nhi\r\nget k\r\n"
        out = b""
        for i in range(len(stream)):
            out += session.feed(stream[i:i + 1])
        assert out == b"STORED\r\nVALUE k 0 2\r\nhi\r\nEND\r\n"

    def test_noreply_suppresses_response(self, session):
        out = session.feed(b"set k 0 0 1 noreply\r\nx\r\nget k\r\n")
        assert out == b"VALUE k 0 1\r\nx\r\nEND\r\n"

    def test_client_error_resyncs(self, session):
        out = session.feed(b"bogus nonsense\r\nget missing\r\n")
        assert out.startswith(b"CLIENT_ERROR")
        assert out.endswith(b"END\r\n")

    def test_quit_closes(self, session):
        session.feed(b"quit\r\n")
        assert session.closed
        assert session.feed(b"get k\r\n") == b""

    def test_binary_safe_values(self, session):
        payload = bytes(range(256)).replace(b"\r\n", b"..")
        out = session.feed(b"set blob 0 0 %d\r\n" % len(payload)
                           + payload + b"\r\n" + b"get blob\r\n")
        assert payload in out

    def test_command_counter(self, session):
        session.feed(b"get a\r\nget b\r\nversion\r\n")
        assert session.commands == 3


@settings(max_examples=40, deadline=None)
@given(st.lists(st.tuples(
    st.sampled_from(["set", "get", "delete"]),
    st.sampled_from(["alpha", "beta", "gamma"]),
    st.binary(min_size=0, max_size=20).filter(lambda b: b"\r\n" not in b)),
    max_size=30),
    st.integers(min_value=1, max_value=7))
def test_session_matches_direct_store(ops, chunk):
    """Property: driving the store through the wire protocol (with any
    chunking) yields the same final state as calling it directly."""
    wire_store = MemStore(memory_limit=4 << 20)
    direct = MemStore(memory_limit=4 << 20)
    session = ProtocolSession(wire_store)
    stream = bytearray()
    for verb, key, value in ops:
        kb = key.encode()
        if verb == "set":
            stream += b"set %s 0 0 %d\r\n%s\r\n" % (kb, len(value), value)
            direct.set(kb, value)
        elif verb == "get":
            stream += b"get %s\r\n" % kb
            direct.get(kb)
        else:
            stream += b"delete %s\r\n" % kb
            direct.delete(kb)
    for i in range(0, len(stream), chunk):
        session.feed(bytes(stream[i:i + chunk]))
    assert {k: wire_store.get(k) for k in (b"alpha", b"beta", b"gamma")} \
        == {k: direct.get(k) for k in (b"alpha", b"beta", b"gamma")}
