"""Unit and property tests for the incremental-rehash hash table."""

import string

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.hashtable import HashTable, fnv1a


class TestFnv1a:
    def test_known_vectors(self):
        # FNV-1a 64-bit reference values.
        assert fnv1a(b"") == 0xCBF29CE484222325
        assert fnv1a(b"a") == 0xAF63DC4C8601EC8C
        assert fnv1a(b"foobar") == 0x85944171F73967E8

    def test_distribution_rough(self):
        buckets = [0] * 64
        for i in range(4096):
            buckets[fnv1a(f"key-{i}".encode()) % 64] += 1
        assert max(buckets) < 3 * (4096 // 64)


class TestHashTable:
    def test_put_get(self):
        ht = HashTable()
        assert ht.put(b"k", 1) is True
        assert ht.get(b"k") == 1

    def test_put_overwrite(self):
        ht = HashTable()
        ht.put(b"k", 1)
        assert ht.put(b"k", 2) is False
        assert ht.get(b"k") == 2
        assert len(ht) == 1

    def test_get_missing_default(self):
        ht = HashTable()
        assert ht.get(b"missing") is None
        assert ht.get(b"missing", "d") == "d"

    def test_remove(self):
        ht = HashTable()
        ht.put(b"k", 1)
        assert ht.remove(b"k") == 1
        assert ht.get(b"k") is None
        assert len(ht) == 0

    def test_remove_missing(self):
        assert HashTable().remove(b"nope") is None

    def test_contains(self):
        ht = HashTable()
        ht.put(b"k", 1)
        assert b"k" in ht and b"j" not in ht

    def test_expansion_triggered(self):
        ht = HashTable(initial_power=2, max_load=1.0)
        for i in range(20):
            ht.put(f"k{i}".encode(), i)
        assert ht.expansions >= 1
        assert ht.buckets > 4

    def test_all_readable_during_expansion(self):
        ht = HashTable(initial_power=2, max_load=1.0, migrate_per_op=1)
        keys = [f"k{i}".encode() for i in range(50)]
        for i, k in enumerate(keys):
            ht.put(k, i)
            # every key inserted so far must stay readable mid-migration
            for j in range(i + 1):
                assert ht.get(keys[j]) == j, f"lost {keys[j]} at step {i}"

    def test_migration_completes(self):
        ht = HashTable(initial_power=2, max_load=1.0, migrate_per_op=4)
        for i in range(30):
            ht.put(f"k{i}".encode(), i)
        # Drive operations until migration finishes.
        for _ in range(200):
            ht.get(b"k0")
        assert not ht.expanding

    def test_items_iterates_everything(self):
        ht = HashTable(initial_power=2, migrate_per_op=1)
        expected = {f"k{i}".encode(): i for i in range(40)}
        for k, v in expected.items():
            ht.put(k, v)
        assert dict(ht.items()) == expected

    def test_remove_during_expansion(self):
        ht = HashTable(initial_power=2, max_load=1.0, migrate_per_op=1)
        keys = [f"k{i}".encode() for i in range(30)]
        for i, k in enumerate(keys):
            ht.put(k, i)
        for k in keys[::3]:
            assert ht.remove(k) is not None
        survivors = {k for i, k in enumerate(keys) if i % 3 != 0}
        assert set(ht.keys()) == survivors


@settings(max_examples=60, deadline=None)
@given(st.lists(
    st.tuples(
        st.sampled_from(["put", "remove", "get"]),
        st.binary(min_size=0, max_size=8),
        st.integers(),
    ),
    max_size=300,
))
def test_hashtable_matches_dict_model(ops):
    """Property: the table behaves exactly like a dict under any op mix."""
    ht = HashTable(initial_power=2, max_load=1.0, migrate_per_op=1)
    model: dict = {}
    for op, key, value in ops:
        if op == "put":
            assert ht.put(key, value) == (key not in model)
            model[key] = value
        elif op == "remove":
            assert ht.remove(key) == model.pop(key, None)
        else:
            assert ht.get(key) == model.get(key)
        assert len(ht) == len(model)
    assert dict(ht.items()) == model
