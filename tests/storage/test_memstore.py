"""Unit tests for the memcached-clone MemStore."""

import pytest

from repro.storage.memstore import MemStore, StoreResult


class Clock:
    """Controllable time source."""

    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


@pytest.fixture
def clock():
    return Clock()


@pytest.fixture
def store(clock):
    return MemStore(memory_limit=4 << 20, clock=clock)


class TestBasicCommands:
    def test_set_get(self, store):
        assert store.set(b"k", b"v") == StoreResult.STORED
        assert store.get(b"k") == b"v"

    def test_get_missing(self, store):
        assert store.get(b"nope") is None
        assert store.stats()["get_misses"] == 1

    def test_set_overwrites(self, store):
        store.set(b"k", b"v1")
        store.set(b"k", b"v2")
        assert store.get(b"k") == b"v2"
        assert len(store) == 1

    def test_add_only_when_absent(self, store):
        assert store.add(b"k", b"v") == StoreResult.STORED
        assert store.add(b"k", b"w") == StoreResult.NOT_STORED
        assert store.get(b"k") == b"v"

    def test_replace_only_when_present(self, store):
        assert store.replace(b"k", b"v") == StoreResult.NOT_STORED
        store.set(b"k", b"v")
        assert store.replace(b"k", b"w") == StoreResult.STORED
        assert store.get(b"k") == b"w"

    def test_append_prepend(self, store):
        assert store.append(b"k", b"!") == StoreResult.NOT_STORED
        store.set(b"k", b"mid")
        store.append(b"k", b">")
        store.prepend(b"k", b"<")
        assert store.get(b"k") == b"<mid>"

    def test_delete(self, store):
        store.set(b"k", b"v")
        assert store.delete(b"k") == StoreResult.DELETED
        assert store.delete(b"k") == StoreResult.NOT_FOUND
        assert store.get(b"k") is None

    def test_get_many(self, store):
        store.set(b"a", b"1")
        store.set(b"b", b"2")
        assert store.get_many([b"a", b"b", b"c"]) == {b"a": b"1", b"b": b"2"}

    def test_contains_len(self, store):
        store.set(b"a", b"1")
        assert b"a" in store and b"b" not in store
        assert len(store) == 1

    def test_flush_all(self, store):
        store.set(b"a", b"1")
        store.set(b"b", b"2")
        store.flush_all()
        assert len(store) == 0
        assert store.get(b"a") is None

    def test_too_large_value_rejected(self, store):
        huge = b"x" * (2 << 20)
        assert store.set(b"k", huge) == StoreResult.TOO_LARGE


class TestCas:
    def test_gets_returns_token(self, store):
        store.set(b"k", b"v")
        value, token = store.gets(b"k")
        assert value == b"v" and token > 0

    def test_cas_succeeds_with_fresh_token(self, store):
        store.set(b"k", b"v")
        _, token = store.gets(b"k")
        assert store.cas(b"k", b"w", token) == StoreResult.STORED
        assert store.get(b"k") == b"w"

    def test_cas_fails_after_mutation(self, store):
        store.set(b"k", b"v")
        _, token = store.gets(b"k")
        store.set(b"k", b"other")
        assert store.cas(b"k", b"w", token) == StoreResult.EXISTS
        assert store.get(b"k") == b"other"

    def test_cas_missing_key(self, store):
        assert store.cas(b"k", b"v", 1) == StoreResult.NOT_FOUND


class TestArithmetic:
    def test_incr_decr(self, store):
        store.set(b"n", b"10")
        assert store.incr(b"n", 5) == 15
        assert store.decr(b"n", 3) == 12
        assert store.get(b"n") == b"12"

    def test_decr_clamps_at_zero(self, store):
        store.set(b"n", b"3")
        assert store.decr(b"n", 100) == 0

    def test_arith_missing_key(self, store):
        assert store.incr(b"n") is None

    def test_arith_non_numeric_raises(self, store):
        store.set(b"n", b"abc")
        with pytest.raises(ValueError):
            store.incr(b"n")


class TestTtl:
    def test_expiry_is_lazy_but_effective(self, store, clock):
        store.set(b"k", b"v", ttl=10.0)
        clock.t = 5.0
        assert store.get(b"k") == b"v"
        clock.t = 10.0
        assert store.get(b"k") is None
        assert store.stats()["expired_reclaims"] == 1

    def test_zero_ttl_never_expires(self, store, clock):
        store.set(b"k", b"v", ttl=0)
        clock.t = 1e9
        assert store.get(b"k") == b"v"

    def test_touch_extends(self, store, clock):
        store.set(b"k", b"v", ttl=10.0)
        clock.t = 9.0
        assert store.touch(b"k", 10.0) == StoreResult.STORED
        clock.t = 15.0
        assert store.get(b"k") == b"v"

    def test_touch_missing(self, store):
        assert store.touch(b"k", 5.0) == StoreResult.NOT_FOUND

    def test_add_succeeds_over_expired(self, store, clock):
        store.set(b"k", b"v", ttl=1.0)
        clock.t = 2.0
        assert store.add(b"k", b"w") == StoreResult.STORED
        assert store.get(b"k") == b"w"

    def test_keys_skips_expired(self, store, clock):
        store.set(b"a", b"1", ttl=1.0)
        store.set(b"b", b"2")
        clock.t = 2.0
        assert list(store.keys()) == [b"b"]


class TestEviction:
    def test_lru_eviction_under_pressure(self, clock):
        store = MemStore(memory_limit=1 << 20, clock=clock)  # one page
        value = b"x" * 900
        cls = store.slabs.class_for(len(b"k0000") + len(value) + 48)
        capacity = cls.chunks_per_page
        keys = [f"k{i:04d}".encode() for i in range(capacity + 10)]
        for k in keys:
            assert store.set(k, value) == StoreResult.STORED
        assert store.evictions == 10
        # The earliest keys are the evicted ones.
        assert store.get(keys[0]) is None
        assert store.get(keys[-1]) == value

    def test_get_protects_from_eviction(self, clock):
        store = MemStore(memory_limit=1 << 20, clock=clock)
        value = b"x" * 900
        cls = store.slabs.class_for(5 + len(value) + 48)
        capacity = cls.chunks_per_page
        keys = [f"k{i:04d}".encode() for i in range(capacity)]
        for k in keys:
            store.set(k, value)
        # Touch the oldest key, then overflow by one.
        store.get(keys[0])
        store.set(b"overflow", value)
        assert store.get(keys[0]) == value, "recently read key must survive"
        assert store.get(keys[1]) is None, "the true LRU key is evicted"

    def test_delete_frees_chunk_for_reuse(self, clock):
        store = MemStore(memory_limit=1 << 20, clock=clock)
        value = b"x" * 900
        cls = store.slabs.class_for(5 + len(value) + 48)
        for i in range(cls.chunks_per_page):
            store.set(f"k{i:04d}".encode(), value)
        store.delete(b"k0000")
        store.set(b"fresh", value)
        assert store.evictions == 0


class TestStats:
    def test_counters(self, store):
        store.set(b"k", b"v")
        store.get(b"k")
        store.get(b"miss")
        stats = store.stats()
        assert stats["cmd_set"] == 1
        assert stats["cmd_get"] == 2
        assert stats["get_hits"] == 1
        assert stats["get_misses"] == 1
        assert stats["curr_items"] == 1
