"""Tests for the expiry crawler."""

import pytest

from repro.net.simulator import Simulator
from repro.storage.crawler import ExpiryCrawler, reclaim_expired
from repro.storage.memstore import MemStore


class Clock:
    def __init__(self):
        self.t = 0.0

    def __call__(self):
        return self.t


class TestReclaimExpired:
    def test_reclaims_only_expired(self):
        clock = Clock()
        store = MemStore(memory_limit=4 << 20, clock=clock)
        store.set(b"stays", b"v")
        store.set(b"goes", b"v", ttl=1.0)
        clock.t = 2.0
        assert reclaim_expired(store) == 1
        assert b"stays" in store and b"goes" not in store

    def test_bounded_sweep(self):
        clock = Clock()
        store = MemStore(memory_limit=4 << 20, clock=clock)
        for i in range(10):
            store.set(f"k{i}".encode(), b"v", ttl=1.0)
        clock.t = 2.0
        assert reclaim_expired(store, max_items=3) == 3
        assert len(store) == 7

    def test_frees_chunks_for_reuse(self):
        clock = Clock()
        store = MemStore(memory_limit=1 << 20, clock=clock)
        value = b"x" * 900
        cls = store.slabs.class_for(5 + len(value) + 48)
        for i in range(cls.chunks_per_page):
            store.set(f"k{i:04d}".encode(), value, ttl=1.0)
        clock.t = 2.0
        reclaim_expired(store)
        # The page's chunks are free again: new sets evict nothing.
        for i in range(cls.chunks_per_page):
            store.set(f"new{i:04d}".encode(), value)
        assert store.evictions == 0

    def test_nothing_to_do(self):
        store = MemStore(memory_limit=4 << 20)
        store.set(b"k", b"v")
        assert reclaim_expired(store) == 0


class TestExpiryCrawler:
    def test_background_sweeps_on_sim_clock(self):
        sim = Simulator()
        store = MemStore(memory_limit=4 << 20, clock=lambda: sim.now)
        for i in range(5):
            store.set(f"k{i}".encode(), b"v", ttl=1.0)
        crawler = ExpiryCrawler(sim, store, interval=0.5)
        crawler.start()
        sim.run(until=3.0)
        crawler.stop()
        assert len(store) == 0
        assert crawler.total_reclaimed == 5
        assert crawler.passes >= 4

    def test_stop(self):
        sim = Simulator()
        store = MemStore(memory_limit=4 << 20, clock=lambda: sim.now)
        crawler = ExpiryCrawler(sim, store, interval=0.5)
        crawler.start()
        sim.run(until=1.0)
        crawler.stop()
        passes = crawler.passes
        store.set(b"late", b"v", ttl=0.1)
        sim.run(until=5.0)
        assert crawler.passes == passes
        assert b"late" in store.table  # lazily expired only
