"""Unit tests for the slab allocator."""

import pytest

from repro.storage.slab import OutOfMemory, SlabAllocator


class TestClassLayout:
    def test_chunk_sizes_grow_geometrically(self):
        alloc = SlabAllocator(memory_limit=1 << 22)
        sizes = [c.chunk_size for c in alloc.classes]
        assert sizes == sorted(sizes)
        assert sizes[0] == 96
        assert sizes[-1] == alloc.page_size
        for a, b in zip(sizes, sizes[1:-1]):
            assert b <= int(a * 1.25) + 8

    def test_chunk_sizes_aligned(self):
        alloc = SlabAllocator(memory_limit=1 << 22)
        for c in alloc.classes[:-1]:
            assert c.chunk_size % 8 == 0

    def test_class_for_picks_smallest_fit(self):
        alloc = SlabAllocator(memory_limit=1 << 22)
        for size in (1, 96, 97, 1000, 10_000, alloc.page_size):
            cls = alloc.class_for(size)
            assert cls.chunk_size >= size
            if cls.index > 0:
                assert alloc.classes[cls.index - 1].chunk_size < size

    def test_class_for_oversized_returns_none(self):
        alloc = SlabAllocator(memory_limit=1 << 22)
        assert alloc.class_for(alloc.page_size + 1) is None

    def test_rejects_tiny_memory_limit(self):
        with pytest.raises(ValueError):
            SlabAllocator(memory_limit=100)

    def test_rejects_bad_growth(self):
        with pytest.raises(ValueError):
            SlabAllocator(memory_limit=1 << 22, growth_factor=1.0)


class TestAllocFree:
    def test_alloc_carves_page(self):
        alloc = SlabAllocator(memory_limit=1 << 22)
        cls = alloc.class_for(100)
        alloc.alloc(cls)
        assert cls.pages == 1
        assert cls.used_chunks == 1
        assert cls.free_chunks == cls.chunks_per_page - 1
        assert alloc.memory_used == alloc.page_size

    def test_allocs_fill_page_before_new_page(self):
        alloc = SlabAllocator(memory_limit=1 << 22)
        cls = alloc.class_for(100)
        for _ in range(cls.chunks_per_page):
            alloc.alloc(cls)
        assert cls.pages == 1
        alloc.alloc(cls)
        assert cls.pages == 2

    def test_free_returns_chunk(self):
        alloc = SlabAllocator(memory_limit=1 << 22)
        cls = alloc.class_for(100)
        alloc.alloc(cls)
        alloc.free(cls)
        assert cls.used_chunks == 0
        assert cls.free_chunks == cls.chunks_per_page

    def test_double_free_rejected(self):
        alloc = SlabAllocator(memory_limit=1 << 22)
        cls = alloc.class_for(100)
        with pytest.raises(ValueError):
            alloc.free(cls)

    def test_out_of_memory(self):
        alloc = SlabAllocator(memory_limit=1 << 20)  # exactly one page
        cls = alloc.class_for(100)
        for _ in range(cls.chunks_per_page):
            alloc.alloc(cls)
        with pytest.raises(OutOfMemory):
            alloc.alloc(cls)

    def test_memory_limit_shared_across_classes(self):
        alloc = SlabAllocator(memory_limit=1 << 20)
        small = alloc.class_for(100)
        big = alloc.class_for(10_000)
        alloc.alloc(small)  # takes the only page
        with pytest.raises(OutOfMemory):
            alloc.alloc(big)

    def test_freed_chunks_reusable_after_oom(self):
        alloc = SlabAllocator(memory_limit=1 << 20)
        cls = alloc.class_for(100)
        for _ in range(cls.chunks_per_page):
            alloc.alloc(cls)
        alloc.free(cls)
        alloc.alloc(cls)  # must not raise
        assert cls.free_chunks == 0

    def test_stats(self):
        alloc = SlabAllocator(memory_limit=1 << 22)
        cls = alloc.class_for(500)
        alloc.alloc(cls)
        stats = alloc.stats()
        assert stats["pages"] == 1
        assert len(stats["classes"]) == 1
        assert stats["classes"][0]["used_chunks"] == 1
