"""The reproduction's headline promise: figures replay bit-identically."""

from repro.bench.figures import memcached_write_read, sedna_write_read


def test_sedna_series_deterministic():
    a = sedna_write_read(200, seed=7, n_nodes=3)
    b = sedna_write_read(200, seed=7, n_nodes=3)
    assert a["write_total_ms"] == b["write_total_ms"]
    assert a["read_points"] == b["read_points"]


def test_sedna_series_seed_sensitive():
    a = sedna_write_read(200, seed=7, n_nodes=3)
    b = sedna_write_read(200, seed=8, n_nodes=3)
    assert a["write_total_ms"] != b["write_total_ms"]


def test_memcached_series_deterministic():
    a = memcached_write_read(200, copies=3, seed=7, n_servers=3)
    b = memcached_write_read(200, copies=3, seed=7, n_servers=3)
    assert a["write_total_ms"] == b["write_total_ms"]
    assert a["write_points"] == b["write_points"]
