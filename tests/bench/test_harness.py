"""Unit tests for the bench harness utilities."""

import pytest

from repro.bench.harness import (FigureResult, ascii_chart, bench_ops,
                                 format_table)


class TestBenchOps:
    def test_default(self, monkeypatch):
        monkeypatch.delenv("SEDNA_BENCH_OPS", raising=False)
        assert bench_ops(1234) == 1234

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("SEDNA_BENCH_OPS", "777")
        assert bench_ops() == 777


class TestFigureResult:
    def test_expectations_tracking(self):
        result = FigureResult("F", "title")
        result.expect("good", True, "fine")
        result.expect("bad", False, "broken")
        assert not result.all_expectations_met
        assert result.failed_expectations() == ["bad: broken"]

    def test_all_met_when_empty(self):
        assert FigureResult("F", "t").all_expectations_met

    def test_render_includes_everything(self):
        result = FigureResult("Fig.X", "demo")
        result.series = {"s": [(0, 0.0), (10, 5.0)]}
        result.totals = {"s": 5.0}
        result.expect("check", True, "detail")
        text = result.render()
        assert "Fig.X: demo" in text
        assert "[PASS] check" in text
        assert "5.0" in text

    def test_render_marks_failures(self):
        result = FigureResult("F", "t")
        result.expect("nope", False)
        assert "[FAIL] nope" in result.render()


class TestAsciiChart:
    def test_empty(self):
        assert ascii_chart({}) == "(no data)"

    def test_dimensions(self):
        chart = ascii_chart({"a": [(0, 0), (100, 50)]}, width=40, height=8)
        lines = chart.split("\n")
        assert len(lines) == 8 + 3  # grid + divider + x-label + legend
        assert "a" in lines[-1]

    def test_two_series_distinct_glyphs(self):
        chart = ascii_chart({"one": [(10, 10)], "two": [(20, 20)]})
        legend = chart.split("\n")[-1]
        glyphs = [part.strip()[0] for part in legend.split("   ")]
        assert len(set(glyphs)) == 2


class TestFormatTable:
    def test_empty(self):
        assert format_table([]) == "(empty)"

    def test_alignment(self):
        text = format_table([("a", 1), ("long-name", 22)],
                            headers=("k", "v"))
        lines = text.split("\n")
        assert lines[0].startswith("k")
        assert set(lines[1]) <= {"-", " "}
        assert all(len(line) >= len("long-name") for line in lines[2:])
