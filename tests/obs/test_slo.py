"""Unit tests for declarative SLOs and burn-rate alerting."""

import json

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (BurnWindow, SloEvaluator, SloSpec, default_slos)
from repro.obs.timeseries import TimeSeriesRecorder

BUCKETS = (0.001, 0.01, 0.05, 0.2)
FAST = BurnWindow(long=1.0, short=0.5, factor=4.0, label="fast")


def _setup(specs):
    reg = MetricsRegistry()
    rec = TimeSeriesRecorder(reg, interval=0.25, capacity=64)
    return reg, rec, SloEvaluator(rec, specs)


def _latency_spec(**kw):
    kw.setdefault("name", "lat")
    kw.setdefault("kind", "latency")
    kw.setdefault("objective", 0.9)
    kw.setdefault("series", "*/lat")
    kw.setdefault("threshold", 0.05)
    kw.setdefault("windows", (FAST,))
    return SloSpec(**kw)


class TestSpecValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            SloSpec(name="x", kind="wat", objective=0.9, series="*")

    def test_objective_must_be_fractional(self):
        for bad in (0.0, 1.0, -0.5, 2.0):
            with pytest.raises(ValueError):
                SloSpec(name="x", kind="latency", objective=bad, series="*")

    def test_error_rate_needs_total_series(self):
        with pytest.raises(ValueError):
            SloSpec(name="x", kind="error_rate", objective=0.9, series="*")

    def test_default_slos_are_valid_and_exportable(self):
        specs = default_slos()
        assert len(specs) == 3
        payload = [s.export() for s in specs]
        assert json.loads(json.dumps(payload)) == payload


class TestLatencyBurn:
    def test_healthy_traffic_never_fires(self):
        reg, rec, ev = _setup([_latency_spec()])
        h = reg.histogram("lat", node="n1", buckets=BUCKETS)
        for tick in range(8):
            for _ in range(10):
                h.observe(0.002)
            rec.sample(0.25 * (tick + 1))
        assert ev.alerts == []
        assert ev.firing() == []

    def test_breach_fires_then_resolves(self):
        reg, rec, ev = _setup([_latency_spec()])
        h = reg.histogram("lat", node="n1", buckets=BUCKETS)
        now = 0.0
        for _ in range(4):
            now += 0.25
            for _ in range(10):
                h.observe(0.15)  # far over the 50ms threshold
            rec.sample(now)
        assert ev.firing() == ["lat/fast"]
        fire = ev.alerts[0]
        assert fire.state == "fire"
        assert fire.burn_long > 4.0 and fire.burn_short > 4.0
        for _ in range(8):
            now += 0.25
            for _ in range(10):
                h.observe(0.002)
            rec.sample(now)
        assert ev.firing() == []
        assert [a.state for a in ev.alerts] == ["fire", "resolve"]
        assert ev.alerts[0].time < ev.alerts[1].time

    def test_partial_breach_respects_objective(self):
        # 5% slow with a 90% objective burns at 0.5x — never alerts.
        reg, rec, ev = _setup([_latency_spec()])
        h = reg.histogram("lat", node="n1", buckets=BUCKETS)
        for tick in range(8):
            for i in range(20):
                h.observe(0.15 if i == 0 and tick % 2 == 0 else 0.002)
            rec.sample(0.25 * (tick + 1))
        assert ev.alerts == []

    def test_both_windows_must_exceed(self):
        # A single bad tick spikes the short window but not the long
        # one: no alert.
        reg, rec, ev = _setup([_latency_spec(
            windows=(BurnWindow(long=2.0, short=0.25, factor=4.0,
                                label="w"),))])
        h = reg.histogram("lat", node="n1", buckets=BUCKETS)
        now = 0.0
        for _ in range(7):
            now += 0.25
            for _ in range(10):
                h.observe(0.002)
            rec.sample(now)
        now += 0.25
        for _ in range(10):
            h.observe(0.15)
        rec.sample(now)
        assert ev.burn_rate(ev.specs[0], 0.25) > 4.0
        assert ev.burn_rate(ev.specs[0], 2.0) < 4.0
        assert ev.alerts == []

    def test_series_summed_across_nodes(self):
        reg, rec, ev = _setup([_latency_spec()])
        a = reg.histogram("lat", node="n1", buckets=BUCKETS)
        b = reg.histogram("lat", node="n2", buckets=BUCKETS)
        for _ in range(10):
            a.observe(0.002)
            b.observe(0.15)
        rec.sample(0.25)
        totals = ev._totals(_latency_spec(), 1)
        assert totals.total == 20
        assert totals.bad == pytest.approx(10.0)


class TestErrorRateAndFreshness:
    def test_error_rate_counts_failures_against_total(self):
        spec = SloSpec(name="avail", kind="error_rate", objective=0.9,
                       series="*/failures", total_series="*/ok_seconds",
                       windows=(FAST,))
        reg, rec, ev = _setup([spec])
        fails = reg.counter("failures", node="n1")
        ok = reg.histogram("ok_seconds", node="n1", buckets=BUCKETS)
        now = 0.0
        for _ in range(4):
            now += 0.25
            fails.inc(6)
            for _ in range(4):
                ok.observe(0.001)
            rec.sample(now)
        totals = ev._totals(spec, 2)
        assert totals.bad == pytest.approx(12.0)
        assert totals.total == pytest.approx(20.0)  # 8 ok + 12 failed
        assert ev.firing() == ["avail/fast"]

    def test_freshness_counts_samples_over_threshold(self):
        spec = SloSpec(name="fresh", kind="freshness", objective=0.5,
                       series="*/lag", threshold=2.0, windows=(FAST,))
        reg, rec, ev = _setup([spec])
        lag = reg.gauge("lag", node="n1")
        now = 0.0
        for level in (0.0, 1.0, 3.0, 5.0):
            now += 0.25
            lag.set(level)
            rec.sample(now)
        totals = ev._totals(spec, 4)
        assert totals.total == 4
        assert totals.bad == 2


class TestReporting:
    def test_status_attainment_and_percentile(self):
        reg, rec, ev = _setup([_latency_spec()])
        h = reg.histogram("lat", node="n1", buckets=BUCKETS)
        for _ in range(9):
            h.observe(0.002)
        h.observe(0.15)
        rec.sample(0.25)
        status = ev.status()
        entry = status["lat"]
        assert entry["events"] == 10
        assert entry["attainment"] == pytest.approx(0.9)
        assert entry["met"] is True
        assert entry["percentile"] is not None

    def test_export_deterministic_and_json_safe(self):
        def build():
            reg, rec, ev = _setup([_latency_spec()])
            h = reg.histogram("lat", node="n1", buckets=BUCKETS)
            for tick in range(4):
                for _ in range(5):
                    h.observe(0.15)
                rec.sample(0.25 * (tick + 1))
            return json.dumps(ev.export(), sort_keys=True)
        assert build() == build()
        payload = json.loads(build())
        assert payload["schema"] == "repro.obs.slo/1"
        assert payload["alerts"]
        assert payload["firing"] == ["lat/fast"]

    def test_format_slo_verdicts(self):
        reg, rec, ev = _setup([_latency_spec()])
        h = reg.histogram("lat", node="n1", buckets=BUCKETS)
        for _ in range(10):
            h.observe(0.15)
        rec.sample(0.25)
        text = ev.format_slo()
        assert "MISS lat" in text
        assert "alerts:" in text
