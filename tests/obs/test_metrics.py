"""Unit tests for the metrics registry and the per-vnode stats feed."""

import json

import pytest

from repro.obs.metrics import (DEFAULT_BUCKETS, NOOP, MetricsRegistry,
                               SNAPSHOT_SCHEMA, VnodeStatsFeed,
                               diff_snapshots)


class TestHandles:
    def test_counter_and_gauge(self):
        reg = MetricsRegistry()
        c = reg.counter("ops", node="n1")
        c.inc()
        c.inc(4)
        g = reg.gauge("depth", node="n1")
        g.set(3.0)
        g.add(-1.0)
        assert c.value == 5
        assert g.value == 2.0

    def test_handles_are_cached(self):
        reg = MetricsRegistry()
        assert reg.counter("ops", node="n1") is reg.counter("ops", node="n1")
        assert reg.counter("ops", node="n1") is not reg.counter("ops",
                                                                node="n2")
        assert reg.counter("ops", node="n1", vnode=3) is not \
            reg.counter("ops", node="n1")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("ops", node="n1")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("ops", node="n1")
        with pytest.raises(ValueError, match="already registered"):
            reg.histogram("ops", node="n1")

    def test_disabled_registry_hands_out_shared_noop(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("ops", node="n1")
        h = reg.histogram("lat", node="n1")
        assert c is NOOP and h is NOOP
        c.inc(100)
        h.observe(1.0)
        assert c.value == 0 and h.count == 0
        snap = reg.snapshot()
        assert snap["enabled"] is False
        assert snap["series"] == {}

    def test_cardinality_cap_degrades_to_noop(self):
        reg = MetricsRegistry(max_series=2)
        a = reg.counter("a")
        b = reg.counter("b")
        c = reg.counter("c")
        d = reg.counter("d")
        assert a is not NOOP and b is not NOOP
        assert c is NOOP and d is NOOP
        assert reg.dropped_series == 2
        assert reg.snapshot()["dropped_series"] == 2
        # Existing series still resolve to their live handles.
        assert reg.counter("a") is a


class TestHistogram:
    def test_boundary_lands_in_its_bucket(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(0.001, 0.01, 0.1))
        h.observe(0.001)   # exactly on the first boundary
        h.observe(0.0005)  # below the first boundary
        h.observe(0.05)    # between 0.01 and 0.1
        h.observe(5.0)     # above the last boundary -> +inf
        data = h.export()
        assert data["buckets"] == {"0.001": 2, "0.01": 0, "0.1": 1}
        assert data["inf"] == 1
        assert data["count"] == 4
        assert data["sum"] == pytest.approx(5.0515)

    def test_default_buckets_cover_latency_range(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        assert h.bounds == DEFAULT_BUCKETS
        for value in (0.00005, 0.003, 2.0, 30.0):
            h.observe(value)
        data = h.export()
        assert data["count"] == 4
        assert data["inf"] == 1  # only the 30 s outlier

    def test_same_name_different_buckets_reuses_first(self):
        reg = MetricsRegistry()
        h1 = reg.histogram("lat", buckets=(1.0,))
        h2 = reg.histogram("lat", buckets=(2.0, 3.0))
        assert h1 is h2
        assert h1.bounds == (1.0,)


class TestVnodeStatsFeed:
    def test_row_aggregates_statuses(self):
        feed = VnodeStatsFeed("n1")
        feed.record_read(3)
        feed.record_read(3)
        feed.record_write(7, n=5)
        feed.key_added(3, size=10)
        feed.key_added(7, size=4)
        feed.key_removed(7, size=4)
        assert feed.row() == {"vnodes": 2, "keys": 1, "bytes": 10,
                              "reads": 2, "writes": 5}

    def test_per_vnode_sorted_export(self):
        feed = VnodeStatsFeed("n1")
        feed.record_write(9)
        feed.record_read(2)
        assert list(feed.per_vnode()) == ["2", "9"]
        assert feed.per_vnode()["9"]["writes"] == 1

    def test_discard_drops_vnode(self):
        feed = VnodeStatsFeed("n1")
        feed.record_read(1)
        feed.discard(1)
        assert feed.row()["vnodes"] == 0

    def test_feed_replaced_on_reregister(self):
        reg = MetricsRegistry()
        old = VnodeStatsFeed("n1")
        new = VnodeStatsFeed("n1")
        reg.register_feed(old)
        reg.register_feed(new)
        assert list(reg.feeds()) == [new]


class TestSnapshot:
    def _loaded(self):
        reg = MetricsRegistry()
        reg.counter("ops", node="n1").inc(3)
        reg.counter("ops", node="n1", vnode=4).inc(1)
        reg.gauge("depth").set(2.5)
        reg.histogram("lat", node="n1", buckets=(0.1,)).observe(0.05)
        feed = VnodeStatsFeed("n1")
        feed.record_read(4)
        reg.register_feed(feed)
        return reg

    def test_schema_and_labels(self):
        snap = self._loaded().snapshot()
        assert snap["schema"] == SNAPSHOT_SCHEMA
        assert set(snap["series"]) == {"n1/ops", "n1/v4/ops", "-/depth",
                                       "n1/lat"}
        assert snap["vnodes"]["n1"]["4"]["reads"] == 1

    def test_identical_runs_export_identical_json(self):
        a, b = self._loaded(), self._loaded()
        assert a.to_json() == b.to_json()

    def test_to_text_lines(self):
        text = self._loaded().to_text()
        assert "n1/ops 3" in text
        assert "n1/lat count=1" in text
        assert "n1/vnode/4 keys=0 bytes=0 reads=1 writes=0" in text

    def test_diff_snapshots(self):
        reg = self._loaded()
        before = reg.snapshot()
        reg.counter("ops", node="n1").inc(2)
        reg.counter("new", node="n2").inc()
        after = reg.snapshot()
        delta = diff_snapshots(before, after)
        assert "n2/new" in delta["added"]
        assert delta["removed"] == []
        assert delta["changed"]["n1/ops"]["before"]["value"] == 3
        assert delta["changed"]["n1/ops"]["after"]["value"] == 5

    def test_snapshot_round_trips_through_json(self):
        snap = self._loaded().snapshot()
        assert json.loads(json.dumps(snap)) == snap


class TestDroppedSeries:
    def test_distinct_dropped_keys_counted_once(self):
        reg = MetricsRegistry(max_series=1)
        reg.counter("kept", node="n1")
        for _ in range(3):  # same key re-requested: one distinct drop
            assert reg.counter("lost", node="n2") is NOOP
        reg.gauge("also-lost", node="n1")
        assert reg.dropped_series == 2
        assert reg.dropped_keys == ["n1/also-lost", "n2/lost"]

    def test_snapshot_surfaces_dropped_keys(self):
        reg = MetricsRegistry(max_series=1)
        reg.counter("kept", node="n1")
        reg.counter("lost", node="n2", vnode=4)
        snap = reg.snapshot()
        assert snap["dropped_series"] == 1
        assert snap["dropped_keys"] == ["n2/v4/lost"]

    def test_nothing_dropped_under_cap(self):
        reg = MetricsRegistry()
        reg.counter("ops", node="n1")
        assert reg.dropped_series == 0
        assert reg.dropped_keys == []


class TestFeedUnderflow:
    def test_removal_clamped_at_zero_and_counted(self):
        feed = VnodeStatsFeed("n1")
        feed.key_added(3, 100)
        feed.key_removed(3, 100)
        assert feed.underflows == 0
        feed.key_removed(3, 50)  # double-reported departure
        assert feed.underflows == 1
        status = feed.status(3)
        assert status.keys == 0
        assert status.bytes == 0
        assert feed.row()["keys"] == 0

    def test_bytes_only_underflow_also_clamped(self):
        feed = VnodeStatsFeed("n1")
        feed.key_added(1, 10)
        feed.key_added(1, 10)
        feed.key_removed(1, 30)  # keys fine (1 left), bytes negative
        assert feed.underflows == 1
        assert feed.status(1).keys == 1
        assert feed.status(1).bytes == 0

    def test_snapshot_reports_underflows_per_feed(self):
        reg = MetricsRegistry()
        feed = reg.register_feed(VnodeStatsFeed("n1"))
        feed.key_removed(0, 5)
        snap = reg.snapshot()
        assert snap["feed_underflows"] == {"n1": 1}


class TestDiffMeta:
    def test_meta_section_tracks_registry_level_changes(self):
        reg = MetricsRegistry(max_series=2)
        reg.counter("a", node="n1")
        before = reg.snapshot()
        reg.counter("b", node="n1")
        reg.counter("overflow", node="n2")  # dropped
        after = reg.snapshot()
        delta = diff_snapshots(before, after)
        assert delta["meta"]["dropped_series"] == {"before": 0, "after": 1}
        assert delta["meta"]["dropped_keys"] == {
            "before": [], "after": ["n2/overflow"]}
        assert "enabled" not in delta["meta"]

    def test_meta_empty_when_nothing_changed(self):
        reg = MetricsRegistry()
        reg.counter("a", node="n1")
        snap = reg.snapshot()
        assert diff_snapshots(snap, snap)["meta"] == {}


class TestQuantileInterpolation:
    BOUNDS = (1.0, 2.0, 4.0, 8.0)

    def _hist(self, values):
        from repro.obs.metrics import Histogram
        h = Histogram(self.BOUNDS)
        for v in values:
            h.observe(v)
        return h

    def test_quantile_matches_exact_percentiles_uniform(self):
        # 100 uniform samples in (0, 4): exact p-th percentile is
        # 4p/100; bucket interpolation must stay within a bucket width.
        values = [4.0 * (i + 0.5) / 100 for i in range(100)]
        h = self._hist(values)
        for q in (0.1, 0.25, 0.5, 0.75, 0.9, 0.99):
            exact = 4.0 * q
            got = h.quantile(q)
            assert abs(got - exact) <= 1.0, (q, got, exact)

    def test_quantile_exact_at_bucket_boundaries(self):
        # 10 obs in (0,1], 10 in (1,2]: the median is exactly 1.0 and
        # p100 exactly 2.0 under uniform-in-bucket interpolation.
        h = self._hist([0.5] * 10 + [1.5] * 10)
        assert h.quantile(0.5) == pytest.approx(1.0)
        assert h.quantile(1.0) == pytest.approx(2.0)
        assert h.quantile(0.25) == pytest.approx(0.5)

    def test_quantile_overflow_clamps_to_top_bound(self):
        h = self._hist([100.0] * 5)
        assert h.quantile(0.99) == pytest.approx(8.0)

    def test_quantile_empty_and_bad_q(self):
        h = self._hist([])
        assert h.quantile(0.5) == 0.0
        with pytest.raises(ValueError):
            h.quantile(1.5)

    def test_fraction_le_interpolates_within_bucket(self):
        h = self._hist([0.5] * 10)  # all in (0, 1]
        assert h.fraction_le(1.0) == pytest.approx(1.0)
        assert h.fraction_le(0.5) == pytest.approx(0.5)
        assert h.fraction_le(0.0) == pytest.approx(0.0)

    def test_fraction_le_overflow_counts_as_bad(self):
        h = self._hist([0.5] * 9 + [100.0])
        assert h.fraction_le(8.0) == pytest.approx(0.9)

    def test_fraction_le_empty_is_vacuously_good(self):
        assert self._hist([]).fraction_le(1.0) == 1.0
