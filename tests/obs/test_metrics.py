"""Unit tests for the metrics registry and the per-vnode stats feed."""

import json

import pytest

from repro.obs.metrics import (DEFAULT_BUCKETS, NOOP, MetricsRegistry,
                               SNAPSHOT_SCHEMA, VnodeStatsFeed,
                               diff_snapshots)


class TestHandles:
    def test_counter_and_gauge(self):
        reg = MetricsRegistry()
        c = reg.counter("ops", node="n1")
        c.inc()
        c.inc(4)
        g = reg.gauge("depth", node="n1")
        g.set(3.0)
        g.add(-1.0)
        assert c.value == 5
        assert g.value == 2.0

    def test_handles_are_cached(self):
        reg = MetricsRegistry()
        assert reg.counter("ops", node="n1") is reg.counter("ops", node="n1")
        assert reg.counter("ops", node="n1") is not reg.counter("ops",
                                                                node="n2")
        assert reg.counter("ops", node="n1", vnode=3) is not \
            reg.counter("ops", node="n1")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("ops", node="n1")
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("ops", node="n1")
        with pytest.raises(ValueError, match="already registered"):
            reg.histogram("ops", node="n1")

    def test_disabled_registry_hands_out_shared_noop(self):
        reg = MetricsRegistry(enabled=False)
        c = reg.counter("ops", node="n1")
        h = reg.histogram("lat", node="n1")
        assert c is NOOP and h is NOOP
        c.inc(100)
        h.observe(1.0)
        assert c.value == 0 and h.count == 0
        snap = reg.snapshot()
        assert snap["enabled"] is False
        assert snap["series"] == {}

    def test_cardinality_cap_degrades_to_noop(self):
        reg = MetricsRegistry(max_series=2)
        a = reg.counter("a")
        b = reg.counter("b")
        c = reg.counter("c")
        d = reg.counter("d")
        assert a is not NOOP and b is not NOOP
        assert c is NOOP and d is NOOP
        assert reg.dropped_series == 2
        assert reg.snapshot()["dropped_series"] == 2
        # Existing series still resolve to their live handles.
        assert reg.counter("a") is a


class TestHistogram:
    def test_boundary_lands_in_its_bucket(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(0.001, 0.01, 0.1))
        h.observe(0.001)   # exactly on the first boundary
        h.observe(0.0005)  # below the first boundary
        h.observe(0.05)    # between 0.01 and 0.1
        h.observe(5.0)     # above the last boundary -> +inf
        data = h.export()
        assert data["buckets"] == {"0.001": 2, "0.01": 0, "0.1": 1}
        assert data["inf"] == 1
        assert data["count"] == 4
        assert data["sum"] == pytest.approx(5.0515)

    def test_default_buckets_cover_latency_range(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat")
        assert h.bounds == DEFAULT_BUCKETS
        for value in (0.00005, 0.003, 2.0, 30.0):
            h.observe(value)
        data = h.export()
        assert data["count"] == 4
        assert data["inf"] == 1  # only the 30 s outlier

    def test_same_name_different_buckets_reuses_first(self):
        reg = MetricsRegistry()
        h1 = reg.histogram("lat", buckets=(1.0,))
        h2 = reg.histogram("lat", buckets=(2.0, 3.0))
        assert h1 is h2
        assert h1.bounds == (1.0,)


class TestVnodeStatsFeed:
    def test_row_aggregates_statuses(self):
        feed = VnodeStatsFeed("n1")
        feed.record_read(3)
        feed.record_read(3)
        feed.record_write(7, n=5)
        feed.key_added(3, size=10)
        feed.key_added(7, size=4)
        feed.key_removed(7, size=4)
        assert feed.row() == {"vnodes": 2, "keys": 1, "bytes": 10,
                              "reads": 2, "writes": 5}

    def test_per_vnode_sorted_export(self):
        feed = VnodeStatsFeed("n1")
        feed.record_write(9)
        feed.record_read(2)
        assert list(feed.per_vnode()) == ["2", "9"]
        assert feed.per_vnode()["9"]["writes"] == 1

    def test_discard_drops_vnode(self):
        feed = VnodeStatsFeed("n1")
        feed.record_read(1)
        feed.discard(1)
        assert feed.row()["vnodes"] == 0

    def test_feed_replaced_on_reregister(self):
        reg = MetricsRegistry()
        old = VnodeStatsFeed("n1")
        new = VnodeStatsFeed("n1")
        reg.register_feed(old)
        reg.register_feed(new)
        assert list(reg.feeds()) == [new]


class TestSnapshot:
    def _loaded(self):
        reg = MetricsRegistry()
        reg.counter("ops", node="n1").inc(3)
        reg.counter("ops", node="n1", vnode=4).inc(1)
        reg.gauge("depth").set(2.5)
        reg.histogram("lat", node="n1", buckets=(0.1,)).observe(0.05)
        feed = VnodeStatsFeed("n1")
        feed.record_read(4)
        reg.register_feed(feed)
        return reg

    def test_schema_and_labels(self):
        snap = self._loaded().snapshot()
        assert snap["schema"] == SNAPSHOT_SCHEMA
        assert set(snap["series"]) == {"n1/ops", "n1/v4/ops", "-/depth",
                                       "n1/lat"}
        assert snap["vnodes"]["n1"]["4"]["reads"] == 1

    def test_identical_runs_export_identical_json(self):
        a, b = self._loaded(), self._loaded()
        assert a.to_json() == b.to_json()

    def test_to_text_lines(self):
        text = self._loaded().to_text()
        assert "n1/ops 3" in text
        assert "n1/lat count=1" in text
        assert "n1/vnode/4 keys=0 bytes=0 reads=1 writes=0" in text

    def test_diff_snapshots(self):
        reg = self._loaded()
        before = reg.snapshot()
        reg.counter("ops", node="n1").inc(2)
        reg.counter("new", node="n2").inc()
        after = reg.snapshot()
        delta = diff_snapshots(before, after)
        assert "n2/new" in delta["added"]
        assert delta["removed"] == []
        assert delta["changed"]["n1/ops"]["before"]["value"] == 3
        assert delta["changed"]["n1/ops"]["after"]["value"] == 5

    def test_snapshot_round_trips_through_json(self):
        snap = self._loaded().snapshot()
        assert json.loads(json.dumps(snap)) == snap
