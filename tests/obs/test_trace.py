"""Unit tests for the span tracer: span trees, kernel inheritance,
envelope propagation, caps, and rendering."""

import pytest

from repro.net.latency import NoLatency
from repro.net.rpc import RpcNode
from repro.net.simulator import Simulator
from repro.net.transport import Network
from repro.obs.trace import SpanTracer, format_timeline


class TestSpanTree:
    def test_root_and_children(self):
        tracer = SpanTracer()
        root = tracer.start_trace("op", node="client")
        child = tracer.begin("hop", node="server")
        tracer.finish(child, status="ok")
        tracer.finish(root)
        spans = tracer.spans(root.trace_id)
        assert [s.name for s in spans] == ["op", "hop"]
        assert spans[0].parent_id is None
        assert spans[1].parent_id == root.span_id
        assert spans[1].tags == {"status": "ok"}

    def test_begin_without_trace_returns_none(self):
        tracer = SpanTracer()
        assert tracer.begin("orphan") is None
        tracer.finish(None)  # None-safe
        assert tracer.span_count == 0

    def test_sequential_traces_get_fresh_ids(self):
        tracer = SpanTracer()
        a = tracer.start_trace("a")
        b = tracer.start_trace("b")
        assert a.trace_id != b.trace_id
        assert tracer.trace_names == {a.trace_id: "a", b.trace_id: "b"}

    def test_max_spans_cap(self):
        tracer = SpanTracer(max_spans=2)
        root = tracer.start_trace("op")
        tracer.begin("kept")
        dropped = tracer.begin("dropped")
        assert tracer.span_count == 2
        assert tracer.dropped_spans == 1
        assert len(tracer.spans(root.trace_id)) == 2
        tracer.finish(dropped)  # dropped spans can still be finished
        assert dropped.end is not None

    def test_single_tracer_slot(self):
        sim = Simulator()
        SpanTracer().attach(sim)
        with pytest.raises(ValueError, match="already has a tracer"):
            SpanTracer().attach(sim)

    def test_detach_frees_the_slot(self):
        sim = Simulator()
        tracer = SpanTracer().attach(sim)
        tracer.detach()
        assert sim.tracer is None
        SpanTracer().attach(sim)  # slot is reusable


class TestKernelInheritance:
    def test_events_inherit_context_across_yields(self):
        sim = Simulator()
        tracer = SpanTracer().attach(sim)
        seen = []

        def op():
            root = tracer.start_trace("op", node="a")
            yield sim.timeout(0.5)
            # Resumed inside an event scheduled during the traced
            # window -> the context survived the yield.
            seen.append(tracer.current_ctx())
            child = tracer.begin("late", node="a")
            tracer.finish(child)
            tracer.finish(root)
            return root.trace_id

        proc = sim.process(op())
        trace_id = sim.run(until=proc)
        assert seen == [(trace_id, 1)]
        spans = tracer.spans(trace_id)
        assert [s.name for s in spans] == ["op", "late"]
        assert spans[1].start == pytest.approx(0.5)

    def test_untraced_events_carry_no_context(self):
        sim = Simulator()
        tracer = SpanTracer().attach(sim)
        seen = []

        def plain():
            yield sim.timeout(0.1)
            seen.append(tracer.current_ctx())

        sim.process(plain())
        sim.run()
        assert seen == [None]

    def test_concurrent_traces_do_not_bleed(self):
        sim = Simulator()
        tracer = SpanTracer().attach(sim)
        out = {}

        def op(name, delay):
            root = tracer.start_trace(name, node=name)
            yield sim.timeout(delay)
            out[name] = tracer.current_ctx()
            tracer.finish(root)

        sim.process(op("left", 0.3))
        sim.process(op("right", 0.2))
        sim.run()
        assert out["left"] != out["right"]
        assert out["left"][0] != out["right"][0]


class TestEnvelopePropagation:
    def _world(self):
        sim = Simulator()
        net = Network(sim, latency=NoLatency())
        tracer = SpanTracer().attach(sim)
        net.tracer = tracer
        client = RpcNode(net, "c")
        client.tracer = tracer
        server = RpcNode(net, "s")
        server.tracer = tracer
        return sim, net, tracer, client, server

    def test_serve_span_joins_the_callers_trace(self):
        sim, net, tracer, client, server = self._world()
        server.register("echo", lambda src, args: args)

        def go():
            root = tracer.start_trace("op", node="c")
            yield from client.call("s", "echo", 42, timeout=1.0)
            tracer.finish(root)
            return root.trace_id

        proc = sim.process(go())
        trace_id = sim.run(until=proc)
        spans = tracer.spans(trace_id)
        names = [(s.name, s.node) for s in spans]
        assert ("rpc.echo", "s") in names
        serve = next(s for s in spans if s.name == "rpc.echo")
        assert serve.parent_id == spans[0].span_id
        assert serve.tags["status"] == "ok"
        assert serve.end is not None

    def test_untraced_calls_have_clean_envelopes(self):
        sim, net, tracer, client, server = self._world()
        payloads = []
        server.register("echo", lambda src, args: args)
        net.add_filter(
            lambda src, dst, p: payloads.append(p) or True)

        def go():
            yield from client.call("s", "echo", 1, timeout=1.0)
            return True

        sim.process(go())
        sim.run()
        requests = [p for p in payloads
                    if isinstance(p, dict) and p.get("kind") == "req"]
        assert requests and all("tr" not in p for p in requests)


class TestTimeline:
    def test_format_timeline_renders_tree(self):
        sim = Simulator()
        tracer = SpanTracer().attach(sim)

        def op():
            root = tracer.start_trace("op", node="c")
            child = tracer.begin("hop", node="s")
            yield sim.timeout(0.25)
            tracer.finish(child, status="ok")
            tracer.finish(root)
            return root.trace_id

        proc = sim.process(op())
        trace_id = sim.run(until=proc)
        text = format_timeline(tracer, trace_id)
        assert "trace 1 'op'" in text
        assert "total=250.000ms" in text
        assert "hop @s status=ok" in text

    def test_format_timeline_empty_trace(self):
        assert "no spans" in format_timeline(SpanTracer(), 99)


class TestTimelineEdgeCases:
    def test_open_spans_render_as_open(self):
        sim = Simulator()
        tracer = SpanTracer().attach(sim)
        root = tracer.start_trace("op", node="c")
        tracer.begin("stuck", node="s")  # never finished
        tracer.finish(root)
        text = format_timeline(tracer, root.trace_id)
        assert "open" in text
        assert "stuck @s" in text

    def test_dropped_parent_renders_at_root_depth(self):
        from repro.obs.trace import Span
        tracer = SpanTracer()
        root = tracer.start_trace("op")
        # A span whose parent the tracer's cap dropped: its parent id
        # resolves to nothing in the recorded list.
        orphan = Span(root.trace_id, 999, 998, "orphan", "s", 0.1)
        orphan.end = 0.2
        tracer.traces[root.trace_id].append(orphan)
        tracer.finish(root)
        text = format_timeline(tracer, root.trace_id)
        lines = text.splitlines()
        assert any("orphan" in line for line in lines)
        # Unknown parent -> depth 1 (rendered under the root, not lost).
        orphan_line = next(line for line in lines if "orphan" in line)
        assert orphan_line.startswith("    [+") or \
            orphan_line.startswith("  [+")

    def test_all_open_trace_total_falls_back_to_start(self):
        tracer = SpanTracer()
        root = tracer.start_trace("op")
        text = format_timeline(tracer, root.trace_id)
        assert "total=0.000ms" in text
        assert "open" in text

    def test_timeline_lists_spans_in_creation_order(self):
        sim = Simulator()
        tracer = SpanTracer().attach(sim)

        def op():
            root = tracer.start_trace("op")
            a = tracer.begin("first")
            tracer.finish(a)
            b = tracer.begin("second")
            yield sim.timeout(0.1)
            tracer.finish(b)
            tracer.finish(root)
            return root.trace_id

        proc = sim.process(op())
        tid = sim.run(until=proc)
        lines = format_timeline(tracer, tid).splitlines()
        first = next(i for i, l in enumerate(lines) if "first" in l)
        second = next(i for i, l in enumerate(lines) if "second" in l)
        assert first < second
