"""Flight-recorder tests: ring feeds, dumps, and the end-to-end
auto-dump a chaos run produces when an invariant genuinely fails."""

import json

import pytest

from repro.chaos.invariants import Anomaly
from repro.chaos.runner import ChaosRunner
from repro.net.latency import NoLatency
from repro.net.rpc import RpcNode
from repro.net.simulator import Simulator
from repro.net.transport import Network
from repro.obs.metrics import MetricsRegistry
from repro.obs.recorder import FLIGHT_SCHEMA, FlightRecorder
from repro.obs.timeseries import TimeSeriesRecorder
from repro.obs.trace import SpanTracer


class TestFeeds:
    def test_span_ring_holds_recent_finished_spans(self):
        tracer = SpanTracer()
        rec = FlightRecorder(max_spans=2).observe_tracer(tracer)
        for i in range(4):
            span = tracer.start_trace(f"op{i}")
            tracer.finish(span)
        names = [s["name"] for s in rec.spans]
        assert names == ["op2", "op3"]

    def test_sample_ring_keeps_only_nonzero_deltas(self):
        reg = MetricsRegistry()
        series = TimeSeriesRecorder(reg, interval=0.25)
        rec = FlightRecorder(max_samples=8).observe_timeseries(series)
        moving = reg.counter("busy", node="n1")
        reg.counter("idle", node="n1")  # never incremented
        moving.inc(3)
        series.sample(0.25)
        series.sample(0.50)
        assert len(rec.samples) == 2
        assert rec.samples[0][1] == {"n1/busy": 3}
        assert rec.samples[1][1] == {}

    def test_packet_ring_bounded_and_pass_through(self):
        sim = Simulator()
        net = Network(sim, latency=NoLatency())
        rec = FlightRecorder(max_packets=3).observe_network(net)
        client = RpcNode(net, "c")
        server = RpcNode(net, "s")
        server.register("echo", lambda src, args: args)

        def go():
            for i in range(4):
                yield from client.call("s", "echo", i, timeout=1.0)

        proc = sim.process(go())
        sim.run(until=proc)
        assert len(rec.packets) == 3  # 8 transmissions, ring keeps 3
        rec.detach()
        sim.process(go())
        sim.run()
        assert len(rec.packets) == 3  # detached: feed stopped

    def test_detach_removes_tracer_hook(self):
        tracer = SpanTracer()
        rec = FlightRecorder().observe_tracer(tracer)
        rec.detach()
        span = tracer.start_trace("op")
        tracer.finish(span)
        assert len(rec.spans) == 0


class TestDump:
    def _recorder_with_trace(self, key="k1"):
        tracer = SpanTracer()
        rec = FlightRecorder().observe_tracer(tracer)
        root = tracer.start_trace("chaos.write_latest")
        root.tags["key"] = key
        child = tracer.begin("coord.write")
        tracer.finish(child)
        tracer.finish(root)
        return tracer, rec

    def test_schema_and_json_round_trip(self):
        _, rec = self._recorder_with_trace()
        dump = rec.dump(time=4.5)
        assert dump["schema"] == FLIGHT_SCHEMA
        assert dump["time"] == 4.5
        assert json.loads(json.dumps(dump)) == dump

    def test_violating_trace_cross_reference(self):
        tracer, rec = self._recorder_with_trace(key="bad-key")
        anomaly = Anomaly(invariant="durability", key="bad-key",
                          detail="gone")
        dump = rec.dump(anomalies=[anomaly])
        assert dump["anomalies"][0]["key"] == "bad-key"
        assert dump["violating_traces"] == {"bad-key": [1]}
        spans = dump["traces"]["1"]["spans"]
        assert [s["name"] for s in spans] == ["chaos.write_latest",
                                              "coord.write"]

    def test_multi_key_roots_match_by_member(self):
        tracer, rec = self._recorder_with_trace(key="a,b,c")
        dump = rec.dump(anomalies=[Anomaly(invariant="x", key="b",
                                           detail="d")])
        assert dump["violating_traces"] == {"b": [1]}

    def test_unrelated_anomaly_matches_nothing(self):
        _, rec = self._recorder_with_trace(key="k1")
        dump = rec.dump(anomalies=[Anomaly(invariant="x", key="other",
                                           detail="d")])
        assert dump["violating_traces"] == {}
        assert dump["traces"] == {}


class _SabotagedRunner(ChaosRunner):
    """Chaos runner that corrupts the final state after quiesce: every
    replica of one written key is emptied, so the durability invariant
    must fire — exercising the automatic flight-recorder dump."""

    sabotaged_key = None

    def _collect(self):
        state = super()._collect()
        tainted = self.history.deleted_keys()
        for key in sorted(state.holders):
            if key in tainted:
                continue
            if not self.history.acked_writes(key, kind="write_latest"):
                continue
            for name in state.holders[key]:
                state.holders[key][name] = []
            self.sabotaged_key = key
            break
        return state


@pytest.mark.slow
class TestChaosAutoDump:
    def test_forced_violation_dumps_flight_data(self):
        runner = _SabotagedRunner(seed=3, duration=3.0, record=True)
        report = runner.run()
        assert runner.sabotaged_key is not None
        assert not report.ok
        assert report.flight_dump, "hard anomaly must trigger a dump"
        dump = report.flight_dump
        assert dump["schema"] == FLIGHT_SCHEMA
        assert any(a["key"] == runner.sabotaged_key
                   for a in dump["anomalies"])
        # The violating op's spans are embedded in full.
        assert runner.sabotaged_key in dump["violating_traces"]
        tids = dump["violating_traces"][runner.sabotaged_key]
        assert tids
        for tid in tids:
            spans = dump["traces"][str(tid)]["spans"]
            assert spans[0]["parent"] is None
            assert runner.sabotaged_key in \
                str(spans[0]["tags"]["key"]).split(",")
        # Surrounding context made it into the rings.
        assert dump["samples"], "metric deltas around the failure"
        assert dump["packets"], "recent wire traffic"
        assert json.loads(json.dumps(dump)) == dump

    def test_clean_run_with_record_does_not_dump(self):
        report = ChaosRunner(seed=3, duration=3.0, record=True).run()
        assert report.ok
        assert report.flight_dump == {}
