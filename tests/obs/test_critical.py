"""Unit tests for critical-path analysis and flame output."""

import json

import pytest

from repro.obs.critical import (aggregate, analyze_trace, critical_path,
                                folded_stacks, format_breakdown,
                                format_flame, phase_of)


def _span(sid, parent, name, start, end, **tags):
    return {"trace": 1, "span": sid, "parent": parent, "name": name,
            "node": "n", "start": start, "end": end, "tags": tags}


def _trace(spans, name="chaos.write_latest"):
    return {"name": name, "spans": spans}


def _quorum_spans():
    """Root -> coord -> 3 replica RPCs; the quorum settles on r2, r3
    is a laggard finishing after the coordinator."""
    return [
        _span(1, None, "chaos.write_latest", 0.0, 0.008, key="k"),
        _span(2, 1, "coord.write", 0.001, 0.0075),
        _span(3, 2, "rpc.replica.write", 0.002, 0.004),
        _span(4, 2, "rpc.replica.write", 0.0028, 0.006, queue=0.0008),
        _span(5, 2, "rpc.replica.write", 0.003, 0.009),  # laggard
    ]


class TestPhaseOf:
    def test_mapping(self):
        assert phase_of("rpc.replica.write") == "storage"
        assert phase_of("rpc.migrate.begin") == "storage"
        assert phase_of("rpc.zk.read") == "zk"
        assert phase_of("rpc.heartbeat") == "serve"
        assert phase_of("coord.write") == "coord"
        assert phase_of("chaos.write_latest") == "client"
        assert phase_of("client.read") == "client"


class TestCriticalPath:
    def test_empty(self):
        assert critical_path([]) == []

    def test_straight_chain(self):
        spans = [_span(1, None, "a", 0.0, 1.0),
                 _span(2, 1, "b", 0.1, 0.9),
                 _span(3, 2, "c", 0.2, 0.8)]
        assert [s["span"] for s in critical_path(spans)] == [1, 2, 3]

    def test_laggard_excluded_and_settling_reply_chosen(self):
        path = critical_path(_quorum_spans())
        assert [s["span"] for s in path] == [1, 2, 4]

    def test_tie_breaks_on_lowest_span_id(self):
        spans = [_span(1, None, "a", 0.0, 1.0),
                 _span(2, 1, "b", 0.1, 0.5),
                 _span(3, 1, "c", 0.2, 0.5)]
        assert [s["span"] for s in critical_path(spans)] == [1, 2]

    def test_open_spans_pinned_to_trace_end(self):
        spans = [_span(1, None, "a", 0.0, None),
                 _span(2, 1, "b", 0.1, 0.7)]
        path = critical_path(spans)
        assert [s["span"] for s in path] == [1, 2]


class TestAnalyzeTrace:
    def test_phases_sum_to_duration(self):
        result = analyze_trace(_trace(_quorum_spans()))
        assert result["duration"] == pytest.approx(0.008)
        assert result["path"] == ["chaos.write_latest", "coord.write",
                                  "rpc.replica.write"]
        assert sum(result["phases"].values()) == pytest.approx(0.008)

    def test_queue_tag_becomes_queue_wait(self):
        result = analyze_trace(_trace(_quorum_spans()))
        assert result["phases"]["queue_wait"] == pytest.approx(0.0008)

    def test_settle_under_coord_is_quorum_wait(self):
        result = analyze_trace(_trace(_quorum_spans()))
        # coord.write ends 0.0075, critical reply ends 0.006
        assert result["phases"]["quorum_wait"] == pytest.approx(0.0015)

    def test_leaf_duration_goes_to_its_phase(self):
        result = analyze_trace(_trace(_quorum_spans()))
        assert result["phases"]["storage"] == pytest.approx(0.0032)

    def test_empty_trace(self):
        result = analyze_trace(_trace([]))
        assert result == {"name": "chaos.write_latest", "duration": 0.0,
                          "path": [], "phases": {}}


class TestAggregate:
    def _export(self):
        return {"traces": {
            "1": _trace(_quorum_spans()),
            "2": _trace([_span(1, None, "chaos.read_latest", 0.0, 0.002),
                         _span(2, 1, "coord.read", 0.0005, 0.0015)],
                        name="chaos.read_latest"),
        }}

    def test_rollup_per_kind(self):
        agg = aggregate(self._export())
        assert sorted(agg) == ["chaos.read_latest", "chaos.write_latest"]
        row = agg["chaos.write_latest"]
        assert row["count"] == 1
        assert row["mean_s"] == pytest.approx(0.008)
        assert row["max_s"] == pytest.approx(0.008)

    def test_format_breakdown_table(self):
        text = format_breakdown(aggregate(self._export()))
        assert "chaos.write_latest" in text
        assert "quorum_wait" in text
        assert "op kind" in text
        assert format_breakdown({}) == "(no traces)"

    def test_deterministic(self):
        a = json.dumps(aggregate(self._export()), sort_keys=True)
        b = json.dumps(aggregate(self._export()), sort_keys=True)
        assert a == b


class TestFoldedStacks:
    def test_self_time_subtracts_children(self):
        export = {"traces": {"1": _trace([
            _span(1, None, "a", 0.0, 0.010),
            _span(2, 1, "b", 0.002, 0.008)])}}
        folded = folded_stacks(export)
        assert folded == {"a": 4000, "a;b": 6000}

    def test_self_time_clamped_when_children_overlap(self):
        export = {"traces": {"1": _trace([
            _span(1, None, "a", 0.0, 0.010),
            _span(2, 1, "b", 0.000, 0.010),
            _span(3, 1, "c", 0.000, 0.010)])}}
        folded = folded_stacks(export)
        assert folded["a"] == 0

    def test_dropped_parent_starts_new_root(self):
        export = {"traces": {"1": _trace([
            _span(2, 99, "orphan", 0.0, 0.004)])}}
        assert folded_stacks(export) == {"orphan": 4000}

    def test_stacks_merge_across_traces(self):
        one = _trace([_span(1, None, "a", 0.0, 0.001)])
        export = {"traces": {"1": one, "2": one}}
        assert folded_stacks(export) == {"a": 2000}

    def test_format_flame_lines(self):
        text = format_flame({"a;b": 1500, "a": 10})
        assert text.splitlines() == ["a 10", "a;b 1500"]
