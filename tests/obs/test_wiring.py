"""Integration tests: the obs bundle wired through a live cluster.

Covers the acceptance properties: deterministic snapshots across
same-seed runs, and the per-vnode frequencies in a snapshot being the
very numbers the imbalance pusher publishes to ZooKeeper.
"""

import ast
import json

from repro.core.cache import ZkLayout
from repro.core.cluster import SednaCluster
from repro.core.config import SednaConfig
from repro.core.hashring import ImbalanceTable
from repro.obs import Observability
from repro.obs.metrics import DISABLED


def _workload(client, n=12):
    for i in range(n):
        yield from client.write_latest(f"wk-{i}", f"v{i}")
    for i in range(n):
        yield from client.read_latest(f"wk-{i}")
    return True


def _build(seed=7, obs=None, **cfg):
    cluster = SednaCluster(n_nodes=4, zk_size=3,
                           config=SednaConfig(num_vnodes=32, **cfg),
                           seed=seed, obs=obs)
    cluster.start()
    return cluster


class TestDeterminism:
    def _snapshot(self):
        obs = Observability(metrics=True, tracing=True)
        cluster = _build(obs=obs)
        cluster.run(_workload(cluster.client("w")))
        cluster.settle(1.0)
        return obs.snapshot()

    def test_same_seed_same_snapshot(self):
        a, b = self._snapshot(), self._snapshot()
        assert json.dumps(a, sort_keys=True) == json.dumps(b, sort_keys=True)
        assert a["series"] and a["tracing"]["spans"] > 0


class TestImbalanceAccounting:
    def test_snapshot_row_equals_zk_published_row(self):
        """The frequencies an operator reads in a snapshot are
        definitionally the ones the rebalancer sees in ZooKeeper."""
        obs = Observability(metrics=True)
        cluster = _build(obs=obs)
        cluster.run(_workload(cluster.client("w")))
        # Let every node push its imbalance row, then read the table
        # back through a probe session with no further KV traffic.
        cluster.settle(cluster.config.imbalance_push_interval + 1.0)
        published = {}

        def probe():
            zk = cluster.ensemble.client("probe")
            yield from zk.connect()
            for name in cluster.node_names:
                data, _ = yield from zk.get(ZkLayout.imbalance(name))
                published[name] = ast.literal_eval(data.decode())
            yield from zk.close()
            return True

        cluster.run(probe())
        total_reads = total_writes = 0
        for name, node in cluster.nodes.items():
            expected = node.vstats.row()
            expected["vnodes"] = len(node.cache.ring.vnodes_of(name))
            assert published[name] == expected, name
            # ...and the same statuses aggregate through the
            # ImbalanceTable helper the join/rebalance paths use.
            assert ImbalanceTable.row_from_statuses(
                node.vnode_status)["reads"] == expected["reads"]
            total_reads += expected["reads"]
            total_writes += expected["writes"]
        # Quorum fan-out: every op touches `replicas` vnode statuses.
        n = cluster.config.replicas
        assert total_writes == 12 * n
        assert total_reads >= 12 * n  # read repair may add more

    def test_snapshot_vnode_feed_matches_node_statuses(self):
        obs = Observability(metrics=True)
        cluster = _build(obs=obs)
        cluster.run(_workload(cluster.client("w")))
        snap = obs.snapshot()
        for name, node in cluster.nodes.items():
            exported = snap["vnodes"][name]
            assert exported == node.vstats.per_vnode()


class TestComponentCounters:
    def test_workload_populates_each_layer(self):
        obs = Observability(metrics=True, tracing=True)
        cluster = _build(obs=obs)
        client = cluster.client("w")
        cluster.run(_workload(client))
        snap = obs.snapshot()
        series = snap["series"]

        def total(metric):
            return sum(data["value"] for label, data in series.items()
                       if label.endswith("/" + metric)
                       and data["type"] == "counter")

        assert total("store.writes_ok") == 12 * cluster.config.replicas
        assert total("store.reads") > 0
        assert total("zk.reads") > 0
        assert total("cache.lookups") > 0
        # Client latency histograms observed one sample per op.
        writes = series["w/client.write_seconds"]
        reads = series["w/client.read_seconds"]
        assert writes["count"] == 12 and reads["count"] == 12
        # Coordinator fan-out histogram sampled once per primary quorum.
        fanouts = [data for label, data in series.items()
                   if label.endswith("/quorum.fanout")]
        assert sum(h["count"] for h in fanouts) == 24

    def test_restart_rewires_metrics_and_feed(self):
        obs = Observability(metrics=True)
        cluster = _build(obs=obs)
        cluster.run(_workload(cluster.client("w")))
        victim = cluster.node_names[0]
        node = cluster.nodes[victim]
        cluster.crash_node(victim)
        cluster.restart_node(victim)
        # The registry holds the rebuilt feed, not the pre-crash one.
        feeds = {feed.node: feed for feed in obs.metrics.feeds()}
        assert feeds[victim] is node.vstats
        # Post-restart traffic lands in the snapshot.
        client = cluster.client("w2", pinned=victim)

        def more():
            for i in range(8):
                yield from client.write_latest(f"post-restart-{i}", "v")
            return True

        cluster.run(more())
        snap = obs.snapshot()
        assert snap["vnodes"][victim]  # fresh feed exports rows


class TestDisabledPath:
    def test_plain_cluster_does_not_touch_shared_registry(self):
        before = len(list(DISABLED.feeds()))
        cluster = _build(obs=None)
        cluster.run(_workload(cluster.client("w")))
        assert len(list(DISABLED.feeds())) == before
        assert DISABLED.snapshot()["series"] == {}
        # The always-on feed still accumulates for the rebalancer.
        total = sum(node.vstats.row()["writes"]
                    for node in cluster.nodes.values())
        assert total == 12 * cluster.config.replicas

    def test_disabled_and_enabled_histories_match(self):
        """Metrics-only observability must not perturb the simulation:
        same seed, same workload, same final store state."""
        def run(obs):
            cluster = _build(obs=obs)
            cluster.run(_workload(cluster.client("w")))
            return {name: sorted(node.store.rows)
                    for name, node in cluster.nodes.items()}

        assert run(None) == run(Observability(metrics=True))
