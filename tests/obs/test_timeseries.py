"""Unit tests for the deterministic time-series recorder."""

import json

import pytest

from repro.net.simulator import Simulator
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import (SERIES_SCHEMA, TimeSeriesRecorder,
                                  sparkline)

BUCKETS = (0.001, 0.01, 0.1)


def _recorder(**kw):
    reg = MetricsRegistry()
    kw.setdefault("interval", 0.25)
    return reg, TimeSeriesRecorder(reg, **kw)


class TestSampling:
    def test_counter_points_are_deltas(self):
        reg, rec = _recorder()
        c = reg.counter("ops", node="n1")
        c.inc(3)
        rec.sample(0.25)
        c.inc(2)
        rec.sample(0.50)
        rec.sample(0.75)  # no movement
        assert rec.window("n1/ops") == [3, 2, 0]

    def test_gauge_points_are_levels(self):
        reg, rec = _recorder()
        g = reg.gauge("depth", node="n1")
        g.set(4.0)
        rec.sample(0.25)
        g.set(1.5)
        rec.sample(0.50)
        assert rec.window("n1/depth") == [4.0, 1.5]

    def test_histogram_points_are_delta_triples(self):
        reg, rec = _recorder()
        h = reg.histogram("lat", node="n1", buckets=BUCKETS)
        h.observe(0.005)
        h.observe(0.05)
        rec.sample(0.25)
        h.observe(0.0005)
        rec.sample(0.50)
        dcount, dsum, dbuckets = rec.window("n1/lat")[0]
        assert dcount == 2
        assert dsum == pytest.approx(0.055)
        assert dbuckets == (0, 1, 1, 0)
        assert rec.window("n1/lat")[1][0] == 1
        assert rec.tracks["n1/lat"].bounds == BUCKETS

    def test_late_series_left_padded_for_alignment(self):
        reg, rec = _recorder()
        reg.counter("ops", node="n1").inc()
        rec.sample(0.25)
        rec.sample(0.50)
        late = reg.counter("late", node="n2")
        late.inc(7)
        rec.sample(0.75)
        assert rec.window("n2/late") == [0, 0, 7]
        assert len(rec.window("n2/late")) == len(rec.times)

    def test_rings_bounded_by_capacity(self):
        reg, rec = _recorder(capacity=4)
        c = reg.counter("ops", node="n1")
        for i in range(10):
            c.inc(i)
            rec.sample(0.25 * (i + 1))
        assert rec.samples_taken == 10
        assert len(rec.times) == 4
        assert rec.window("n1/ops") == [6, 7, 8, 9]

    def test_on_sample_hooks_see_every_delta(self):
        reg, rec = _recorder()
        seen = []
        rec.on_sample.append(lambda now, deltas: seen.append((now, deltas)))
        reg.counter("ops", node="n1").inc(2)
        rec.sample(0.25)
        assert seen == [(0.25, {"n1/ops": 2})]

    def test_bad_interval_rejected(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            TimeSeriesRecorder(reg, interval=0.0)


class TestQueries:
    def test_rate_over_window(self):
        reg, rec = _recorder()
        c = reg.counter("ops", node="n1")
        for tick in range(4):
            c.inc(5)
            rec.sample(0.25 * (tick + 1))
        assert rec.rate("n1/ops") == pytest.approx(20.0)
        assert rec.rate("n1/ops", samples=2) == pytest.approx(20.0)

    def test_rate_uses_histogram_observation_count(self):
        reg, rec = _recorder()
        h = reg.histogram("lat", node="n1", buckets=BUCKETS)
        h.observe(0.005)
        h.observe(0.005)
        rec.sample(0.25)
        assert rec.rate("n1/lat") == pytest.approx(8.0)

    def test_rate_of_unknown_series_is_zero(self):
        _, rec = _recorder()
        assert rec.rate("nope") == 0.0

    def test_matching_is_sorted_fnmatch(self):
        reg, rec = _recorder()
        reg.counter("ops", node="n2")
        reg.counter("ops", node="n1")
        reg.gauge("depth", node="n1")
        rec.sample(0.25)
        assert rec.matching("*/ops") == ["n1/ops", "n2/ops"]
        assert rec.matching("n1/*") == ["n1/depth", "n1/ops"]


class TestSimDriven:
    def test_recurring_sampling_on_the_sim_clock(self):
        sim = Simulator()
        reg, rec = _recorder(interval=0.5)
        c = reg.counter("ops", node="n1")

        def load():
            for _ in range(4):
                c.inc(2)
                yield sim.timeout(0.5)

        rec.start(sim)
        proc = sim.process(load())
        sim.run(until=proc)
        sim.run(until=2.6)
        assert rec.samples_taken == 5
        assert rec.times[0] == pytest.approx(0.5)
        assert sum(rec.window("n1/ops")) == 8

    def test_stop_halts_the_loop(self):
        sim = Simulator()
        _, rec = _recorder(interval=0.5)
        rec.start(sim)
        sim.run(until=1.1)
        rec.stop()
        sim.run(until=5.0)
        assert rec.samples_taken == 2


class TestExport:
    def test_export_schema_and_round_trip(self):
        reg, rec = _recorder()
        reg.counter("ops", node="n1").inc(3)
        reg.gauge("depth", node="n1").set(2.0)
        reg.histogram("lat", node="n1", buckets=BUCKETS).observe(0.05)
        rec.sample(0.25)
        export = rec.export()
        assert export["schema"] == SERIES_SCHEMA
        assert export["samples"] == 1
        assert export["series"]["n1/lat"]["bounds"] == list(BUCKETS)
        assert export["series"]["n1/lat"]["points"][0]["count"] == 1
        assert json.loads(json.dumps(export)) == export

    def test_identical_histories_export_identical_json(self):
        def build():
            reg, rec = _recorder()
            c = reg.counter("ops", node="n1")
            for tick in range(3):
                c.inc(tick)
                rec.sample(0.25 * (tick + 1))
            return json.dumps(rec.export(), sort_keys=True)
        assert build() == build()

    def test_format_series_lines(self):
        reg, rec = _recorder()
        c = reg.counter("ops", node="n1")
        for tick in range(3):
            c.inc(tick)
            rec.sample(0.25 * (tick + 1))
        text = rec.format_series("*/ops")
        assert SERIES_SCHEMA in text
        assert "n1/ops" in text
        assert "/s]" in text


class TestSparkline:
    def test_empty_is_empty(self):
        assert sparkline([]) == ""

    def test_flat_window_renders_low_blocks(self):
        assert sparkline([3.0, 3.0, 3.0]) == "▁▁▁"

    def test_ramp_hits_both_extremes(self):
        line = sparkline([0.0, 1.0, 2.0, 3.0])
        assert line[0] == "▁"
        assert line[-1] == "█"
        assert len(line) == 4

    def test_width_takes_the_tail(self):
        line = sparkline([9.0] * 10 + [0.0, 1.0], width=2)
        assert len(line) == 2
        assert line == "▁█"
