"""Ablation: virtual-node count vs load balance (§III.B)."""

from conftest import record

from repro.bench.ablations import ablation_vnodes


def test_ablation_vnodes(benchmark):
    result = benchmark.pedantic(ablation_vnodes, rounds=1, iterations=1)
    record(result, "ablation_vnodes")
