"""Fig. 7(b): Sedna vs Memcached writing each datum once.

Paper shape: "Sedna performance is quite stable, and slightly slower
than original write-once Memcached performance" (§VI.A.1, Fig. 7b).
"""

from conftest import record

from repro.bench.figures import fig7b


def test_fig7b_memcached1_vs_sedna(benchmark):
    result = benchmark.pedantic(fig7b, rounds=1, iterations=1)
    benchmark.extra_info["ratio_write"] = result.notes["ratio_write"]
    record(result, "fig7b")
