"""Fig. 8: R/W speed with nine concurrent clients vs one client.

Paper shape: per-client time rises under contention, aggregate
throughput rises with client count (§VI.A.2, Fig. 8).
"""

from conftest import record

from repro.bench.figures import fig8


def test_fig8_nine_vs_one_client(benchmark):
    result = benchmark.pedantic(fig8, rounds=1, iterations=1)
    benchmark.extra_info["slowdown"] = result.notes["slowdown_per_client"]
    benchmark.extra_info["throughput_gain"] = result.notes["throughput_gain"]
    record(result, "fig8")
