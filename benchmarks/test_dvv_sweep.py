"""Paired DVV-vs-LWW partition sweep: what last-write-wins destroys.

Seeds 0-7 each run twice under the ``partition`` fault profile with an
identical causal workload slice (same rng stream → same keys, same
read/blind-write/context-write intents): once through the
dotted-version-vector mode, once through plain ``write_latest``.

Per seed the DVV run must preserve or knowingly supersede *every*
acked concurrent write (zero silently lost — the chaos invariant), and
across the sweep LWW must show a nonzero count of updates it blindly
destroyed (the ISSUE acceptance pair).  Both runs rerun byte-identical.

Results land in ``benchmarks/results/BENCH_dvv.json``.
"""

import json
from pathlib import Path

from repro.chaos.invariants import causal_outcomes, lww_concurrent_losses
from repro.chaos.runner import ChaosRunner

RESULTS_DIR = Path(__file__).parent / "results"

SEEDS = range(8)
PROFILE = "partition"
DURATION = 10.0


def run_pair(seed):
    dvv = ChaosRunner(seed=seed, profile=PROFILE, duration=DURATION,
                      causal="dvv").run()
    lww = ChaosRunner(seed=seed, profile=PROFILE, duration=DURATION,
                      causal="lww").run()
    fates = causal_outcomes(dvv.history, dvv.state)
    cw_keys = [k for k in lww.history.written_keys() if "cw-" in k]
    losses = lww_concurrent_losses(lww.history, lww.state, keys=cw_keys)
    return dvv, lww, {
        "seed": seed,
        "dvv": {"ops": len(dvv.history), "digest": dvv.digest,
                **fates},
        "lww": {"ops": len(lww.history), "digest": lww.digest,
                "acked_cw_writes": sum(
                    len(lww.history.acked_writes(k, kind="write_latest"))
                    for k in cw_keys),
                "lost_concurrent": sum(losses.values()),
                "per_key": {k.rsplit(":", 1)[-1]: v
                            for k, v in sorted(losses.items())}},
    }


def test_dvv_vs_lww_partition_sweep():
    rows = []
    for seed in SEEDS:
        dvv, lww, row = run_pair(seed)
        assert dvv.ok, dvv.describe()
        assert lww.ok, lww.describe()
        # Tentpole acceptance: DVV never silently loses a concurrent
        # write, any seed, any partition schedule.
        assert row["dvv"]["lost"] == 0, dvv.describe()
        assert row["dvv"]["acked"] > 0
        # Determinism: both modes replay byte-identically.
        dvv2 = ChaosRunner(seed=seed, profile=PROFILE, duration=DURATION,
                           causal="dvv").run()
        assert dvv2.digest == dvv.digest, f"seed {seed} dvv replay diverged"
        rows.append(row)

    total_lww_lost = sum(r["lww"]["lost_concurrent"] for r in rows)
    total_preserved = sum(r["dvv"]["preserved"] for r in rows)
    report = {
        "bench": "dvv_sweep",
        "profile": PROFILE,
        "duration": DURATION,
        "seeds": list(SEEDS),
        "runs": rows,
        "totals": {
            "dvv_acked": sum(r["dvv"]["acked"] for r in rows),
            "dvv_preserved": total_preserved,
            "dvv_superseded": sum(r["dvv"]["superseded"] for r in rows),
            "dvv_lost": sum(r["dvv"]["lost"] for r in rows),
            "lww_lost_concurrent": total_lww_lost,
        },
    }
    text = json.dumps(report, indent=2, sort_keys=True)
    print("\n" + text)
    (RESULTS_DIR / "BENCH_dvv.json").write_text(text + "\n")

    # Paired acceptance: LWW demonstrably destroys concurrent updates
    # on the very workload DVV fully preserves.
    assert report["totals"]["dvv_lost"] == 0
    assert total_lww_lost > 0, report
    assert total_preserved > 0, report
