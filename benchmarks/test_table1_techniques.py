"""Table I: the summary of Sedna techniques, verified live.

Every row of the paper's technique table maps to a module in this
repository and is exercised against a running cluster.
"""

from conftest import record

from repro.bench.ablations import table1


def test_table1_techniques(benchmark):
    result = benchmark.pedantic(table1, rounds=1, iterations=1)
    record(result, "table1")
