"""Fig. 7(a): Sedna vs Memcached writing/reading 3 sequential copies.

Paper shape: Sedna's three *parallel* replica writes beat the client
that stores three copies *sequentially* on plain memcached, for both
writes and reads (§VI.A.1, Fig. 7a).
"""

from conftest import record

from repro.bench.figures import fig7a


def test_fig7a_memcached3_vs_sedna(benchmark):
    result = benchmark.pedantic(fig7a, rounds=1, iterations=1)
    benchmark.extra_info["speedup_write"] = result.notes["speedup_write"]
    record(result, "fig7a")
