"""Microbenchmarks of the hot data structures (real wall-clock, via
pytest-benchmark's normal timing loop).

These are the per-op costs the latency model abstracts into constants;
tracking them keeps the substrate honest about what a Python engine
can actually sustain.
"""

import random

from repro.core.hashring import Ring
from repro.storage.hashtable import HashTable, fnv1a
from repro.storage.memstore import MemStore
from repro.storage.versioned import VersionedStore
from repro.workloads.kv import paper_keys

KEYS = paper_keys(10_000, seed=1)


def test_fnv1a_throughput(benchmark):
    keys = KEYS[:1000]

    def hash_batch():
        return sum(fnv1a(k) for k in keys) & 0xFF

    benchmark(hash_batch)


def test_hashtable_put_get(benchmark):
    def workload():
        table = HashTable(initial_power=8)
        for key in KEYS[:2000]:
            table.put(key, key)
        hits = sum(1 for key in KEYS[:2000] if table.get(key) is not None)
        return hits

    assert benchmark(workload) == 2000


def test_memstore_set_get(benchmark):
    def workload():
        store = MemStore(memory_limit=64 << 20)
        for key in KEYS[:2000]:
            store.set(key, b"value-0123456789abcd")
        hits = sum(1 for key in KEYS[:2000] if store.get(key) is not None)
        return hits

    assert benchmark(workload) == 2000


def test_memstore_eviction_pressure(benchmark):
    """Sets under constant memory pressure: slab alloc + LRU eviction."""
    value = b"x" * 800

    def workload():
        store = MemStore(memory_limit=1 << 20)
        for key in KEYS[:3000]:
            store.set(key, value)
        return store.evictions

    evictions = benchmark(workload)
    assert evictions > 0


def test_versioned_store_write_latest(benchmark):
    def workload():
        store = VersionedStore()
        for ts, key in enumerate(KEYS[:2000]):
            store.write_latest(key.decode(), "v", float(ts), "bench")
        return len(store)

    assert benchmark(workload) == 2000


def test_ring_lookup_throughput(benchmark):
    ring = Ring(1024)
    for v in range(1024):
        ring.assign(v, f"node{v % 9}")
    keys = [k.decode() for k in KEYS[:2000]]

    def workload():
        return sum(len(ring.replicas_for_key(key, 3)[1]) for key in keys)

    assert benchmark(workload) == 6000
