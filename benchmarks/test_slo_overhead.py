"""Diagnosis-pipeline overhead: disabled and fully-enabled vs plain obs.

The diagnosis pipeline (ISSUE 9) stacks on top of the PR-4 obs bundle:
a time-series sampler riding the event queue, an SLO evaluator firing
on every sample, and a flight recorder hooked into span finishes and
sample deltas.  This bench pins two bounds against the **plain obs**
baseline (live metrics registry + attached span tracer, no pipeline):

* **disabled** — pipeline stages constructed (sampler, evaluator
  subscribed) but never started, and no flight recorder.  This
  over-approximates the shipped default, which does not construct the
  stages at all; even so it must stay within **1.15x** of plain.
* **enabled** — sampler running every 0.25 simulated seconds, three
  SLO specs (one per kind) evaluated per sample, and a flight recorder
  exporting every finished span plus filtering every sample's deltas.
  Must stay within **3x** of plain.

Workload: four staggered workers doing the obs-heavy inner loop real
components run — one trace per iteration, a counter bump, a histogram
observation, plus occasional failure counts and a staleness gauge so
all three SLO kinds have live series.  All modes run the identical
workload to a fixed simulated horizon; trials are interleaved
(round-robin) and the best-of rate per mode is used, as in
``test_obs_overhead.py``, to discard shared-CI scheduler noise.

Results land in ``benchmarks/results/BENCH_slo.json``.
"""

import json
import statistics
import time
from pathlib import Path

from repro.net.simulator import Simulator
from repro.obs import Observability
from repro.obs.slo import SloSpec

RESULTS_DIR = Path(__file__).parent / "results"

MAX_DISABLED_SLOWDOWN = 1.15
MAX_ENABLED_SLOWDOWN = 3.0
N_TICKS = 4_000      # per worker; horizon sized so all four finish
SIM_HORIZON = 8.0    # simulated seconds; ~32 sampler ticks when enabled
TRIALS = 7


def _bench_slos() -> list[SloSpec]:
    """One spec per kind, matched to the workload's series."""
    return [
        SloSpec(name="bench-lat-5ms", kind="latency", objective=0.95,
                series="*/bench.lat", threshold=0.005),
        SloSpec(name="bench-avail", kind="error_rate", objective=0.90,
                series="*/bench.fail", total_series="*/bench.lat"),
        SloSpec(name="bench-lag", kind="freshness", objective=0.50,
                series="*/bench.lag", threshold=2.0),
    ]


def _bundle(mode: str) -> Observability:
    """The obs bundle for one configuration."""
    if mode == "plain":
        return Observability(tracing=True)
    if mode == "disabled":
        # Stages constructed and subscribed but never started: the
        # per-event residue a run pays for having the pipeline armed.
        return Observability(tracing=True, timeseries=True,
                             slos=_bench_slos())
    return Observability(tracing=True, timeseries=True,
                         slos=_bench_slos(), flight=True)


def _build_workload(sim: Simulator, obs: Observability) -> None:
    """Obs-heavy inner loop: a span + metric bumps per iteration."""
    counter = obs.metrics.counter("bench.ops", node="w")
    histogram = obs.metrics.histogram("bench.lat", node="w")
    failures = obs.metrics.counter("bench.fail", node="w")
    lag = obs.metrics.gauge("bench.lag", node="w")
    tracer = obs.tracer

    def worker(wid: int):
        for i in range(N_TICKS):
            span = tracer.start_trace("bench.op", node=f"w{wid}")
            yield sim.timeout(0.001 + wid * 0.0003)
            counter.inc()
            histogram.observe(0.001 * (i % 7))
            if i % 50 == 0:
                failures.inc()
            if i % 20 == 0:
                lag.set(float(i % 5))
            tracer.finish(span)

    for wid in range(4):
        sim.process(worker(wid), name=f"w{wid}")


def _run(mode: str) -> tuple[float, int]:
    """One measured run; returns (wallclock seconds, kernel events)."""
    sim = Simulator()
    obs = _bundle(mode)
    obs.attach(sim)
    if mode == "enabled":
        obs.start(sim)
    _build_workload(sim, obs)
    t0 = time.perf_counter()
    sim.run(until=SIM_HORIZON)
    elapsed = time.perf_counter() - t0
    obs.detach()
    if mode == "enabled":
        assert obs.timeseries.samples_taken > 0
        assert len(obs.flight.spans) > 0
    return elapsed, sim.events_scheduled


def _measure() -> dict:
    """Interleaved best-of rates for plain/disabled/enabled."""
    rates: dict[str, list[float]] = {"plain": [], "disabled": [],
                                     "enabled": []}
    for _ in range(TRIALS):
        for mode in rates:
            elapsed, events = _run(mode)
            rates[mode].append(events / elapsed)
    best = {mode: max(vals) for mode, vals in rates.items()}
    return {
        "events_per_sec": {m: round(r) for m, r in best.items()},
        "median_events_per_sec": {
            m: round(statistics.median(v)) for m, v in rates.items()},
        "slowdown": {m: round(best["plain"] / r, 3)
                     for m, r in best.items()},
    }


class TestSloOverhead:
    def test_pipeline_overhead_bounds(self):
        workload = _measure()

        report = {
            "bound_disabled_max_slowdown": MAX_DISABLED_SLOWDOWN,
            "bound_enabled_max_slowdown": MAX_ENABLED_SLOWDOWN,
            "workload": workload,
            "trials": TRIALS,
            "notes": (
                "plain = live registry + attached tracer, no pipeline; "
                "disabled = sampler/evaluator constructed but never "
                "started (over-approximates the shipped default, which "
                "constructs nothing); enabled = sampler every 0.25 "
                "sim-seconds + 3 SLO specs per sample + flight recorder "
                "on every span finish.  Workload = 4 workers, one trace "
                "+ counter/histogram bump per iteration, to a fixed "
                "8-simulated-second horizon; interleaved best-of "
                f"{TRIALS} trials."),
        }
        text = json.dumps(report, indent=2, sort_keys=True)
        print("\n" + text)
        (RESULTS_DIR / "BENCH_slo.json").write_text(text + "\n")

        slow = workload["slowdown"]
        assert slow["disabled"] < MAX_DISABLED_SLOWDOWN, report
        assert slow["enabled"] < MAX_ENABLED_SLOWDOWN, report
