"""Observability overhead: instrumented-off and -on vs plain kernel.

The obs layer (ISSUE 4) is wired unconditionally through every
component — stores, caches, coordinators, RPC endpoints — so its
*disabled* cost is paid by every simulation: one shared no-op metric
handle per call site and one ``is None`` tracer check per kernel
operation.  This bench pins that cost: the obs-disabled configuration
must stay **within 3x of the plain kernel's events/sec** on a
kernel-shaped workload.

Workload: four staggered processes mixing the event types the kernel
actually executes — timeouts at varying delays (heap depth), event
chains resolved via ``succeed``, and deferred callbacks — with metric
bumps (counter + histogram) at the density real components emit them
(a few per event).  A bare ``yield timeout`` spin would overstate the
ratio; that adversarial number is still measured and recorded as
``microbench_*`` for the record, but the acceptance bound is asserted
on the representative mix.

Three configurations:

* **plain** — no obs objects anywhere; ``sim.tracer`` is None.
* **disabled** (the default shipped configuration): every site calls
  the shared no-op handle from the ``DISABLED`` registry; tracer
  checks all fail fast.  This is the mode the 3x bound applies to.
* **enabled** — live registry plus an attached ``SpanTracer`` minting
  one trace per worker iteration (kernel hooks active, spans
  recorded).  Informational: chaos/debug runs opt into this.

Trials are interleaved (round-robin) and the best-of rate per mode is
used: best-of discards scheduler noise, which on shared CI boxes
dwarfs the differences under test.

Results land in ``benchmarks/results/BENCH_obs.json``.
"""

import json
import statistics
import time
from pathlib import Path

from repro.net.simulator import Simulator
from repro.obs.metrics import DISABLED, MetricsRegistry
from repro.obs.trace import SpanTracer

RESULTS_DIR = Path(__file__).parent / "results"

MAX_SLOWDOWN = 3.0
N_TICKS = 6_000      # per worker; ~34k kernel events per run
MICRO_EVENTS = 30_000
TRIALS = 7


def _events_executed(sim: Simulator) -> int:
    """Scheduling sequence counter ~ events pushed through the kernel."""
    return sim.events_scheduled


def _handles(mode: str):
    """(counter, histogram, tracer) for one configuration."""
    if mode == "plain":
        return None, None, None
    registry = MetricsRegistry() if mode == "enabled" else DISABLED
    counter = registry.counter("bench.ops", node="w")
    histogram = registry.histogram("bench.lat", node="w")
    tracer = SpanTracer() if mode == "enabled" else None
    return counter, histogram, tracer


def _build_mixed_workload(sim, counter, histogram, tracer) -> None:
    """Kernel-shaped mix: timeouts, succeed-chains, callbacks, metrics."""

    def worker(wid: int):
        for i in range(N_TICKS):
            span = None
            if tracer is not None and i % 5 == 0:
                span = tracer.start_trace("bench.op", node=f"w{wid}")
            yield sim.timeout(0.001 + wid * 0.0003)
            if counter is not None:
                counter.inc()
                histogram.observe(0.001 * (i % 7))
            if i % 5 == 0:
                ev = sim.event()
                sim.schedule_callback(0.0005, lambda e=ev: e.succeed())
                yield ev
            if tracer is not None:
                tracer.finish(span)

    for wid in range(4):
        sim.process(worker(wid), name=f"w{wid}")


def _build_microbench(sim, counter, histogram, tracer) -> None:
    """Adversarial spin: cheapest possible event + metric bumps each."""

    def ticker():
        for i in range(MICRO_EVENTS):
            yield sim.timeout(0.001)
            if counter is not None:
                counter.inc()
                histogram.observe(0.0005)

    sim.process(ticker(), name="ticker")


def _run(build, mode: str) -> tuple[float, int]:
    """One measured run; returns (wallclock seconds, kernel events)."""
    sim = Simulator()
    counter, histogram, tracer = _handles(mode)
    if tracer is not None:
        tracer.attach(sim)
    build(sim, counter, histogram, tracer)
    t0 = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - t0
    if tracer is not None:
        tracer.detach()
    return elapsed, _events_executed(sim)


def _measure(build) -> dict:
    """Interleaved best-of rates for plain/disabled/enabled."""
    rates: dict[str, list[float]] = {"plain": [], "disabled": [],
                                     "enabled": []}
    for _ in range(TRIALS):
        for mode in rates:
            elapsed, events = _run(build, mode)
            rates[mode].append(events / elapsed)
    best = {mode: max(vals) for mode, vals in rates.items()}
    return {
        "events_per_sec": {m: round(r) for m, r in best.items()},
        "median_events_per_sec": {
            m: round(statistics.median(v)) for m, v in rates.items()},
        "slowdown": {m: round(best["plain"] / r, 3)
                     for m, r in best.items()},
    }


class TestObsOverhead:
    def test_disabled_obs_within_3x_of_plain(self):
        mixed = _measure(_build_mixed_workload)
        micro = _measure(_build_microbench)

        report = {
            "bound_max_slowdown": MAX_SLOWDOWN,
            "workload": mixed,
            "microbench_worst_case": micro,
            "trials": TRIALS,
            "notes": (
                "workload = 4-process mix of timeouts/succeed-chains/"
                "callbacks with counter+histogram bumps per event (the "
                "asserted bound applies to the 'disabled' mode — shared "
                "no-op handles, no tracer); 'enabled' adds a live "
                "registry and span tracer and is informational; "
                "microbench = timeout spin with metric bumps per event "
                "(worst case, cheapest possible baseline event)."),
        }
        text = json.dumps(report, indent=2, sort_keys=True)
        print("\n" + text)
        (RESULTS_DIR / "BENCH_obs.json").write_text(text + "\n")

        # The shipped default — obs wired but disabled — must hold the
        # bound on the representative mix.
        assert mixed["slowdown"]["disabled"] < MAX_SLOWDOWN, report
