"""Fig. 4: multi-trigger topologies and ripple-effect suppression.

Paper shape: a circular trigger chain floods the cluster without the
per-application trigger interval and is rate-limited with it (§IV.B).
"""

from conftest import record

from repro.bench.usecase import fig4_ripple


def test_fig4_ripple_suppression(benchmark):
    result = benchmark.pedantic(fig4_ripple, rounds=1, iterations=1)
    record(result, "fig4")
