"""Chaos harness sweep: safety invariants across fault profiles.

Every profile × seed must finish with zero invariant violations and a
seed-stable replay digest; the chart shows completed ops per run.
"""

from conftest import record

from repro.bench.chaossweep import chaos_sweep


def test_chaos_sweep(benchmark):
    result = benchmark.pedantic(chaos_sweep, rounds=1, iterations=1)
    record(result, "chaos_sweep")
