"""Shared helpers for the figure-regeneration benches."""

from pathlib import Path

RESULTS_DIR = Path(__file__).parent / "results"
RESULTS_DIR.mkdir(exist_ok=True)


def record(result, name: str) -> None:
    """Render a FigureResult to stdout and benchmarks/results/<name>.txt,
    then assert every paper-shape expectation held."""
    text = result.render()
    print("\n" + text)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    assert result.all_expectations_met, result.failed_expectations()
