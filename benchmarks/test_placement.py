"""Placement-backend bench: jump consistent hash vs ketama vs chord.

Two questions, per the kernel-overhaul ISSUE:

* **placement quality** — how evenly do 10k keys land across 10 nodes
  under each scheme (max/min load ratio; 1.0 is perfect), and what
  fraction of keys remap when one node joins (lower is cheaper to
  rebalance)?
* **lookup throughput** — key → owner resolutions per wallclock
  second; the client/coordinator hot path pays this on every request.

Results land in ``benchmarks/results/BENCH_placement.json``.  The
assertions encode the properties the jump backend was adopted for:
near-minimal remapping on growth (vs modulo's near-total reshuffle)
and key spread no worse than the ketama continuum.
"""

import json
import time
from pathlib import Path

from repro.baselines.chord import ChordRing, chord_id
from repro.baselines.ketama import KetamaRing
from repro.core.hashring import Ring, build_assignment

RESULTS_DIR = Path(__file__).parent / "results"

NUM_VNODES = 4096
N_NODES = 10
N_KEYS = 10_000
NODES = [f"n{i}" for i in range(N_NODES)]
KEYS = [f"bench-key-{i:06d}" for i in range(N_KEYS)]


def _ring(placement: str, nodes=NODES) -> Ring:
    ring = Ring(NUM_VNODES)
    ring.load(build_assignment(NUM_VNODES, nodes, placement))
    return ring


def _imbalance(load: dict) -> float:
    return max(load.values()) / (min(load.values()) or 1)


def _spread(lookup) -> dict:
    load = dict.fromkeys(NODES, 0)
    for key in KEYS:
        load[lookup(key)] += 1
    return load


def _remap_fraction(lookup_before, lookup_after) -> float:
    moved = sum(lookup_before(k) != lookup_after(k) for k in KEYS)
    return moved / N_KEYS


def _throughput(lookup, rounds: int = 3) -> float:
    best = 0.0
    for _ in range(rounds):
        t0 = time.perf_counter()
        for key in KEYS:
            lookup(key)
        dt = time.perf_counter() - t0
        best = max(best, N_KEYS / dt)
    return best


def _backends():
    grown = NODES + [f"n{N_NODES}"]

    jump, jump_grown = _ring("jump"), _ring("jump", grown)
    modulo, modulo_grown = _ring("modulo"), _ring("modulo", grown)
    ketama = KetamaRing(NODES, points_per_server=100)
    ketama_grown = KetamaRing(grown, points_per_server=100)
    chord = ChordRing(NODES)
    chord_grown = ChordRing(grown)

    def ring_lookup(ring):
        return lambda key: ring.owner(ring.vnode_of(key))

    return {
        "jump": (ring_lookup(jump), ring_lookup(jump_grown)),
        "modulo": (ring_lookup(modulo), ring_lookup(modulo_grown)),
        "ketama": (lambda k: ketama.node_for(k.encode()),
                   lambda k: ketama_grown.node_for(k.encode())),
        "chord": (lambda k: chord.owner_of_key(k.encode()),
                  lambda k: chord_grown.owner_of_key(k.encode())),
    }


def test_placement_quality_and_throughput():
    rows = {}
    for name, (lookup, lookup_grown) in _backends().items():
        load = _spread(lookup)
        rows[name] = {
            "imbalance_ratio": round(_imbalance(load), 4),
            "remap_fraction_on_add": round(
                _remap_fraction(lookup, lookup_grown), 4),
            "lookups_per_sec": round(_throughput(lookup)),
        }

    out = {
        "num_vnodes": NUM_VNODES,
        "n_nodes": N_NODES,
        "n_keys": N_KEYS,
        "backends": rows,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_placement.json").write_text(
        json.dumps(out, indent=2, sort_keys=True) + "\n")
    print("\n" + json.dumps(out, indent=2, sort_keys=True))

    jump, modulo = rows["jump"], rows["modulo"]
    ketama, chord = rows["ketama"], rows["chord"]

    # Minimal remapping: ~1/(n+1) for jump; near-total for modulo.
    assert jump["remap_fraction_on_add"] < 0.2
    assert modulo["remap_fraction_on_add"] > 0.5
    # Consistent-hash baselines also remap ~minimally; jump must be in
    # their class, not modulo's.
    assert jump["remap_fraction_on_add"] < 3 * max(
        0.05, ketama["remap_fraction_on_add"])

    # Placement quality: no worse than the ketama continuum.
    assert jump["imbalance_ratio"] <= ketama["imbalance_ratio"]

    # Lookup stays on the array-indexed vnode fast path: resolving via
    # the Ring must not be slower than the bisect continuum by more
    # than 2x (they are within noise of each other in practice).
    assert jump["lookups_per_sec"] > ketama["lookups_per_sec"] / 2
    assert chord["lookups_per_sec"] > 0
