"""Ablation: parallel vs sequential replica fan-out (Fig. 7a mechanism)."""

from conftest import record

from repro.bench.ablations import ablation_fanout


def test_ablation_fanout(benchmark):
    result = benchmark.pedantic(ablation_fanout, rounds=1, iterations=1)
    benchmark.extra_info["speedup"] = result.notes["speedup"]
    record(result, "ablation_fanout")
