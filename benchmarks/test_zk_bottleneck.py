"""§III.E ablation: the three ZooKeeper read-bottleneck strategies.

Local cache + adaptive lease + changelog refresh vs full reloads, and
the watch storm Sedna deliberately avoids.
"""

from conftest import record

from repro.bench.ablations import zk_bottleneck


def test_zk_bottleneck_strategies(benchmark):
    result = benchmark.pedantic(zk_bottleneck, rounds=1, iterations=1)
    record(result, "zk_bottleneck")
