"""Hazard-detector overhead: instrumented kernel vs plain kernel.

The tie-hazard detector (ISSUE 3) hooks every ``_schedule``/``step``
of the DES kernel and records tracked-state accesses, so its cost is
paid on the hot path of every simulation that opts in.  This bench
pins that cost: the hazard-instrumented kernel must stay **within 3x
of the plain kernel's events/sec** on a kernel-shaped workload.

Workload: four staggered processes mixing the event types the kernel
actually executes under chaos — timeouts at varying delays (heap
depth), event chains resolved via ``succeed``, deferred callbacks, and
tracked-store writes at roughly one write per three events.  A bare
``yield timeout`` spin would overstate the ratio (it is the cheapest
event the kernel can execute, so fixed per-event instrumentation looks
maximally expensive against it); that adversarial number is still
measured and recorded as ``microbench_*`` for the record, but the
acceptance bound is asserted on the representative mix.

Two instrumented configurations are measured:

* **report** (the default, ``HazardDetector()``): full instrumentation
  including scheduling-site capture, so flagged hazards name the exact
  ``file:line`` of both racing schedule calls.  This is the mode the
  chaos runner's ``--hazards`` flag uses and the one the 3x bound
  applies to.
* **detect** (``capture_sites=False``): identical hazard *detection*,
  sites elided from reports — the cheap configuration for long soak
  sweeps where only the pass/fail bit matters.

Trials are interleaved (plain/detect/report round-robin) and the
best-of rate per mode is used: best-of discards scheduler noise, which
on shared CI boxes dwarfs the differences under test.

Results land in ``benchmarks/results/BENCH_analysis.json``.
"""

import json
import statistics
import time
from pathlib import Path

from repro.analysis.hazards import HazardDetector
from repro.net.simulator import Simulator

RESULTS_DIR = Path(__file__).parent / "results"

MAX_SLOWDOWN = 3.0
N_TICKS = 6_000      # per worker; ~34k kernel events per run
MICRO_EVENTS = 30_000
TRIALS = 7


def _events_executed(sim: Simulator) -> int:
    """Scheduling sequence counter ~ events pushed through the kernel."""
    return sim.events_scheduled


def _build_mixed_workload(sim: Simulator, store) -> None:
    """Kernel-shaped mix: timeouts, succeed-chains, callbacks, writes."""

    def worker(wid: int):
        for i in range(N_TICKS):
            yield sim.timeout(0.001 + wid * 0.0003)
            if i % 3 == 0:
                store[f"k{(wid * 7 + i) % 32}"] = i
            if i % 5 == 0:
                ev = sim.event()
                sim.schedule_callback(0.0005, lambda e=ev: e.succeed())
                yield ev

    for wid in range(4):
        sim.process(worker(wid), name=f"w{wid}")


def _build_microbench(sim: Simulator, store) -> None:
    """Adversarial spin: cheapest possible event + one write each."""

    def ticker():
        for i in range(MICRO_EVENTS):
            yield sim.timeout(0.001)
            store[f"k{i % 8}"] = i

    sim.process(ticker(), name="ticker")


def _run(build, mode: str) -> tuple[float, int]:
    """One measured run; returns (wallclock seconds, kernel events)."""
    sim = Simulator()
    detector = None
    store: dict = {}
    if mode != "plain":
        detector = HazardDetector(
            capture_sites=(mode != "detect")).attach(sim)
        store = detector.tracked_dict("bench")
    build(sim, store)
    t0 = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - t0
    if detector is not None:
        detector.detach()
    return elapsed, _events_executed(sim)


def _measure(build) -> dict:
    """Interleaved best-of rates for plain/detect/report on a workload."""
    rates: dict[str, list[float]] = {"plain": [], "detect": [], "report": []}
    for _ in range(TRIALS):
        for mode in rates:
            elapsed, events = _run(build, mode)
            rates[mode].append(events / elapsed)
    best = {mode: max(vals) for mode, vals in rates.items()}
    return {
        "events_per_sec": {m: round(r) for m, r in best.items()},
        "median_events_per_sec": {
            m: round(statistics.median(v)) for m, v in rates.items()},
        "slowdown": {m: round(best["plain"] / r, 3)
                     for m, r in best.items()},
    }


class TestAnalysisOverhead:
    def test_instrumented_kernel_within_3x_of_plain(self):
        mixed = _measure(_build_mixed_workload)
        micro = _measure(_build_microbench)

        report = {
            "bound_max_slowdown": MAX_SLOWDOWN,
            "workload": mixed,
            "microbench_worst_case": micro,
            "trials": TRIALS,
            "notes": (
                "workload = 4-process mix of timeouts/succeed-chains/"
                "callbacks/tracked writes (the asserted bound); "
                "microbench = timeout spin with one tracked write per "
                "event (informational worst case, cheapest possible "
                "baseline event)."),
        }
        text = json.dumps(report, indent=2, sort_keys=True)
        print("\n" + text)
        (RESULTS_DIR / "BENCH_analysis.json").write_text(text + "\n")

        # The default, fully-instrumented mode (what `--hazards` runs)
        # must hold the bound; the cheap detect mode must trivially
        # beat it as well.
        assert mixed["slowdown"]["report"] < MAX_SLOWDOWN, report
        assert mixed["slowdown"]["detect"] < MAX_SLOWDOWN, report
