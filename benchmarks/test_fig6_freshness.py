"""Fig. 6: the micro-blogging search engine, crawl -> searchable.

Paper claim: "the time between (1) and (7) should be less than several
minutes" (§V); with a memory store and triggers it is sub-second.
"""

from conftest import record

from repro.bench.usecase import fig6_freshness


def test_fig6_search_freshness(benchmark):
    result = benchmark.pedantic(fig6_freshness, rounds=1, iterations=1)
    record(result, "fig6")
