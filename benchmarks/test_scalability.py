"""Incremental-scalability claim: aggregate throughput vs fleet size."""

from conftest import record

from repro.bench.scalability import scalability


def test_scalability(benchmark):
    result = benchmark.pedantic(scalability, rounds=1, iterations=1)
    record(result, "scalability")
