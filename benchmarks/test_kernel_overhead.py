"""Microbench: DES kernel event throughput (per the HPC guides, the
substrate hot loop is measured, not guessed).

Two measurements over the same timeout-chain ticker workload:

* ``test_kernel_event_throughput`` — the historical pytest-benchmark
  run (workload-identical across PRs so numbers stay comparable);
* ``test_kernel_events_per_sec`` — a direct best-of-N events/sec
  measurement written to ``benchmarks/results/BENCH_kernel.json``.

The second test always asserts a conservative absolute floor.  With
``PERF_SMOKE=1`` (the CI perf-smoke job) it additionally fails when
throughput drops more than ``REGRESSION_TOLERANCE`` below the
checked-in baseline (``benchmarks/baselines/kernel_baseline.json``).
Refresh the baseline only alongside a deliberate kernel change, with
the new numbers in the PR description.
"""

import json
import os
import time
from pathlib import Path

from repro.net.simulator import Simulator

RESULTS_DIR = Path(__file__).parent / "results"
BASELINE_PATH = Path(__file__).parent / "baselines" / "kernel_baseline.json"

TICKER_EVENTS = 100_000
ROUNDS = 5
# Absolute floor on any hardware: even the pre-overhaul kernel did
# ~6x this on a laptop; below it the hot path has regressed badly.
KERNEL_FLOOR = 150_000.0
# Perf-smoke rule: fail on >30% events/sec regression vs the baseline.
REGRESSION_TOLERANCE = 0.30


def _run_events(n: int) -> float:
    sim = Simulator()

    def ticker():
        for _ in range(n):
            yield sim.timeout(0.001)

    sim.process(ticker())
    sim.run()
    return sim.now


def _events_per_sec(n: int = TICKER_EVENTS, rounds: int = ROUNDS) -> float:
    """Best-of-N wallclock throughput of the ticker workload."""
    best = 0.0
    for _ in range(rounds):
        sim = Simulator()

        def ticker():
            for _ in range(n):
                yield sim.timeout(0.001)

        sim.process(ticker())
        t0 = time.perf_counter()
        sim.run()
        dt = time.perf_counter() - t0
        best = max(best, sim.events_scheduled / dt)
    return best


def test_kernel_event_throughput(benchmark):
    result = benchmark(lambda: _run_events(20_000))
    assert result > 0


def test_kernel_events_per_sec():
    eps = _events_per_sec()
    out = {
        "workload": "timeout-chain ticker",
        "events": TICKER_EVENTS,
        "rounds": ROUNDS,
        "events_per_sec": round(eps),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_kernel.json").write_text(
        json.dumps(out, indent=2, sort_keys=True) + "\n")
    print(f"\nkernel throughput: {eps / 1e6:.2f}M events/sec")

    assert eps > KERNEL_FLOOR, \
        f"kernel below absolute floor: {eps:.0f} < {KERNEL_FLOOR:.0f} ev/s"

    if os.environ.get("PERF_SMOKE") == "1":
        baseline = json.loads(BASELINE_PATH.read_text())["events_per_sec"]
        floor = baseline * (1.0 - REGRESSION_TOLERANCE)
        assert eps >= floor, (
            f"perf-smoke regression: {eps:.0f} ev/s is more than "
            f"{REGRESSION_TOLERANCE:.0%} below the checked-in baseline "
            f"{baseline} ev/s (floor {floor:.0f}).  If a deliberate "
            f"change moved kernel throughput, refresh "
            f"benchmarks/baselines/kernel_baseline.json in the same PR.")
