"""Microbench: DES kernel event throughput (per the HPC guides, the
substrate hot loop is measured, not guessed)."""

from repro.net.simulator import Simulator


def _run_events(n: int) -> float:
    sim = Simulator()

    def ticker():
        for _ in range(n):
            yield sim.timeout(0.001)

    sim.process(ticker())
    sim.run()
    return sim.now


def test_kernel_event_throughput(benchmark):
    result = benchmark(lambda: _run_events(20_000))
    assert result > 0
