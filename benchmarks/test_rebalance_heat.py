"""Hot-spot rebalancing: count-only vs load-aware (heat) planning.

The cluster starts perfectly *count*-balanced (round-robin preassign,
4 vnodes per node), so a vnode-count rebalancer sees nothing to do.
The workload, however, only touches keys that hash to node0's vnodes:
node0 and its successor replicas saturate their request-handling
queues while half the cluster idles.  A heat-mode rebalancer reads the
read/write/key activity out of the imbalance rows, migrates the hot
vnodes to the idle nodes, and both the hot-spot p99 read latency and
the per-node op-rate spread drop.

Results land in ``benchmarks/results/BENCH_rebalance.json``:
load-aware must beat count-only on p99 read latency and on per-node
op-rate spread (ISSUE 5 acceptance criterion).
"""

import json
from pathlib import Path

from repro.core.cluster import SednaCluster
from repro.core.config import SednaConfig
from repro.core.hashring import Ring
from repro.core.rebalance import Rebalancer
from repro.core.stats import spread_stats
from repro.core.types import FullKey
from repro.zk.server import ZkConfig

RESULTS_DIR = Path(__file__).parent / "results"

N_NODES = 6
NUM_VNODES = 24
N_HOT = 16          # hot keys, all hashing to node0-owned vnodes
N_CLIENTS = 8
WARM_ROUNDS = 60    # heat builds up; migrations run
MEASURE_ROUNDS = 40


def hot_keys():
    """Keys whose vnode is ≡ 0 (mod N_NODES) — all primaried on node0
    by the round-robin preassignment."""
    ring = Ring(NUM_VNODES)
    keys = []
    i = 0
    while len(keys) < N_HOT:
        key = f"hot{i}"
        if ring.vnode_of(FullKey.of(key).encoded()) % N_NODES == 0:
            keys.append(key)
        i += 1
    return keys


def _client_loop(client, keys, rounds, offset, latencies=None):
    """Reads over the hot set (plus one write per round to keep the
    write heat flowing); staggered offsets keep the clients from
    lock-stepping on the same key."""
    sim = client.sim
    for round_no in range(rounds):
        write_key = keys[(offset + round_no) % len(keys)]
        yield from client.write_latest(write_key, round_no)
        for j in range(len(keys)):
            key = keys[(offset + j) % len(keys)]
            t0 = sim.now
            yield from client.read_latest(key)
            if latencies is not None:
                latencies.append(sim.now - t0)
    return True


def _served_ops(cluster):
    return {name: node.replica_reads + node.replica_writes
            for name, node in cluster.nodes.items()}


def run_mode(mode):
    cluster = SednaCluster(n_nodes=N_NODES, zk_size=3,
                           config=SednaConfig(
                               num_vnodes=NUM_VNODES,
                               imbalance_push_interval=0.5,
                               lease_base=0.5),
                           zk_config=ZkConfig(session_timeout=2.0),
                           seed=17)
    cluster.start()
    cluster.settle(1.0)
    keys = hot_keys()

    clients = [cluster.smart_client(f"bench{i}") for i in range(N_CLIENTS)]
    cluster.run_all([c.connect() for c in clients])
    cluster.run(_client_loop(clients[0], keys, rounds=1, offset=0))

    rebalancer = Rebalancer(cluster.nodes["node5"], interval=0.5,
                            threshold=1, mode=mode)
    rebalancer.start()

    # Warmup: the hot spot forms, imbalance rows flow, migrations run.
    cluster.run_all([_client_loop(c, keys, WARM_ROUNDS, offset=2 * i)
                     for i, c in enumerate(clients)])
    cluster.settle(3.0)  # let in-flight migrations finish

    # Measurement window.
    before_ops = _served_ops(cluster)
    t0 = cluster.sim.now
    latencies = []
    cluster.run_all([_client_loop(c, keys, MEASURE_ROUNDS, offset=2 * i,
                                  latencies=latencies)
                     for i, c in enumerate(clients)])
    elapsed = cluster.sim.now - t0
    after_ops = _served_ops(cluster)
    rebalancer.stop()

    rates = [(after_ops[n] - before_ops[n]) / elapsed
             for n in sorted(after_ops)]
    ordered = sorted(latencies)
    reads = len(ordered)
    done = sum(1 for m in rebalancer.ledger() if m["state"] == "done")
    return {
        "mode": mode,
        "reads_measured": reads,
        "p99_read_ms": round(ordered[int(0.99 * reads) - 1] * 1000, 3),
        "mean_read_ms": round(sum(ordered) / reads * 1000, 3),
        "node_ops_per_sec": {n: round(r, 1)
                             for n, r in zip(sorted(after_ops), rates)},
        "op_rate_spread": {k: round(v, 3)
                           for k, v in spread_stats(rates).items()},
        "rebalancer": {"passes": rebalancer.passes,
                       "moves": rebalancer.moves,
                       "migrations_done": done,
                       "chunks": rebalancer.chunks,
                       "bytes_moved": rebalancer.bytes_moved,
                       "aborts": rebalancer.aborts},
    }


def test_rebalance_heat_vs_count():
    count = run_mode("count")
    heat = run_mode("heat")
    report = {
        "bench": "rebalance_heat",
        "cluster": {"nodes": N_NODES, "vnodes": NUM_VNODES, "replicas": 3,
                    "clients": N_CLIENTS, "hot_keys": N_HOT},
        "count": count,
        "heat": heat,
        "p99_speedup": round(count["p99_read_ms"] / heat["p99_read_ms"], 2),
        "spread_reduction": round(
            count["op_rate_spread"]["rel_spread"]
            / max(heat["op_rate_spread"]["rel_spread"], 1e-9), 2),
    }
    text = json.dumps(report, indent=2, sort_keys=True)
    print("\n" + text)
    (RESULTS_DIR / "BENCH_rebalance.json").write_text(text + "\n")

    # The count-balanced start means the count planner never moves;
    # the heat planner must actually migrate vnodes off the hot spot.
    assert count["rebalancer"]["moves"] == 0
    assert heat["rebalancer"]["migrations_done"] > 0
    # Acceptance: load-aware beats count-only on both axes.
    assert heat["p99_read_ms"] < count["p99_read_ms"], report
    assert (heat["op_rate_spread"]["rel_spread"]
            < count["op_rate_spread"]["rel_spread"]), report
