"""§VII design-argument ablations: routing, membership, write protocol."""

from conftest import record

from repro.bench.relatedwork import (ablation_membership, ablation_routing,
                                     ablation_write_protocol)


def test_ablation_routing(benchmark):
    result = benchmark.pedantic(ablation_routing, rounds=1, iterations=1)
    record(result, "ablation_routing")


def test_ablation_membership(benchmark):
    result = benchmark.pedantic(ablation_membership, rounds=1, iterations=1)
    record(result, "ablation_membership")


def test_ablation_write_protocol(benchmark):
    result = benchmark.pedantic(ablation_write_protocol, rounds=1,
                                iterations=1)
    record(result, "ablation_write_protocol")
