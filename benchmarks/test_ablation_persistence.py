"""Ablation: persistence strategy vs write speed and crash recovery."""

from conftest import record

from repro.bench.ablations import ablation_persistence


def test_ablation_persistence(benchmark):
    result = benchmark.pedantic(ablation_persistence, rounds=1, iterations=1)
    record(result, "ablation_persistence")
