"""Trigger-path latency vs scanner cadence (§IV.C)."""

from conftest import record

from repro.bench.triggerperf import trigger_latency


def test_ablation_trigger_latency(benchmark):
    result = benchmark.pedantic(trigger_latency, rounds=1, iterations=1)
    record(result, "ablation_triggers")
