"""Batched vs per-key quorum pipeline throughput.

The batched pipeline amortizes RPC round-trips across keys: grouping a
multi-key operation by vnode issues one ``replica.mwrite``/``mread``
per replica per vnode-group instead of one full N-replica fan-out per
key.  This bench measures

* **simulated ops/sec** — operations per simulated second over a LAN
  latency model; this is the quantity the paper's Fig. 7/8 throughput
  claims are about, and the batched pipeline must beat the per-key
  loop by >= 3x (ISSUE 2 acceptance criterion);
* **wallclock events/sec** — kernel events executed per wallclock
  second while the workload runs (substrate cost of the pipeline);
* **kernel events/sec** — the bare DES-kernel throughput of
  ``test_kernel_overhead.py``, asserted against an absolute floor so a
  pipeline change that bloats the hot loop fails here.

Results land in ``benchmarks/results/BENCH_batch.json`` — the first
data point of the perf trajectory; later PRs diff against it.
"""

import json
import time
from pathlib import Path

from repro.core.cluster import SednaCluster
from repro.core.config import SednaConfig
from repro.net.simulator import Simulator

RESULTS_DIR = Path(__file__).parent / "results"

N_KEYS = 192
KERNEL_EVENTS = 20_000
# Conservative wallclock floor for the bare kernel (events/sec).  The
# unloaded loop does ~10x this on the slowest CI hardware observed;
# dipping below means the kernel hot path itself regressed badly.
KERNEL_FLOOR = 100_000.0


def _events_executed(sim: Simulator) -> int:
    """Scheduling sequence counter ~ events pushed through the kernel."""
    return sim.events_scheduled


def _fresh_cluster(seed: int) -> SednaCluster:
    cluster = SednaCluster(n_nodes=3, zk_size=1,
                           config=SednaConfig(num_vnodes=3), seed=seed)
    cluster.start()
    return cluster


def _measure(workload_factory):
    """(simulated ops/sec, wallclock events/sec, rpcs) for a workload.

    ``workload_factory(cluster, smart)`` returns a generator performing
    ``2 * N_KEYS`` client operations (writes then reads).
    """
    cluster = _fresh_cluster(seed=23)
    smart = cluster.smart_client("bench")
    cluster.run(smart.connect())
    sim_start = cluster.sim.now
    rpc_start = smart.rpc.calls_issued
    events_start = _events_executed(cluster.sim)
    wall_start = time.perf_counter()
    cluster.run(workload_factory(cluster, smart))
    wall = time.perf_counter() - wall_start
    sim_elapsed = cluster.sim.now - sim_start
    events = _events_executed(cluster.sim) - events_start
    ops = 2 * N_KEYS
    return {
        "ops": ops,
        "sim_seconds": round(sim_elapsed, 6),
        "sim_ops_per_sec": round(ops / sim_elapsed, 1),
        "wall_events_per_sec": round(events / wall, 1),
        "replica_rpcs": smart.rpc.calls_issued - rpc_start,
    }


def _per_key_workload(cluster, smart):
    for i in range(N_KEYS):
        yield from smart.write_latest(f"bench-{i}", f"v{i}")
    for i in range(N_KEYS):
        value = yield from smart.read_latest(f"bench-{i}")
        assert value == f"v{i}"


def _batched_workload(cluster, smart):
    statuses = yield from smart.multi_write(
        {f"bench-{i}": f"v{i}" for i in range(N_KEYS)})
    assert all(s == "ok" for s in statuses.values())
    values = yield from smart.multi_read([f"bench-{i}"
                                          for i in range(N_KEYS)])
    assert values == {f"bench-{i}": f"v{i}" for i in range(N_KEYS)}


def _kernel_events_per_sec() -> float:
    sim = Simulator()

    def ticker():
        for _ in range(KERNEL_EVENTS):
            yield sim.timeout(0.001)

    sim.process(ticker())
    wall_start = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - wall_start
    return _events_executed(sim) / wall


def test_batch_throughput_baseline():
    per_key = _measure(_per_key_workload)
    batched = _measure(_batched_workload)
    kernel = _kernel_events_per_sec()
    speedup = batched["sim_ops_per_sec"] / per_key["sim_ops_per_sec"]
    report = {
        "bench": "batch_throughput",
        "n_keys": N_KEYS,
        "cluster": {"nodes": 3, "vnodes": 3, "replicas": 3},
        "per_key": per_key,
        "batched": batched,
        "sim_speedup": round(speedup, 2),
        "kernel_events_per_sec": round(kernel, 1),
    }
    text = json.dumps(report, indent=2, sort_keys=True)
    print("\n" + text)
    (RESULTS_DIR / "BENCH_batch.json").write_text(text + "\n")

    # Acceptance: batching amortizes round-trips >= 3x at equal
    # correctness (both workloads assert every read's value).
    assert speedup >= 3.0, f"batched speedup only {speedup:.2f}x"
    # Same-data RPC budget sanity: batched must be far under per-key.
    assert batched["replica_rpcs"] * 10 <= per_key["replica_rpcs"]
    # Kernel hot loop did not regress past the absolute floor.
    assert kernel >= KERNEL_FLOOR, f"kernel at {kernel:.0f} ev/s"
