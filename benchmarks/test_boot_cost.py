"""First-boot vs late-join ZooKeeper cost (§III.E situation 1)."""

from conftest import record

from repro.bench.bootcost import boot_cost


def test_boot_cost(benchmark):
    result = benchmark.pedantic(boot_cost, rounds=1, iterations=1)
    record(result, "boot_cost")
