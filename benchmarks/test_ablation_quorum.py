"""Ablation: quorum parameters (N, R, W) vs latency and replica work."""

from conftest import record

from repro.bench.ablations import ablation_quorum


def test_ablation_quorum(benchmark):
    result = benchmark.pedantic(ablation_quorum, rounds=1, iterations=1)
    record(result, "ablation_quorum")
