"""Key model: the hierarchical data space.

"Though original key-value is a flatten database, we can add extra
information in the 'key' part to represent hierarchical data space"
(§II.A.1) — Sedna extends the key implicitly so the namespace is

    dataset / table / key

and triggers can monitor a single pair, a whole Table, or a whole
Dataset (§IV.C).  :class:`FullKey` is the canonical encoded form used
everywhere in the core and the trigger runtime.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FullKey", "DEFAULT_DATASET", "DEFAULT_TABLE"]

DEFAULT_DATASET = "default"
DEFAULT_TABLE = "default"

_SEP = "\x1f"  # unit separator: cannot appear in user components


@dataclass(frozen=True, order=True)
class FullKey:
    """A fully qualified key in the hierarchical data space."""

    dataset: str
    table: str
    key: str

    def __post_init__(self):
        for part, name in ((self.dataset, "dataset"), (self.table, "table"),
                           (self.key, "key")):
            if _SEP in part:
                raise ValueError(f"{name} may not contain the separator byte")
            if not part:
                raise ValueError(f"{name} must be non-empty")

    @classmethod
    def of(cls, key: str, table: str = DEFAULT_TABLE,
           dataset: str = DEFAULT_DATASET) -> "FullKey":
        """Convenience constructor with defaulted table/dataset."""
        return cls(dataset=dataset, table=table, key=key)

    def encoded(self) -> str:
        """Wire/storage form — the implicitly extended key of §II.A."""
        return f"{self.dataset}{_SEP}{self.table}{_SEP}{self.key}"

    @classmethod
    def decode(cls, encoded: str) -> "FullKey":
        """Inverse of :meth:`encoded`."""
        dataset, table, key = encoded.split(_SEP, 2)
        return cls(dataset=dataset, table=table, key=key)

    def table_prefix(self) -> str:
        """Prefix matching every key of this (dataset, table)."""
        return f"{self.dataset}{_SEP}{self.table}{_SEP}"

    def dataset_prefix(self) -> str:
        """Prefix matching every key of this dataset."""
        return f"{self.dataset}{_SEP}"

    @staticmethod
    def prefix_for(dataset: str, table: str | None = None) -> str:
        """Prefix for monitoring a Table or a whole Dataset (§IV.C)."""
        if table is None:
            return f"{dataset}{_SEP}"
        return f"{dataset}{_SEP}{table}{_SEP}"

    def __str__(self) -> str:
        return f"{self.dataset}/{self.table}/{self.key}"
