"""SednaNode — one real node of the Sedna cluster.

Every server in the data center runs the same components (§III.A):

* the **local memory storage** (a :class:`VersionedStore`, the
  "modified Memcached" of §VI) holding the replicas of the virtual
  nodes this server participates in;
* the **Sedna service**: the RPC surface.  Any node can act as the
  *coordinator* for a client request — the shared
  :class:`~repro.core.coordinator.QuorumCoordinator` hashes the key to
  a virtual node, fans the operation out to all N replicas in parallel
  and answers once the R/W quorum is met (§III.C);
* the **ZooKeeper client**: ephemeral registration under
  ``/sedna/real_nodes``, the mapping cache with adaptive lease, and the
  periodic imbalance-table push (§III.D–E);
* **lazy recovery**: a replica that times out or refuses during a
  read/write triggers an asynchronous investigation — if ZooKeeper
  confirms the node is gone, the affected assignment entries are
  rewritten and the lost replica re-duplicated from a healthy copy
  (§III.C);
* the configured **persistence strategy** (none / snapshot / WAL).
"""

from __future__ import annotations

import math
from typing import Any, Optional

from ..net.latency import LOCAL_STORE_OP, REQUEST_HANDLING
from ..net.rpc import RpcNode, RpcRejected, RpcTimeout
from ..net.simulator import Event, Simulator
from ..net.transport import Network
from ..obs.metrics import VnodeStatsFeed
from ..persistence.disk import SimDisk
from ..persistence.strategy import make_strategy
from ..storage.versioned import (ValueElement, VersionedStore, WriteOutcome,
                                 unwire_context, unwire_dvv_row,
                                 wire_dvv_row)
from ..zk.client import ZkClient
from ..zk.server import ZkConfig
from ..zk.znode import BadVersionError, NodeExistsError, NoNodeError
from .cache import MappingCache, ZkLayout
from .config import SednaConfig
from .coordinator import QuorumCoordinator, unwire_elements, wire_elements
from .hashring import Ring, VnodeStatus

__all__ = ["SednaNode"]


class SednaNode:
    """One Sedna real node (storage replica + request coordinator)."""

    def __init__(self, sim: Simulator, network: Network, name: str,
                 zk_servers: list[str], config: Optional[SednaConfig] = None,
                 zk_config: Optional[ZkConfig] = None,
                 disk: Optional[SimDisk] = None, obs=None):
        self.sim = sim
        self.network = network
        self.name = name
        self.config = config if config is not None else SednaConfig()
        # Observability bundle (repro.obs.Observability), optional.
        self.obs = obs
        metrics = obs.metrics if obs is not None else None
        tracer = obs.tracer if obs is not None else None
        if metrics is None:
            from ..obs.metrics import DISABLED
            handles = DISABLED
        else:
            handles = metrics
        self.rpc = RpcNode(network, name, service_time=REQUEST_HANDLING)
        self.rpc.tracer = tracer
        self.zk = ZkClient(sim, network, f"{name}-zk", zk_servers, zk_config,
                           metrics=metrics)
        self.zk.rpc.tracer = tracer
        self.cache = MappingCache(sim, self.zk, self.config,
                                  metrics=metrics, owner=name)
        self.store = VersionedStore(clock=lambda: sim.now,
                                    metrics=metrics, node=name,
                                    dvv_sibling_cap=self.config.dvv_sibling_cap)
        self.disk = disk if disk is not None else SimDisk()
        self.persistence = make_strategy(self.config.persistence, self.disk,
                                         name, self.config.snapshot_interval)
        self.coordinator = QuorumCoordinator(
            sim, self.rpc, self.cache, self.config,
            local_name=name, local_dispatch=self._local_dispatch,
            on_suspect=self._maybe_investigate, obs=obs)
        self.running = False

        # Vnode-local bookkeeping.  The per-vnode stats feed is the
        # single source of the read/write frequencies behind the
        # imbalance table (§III.B); ``vnode_status`` stays as an alias
        # of the feed's mapping for handoff/GC code and tests.
        self.vnode_keys: dict[int, set[str]] = {}
        self.vstats = VnodeStatsFeed(name, VnodeStatus)
        self.vnode_status: dict[int, VnodeStatus] = self.vstats.statuses
        if obs is not None:
            obs.metrics.register_feed(self.vstats)

        # Dedup of in-flight failure investigations.
        self._investigating: set[tuple[str, int]] = set()

        # Live-migration state (donor side).  While a vnode id is in
        # ``migrating_out`` every write/delete landing on it is applied
        # locally *and* forwarded to the receiver, so no acked write is
        # stranded on the donor when the assignment flips; the window
        # lingers for a couple of lease periods past the cutover to
        # cover stale-cache stragglers.  ``_migration_snaps`` holds the
        # sorted key snapshot the chunk stream walks; the generation
        # counter invalidates a pending linger-close when the same
        # vnode re-enters migration.
        self.migrating_out: dict[int, str] = {}
        self._migration_snaps: dict[int, list[str]] = {}
        self._migration_gen: dict[int, int] = {}

        # Stats.
        self.replica_writes = 0
        self.replica_reads = 0
        self.investigations = 0
        self.recoveries = 0
        self.repairs = 0
        self.migration_forwards = 0
        self.migration_forward_failures = 0
        self._m_forwards = handles.counter("migrate.forwards", node=name)
        self._m_forward_fails = handles.counter(
            "migrate.forward_failures", node=name)
        self._m_chunks_served = handles.counter(
            "migrate.chunks_served", node=name)

        self._register_rpc()

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def _register_rpc(self) -> None:
        r = self.rpc.register
        # Client-facing coordinator API.
        r("sedna.write", self._h_write)
        r("sedna.read", self._h_read)
        r("sedna.delete", self._h_delete)
        r("sedna.mwrite", self._h_mwrite)
        r("sedna.mread", self._h_mread)
        r("sedna.mdelete", self._h_mdelete)
        r("sedna.cwrite", self._h_cwrite)
        r("sedna.cread", self._h_cread)
        # Replica-to-replica API.
        r("replica.write", self._h_replica_write)
        r("replica.read", self._h_replica_read)
        r("replica.cwrite", self._h_replica_cwrite)
        r("replica.cmerge", self._h_replica_cmerge)
        r("replica.cread", self._h_replica_cread)
        r("replica.delete", self._h_replica_delete)
        r("replica.mwrite", self._h_replica_mwrite)
        r("replica.mread", self._h_replica_mread)
        r("replica.mdelete", self._h_replica_mdelete)
        r("replica.transfer", self._h_replica_transfer)
        r("replica.install", self._h_replica_install)
        r("replica.repair", self._h_replica_repair)
        r("replica.digest", self._h_replica_digest)
        r("replica.fetch", self._h_replica_fetch)
        # Liveness probe for the failure detector.  Registered here so
        # the wire surface is complete before the endpoint serves any
        # traffic; attaching a detector later must not widen it.
        r("replica.ping", lambda src, args: "pong")
        # Live-migration protocol (rebalancer-driven, §III.B extension).
        r("stats.vnodes", self._h_vnode_stats)
        r("migrate.begin", self._h_migrate_begin)
        r("migrate.chunk", self._h_migrate_chunk)
        r("migrate.forward", self._h_migrate_forward)
        r("migrate.end", self._h_migrate_end)
        r("migrate.settle", self._h_migrate_settle)

    # ------------------------------------------------------------------
    # Membership (§III.D)
    # ------------------------------------------------------------------
    def join(self):
        """The full join protocol; run as ``yield from node.join()``.

        1. local store is already up (constructed);
        2. connect to ZooKeeper, run the initial procedure when first;
        3. register the ephemeral liveness znode;
        4. load the mapping and acquire virtual nodes with
           ``retrieval_threads`` concurrent workers;
        5. start the lease loop, imbalance pusher and persistence.
        """
        yield from self.zk.connect()
        yield from self._ensure_initialized()
        try:
            yield from self.zk.create(ZkLayout.real_node(self.name), b"",
                                      ephemeral=True)
        except NodeExistsError:
            pass  # stale ephemeral from a fast restart; session replaces it
        yield from self.cache.load_full()
        yield from self._acquire_vnodes()
        self.cache.start_lease_loop()
        self.sim.process(self._imbalance_pusher(),
                         name=f"{self.name}-imbalance")
        self.persistence.start(self.sim, self._rows_for_persistence)
        recovered = self.persistence.recover()
        for key, elements in recovered.items():
            self.store.merge_elements(key, elements)
            self._index_key(key)
        self.running = True
        return self.name

    def _rows_for_persistence(self) -> dict:
        return {key: list(row.elements)
                for key, row in self.store.rows.items()}

    def _ensure_initialized(self):
        """First node creates the whole /sedna namespace (§III.E: 'it
        only happens once when the Sedna cluster firstly starts up')."""
        try:
            yield from self.zk.create(ZkLayout.ROOT, b"")
            initializer = True
        except NodeExistsError:
            initializer = False
        if initializer:
            for path in (ZkLayout.REAL_NODES, ZkLayout.VNODES,
                         ZkLayout.CHANGELOG, ZkLayout.IMBALANCE):
                yield from self.zk.create(path, b"")
            for vnode_id in range(self.config.num_vnodes):
                yield from self.zk.create(ZkLayout.vnode(vnode_id), b"")
            yield from self.zk.create(
                ZkLayout.CONFIG,
                str(self.config.num_vnodes).encode())
            return
        # Someone else is initializing: wait for the config marker.
        while True:
            stat = yield from self.zk.exists(ZkLayout.CONFIG)
            if stat is not None:
                return
            yield self.sim.timeout(0.2)

    def _acquire_vnodes(self):
        """Claim a fair share of virtual nodes, concurrently (§III.D)."""
        live = yield from self.zk.get_children(ZkLayout.REAL_NODES)
        target = max(1, math.ceil(self.config.num_vnodes / max(1, len(live))))
        counts = self.cache.ring.load_counts()
        mine = len(self.cache.ring.vnodes_of(self.name))
        # Work list: unassigned vnodes first, then vnodes of overloaded owners.
        candidates = self.cache.ring.unassigned()
        overloaded = [v for v, owner in enumerate(self.cache.ring.assignment)
                      if owner not in (Ring.UNASSIGNED, self.name)
                      and counts.get(owner, 0) > target]
        candidates.extend(overloaded)
        queue = list(reversed(candidates))
        state = {"mine": mine}

        def worker():
            while queue and state["mine"] < target:
                vnode_id = queue.pop()
                claimed = yield from self._try_claim(vnode_id, target)
                if claimed:
                    state["mine"] += 1

        workers = [self.sim.process(worker(), name=f"{self.name}-acq{i}")
                   for i in range(self.config.retrieval_threads)]
        for proc in workers:
            yield proc

    def _try_claim(self, vnode_id: int, target: int):
        """Version-checked claim of one vnode; True on success."""
        try:
            data, stat = yield from self.zk.get(ZkLayout.vnode(vnode_id))
        except NoNodeError:
            return False
        owner = data.decode()
        if owner == self.name:
            self.cache.ring.assign(vnode_id, owner)
            return False
        if owner != Ring.UNASSIGNED:
            counts = self.cache.ring.load_counts()
            if counts.get(owner, 0) <= target:
                return False  # no longer overloaded
        try:
            yield from self.write_assignment(vnode_id, self.name,
                                             stat["version"])
        except (BadVersionError, NoNodeError):
            return False  # raced with another joiner
        self.cache.ring.assign(vnode_id, self.name)
        status = self.vnode_status.setdefault(vnode_id, VnodeStatus())
        if owner != Ring.UNASSIGNED:
            # The claim-time pull gives us the vnode's history up to
            # now, but coordinators with stale mapping caches keep
            # routing writes to the old replica set for up to a lease;
            # serve no reads until that window is swept.
            status.warming = True
            yield from self._pull_vnode(vnode_id, owner)
            self.sim.process(self._finish_handoff(vnode_id, owner, status),
                             name=f"{self.name}-handoff-{vnode_id}")
        return True

    def _finish_handoff(self, vnode_id: int, predecessor: str,
                        status: VnodeStatus):
        """Close the handoff race window for a claimed vnode.

        Writes acknowledged by the old replica set after our claim-time
        pull would be invisible here; once every mapping cache has had
        a lease period to catch up, re-pull the predecessor's rows and
        digest-sync with the other current replicas, then start
        answering reads.

        The catch-up must actually *succeed* before warming clears — a
        predecessor that crashed mid-churn would otherwise silently
        re-open the stale-read window warming exists to close.  Any
        write acked by the old W-quorum lives on at least one member
        of the current set besides the predecessor, so a complete
        digest-sync (every peer contacted) is as good as the pull.
        Failures retry a bounded number of times before availability
        wins and reads resume anyway.
        """
        try:
            yield self.sim.timeout(self.config.lease_base * 2)
            for _attempt in range(5):
                if not self.running:
                    return
                pulled = yield from self._pull_vnode(vnode_id, predecessor)
                _pl, _ps, failed_peers = yield from self.reconcile_vnode(
                    vnode_id)
                if pulled or failed_peers == 0:
                    return
                yield self.sim.timeout(self.config.lease_base)
        finally:
            status.warming = False

    def write_assignment(self, vnode_id: int, owner: str, version: int):
        """Version-checked ownership rewrite plus its changelog entry,
        as ONE transaction.

        The two writes must be atomic: if the mapping set applied but
        the changelog append was lost (response dropped, client died
        between the calls), every cache following the changelog would
        stay stale on that vnode forever.
        """
        yield from self.zk.multi([
            self.zk.op_set(ZkLayout.vnode(vnode_id), owner.encode(),
                           version=version),
            self.zk.op_create(f"{ZkLayout.CHANGELOG}/e-",
                              str(vnode_id).encode(), sequential=True),
        ])

    def _pull_vnode(self, vnode_id: int, source: str):
        """Copy a vnode's rows from ``source`` into the local store."""
        try:
            result = yield from self.rpc.call(
                source, "replica.transfer", {"vnode": vnode_id},
                timeout=self.config.request_timeout * 4)
        except (RpcTimeout, RpcRejected):
            return False
        flags = result.get("lww", {})
        for key, blob in result["rows"].items():
            self._merge_durably(key, unwire_elements(blob),
                                lww=flags.get(key))
        self._merge_dvv_rows(result.get("dvv_rows"))
        return True

    def _merge_durably(self, key: str, elements: list[ValueElement],
                       lww: Optional[bool] = None) -> None:
        """Merge foreign elements and log them to persistence — migrated
        replicas must survive a power loss just like written ones.

        ``lww`` is the sender's knowledge of the row's write mode, so
        merges into collapsed ``write_latest`` rows prune superseded
        sources instead of re-inflating the value list.
        """
        self.store.merge_elements(key, elements, lww=lww)
        self._index_key(key)
        for element in elements:
            self.persistence.on_write(key, element)

    def _lww_flags(self, keys) -> dict[str, bool]:
        """Write-mode flags for the given keys (known modes only) —
        shipped beside every bulk row payload so receivers merge with
        the right discipline."""
        flags = {}
        for key in keys:
            row = self.store.rows.get(key)
            if row is not None and row.lww is not None:
                flags[key] = row.lww
        return flags

    def _merge_dvv_rows(self, blobs: Optional[dict]) -> None:
        """Merge a wire map of causal rows (bulk-transfer receive side).

        Causal rows are not logged to persistence: the DVV mode is an
        in-memory replication mode; durability across power loss comes
        from the replica set, not the disk strategies (documented in
        docs/protocols.md §16).
        """
        for key in sorted(blobs or {}):
            self.store.causal_merge(key, unwire_dvv_row(blobs[key]))
            self._index_key(key)

    def _imbalance_pusher(self):
        """Periodically publish this node's imbalance-table row (§III.B)."""
        path = ZkLayout.imbalance(self.name)
        push_timer = self.sim.recurring(self.config.imbalance_push_interval)
        while True:
            yield push_timer.tick()
            if not (self.running and self.rpc.endpoint.up):
                return
            # The row is the stats feed's aggregate — the same numbers
            # an obs snapshot exports per vnode, so the published table
            # and the metrics can never disagree.
            row = self.vstats.row()
            # Ownership comes from the (lease-synced) ring, not from the
            # touched-vnode statuses — a node may own cold vnodes.
            row["vnodes"] = len(self.cache.ring.vnodes_of(self.name))
            payload = repr(row).encode()
            try:
                yield from self.zk.set(path, payload)
            except NoNodeError:
                try:
                    yield from self.zk.create(path, payload)
                except (NodeExistsError, NoNodeError):
                    pass
            except (RpcTimeout, RpcRejected):
                pass

    # ------------------------------------------------------------------
    # Crash / restart
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Kill the node: memory gone, endpoints dark, disk survives."""
        self.running = False
        self.rpc.endpoint.crash()
        self.zk.crash()
        self.cache.stop()
        self.persistence.stop()
        # Any in-flight migration window dies with the memory; the
        # rebalancer's ledger notices the dead donor and aborts/retries.
        self.migrating_out.clear()
        self._migration_snaps.clear()
        self._migration_gen.clear()

    def restart(self):
        """Restart after a crash: fresh memory, recover from disk, rejoin.

        Run as ``yield from node.restart()``.
        """
        self.rpc.endpoint.restart()
        self.zk.rpc.endpoint.restart()
        self.zk.session_id = None
        self.zk.expired = False
        metrics = self.obs.metrics if self.obs is not None else None
        self.store = VersionedStore(clock=lambda: self.sim.now,
                                    metrics=metrics, node=self.name)
        self.vnode_keys = {}
        self.vstats = VnodeStatsFeed(self.name, VnodeStatus)
        self.vnode_status = self.vstats.statuses
        if self.obs is not None:
            self.obs.metrics.register_feed(self.vstats)
        self.cache = MappingCache(self.sim, self.zk, self.config,
                                  metrics=metrics, owner=self.name)
        self.coordinator.cache = self.cache
        self.persistence = make_strategy(self.config.persistence, self.disk,
                                         self.name,
                                         self.config.snapshot_interval)
        yield from self.join()

    # ------------------------------------------------------------------
    # Local indexing helpers
    # ------------------------------------------------------------------
    def _index_key(self, key: str) -> None:
        vnode_id = self.cache.ring.vnode_of(key)
        self.vnode_keys.setdefault(vnode_id, set()).add(key)
        self.vstats.status(vnode_id).keys = len(self.vnode_keys[vnode_id])

    def _status(self, vnode_id: int) -> VnodeStatus:
        return self.vstats.status(vnode_id)

    # ------------------------------------------------------------------
    # Replica-side handlers (the storage plane)
    # ------------------------------------------------------------------
    def _owns(self, vnode_id: int) -> bool:
        replicas = self.cache.ring.replicas_for(vnode_id,
                                                self.config.replicas)
        return self.name in replicas

    def _h_replica_write(self, src: str, args: Any):
        vnode_id = args["vnode"]
        if self.cache.loaded and not self._owns(vnode_id):
            # Our mapping may be stale too: re-read it while refusing
            # (§III.E strategy 1 works on both sides of the RPC).
            self.sim.process(self.cache.invalidate(vnode_id))
            raise RpcRejected("not-owner")
        self.replica_writes += 1
        key = args["key"]
        element = ValueElement(args["source"], args["ts"], args["value"])
        if args["mode"] == "latest":
            status = self.store.write_latest(key, element.value,
                                             element.timestamp, element.source)
        else:
            status = self.store.write_all(key, element.value,
                                          element.timestamp, element.source)
        self._index_key(key)
        self.vstats.record_write(vnode_id)
        receiver = self._forward_target(vnode_id)
        if receiver is not None:
            self._spawn_forward(receiver, vnode_id,
                                rows={key: wire_elements([element])},
                                lww={key: args["mode"] == "latest"})
        if status == WriteOutcome.OK:
            self.persistence.on_write(key, element)
        delay = self.persistence.write_delay()
        if delay > 0.0:
            ev = self.sim.event()
            self.sim.schedule_callback(
                delay, lambda: ev.succeed({"status": status}))
            return ev
        return {"status": status}

    def _h_replica_read(self, src: str, args: Any):
        vnode_id = args["vnode"]
        if self.cache.loaded and not self._owns(vnode_id):
            self.sim.process(self.cache.invalidate(vnode_id))
            raise RpcRejected("not-owner")
        status = self.vnode_status.get(vnode_id)
        if status is not None and status.warming:
            # Mid-handoff: answering now could miss writes still routed
            # to the old replica set through stale caches.
            raise RpcRejected("warming")
        self.replica_reads += 1
        self.vstats.record_read(vnode_id)
        key = args["key"]
        elements = self.store.read_all(key)
        row = self.store.rows.get(key)
        return {"elements": wire_elements(elements),
                "lww": row.lww if row is not None else None}

    def _h_replica_delete(self, src: str, args: Any):
        self.store.delete(args["key"])
        vnode_id = args["vnode"]
        keys = self.vnode_keys.get(vnode_id)
        if keys is not None:
            keys.discard(args["key"])
        receiver = self._forward_target(vnode_id)
        if receiver is not None:
            self._spawn_forward(receiver, vnode_id, deletes=[args["key"]])
        return {"status": "ok"}

    def _h_replica_mwrite(self, src: str, args: Any):
        """Batched replica.write: one ownership check and one
        persistence flush for the whole vnode-group, per-key outcomes.
        """
        vnode_id = args["vnode"]
        if self.cache.loaded and not self._owns(vnode_id):
            self.sim.process(self.cache.invalidate(vnode_id))
            raise RpcRejected("not-owner")
        entries = args["entries"]
        self.replica_writes += len(entries)
        self.vstats.record_write(vnode_id, len(entries))
        statuses = self.store.write_multi(
            (e["key"], e["value"], e["ts"], e["source"], e["mode"])
            for e in entries)
        for e in entries:
            key = e["key"]
            self._index_key(key)
            if statuses[key] == WriteOutcome.OK:
                self.persistence.on_write(
                    key, ValueElement(e["source"], e["ts"], e["value"]))
        receiver = self._forward_target(vnode_id)
        if receiver is not None:
            self._spawn_forward(
                receiver, vnode_id,
                rows={e["key"]: wire_elements(
                    [ValueElement(e["source"], e["ts"], e["value"])])
                    for e in entries},
                lww={e["key"]: e["mode"] == "latest" for e in entries})
        delay = self.persistence.write_delay()
        if delay > 0.0:
            ev = self.sim.event()
            self.sim.schedule_callback(
                delay, lambda: ev.succeed({"statuses": statuses}))
            return ev
        return {"statuses": statuses}

    def _h_replica_mread(self, src: str, args: Any):
        """Batched replica.read: one ownership/warming check, one
        round-trip; keys with no row are absent from ``rows``."""
        vnode_id = args["vnode"]
        if self.cache.loaded and not self._owns(vnode_id):
            self.sim.process(self.cache.invalidate(vnode_id))
            raise RpcRejected("not-owner")
        status = self.vnode_status.get(vnode_id)
        if status is not None and status.warming:
            raise RpcRejected("warming")
        keys = args["keys"]
        self.replica_reads += len(keys)
        self.vstats.record_read(vnode_id, len(keys))
        rows = {key: wire_elements(elements)
                for key, elements in self.store.read_multi(keys).items()
                if elements}
        return {"rows": rows, "lww": self._lww_flags(rows)}

    def _h_replica_mdelete(self, src: str, args: Any):
        """Batched replica.delete with per-key outcomes."""
        vnode_id = args["vnode"]
        keys = self.vnode_keys.get(vnode_id)
        statuses = {}
        for key in args["keys"]:
            existed = self.store.delete(key)
            if keys is not None:
                keys.discard(key)
            statuses[key] = "ok" if existed else "missing"
        receiver = self._forward_target(vnode_id)
        if receiver is not None:
            self._spawn_forward(receiver, vnode_id,
                                deletes=list(args["keys"]))
        return {"statuses": statuses}

    def _h_replica_cwrite(self, src: str, args: Any):
        """Causal (DVV) dot-minting write: apply the client's context,
        mint a fresh dot, return the resulting row for replication."""
        vnode_id = args["vnode"]
        if self.cache.loaded and not self._owns(vnode_id):
            self.sim.process(self.cache.invalidate(vnode_id))
            raise RpcRejected("not-owner")
        self.replica_writes += 1
        key = args["key"]
        dot, row = self.store.causal_update(
            key, args["value"], args["ts"], args["source"],
            unwire_context(args.get("ctx")), self.name)
        self._index_key(key)
        self.vstats.record_write(vnode_id)
        receiver = self._forward_target(vnode_id)
        if receiver is not None:
            self._spawn_forward(receiver, vnode_id,
                                dvv_rows={key: wire_dvv_row(row)})
        return {"status": "ok", "dot": list(dot),
                "row": wire_dvv_row(row)}

    def _h_replica_cmerge(self, src: str, args: Any):
        """Causal (DVV) row merge: replication fan-out, read repair and
        anti-entropy all land here (idempotent)."""
        vnode_id = args["vnode"]
        if self.cache.loaded and not self._owns(vnode_id):
            self.sim.process(self.cache.invalidate(vnode_id))
            raise RpcRejected("not-owner")
        self.replica_writes += 1
        key = args["key"]
        self.store.causal_merge(key, unwire_dvv_row(args["row"]))
        self._index_key(key)
        self.vstats.record_write(vnode_id)
        receiver = self._forward_target(vnode_id)
        if receiver is not None:
            row = self.store.causal_read(key)
            self._spawn_forward(receiver, vnode_id,
                                dvv_rows={key: wire_dvv_row(row)})
        return {"status": "ok"}

    def _h_replica_cread(self, src: str, args: Any):
        """Causal (DVV) read: the whole row (siblings + context)."""
        vnode_id = args["vnode"]
        if self.cache.loaded and not self._owns(vnode_id):
            self.sim.process(self.cache.invalidate(vnode_id))
            raise RpcRejected("not-owner")
        status = self.vnode_status.get(vnode_id)
        if status is not None and status.warming:
            raise RpcRejected("warming")
        self.replica_reads += 1
        self.vstats.record_read(vnode_id)
        row = self.store.causal_read(args["key"])
        return {"row": wire_dvv_row(row) if row is not None else None}

    def _h_replica_transfer(self, src: str, args: Any):
        """Ship every row of one vnode (re-duplication / rebalance)."""
        vnode_id = args["vnode"]
        rows = {}
        dvv_rows = {}
        # sorted(): set order is hash order, and the row dict's order
        # is wire-visible (replay identity across PYTHONHASHSEEDs).
        for key in sorted(self.vnode_keys.get(vnode_id, set())):
            elements = self.store.read_all(key)
            if elements:
                rows[key] = wire_elements(elements)
            drow = self.store.dvv_rows.get(key)
            if drow is not None:
                dvv_rows[key] = wire_dvv_row(drow)
        return {"rows": rows, "lww": self._lww_flags(rows),
                "dvv_rows": dvv_rows}

    def _h_replica_install(self, src: str, args: Any):
        """Receive a vnode's rows (the re-duplication target side)."""
        flags = args.get("lww", {})
        for key, blob in args["rows"].items():
            self._merge_durably(key, unwire_elements(blob),
                                lww=flags.get(key))
        self._merge_dvv_rows(args.get("dvv_rows"))
        return {"status": "ok",
                "installed": len(args["rows"]) + len(args.get("dvv_rows")
                                                     or {})}

    def _h_replica_repair(self, src: str, args: Any):
        """Read-repair: merge the coordinator's freshest elements."""
        self.repairs += 1
        self._merge_durably(args["key"], unwire_elements(args["elements"]),
                            lww=args.get("lww"))
        return {"status": "ok"}

    def vnode_digest(self, vnode_id: int) -> dict[str, list[tuple]]:
        """Per-key version vectors of one vnode: key -> [(source, ts)].

        The anti-entropy exchange compares digests instead of shipping
        whole vnodes, so a quiet cluster syncs for metadata cost only.
        """
        digest: dict[str, list[tuple]] = {}
        for key in sorted(self.vnode_keys.get(vnode_id, set())):
            elements = self.store.read_all(key)
            if elements:
                digest[key] = sorted((e.source, e.timestamp)
                                     for e in elements)
        return digest

    def vnode_dvv_digest(self, vnode_id: int) -> dict[str, list]:
        """Per-key causal digests of one vnode: key -> [vv, dots].

        ``vv`` is the sorted version vector, ``dots`` the sorted
        sibling dots — together they identify the row state without
        shipping sibling values.
        """
        digest: dict[str, list] = {}
        for key in sorted(self.vnode_keys.get(vnode_id, set())):
            row = self.store.dvv_rows.get(key)
            if row is not None and (row.vv or row.siblings):
                digest[key] = [
                    [[rep, cnt] for rep, cnt in sorted(row.vv.items())],
                    [[rep, cnt] for rep, cnt in
                     sorted(s.dot for s in row.siblings)]]
        return digest

    def _h_replica_digest(self, src: str, args: Any):
        """Anti-entropy: report this replica's digest for a vnode."""
        return {"digest": self.vnode_digest(args["vnode"]),
                "dvv": self.vnode_dvv_digest(args["vnode"])}

    def _h_replica_fetch(self, src: str, args: Any):
        """Anti-entropy: ship the requested keys' full rows."""
        rows = {}
        for key in args.get("keys", ()):
            elements = self.store.read_all(key)
            if elements:
                rows[key] = wire_elements(elements)
        dvv_rows = {}
        for key in args.get("dvv_keys", ()):
            row = self.store.dvv_rows.get(key)
            if row is not None:
                dvv_rows[key] = wire_dvv_row(row)
        return {"rows": rows, "lww": self._lww_flags(rows),
                "dvv_rows": dvv_rows}

    # ------------------------------------------------------------------
    # Live migration (donor/receiver sides; driver in rebalance.py)
    # ------------------------------------------------------------------
    def _h_vnode_stats(self, src: str, args: Any):
        """Per-vnode activity rows for the vnodes this node owns.

        The rebalancer asks the *donor* directly instead of widening
        the ZooKeeper imbalance row: the table stays "quite small"
        (§III.B) and the answer is live rather than a push interval
        stale.
        """
        stats = {}
        for vnode_id in self.cache.ring.vnodes_of(self.name):
            status = self.vstats.statuses.get(vnode_id)
            if status is None:
                stats[vnode_id] = {"keys": 0, "bytes": 0,
                                   "reads": 0, "writes": 0}
            else:
                stats[vnode_id] = {"keys": status.keys,
                                   "bytes": status.bytes,
                                   "reads": status.reads,
                                   "writes": status.writes}
        return {"stats": stats}

    def _h_migrate_begin(self, src: str, args: Any):
        """Open the forwarding window and snapshot the chunk key list."""
        vnode_id = args["vnode"]
        receiver = args["to"]
        current = self.migrating_out.get(vnode_id)
        if current is not None and current != receiver:
            raise RpcRejected("migrating")
        self.migrating_out[vnode_id] = receiver
        self._migration_gen[vnode_id] = \
            self._migration_gen.get(vnode_id, 0) + 1
        snapshot = sorted(self.vnode_keys.get(vnode_id, set()))
        self._migration_snaps[vnode_id] = snapshot
        return {"status": "ok", "keys": len(snapshot)}

    def _h_migrate_chunk(self, src: str, args: Any):
        """Ship one byte-budgeted chunk of the begin-time snapshot.

        New keys written after ``migrate.begin`` ride the forwarding
        window instead; keys deleted since the snapshot are skipped
        (the cursor still advances past them).
        """
        vnode_id = args["vnode"]
        if vnode_id not in self.migrating_out:
            raise RpcRejected("not-migrating")
        snapshot = self._migration_snaps.get(vnode_id, [])
        cursor = args["cursor"]
        budget = args["budget"]
        rows = {}
        dvv_rows = {}
        size = 0
        while cursor < len(snapshot):
            key = snapshot[cursor]
            cursor += 1
            elements = self.store.read_all(key)
            if elements:
                blob = wire_elements(elements)
                rows[key] = blob
                size += len(key) + len(repr(blob))
            drow = self.store.dvv_rows.get(key)
            if drow is not None:
                blob = wire_dvv_row(drow)
                dvv_rows[key] = blob
                size += len(key) + len(repr(blob))
            if size >= budget:
                break
        self._m_chunks_served.inc()
        return {"rows": rows, "lww": self._lww_flags(rows),
                "dvv_rows": dvv_rows, "next": cursor,
                "done": cursor >= len(snapshot), "bytes": size}

    def _h_migrate_forward(self, src: str, args: Any):
        """Receiver side of the forwarding window: merge double-applied
        writes (and replay deletes) for a vnode migrating in."""
        flags = args.get("lww", {})
        for key in sorted(args.get("rows", {})):
            self._merge_durably(key, unwire_elements(args["rows"][key]),
                                lww=flags.get(key))
        self._merge_dvv_rows(args.get("dvv_rows"))
        for key in args.get("deletes", ()):
            self.store.delete(key)
            keys = self.vnode_keys.get(args["vnode"])
            if keys is not None:
                keys.discard(key)
        return {"status": "ok"}

    def _h_migrate_end(self, src: str, args: Any):
        """Close a migration on the donor.

        On commit the ring is updated at once (further stale-cache
        writes draw ``not-owner`` and retry against the new set) but
        the forwarding window *lingers* two lease periods so double-
        applies still cover writes already in flight to us.  On abort
        the window closes immediately.
        """
        vnode_id = args["vnode"]
        receiver = self.migrating_out.get(vnode_id)
        if receiver is None:
            return {"status": "idle"}
        self._migration_snaps.pop(vnode_id, None)
        if not args["committed"]:
            self.migrating_out.pop(vnode_id, None)
            return {"status": "aborted"}
        self.cache.ring.assign(vnode_id, receiver)
        gen = self._migration_gen.get(vnode_id, 0)
        self.sim.process(self._linger_close(vnode_id, receiver, gen),
                         name=f"{self.name}-linger-{vnode_id}")
        return {"status": "committed"}

    def _linger_close(self, vnode_id: int, receiver: str, gen: int):
        """Drop the forwarding window after the stale-cache horizon,
        unless the vnode re-entered migration meanwhile."""
        yield self.sim.timeout(self.config.lease_base * 2)
        if (self._migration_gen.get(vnode_id) == gen
                and self.migrating_out.get(vnode_id) == receiver):
            self.migrating_out.pop(vnode_id, None)

    def _h_migrate_settle(self, src: str, args: Any):
        """Receiver-side cutover notice: adopt ownership locally and
        schedule a post-cutover digest reconcile, mirroring the join
        handoff's catch-up (stale caches keep routing writes to the old
        replica set for up to a lease)."""
        vnode_id = args["vnode"]
        self.cache.ring.assign(vnode_id, self.name)
        self.vstats.status(vnode_id)  # materialize the stats row
        self.sim.process(self._post_migration_reconcile(vnode_id),
                         name=f"{self.name}-settle-{vnode_id}")
        return {"status": "ok"}

    def _post_migration_reconcile(self, vnode_id: int):
        yield self.sim.timeout(self.config.lease_base * 2)
        if self.running:
            yield from self.reconcile_vnode(vnode_id)

    def _forward_target(self, vnode_id: int) -> Optional[str]:
        return self.migrating_out.get(vnode_id)

    def _spawn_forward(self, receiver: str, vnode_id: int,
                       rows: Optional[dict] = None,
                       deletes: Optional[list] = None,
                       lww: Optional[dict] = None,
                       dvv_rows: Optional[dict] = None) -> None:
        """Fire-and-forget double-apply of a write/delete to the
        migration receiver (one retry; terminal failures are counted —
        the pre-cutover digest verify re-pulls anything still missing)."""
        self.migration_forwards += 1
        self._m_forwards.inc()
        args = {"vnode": vnode_id, "rows": rows or {},
                "deletes": deletes or [], "lww": lww or {},
                "dvv_rows": dvv_rows or {}}
        self.sim.process(self._forward(receiver, args),
                         name=f"{self.name}-fwd-{vnode_id}")

    def _forward(self, receiver: str, args: Any):
        try:
            yield from self.rpc.call_retry(
                receiver, "migrate.forward", args,
                timeout=self.config.request_timeout, attempts=2)
        except (RpcTimeout, RpcRejected):
            self.migration_forward_failures += 1
            self._m_forward_fails.inc()

    # ------------------------------------------------------------------
    # Coordinator plumbing
    # ------------------------------------------------------------------
    def _local_dispatch(self, method: str, args: Any) -> Event:
        """Replica op against ourselves: skip the network, still pay the
        local store-op cost."""
        ev = self.sim.event()

        def run() -> None:
            handler = self.rpc._handlers[method]
            try:
                result = handler(self.name, args)
            except RpcRejected as rej:
                ev.fail(rej)
                return
            if isinstance(result, Event):
                def finish(inner: Event) -> None:
                    if inner.ok:
                        ev.succeed(inner.value)
                    else:
                        ev.fail(inner.value)
                if result.callbacks is None:
                    finish(result)
                else:
                    result.callbacks.append(finish)
            else:
                ev.succeed(result)

        self.sim.schedule_callback(LOCAL_STORE_OP, run)
        return ev

    def _deferred(self, gen, label: str) -> Event:
        """Run ``gen`` as a process whose outcome feeds a fresh event."""
        result = self.sim.event()

        def runner():
            try:
                value = yield from gen
            except Exception as err:  # surfaces as 'refuse' to the caller
                if not result.triggered:
                    result.fail(err if isinstance(err, RpcRejected)
                                else RpcRejected(repr(err)))
                return
            if not result.triggered:
                result.succeed(value)

        self.sim.process(runner(), name=f"{self.name}-{label}")
        return result

    # -- coordinator handlers (the client-facing plane) --------------------
    def _h_write(self, src: str, args: Any) -> Event:
        return self._deferred(self.coordinator.coordinate_write(args),
                              "coord-write")

    def _h_read(self, src: str, args: Any) -> Event:
        return self._deferred(self.coordinator.coordinate_read(args),
                              "coord-read")

    def _h_delete(self, src: str, args: Any) -> Event:
        return self._deferred(self.coordinator.coordinate_delete(args),
                              "coord-delete")

    def _h_mwrite(self, src: str, args: Any) -> Event:
        return self._deferred(self.coordinator.coordinate_multi_write(args),
                              "coord-mwrite")

    def _h_mread(self, src: str, args: Any) -> Event:
        return self._deferred(self.coordinator.coordinate_multi_read(args),
                              "coord-mread")

    def _h_mdelete(self, src: str, args: Any) -> Event:
        return self._deferred(self.coordinator.coordinate_multi_delete(args),
                              "coord-mdelete")

    def _h_cwrite(self, src: str, args: Any) -> Event:
        return self._deferred(self.coordinator.coordinate_causal_write(args),
                              "coord-cwrite")

    def _h_cread(self, src: str, args: Any) -> Event:
        return self._deferred(self.coordinator.coordinate_causal_read(args),
                              "coord-cread")

    # ------------------------------------------------------------------
    # Lazy failure recovery (§III.C–D)
    # ------------------------------------------------------------------
    def _maybe_investigate(self, suspect: str, vnode_id: int) -> None:
        """Schedule an asynchronous investigation of a failed replica."""
        if suspect == self.name or not self.running:
            return
        token = (suspect, vnode_id)
        if token in self._investigating:
            return
        self._investigating.add(token)
        self.investigations += 1
        self.sim.process(self._investigate(suspect, vnode_id),
                         name=f"{self.name}-investigate-{suspect}")

    def _investigate(self, suspect: str, vnode_id: int):
        try:
            # "check their existence by asking the ZooKeeper service"
            try:
                stat = yield from self.zk.exists(ZkLayout.real_node(suspect))
            except (RpcTimeout, RpcRejected):
                return
            if stat is not None:
                return  # alive: transient hiccup, nothing to do (§III.D)
            yield from self._recover_vnode(suspect, vnode_id)
        finally:
            self._investigating.discard((suspect, vnode_id))

    def _recover_vnode(self, dead: str, vnode_id: int):
        """Rewrite the assignment entries that placed ``dead`` in this
        vnode's replica set, then re-duplicate the data (§III.C)."""
        positions = self.cache.ring.walk_positions(vnode_id,
                                                   self.config.replicas)
        old_members = {owner for _v, owner in positions}
        dead_positions = [v for v, owner in positions if owner == dead]
        if not dead_positions:
            return
        try:
            live = yield from self.zk.get_children(ZkLayout.REAL_NODES)
        except (RpcTimeout, RpcRejected, NoNodeError):
            return
        current_owners = {owner for _v, owner in positions if owner != dead}
        candidates = [n for n in live
                      if n != dead and n not in current_owners]
        if not candidates:
            candidates = [n for n in live if n != dead]
        if not candidates:
            return
        counts = self.cache.ring.load_counts()
        candidates.sort(key=lambda n: (counts.get(n, 0), n))
        # Rewriting a position shifts the successor chain of *every*
        # vnode whose replica walk crosses it, not just this one's: a
        # node can enter vnode Q's replica set because position P≠Q
        # changed hands.  Snapshot all replica sets first, so each
        # vnode's rows follow each of its new members — a member left
        # empty here later satisfies read quorums with no data, which
        # breaks R/W intersection for writes the old set acked.
        before = {v: set(self.cache.ring.replicas_for(v,
                                                      self.config.replicas))
                  for v in range(self.config.num_vnodes)}
        for position in dead_positions:
            replacement = candidates[0]
            moved = yield from self._reassign(position, dead, replacement)
            if moved:
                self.recoveries += 1
        for v in range(self.config.num_vnodes):
            for member in self.cache.ring.replicas_for(
                    v, self.config.replicas):
                if member not in before[v]:
                    yield from self._reduplicate(v, member)

    def _reassign(self, vnode_id: int, expected_owner: str,
                  replacement: str):
        """Version-checked ownership rewrite in ZooKeeper + changelog."""
        try:
            data, stat = yield from self.zk.get(ZkLayout.vnode(vnode_id))
        except (NoNodeError, RpcTimeout, RpcRejected):
            return False
        if data.decode() != expected_owner:
            # Someone else already recovered it; adopt their choice.
            self.cache.ring.assign(vnode_id, data.decode())
            return False
        try:
            yield from self.write_assignment(vnode_id, replacement,
                                             stat["version"])
        except (BadVersionError, NoNodeError, RpcTimeout, RpcRejected):
            return False
        self.cache.ring.assign(vnode_id, replacement)
        return True

    def _reduplicate(self, vnode_id: int, target: str):
        """Copy the vnode's rows to its new owner from a healthy copy."""
        if target == self.name:
            # We took the vnode over ourselves: pull from any other
            # member of the (new) replica set.
            replicas = self.cache.ring.replicas_for(vnode_id,
                                                    self.config.replicas)
            for source in replicas:
                if source == self.name:
                    continue
                pulled = yield from self._pull_vnode(vnode_id, source)
                if pulled:
                    return
            return
        keys = self.vnode_keys.get(vnode_id, set())
        if keys:
            rows = {}
            dvv_rows = {}
            for key in sorted(keys):
                elements = self.store.read_all(key)
                if elements:
                    rows[key] = wire_elements(elements)
                drow = self.store.dvv_rows.get(key)
                if drow is not None:
                    dvv_rows[key] = wire_dvv_row(drow)
            try:
                yield from self.rpc.call(
                    target, "replica.install",
                    {"vnode": vnode_id, "rows": rows,
                     "lww": self._lww_flags(rows), "dvv_rows": dvv_rows},
                    timeout=self.config.request_timeout * 4)
            except (RpcTimeout, RpcRejected):
                pass
            return
        # We hold nothing for the vnode: ask another live replica to push.
        replicas = self.cache.ring.replicas_for(vnode_id,
                                                self.config.replicas)
        for source in replicas:
            if source in (target, self.name):
                continue
            try:
                result = yield from self.rpc.call(
                    source, "replica.transfer", {"vnode": vnode_id},
                    timeout=self.config.request_timeout * 4)
            except (RpcTimeout, RpcRejected):
                continue
            try:
                yield from self.rpc.call(
                    target, "replica.install",
                    {"vnode": vnode_id, "rows": result["rows"],
                     "lww": result.get("lww", {}),
                     "dvv_rows": result.get("dvv_rows", {})},
                    timeout=self.config.request_timeout * 4)
            except (RpcTimeout, RpcRejected):
                continue
            return

    def reconcile_vnode(self, vnode_id: int):
        """Digest-reconcile one vnode with its other replicas.

        Pulls versions peers dominate us on, pushes versions we
        dominate them on (newest-per-source merge both ways).  Shared
        by the anti-entropy manager's periodic passes and the active
        detector's post-recovery data repair.  Returns
        ``(keys_pulled, keys_pushed, failed_peers)`` — ``failed_peers``
        counts replicas whose state could not be (fully) pulled, so
        callers needing a *complete* inbound sync (vnode handoff) can
        tell success from a round of swallowed timeouts.
        """
        from .antientropy import digest_diff, dvv_digest_diff
        replicas = self.cache.ring.replicas_for(vnode_id,
                                                self.config.replicas)
        peers = [r for r in replicas if r != self.name]
        mine = self.vnode_digest(vnode_id)
        mine_dvv = self.vnode_dvv_digest(vnode_id)
        pulled = 0
        pushed = 0
        failed_peers = 0
        for peer in peers:
            try:
                reply = yield from self.rpc.call(
                    peer, "replica.digest", {"vnode": vnode_id},
                    timeout=self.config.request_timeout)
            except (RpcTimeout, RpcRejected):
                failed_peers += 1
                continue
            theirs = reply["digest"]
            pull, push = digest_diff(mine, theirs)
            dvv_pull, dvv_push = dvv_digest_diff(mine_dvv,
                                                 reply.get("dvv", {}))
            if pull or dvv_pull:
                try:
                    # The vnode key is diagnostic context (taps key
                    # repair traffic by vnode); the handler works off
                    # the explicit key lists.  Dropping it would shrink
                    # the wire size and shift the latency model,
                    # breaking golden digests.
                    # repro: allow[rpc-payload-mismatch]
                    fetched = yield from self.rpc.call(
                        peer, "replica.fetch",
                        {"vnode": vnode_id, "keys": pull,
                         "dvv_keys": dvv_pull},
                        timeout=self.config.request_timeout * 2)
                except (RpcTimeout, RpcRejected):
                    fetched = None
                    failed_peers += 1
                if fetched is not None:
                    flags = fetched.get("lww", {})
                    for key, blob in fetched["rows"].items():
                        self._merge_durably(key, unwire_elements(blob),
                                            lww=flags.get(key))
                        pulled += 1
                    for key in sorted(fetched.get("dvv_rows") or {}):
                        if self.store.causal_merge(
                                key, unwire_dvv_row(
                                    fetched["dvv_rows"][key])):
                            pulled += 1
                        self._index_key(key)
                    mine = self.vnode_digest(vnode_id)
                    mine_dvv = self.vnode_dvv_digest(vnode_id)
            if push or dvv_push:
                rows = {}
                for key in push:
                    elements = self.store.read_all(key)
                    if elements:
                        rows[key] = wire_elements(elements)
                dvv_rows = {}
                for key in dvv_push:
                    row = self.store.dvv_rows.get(key)
                    if row is not None:
                        dvv_rows[key] = wire_dvv_row(row)
                if rows or dvv_rows:
                    try:
                        yield from self.rpc.call(
                            peer, "replica.install",
                            {"vnode": vnode_id, "rows": rows,
                             "lww": self._lww_flags(rows),
                             "dvv_rows": dvv_rows},
                            timeout=self.config.request_timeout * 2)
                        pushed += len(rows) + len(dvv_rows)
                    except (RpcTimeout, RpcRejected):
                        continue
        return pulled, pushed, failed_peers

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def coordinated_writes(self) -> int:
        """Writes this node coordinated (delegated counter)."""
        return self.coordinator.coordinated_writes

    @property
    def coordinated_reads(self) -> int:
        """Reads this node coordinated (delegated counter)."""
        return self.coordinator.coordinated_reads

    @property
    def coordinated_deletes(self) -> int:
        """Deletes this node coordinated (delegated counter)."""
        return self.coordinator.coordinated_deletes

    def stats(self) -> dict:
        """Per-node counters for the harness."""
        return {
            "name": self.name,
            "running": self.running,
            "keys": len(self.store),
            "vnodes": len(self.cache.ring.vnodes_of(self.name)),
            "coordinated_writes": self.coordinated_writes,
            "coordinated_reads": self.coordinated_reads,
            "coordinated_deletes": self.coordinated_deletes,
            "coordinated_multi_writes": self.coordinator.coordinated_multi_writes,
            "coordinated_multi_reads": self.coordinator.coordinated_multi_reads,
            "coordinated_multi_deletes": self.coordinator.coordinated_multi_deletes,
            "coalesced_reads": self.coordinator.coalesced_reads,
            "coordinated_causal_writes":
                self.coordinator.coordinated_causal_writes,
            "coordinated_causal_reads":
                self.coordinator.coordinated_causal_reads,
            "replica_writes": self.replica_writes,
            "replica_reads": self.replica_reads,
            "investigations": self.investigations,
            "recoveries": self.recoveries,
            "repairs": self.repairs,
        }
