"""Quorum coordination: the parallel N-replica fan-out of §III.C/F.

Sedna is "a zero-hop DHT that each node caches enough routing
information locally to route a request to the appropriate node
directly" (§VII).  The same coordination logic therefore runs in two
places:

* inside every :class:`~repro.core.node.SednaNode`, serving requests
  from thin clients that route to any server (§III.A); and
* inside the *smart* :class:`~repro.core.client.SednaClient`, which
  caches the mapping itself and talks straight to the replicas — the
  configuration the paper's load-test programs use ("Sedna writes every
  key value pair three times into different real nodes parallel",
  §VI.A.1).

:class:`QuorumCoordinator` encapsulates it once for both.

Throughput machinery (docs/protocols.md §12):

* every fan-out waits on a callback-counted
  :class:`~repro.net.rpc.QuorumWait` instead of re-scanning pending
  calls on each wakeup;
* ``coordinate_multi_read`` / ``coordinate_multi_write`` /
  ``coordinate_multi_delete`` group keys by virtual node and issue
  **one** ``replica.mread``/``mwrite``/``mdelete`` RPC per replica per
  vnode-group, with the per-vnode quorums running concurrently
  (Keyspace/Spinnaker-style batching: the per-message and per-quorum
  overhead is amortized over the whole group);
* concurrent single-key reads of the same key coalesce onto shared
  fan-out rounds (thundering-herd protection).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..net.rpc import QuorumWait, RpcError, RpcNode, RpcRejected, RpcTimeout
from ..net.simulator import Event, Simulator
from ..storage.versioned import (DvvRow, ValueElement, VersionedStore,
                                 WriteOutcome, unwire_dvv_row, wire_context,
                                 wire_dvv_row)
from .cache import MappingCache
from .config import SednaConfig

__all__ = ["QuorumCoordinator", "wire_elements", "unwire_elements"]


def wire_elements(elements: list[ValueElement]) -> list[tuple]:
    """Serialize value-list elements for the simulated wire."""
    return [(e.source, e.timestamp, e.value) for e in elements]


def unwire_elements(blob: list[tuple]) -> list[ValueElement]:
    """Inverse of :func:`wire_elements`."""
    return [ValueElement(source, ts, value) for source, ts, value in blob]


class _InflightRead:
    """One in-flight read round in the coalescing map.

    ``done`` carries the round's result to followers; ``started`` is
    the simulated instant the round's fan-out was issued — the
    freshness-safety watermark followers compare their own invocation
    time against.
    """

    __slots__ = ("done", "started")

    def __init__(self, done: Event, started: float):
        self.done = done
        self.started = started


class QuorumCoordinator:
    """Runs quorum reads/writes against the replica plane.

    Parameters
    ----------
    sim, rpc, cache, config:
        The substrate handles.
    local_name / local_dispatch:
        When the coordinator lives on a storage node, calls to itself
        short-circuit the network through ``local_dispatch(method,
        args) -> Event``.
    on_suspect:
        Callback ``(replica_name, vnode_id)`` fired when a replica
        refuses or stays silent — nodes hook their lazy-recovery
        investigation here (§III.C).
    """

    def __init__(self, sim: Simulator, rpc: RpcNode, cache: MappingCache,
                 config: SednaConfig,
                 local_name: Optional[str] = None,
                 local_dispatch: Optional[Callable[[str, Any], Event]] = None,
                 on_suspect: Optional[Callable[[str, int], None]] = None,
                 obs=None):
        self.sim = sim
        self.rpc = rpc
        self.cache = cache
        self.config = config
        self.local_name = local_name
        self.local_dispatch = local_dispatch
        self.on_suspect = on_suspect
        # In-flight read rounds, keyed by (key, mode), for coalescing.
        self._inflight_reads: dict[tuple[str, str], _InflightRead] = {}
        # Stats.
        self.coordinated_writes = 0
        self.coordinated_reads = 0
        self.coordinated_deletes = 0
        self.coordinated_multi_writes = 0
        self.coordinated_multi_reads = 0
        self.coordinated_multi_deletes = 0
        self.coalesced_reads = 0
        self.read_repairs = 0
        self.coordinated_causal_writes = 0
        self.coordinated_causal_reads = 0
        # Observability: fan-out depth / laggard / repair series plus
        # coordinator-level spans (both no-ops without an obs bundle).
        self._tracer = obs.tracer if obs is not None else None
        metrics = obs.metrics if obs is not None else None
        if metrics is None:
            from ..obs.metrics import DISABLED
            metrics = DISABLED
        owner = local_name or rpc.name
        self._m_fanout = metrics.histogram(
            "quorum.fanout", node=owner,
            buckets=(1.0, 2.0, 3.0, 5.0, 8.0, 13.0))
        self._m_laggards = metrics.counter("quorum.laggards", node=owner)
        self._m_suspects = metrics.counter("quorum.suspects", node=owner)
        self._m_read_repairs = metrics.counter(
            "quorum.read_repairs", node=owner)
        self._m_coalesced = metrics.counter(
            "quorum.coalesced_reads", node=owner)
        # End-to-end coordinator latency (the number the rebalance bench
        # reports as p99): observed per request at quorum settle.
        _lat_buckets = (0.0005, 0.001, 0.002, 0.005, 0.01, 0.05, 0.2)
        self._m_write_lat = metrics.histogram(
            "coord.write.latency", node=owner, buckets=_lat_buckets)
        self._m_read_lat = metrics.histogram(
            "coord.read.latency", node=owner, buckets=_lat_buckets)

    def _span(self, name: str):
        """Open a coordinator span (None without an active trace)."""
        if self._tracer is None:
            return None
        return self._tracer.begin(name, node=self.local_name or self.rpc.name)

    def _span_end(self, span, **tags) -> None:
        if self._tracer is not None:
            self._tracer.finish(span, **tags)

    # -- plumbing -----------------------------------------------------------
    def _suspect(self, name: str, vnode_id: int) -> None:
        self._m_suspects.inc()
        if self.on_suspect is not None:
            self.on_suspect(name, vnode_id)

    def _replica_call(self, replica: str, method: str, args: Any) -> Event:
        if replica == self.local_name and self.local_dispatch is not None:
            return self.local_dispatch(method, args)
        return self.rpc.call_async(replica, method, args)

    def _post_quorum_watch(self, calls: list[tuple[str, Event]],
                           vnode_id: int, already_ok: set[str]) -> None:
        """Keep watching the laggards after the quorum returned.

        Late refusals trigger suspicion, and so does *silence*: a dead
        replica never answers, so each outstanding call gets a deadline
        (§III.C: "according to the 'timeout', 'refuse' response ...
        Sedna service will determine whether the servers have failed").

        Called exactly once per primary fan-out, so it doubles as the
        sampling point for the fan-out-depth histogram and the laggard
        counter (replicas still silent when the quorum settled).
        """
        self._m_fanout.observe(float(len(calls)))
        self._m_laggards.inc(sum(1 for name, ev in calls
                                 if name not in already_ok
                                 and not ev.triggered))
        for name, ev in calls:
            if name in already_ok:
                continue

            def check(done: Event, name=name) -> None:
                if not done.ok:
                    self._suspect(name, vnode_id)

            if ev.callbacks is None:
                check(ev)
                continue
            ev.callbacks.append(check)

            def silence(name=name, ev=ev) -> None:
                if not ev.triggered:
                    self._suspect(name, vnode_id)

            self.sim.schedule_callback(self.config.request_timeout, silence)

    def _replica_set(self, key: str):
        """Replica set from the cache, with one invalidation retry."""
        vnode_id, replicas = self.cache.replicas_for_key(key)
        if len(replicas) < self.config.replicas:
            yield from self.cache.invalidate(vnode_id)
            vnode_id, replicas = self.cache.replicas_for_key(key)
        return vnode_id, replicas

    def _warm_wait_limit(self) -> int:
        """How many request_timeout periods a warming replica is worth
        waiting out (two lease periods: the stale-cache window)."""
        return int(self.config.lease_base * 2
                   / self.config.request_timeout) + 2

    # -- single-key operations ----------------------------------------------
    def coordinate_write(self, args: Any):
        """Parallel N-way replica write; returns at W acks (§III.C/F)."""
        self.coordinated_writes += 1
        span = self._span("coord.write")
        started = self.sim.now
        cfg = self.config
        key = args["key"]
        vnode_id, replicas = yield from self._replica_set(key)
        if len(replicas) < cfg.write_quorum:
            raise RpcRejected("not-enough-replicas")
        payload = {"vnode": vnode_id, "key": key, "value": args["value"],
                   "ts": args["ts"], "source": args["source"],
                   "mode": args["mode"]}
        calls = [(r, self._replica_call(r, "replica.write", payload))
                 for r in replicas]
        wait = QuorumWait(self.sim, calls, cfg.write_quorum,
                          cfg.request_timeout)
        try:
            oks, fails = yield from wait.wait()
        except (RpcTimeout, RpcError) as err:
            self._post_quorum_watch(calls, vnode_id, set())
            if not args.get("_retried"):
                # A stale mapping can fail a quorum with 'not-owner'
                # refusals: invalidate and retry once (§III.E).
                yield from self.cache.invalidate(vnode_id)
                retry = dict(args)
                retry["_retried"] = True
                result = yield from self.coordinate_write(retry)
                self._span_end(span, status="retried")
                return result
            self._span_end(span, status="failed")
            raise RpcRejected(f"write-quorum-failed:{err}")
        statuses = [value["status"] for _n, value in oks]
        outcome = (WriteOutcome.OK if WriteOutcome.OK in statuses
                   else WriteOutcome.OUTDATED)
        self._post_quorum_watch(calls, vnode_id, {n for n, _v in oks})
        for name, _exc in fails:
            self._suspect(name, vnode_id)
        self._span_end(span, status=outcome, acks=len(oks))
        self._m_write_lat.observe(self.sim.now - started)
        return {"status": outcome, "vnode": vnode_id,
                "acks": [name for name, _v in oks]}

    def coordinate_read(self, args: Any):
        """Quorum read entry point; coalesces concurrent readers.

        Concurrent reads of the same ``(key, mode)`` share fan-out
        rounds instead of each paying its own N-way RPC storm
        (thundering-herd protection).  Sharing is *freshness-safe*: a
        follower only adopts a result whose fan-out started at or after
        the follower's own invocation — every write acked before the
        follower invoked is then visible in the shared result through
        the R+W>N overlap.  Followers that arrive while an older round
        is in flight wait it out and share the *next* round, so a herd
        of K concurrent readers costs at most two fan-outs.  When a
        round fails, its followers detach safely: each loops to either
        share a round a sibling just started or lead its own.
        """
        key = args["key"]
        mode = args.get("mode", "latest")
        token = (key, mode)
        invoked = self.sim.now
        while True:
            entry = self._inflight_reads.get(token)
            if entry is None:
                break
            self.coalesced_reads += 1
            self._m_coalesced.inc()
            try:
                shared = yield entry.done
            except RpcError:
                shared = None  # the round's leader failed: detach
            if shared is not None and entry.started >= invoked:
                self._m_read_lat.observe(self.sim.now - invoked)
                return dict(shared)
            # The settled round predates us (its replica responses may
            # miss writes acked before we invoked) or failed: loop.
        entry = _InflightRead(self.sim.event(), self.sim.now)
        # Observable, never mandatory: every follower may have detached
        # by the time the round settles.
        entry.done.callbacks.append(lambda _e: None)
        self._inflight_reads[token] = entry
        span = self._span("coord.read")
        try:
            result = yield from self._read_once(args)
        except BaseException as err:
            self._span_end(span, status="failed")
            self._inflight_reads.pop(token, None)
            if isinstance(err, Exception) and not entry.done.triggered:
                entry.done.fail(err)
            raise
        self._span_end(span, status="ok",
                       found=bool(result.get("found",
                                             bool(result.get("elements")))))
        self._inflight_reads.pop(token, None)
        if not entry.done.triggered:
            entry.done.succeed(result)
        self._m_read_lat.observe(self.sim.now - invoked)
        return result

    def _read_once(self, args: Any):
        """One read round: parallel fan-out waiting for R agreeing copies.

        §III.C: "requests all the corresponding real nodes to get data
        with timestamp, then checks for R equality."  When fewer than R
        copies agree on the freshest version, the coordinator pushes
        the merged freshest elements to the stale replicas (read
        repair) before answering.
        """
        self.coordinated_reads += 1
        cfg = self.config
        key = args["key"]
        mode = args.get("mode", "latest")
        vnode_id, replicas = yield from self._replica_set(key)
        if len(replicas) < cfg.read_quorum:
            raise RpcRejected("not-enough-replicas")
        payload = {"vnode": vnode_id, "key": key}
        calls = [(r, self._replica_call(r, "replica.read", payload))
                 for r in replicas]
        wait = QuorumWait(self.sim, calls, cfg.read_quorum,
                          cfg.request_timeout)
        try:
            oks, fails = yield from wait.wait()
        except (RpcTimeout, RpcError) as err:
            self._post_quorum_watch(calls, vnode_id, set())
            warming = any(isinstance(exc, RpcRejected)
                          and "warming" in str(exc)
                          for _n, exc in wait.fails)
            if warming:
                # A freshly claimed replica refuses reads until its
                # handoff catch-up finishes; that is transient, so wait
                # it out instead of failing the read.
                waits = args.get("_warm_waits", 0)
                if waits < self._warm_wait_limit():
                    yield self.sim.timeout(cfg.request_timeout)
                    retry = dict(args)
                    retry["_warm_waits"] = waits + 1
                    result = yield from self._read_once(retry)
                    return result
            if not args.get("_retried"):
                yield from self.cache.invalidate(vnode_id)
                retry = dict(args)
                retry["_retried"] = True
                result = yield from self._read_once(retry)
                return result
            raise RpcRejected(f"read-quorum-failed:{err}")
        for name, _exc in fails:
            self._suspect(name, vnode_id)
        # Merge responses: newest element per source under the full
        # (timestamp, source) order.  Each reply carries the row's
        # write-mode flag so LWW rows collapse here too — the repair
        # payload must not re-inflate a collapsed row on the replicas.
        merged = VersionedStore()
        responses: dict[str, list[ValueElement]] = {}
        for name, value in oks:
            elements = unwire_elements(value["elements"])
            responses[name] = elements
            merged.merge_elements(key, elements, lww=value.get("lww"))
        merged_elements = merged.read_all(key)
        latest = merged.read_latest(key)

        if latest is None and len(responses) < len(calls):
            # An apparent miss met by the first R (empty) replies can be
            # a membership-churn artifact: a recent write may live only
            # on a replica that has not answered yet (its quorum-set
            # overlap shrank while the mapping moved).  Cheap insurance:
            # wait out the remaining replies before concluding.
            pending = [(name, ev) for name, ev in calls
                       if name not in responses]
            laggards = QuorumWait(self.sim, pending, len(pending),
                                  cfg.request_timeout, fail_fast=False)
            try:
                yield from laggards.wait()
            except (RpcTimeout, RpcError):
                pass
            for name, value in laggards.oks:
                elements = unwire_elements(value["elements"])
                responses[name] = elements
                merged.merge_elements(key, elements, lww=value.get("lww"))
            merged_elements = merged.read_all(key)
            latest = merged.read_latest(key)

        def agree_count() -> int:
            if latest is None:
                return sum(1 for els in responses.values() if not els)
            return sum(1 for els in responses.values()
                       if any(e.source == latest.source
                              and e.timestamp == latest.timestamp
                              for e in els))

        stale = [name for name, els in responses.items()
                 if latest is not None
                 and not any(e.source == latest.source
                             and e.timestamp == latest.timestamp
                             for e in els)]
        if stale and merged_elements:
            # Read repair: push the merged freshest elements to every
            # responder that lacked them.  The wait is only as long as
            # R-equality requires (§III.C); extra repairs are
            # fire-and-forget so divergent third replicas converge on
            # the next read instead of lingering stale.
            repair_payload = {"vnode": vnode_id, "key": key,
                              "elements": wire_elements(merged_elements),
                              "lww": merged.row(key).lww}
            repair_calls = [(r, self._replica_call(r, "replica.repair",
                                                   repair_payload))
                            for r in stale]
            self.read_repairs += 1
            self._m_read_repairs.inc()
            needed = cfg.read_quorum - agree_count()
            if needed > 0:
                repair_wait = QuorumWait(self.sim, repair_calls,
                                         min(needed, len(repair_calls)),
                                         cfg.request_timeout)
                try:
                    yield from repair_wait.wait()
                except (RpcTimeout, RpcError) as err:
                    raise RpcRejected(f"read-repair-failed:{err}")
        self._post_quorum_watch(calls, vnode_id, {n for n, _v in oks})
        if latest is not None and merged_elements:
            # Laggards that answer *after* the quorum may still be stale
            # (e.g. a freshly recovered replica with an empty row): check
            # their late responses and repair fire-and-forget.
            answered = set(responses)
            repair_payload = {"vnode": vnode_id, "key": key,
                              "elements": wire_elements(merged_elements),
                              "lww": merged.row(key).lww}

            def late_check(done, name):
                if not done.ok:
                    return
                els = unwire_elements(done.value["elements"])
                if not any(e.source == latest.source
                           and e.timestamp == latest.timestamp
                           for e in els):
                    self._replica_call(name, "replica.repair",
                                       repair_payload)

            for name, ev in calls:
                if name in answered:
                    continue
                if ev.callbacks is None:
                    late_check(ev, name)
                else:
                    ev.callbacks.append(
                        lambda done, name=name: late_check(done, name))
        responders = list(responses)
        if mode == "all":
            return {"elements": wire_elements(merged_elements),
                    "responders": responders}
        if latest is None:
            return {"found": False, "responders": responders}
        return {"found": True, "value": latest.value,
                "ts": latest.timestamp, "source": latest.source,
                "responders": responders}

    def coordinate_delete(self, args: Any):
        """Quorum delete (not in the paper's API; completes the CRUD).

        Mirrors :meth:`coordinate_write` end to end: replica-set sanity
        check, invalidate-and-retry on a stale-mapping quorum failure,
        laggard watching and suspicion — deletes issued right after
        churn must trigger the same lazy recovery as writes (§III.C/E).
        """
        self.coordinated_deletes += 1
        span = self._span("coord.delete")
        cfg = self.config
        key = args["key"]
        vnode_id, replicas = yield from self._replica_set(key)
        if len(replicas) < cfg.write_quorum:
            raise RpcRejected("not-enough-replicas")
        payload = {"vnode": vnode_id, "key": key}
        calls = [(r, self._replica_call(r, "replica.delete", payload))
                 for r in replicas]
        wait = QuorumWait(self.sim, calls, cfg.write_quorum,
                          cfg.request_timeout)
        try:
            oks, fails = yield from wait.wait()
        except (RpcTimeout, RpcError) as err:
            self._post_quorum_watch(calls, vnode_id, set())
            if not args.get("_retried"):
                yield from self.cache.invalidate(vnode_id)
                retry = dict(args)
                retry["_retried"] = True
                result = yield from self.coordinate_delete(retry)
                self._span_end(span, status="retried")
                return result
            self._span_end(span, status="failed")
            raise RpcRejected(f"delete-quorum-failed:{err}")
        self._post_quorum_watch(calls, vnode_id, {n for n, _v in oks})
        for name, _exc in fails:
            self._suspect(name, vnode_id)
        self._span_end(span, status="ok", acks=len(oks))
        return {"status": "ok", "vnode": vnode_id,
                "acks": [name for name, _v in oks]}

    # -- causal mode (DVV) ----------------------------------------------------
    def coordinate_causal_write(self, args: Any):
        """Causal (DVV) quorum write: mint a dot, replicate the row.

        Phase 1 picks the first reachable replica as the *dot-minting*
        node (``replica.cwrite``): the client's causal context discards
        the siblings it has seen and the write gets a fresh
        ``(replica, counter)`` dot.  Phase 2 replicates the resulting
        row to the remaining replicas (``replica.cmerge``) until W
        total acks are in.  The reply carries the dot and the row's
        version vector — the context for the client's next write.
        """
        self.coordinated_causal_writes += 1
        span = self._span("coord.cwrite")
        started = self.sim.now
        cfg = self.config
        key = args["key"]
        vnode_id, replicas = yield from self._replica_set(key)
        if len(replicas) < cfg.write_quorum:
            raise RpcRejected("not-enough-replicas")
        payload = {"vnode": vnode_id, "key": key, "value": args["value"],
                   "ts": args["ts"], "source": args["source"],
                   "ctx": list(args.get("ctx") or [])}
        minter = None
        minted = None
        mint_fail = None
        for candidate in replicas:
            call = [(candidate, self._replica_call(candidate,
                                                   "replica.cwrite",
                                                   payload))]
            wait = QuorumWait(self.sim, call, 1, cfg.request_timeout)
            try:
                oks, _fails = yield from wait.wait()
            except (RpcTimeout, RpcError) as err:
                mint_fail = err
                self._suspect(candidate, vnode_id)
                continue
            minter, minted = oks[0]
            break
        if minter is None:
            if not args.get("_retried"):
                yield from self.cache.invalidate(vnode_id)
                retry = dict(args)
                retry["_retried"] = True
                result = yield from self.coordinate_causal_write(retry)
                self._span_end(span, status="retried")
                return result
            self._span_end(span, status="failed")
            raise RpcRejected(f"causal-write-failed:{mint_fail}")
        row_wire = minted["row"]
        others = [r for r in replicas if r != minter]
        calls = [(r, self._replica_call(r, "replica.cmerge",
                                        {"vnode": vnode_id, "key": key,
                                         "row": row_wire}))
                 for r in others]
        acks = [minter]
        needed = cfg.write_quorum - 1
        if needed > 0 and calls:
            wait = QuorumWait(self.sim, calls, min(needed, len(calls)),
                              cfg.request_timeout)
            try:
                oks, fails = yield from wait.wait()
            except (RpcTimeout, RpcError) as err:
                self._post_quorum_watch(calls, vnode_id, set())
                if not args.get("_retried"):
                    # Stale mapping: invalidate and retry once.  The
                    # first dot may survive on the minter; the retry
                    # mints a fresh sibling, which the client's next
                    # context-carrying write supersedes — safe, never
                    # silently lost.
                    yield from self.cache.invalidate(vnode_id)
                    retry = dict(args)
                    retry["_retried"] = True
                    result = yield from self.coordinate_causal_write(retry)
                    self._span_end(span, status="retried")
                    return result
                self._span_end(span, status="failed")
                raise RpcRejected(f"causal-replicate-failed:{err}")
            acks.extend(name for name, _v in oks)
            self._post_quorum_watch(calls, vnode_id, {n for n, _v in oks})
            for name, _exc in fails:
                self._suspect(name, vnode_id)
        self._span_end(span, status="ok", acks=len(acks))
        self._m_write_lat.observe(self.sim.now - started)
        # The ack context is the minting replica's row vv, which may
        # cover concurrent siblings the client never read — so the ack
        # also carries those siblings' values (Riak's return_body).  A
        # follow-up write with this context supersedes exactly the
        # versions listed here: an *informed* overwrite, never a
        # silent loss.
        return {"status": "ok", "vnode": vnode_id, "dot": minted["dot"],
                "context": row_wire["vv"],
                "siblings": [[s, ts, v] for _r, _c, s, ts, v
                             in row_wire["siblings"]],
                "acks": acks}

    def coordinate_causal_read(self, args: Any):
        """Causal (DVV) quorum read: merge R replicas' rows server-side.

        The merged row's siblings are every concurrent version still
        alive; its version vector is the causal context returned to the
        client.  Replicas whose copy differs from the merge get the
        merged row pushed back (``replica.cmerge`` read repair),
        waiting only for as many acks as R-equality requires.
        """
        self.coordinated_causal_reads += 1
        span = self._span("coord.cread")
        started = self.sim.now
        cfg = self.config
        key = args["key"]
        vnode_id, replicas = yield from self._replica_set(key)
        if len(replicas) < cfg.read_quorum:
            raise RpcRejected("not-enough-replicas")
        payload = {"vnode": vnode_id, "key": key}
        calls = [(r, self._replica_call(r, "replica.cread", payload))
                 for r in replicas]
        wait = QuorumWait(self.sim, calls, cfg.read_quorum,
                          cfg.request_timeout)
        try:
            oks, fails = yield from wait.wait()
        except (RpcTimeout, RpcError) as err:
            self._post_quorum_watch(calls, vnode_id, set())
            warming = any(isinstance(exc, RpcRejected)
                          and "warming" in str(exc)
                          for _n, exc in wait.fails)
            if warming:
                waits = args.get("_warm_waits", 0)
                if waits < self._warm_wait_limit():
                    yield self.sim.timeout(cfg.request_timeout)
                    retry = dict(args)
                    retry["_warm_waits"] = waits + 1
                    result = yield from self.coordinate_causal_read(retry)
                    self._span_end(span, status="warm-retried")
                    return result
            if not args.get("_retried"):
                yield from self.cache.invalidate(vnode_id)
                retry = dict(args)
                retry["_retried"] = True
                result = yield from self.coordinate_causal_read(retry)
                self._span_end(span, status="retried")
                return result
            self._span_end(span, status="failed")
            raise RpcRejected(f"causal-read-failed:{err}")
        for name, _exc in fails:
            self._suspect(name, vnode_id)
        merged = DvvRow()
        shapes: dict[str, tuple] = {}
        for name, value in oks:
            if value["row"] is None:
                shapes[name] = DvvRow().shape()
                continue
            row = unwire_dvv_row(value["row"])
            shapes[name] = row.shape()
            merged.merge(row)
        agree = sum(1 for shape in shapes.values()
                    if shape == merged.shape())
        stale = [name for name in sorted(shapes)
                 if shapes[name] != merged.shape()]
        if stale and (merged.siblings or merged.vv):
            row_wire = wire_dvv_row(merged)
            repair_calls = [(r, self._replica_call(
                r, "replica.cmerge",
                {"vnode": vnode_id, "key": key, "row": row_wire}))
                for r in stale]
            self.read_repairs += 1
            self._m_read_repairs.inc()
            needed = cfg.read_quorum - agree
            if needed > 0:
                repair_wait = QuorumWait(self.sim, repair_calls,
                                         min(needed, len(repair_calls)),
                                         cfg.request_timeout)
                try:
                    yield from repair_wait.wait()
                except (RpcTimeout, RpcError) as err:
                    self._span_end(span, status="failed")
                    raise RpcRejected(f"causal-repair-failed:{err}")
        self._post_quorum_watch(calls, vnode_id, {n for n, _v in oks})
        self._span_end(span, status="ok", found=bool(merged.siblings))
        self._m_read_lat.observe(self.sim.now - started)
        return {"found": bool(merged.siblings),
                "siblings": [[s.source, s.timestamp, s.value]
                             for s in merged.siblings],
                "context": wire_context(merged.vv),
                "responders": sorted(shapes)}

    # -- batched operations ---------------------------------------------------
    def _group_by_vnode(self, keys):
        """Group keys by their virtual node via the mapping cache.

        Returns ``(groups, replica_sets)`` where ``groups`` maps
        vnode_id to the keys hashing there and ``replica_sets`` the
        corresponding cached replica lists.
        """
        groups: dict[int, list] = {}
        replica_sets: dict[int, list[str]] = {}
        for key in keys:
            vnode_id, replicas = yield from self._replica_set(key)
            groups.setdefault(vnode_id, []).append(key)
            replica_sets[vnode_id] = replicas
        return groups, replica_sets

    def coordinate_multi_write(self, args: Any):
        """Batched quorum write: one ``replica.mwrite`` per replica per
        vnode-group, per-vnode quorums in parallel, per-key statuses.

        ``args["entries"]`` is a list of the single-write argument
        dicts (key/value/ts/source/mode).  A group whose quorum fails
        on a stale mapping is invalidated and retried alone — entries
        of groups that already met their quorum are **not** re-sent.
        """
        self.coordinated_multi_writes += 1
        span = self._span("coord.mwrite")
        entries = args["entries"]
        groups, replica_sets = yield from self._group_by_vnode(
            [e["key"] for e in entries])
        by_key = {}
        for entry in entries:
            by_key.setdefault(entry["key"], []).append(entry)
        results: dict[str, Any] = {}
        procs = [self.sim.process(
            self._mwrite_group(
                vnode_id,
                [e for k in groups[vnode_id] for e in by_key[k]],
                replica_sets[vnode_id], results),
            name=f"mwrite-v{vnode_id}")
            for vnode_id in sorted(groups)]
        for proc in procs:
            yield proc
        self._span_end(span, entries=len(entries), groups=len(groups))
        return {"results": results}

    def _mwrite_group(self, vnode_id: int, entries: list[dict],
                      replicas: list[str], out: dict, attempt: int = 0):
        """One vnode-group of a batched write; fills ``out`` per key."""
        cfg = self.config
        retry_key = entries[0]["key"]
        if len(replicas) < cfg.write_quorum:
            if attempt == 0:
                yield from self.cache.invalidate(vnode_id)
                _v, fresh = self.cache.replicas_for_key(retry_key)
                yield from self._mwrite_group(vnode_id, entries, fresh,
                                              out, attempt=1)
                return
            for e in entries:
                out[e["key"]] = {"status": WriteOutcome.FAILURE, "acks": []}
            return
        payload = {"vnode": vnode_id,
                   "entries": [{"key": e["key"], "value": e["value"],
                                "ts": e["ts"], "source": e["source"],
                                "mode": e["mode"]} for e in entries]}
        calls = [(r, self._replica_call(r, "replica.mwrite", payload))
                 for r in replicas]
        wait = QuorumWait(self.sim, calls, cfg.write_quorum,
                          cfg.request_timeout)
        try:
            oks, fails = yield from wait.wait()
        except (RpcTimeout, RpcError) as err:
            self._post_quorum_watch(calls, vnode_id, set())
            if attempt == 0:
                # Stale mapping: invalidate and retry this group only —
                # already-acked groups are never re-applied.
                yield from self.cache.invalidate(vnode_id)
                _v, fresh = self.cache.replicas_for_key(retry_key)
                yield from self._mwrite_group(vnode_id, entries, fresh,
                                              out, attempt=1)
                return
            for e in entries:
                out[e["key"]] = {"status": WriteOutcome.FAILURE, "acks": [],
                                 "error": f"write-quorum-failed:{err}"}
            return
        for name, _exc in fails:
            self._suspect(name, vnode_id)
        self._post_quorum_watch(calls, vnode_id, {n for n, _v in oks})
        acks = [name for name, _v in oks]
        for e in entries:
            key = e["key"]
            statuses = [value["statuses"].get(key) for _n, value in oks]
            outcome = (WriteOutcome.OK if WriteOutcome.OK in statuses
                       else WriteOutcome.OUTDATED)
            out[key] = {"status": outcome, "acks": acks}

    def coordinate_multi_read(self, args: Any):
        """Batched quorum read: one ``replica.mread`` per replica per
        vnode-group, per-vnode quorums in parallel, per-key results.

        A 64-key batch spanning 3 vnodes with N=3 costs at most 9
        replica RPCs instead of 192 — the headline amortization of the
        batch pipeline.
        """
        self.coordinated_multi_reads += 1
        span = self._span("coord.mread")
        mode = args.get("mode", "latest")
        keys = list(dict.fromkeys(args["keys"]))
        groups, replica_sets = yield from self._group_by_vnode(keys)
        results: dict[str, Any] = {}
        procs = [self.sim.process(
            self._mread_group(vnode_id, groups[vnode_id],
                              replica_sets[vnode_id], mode, results),
            name=f"mread-v{vnode_id}")
            for vnode_id in sorted(groups)]
        for proc in procs:
            yield proc
        self._span_end(span, keys=len(keys), groups=len(groups))
        return {"results": results}

    def _mread_group(self, vnode_id: int, keys: list[str],
                     replicas: list[str], mode: str, out: dict,
                     attempt: int = 0, warm_waits: int = 0):
        """One vnode-group of a batched read; fills ``out`` per key.

        Preserves every single-read semantic per key: R-equality with
        read repair (batched per stale replica through
        ``replica.install``), the churn-insurance laggard wait on an
        apparent miss, warming-retry, stale-mapping retry, and laggard
        watching/suspicion.
        """
        cfg = self.config

        def fail_group(reason: str) -> None:
            for k in keys:
                out[k] = {"status": "failure", "found": False,
                          "error": reason, "responders": []}

        if len(replicas) < cfg.read_quorum:
            if attempt == 0:
                yield from self.cache.invalidate(vnode_id)
                _v, fresh = self.cache.replicas_for_key(keys[0])
                yield from self._mread_group(vnode_id, keys, fresh, mode,
                                             out, attempt=1,
                                             warm_waits=warm_waits)
                return
            fail_group("not-enough-replicas")
            return
        payload = {"vnode": vnode_id, "keys": list(keys)}
        calls = [(r, self._replica_call(r, "replica.mread", payload))
                 for r in replicas]
        wait = QuorumWait(self.sim, calls, cfg.read_quorum,
                          cfg.request_timeout)
        try:
            oks, fails = yield from wait.wait()
        except (RpcTimeout, RpcError) as err:
            self._post_quorum_watch(calls, vnode_id, set())
            warming = any(isinstance(exc, RpcRejected)
                          and "warming" in str(exc)
                          for _n, exc in wait.fails)
            if warming and warm_waits < self._warm_wait_limit():
                yield self.sim.timeout(cfg.request_timeout)
                _v, fresh = self.cache.replicas_for_key(keys[0])
                yield from self._mread_group(vnode_id, keys, fresh, mode,
                                             out, attempt=attempt,
                                             warm_waits=warm_waits + 1)
                return
            if attempt == 0:
                yield from self.cache.invalidate(vnode_id)
                _v, fresh = self.cache.replicas_for_key(keys[0])
                yield from self._mread_group(vnode_id, keys, fresh, mode,
                                             out, attempt=1,
                                             warm_waits=warm_waits)
                return
            fail_group(f"read-quorum-failed:{err}")
            return
        for name, _exc in fails:
            self._suspect(name, vnode_id)
        merged = VersionedStore()
        responses: dict[str, dict[str, list[ValueElement]]] = {}

        def absorb(name: str, reply: dict) -> None:
            rows = {k: unwire_elements(blob)
                    for k, blob in reply["rows"].items()}
            flags = reply.get("lww", {})
            responses[name] = rows
            for k in keys:
                merged.merge_elements(k, rows.get(k, []),
                                      lww=flags.get(k))

        for name, value in oks:
            absorb(name, value)
        if (len(responses) < len(calls)
                and any(merged.read_latest(k) is None for k in keys)):
            # Churn insurance, as in the single-key read: an apparent
            # miss answered by the first R (empty) replies can hide a
            # write living only on a replica that has not answered yet.
            pending = [(name, ev) for name, ev in calls
                       if name not in responses]
            laggards = QuorumWait(self.sim, pending, len(pending),
                                  cfg.request_timeout, fail_fast=False)
            try:
                yield from laggards.wait()
            except (RpcTimeout, RpcError):
                pass
            for name, value in laggards.oks:
                absorb(name, value)
        responders = sorted(responses)
        latest_by_key: dict[str, Optional[ValueElement]] = {}
        rows_by_key: dict[str, list[tuple]] = {}
        agree_by_key: dict[str, int] = {}
        repair_rows: dict[str, dict[str, list[tuple]]] = {}
        for k in keys:
            latest = merged.read_latest(k)
            merged_elements = merged.read_all(k)
            latest_by_key[k] = latest
            if merged_elements:
                rows_by_key[k] = wire_elements(merged_elements)
            agree = 0
            for name in responders:
                els = responses[name].get(k, [])
                if latest is None:
                    if not els:
                        agree += 1
                elif any(e.source == latest.source
                         and e.timestamp == latest.timestamp for e in els):
                    agree += 1
                elif merged_elements:
                    repair_rows.setdefault(name, {})[k] = rows_by_key[k]
            agree_by_key[k] = agree
            if mode == "all":
                out[k] = {"status": "ok",
                          "elements": rows_by_key.get(k, []),
                          "responders": responders}
            elif latest is None:
                out[k] = {"status": "ok", "found": False,
                          "responders": responders}
            else:
                out[k] = {"status": "ok", "found": True,
                          "value": latest.value, "ts": latest.timestamp,
                          "source": latest.source, "responders": responders}
        # Batched read repair: one replica.install per stale replica
        # carrying every key it lacked.
        repaired_keys = {k for rows in repair_rows.values() for k in rows}
        self.read_repairs += len(repaired_keys)
        self._m_read_repairs.inc(len(repaired_keys))
        install_calls: dict[str, Event] = {}
        for name in sorted(repair_rows):
            install_calls[name] = self._replica_call(
                name, "replica.install",
                {"vnode": vnode_id, "rows": repair_rows[name],
                 "lww": {k: merged.row(k).lww for k in repair_rows[name]
                         if merged.row(k) is not None
                         and merged.row(k).lww is not None}})
        # R-equality per key: where fewer than R copies agree on the
        # freshest, wait for enough repair acks before answering (the
        # same rule as the single-key read; failure is per key).
        deficient = [k for k in keys
                     if latest_by_key[k] is not None
                     and agree_by_key[k] < cfg.read_quorum]
        repair_waits = []
        for k in deficient:
            kcalls = [(name, install_calls[name])
                      for name in sorted(install_calls)
                      if k in repair_rows[name]]
            needed = min(cfg.read_quorum - agree_by_key[k], len(kcalls))
            if needed <= 0:
                continue
            repair_waits.append((k, QuorumWait(self.sim, kcalls, needed,
                                               cfg.request_timeout)))
        for k, repair_wait in repair_waits:
            try:
                yield from repair_wait.wait()
            except (RpcTimeout, RpcError) as err:
                out[k] = {"status": "failure", "found": False,
                          "error": f"read-repair-failed:{err}",
                          "responders": responders}
        self._post_quorum_watch(calls, vnode_id, set(responses))

        # Laggards that answer after the quorum may still be stale:
        # check against the merged snapshot and repair fire-and-forget,
        # batched per replica.
        def late_check(done_ev: Event, name: str) -> None:
            if not done_ev.ok:
                return
            rows = done_ev.value["rows"]
            lacking = {}
            for k, latest in latest_by_key.items():
                if latest is None or k not in rows_by_key:
                    continue
                els = unwire_elements(rows.get(k, []))
                if not any(e.source == latest.source
                           and e.timestamp == latest.timestamp
                           for e in els):
                    lacking[k] = rows_by_key[k]
            if lacking:
                self._replica_call(
                    name, "replica.install",
                    {"vnode": vnode_id, "rows": lacking,
                     "lww": {k: merged.row(k).lww for k in lacking
                             if merged.row(k) is not None
                             and merged.row(k).lww is not None}})

        for name, ev in calls:
            if name in responses:
                continue
            if ev.callbacks is None:
                late_check(ev, name)
            else:
                ev.callbacks.append(
                    lambda done_ev, _n=name: late_check(done_ev, _n))

    def coordinate_multi_delete(self, args: Any):
        """Batched quorum delete: one ``replica.mdelete`` per replica
        per vnode-group, per-key statuses."""
        self.coordinated_multi_deletes += 1
        span = self._span("coord.mdelete")
        keys = list(dict.fromkeys(args["keys"]))
        groups, replica_sets = yield from self._group_by_vnode(keys)
        results: dict[str, Any] = {}
        procs = [self.sim.process(
            self._mdelete_group(vnode_id, groups[vnode_id],
                                replica_sets[vnode_id], results),
            name=f"mdelete-v{vnode_id}")
            for vnode_id in sorted(groups)]
        for proc in procs:
            yield proc
        self._span_end(span, keys=len(keys), groups=len(groups))
        return {"results": results}

    def _mdelete_group(self, vnode_id: int, keys: list[str],
                       replicas: list[str], out: dict, attempt: int = 0):
        """One vnode-group of a batched delete; fills ``out`` per key."""
        cfg = self.config
        if len(replicas) < cfg.write_quorum:
            if attempt == 0:
                yield from self.cache.invalidate(vnode_id)
                _v, fresh = self.cache.replicas_for_key(keys[0])
                yield from self._mdelete_group(vnode_id, keys, fresh, out,
                                               attempt=1)
                return
            for k in keys:
                out[k] = {"status": "failure", "acks": []}
            return
        payload = {"vnode": vnode_id, "keys": list(keys)}
        calls = [(r, self._replica_call(r, "replica.mdelete", payload))
                 for r in replicas]
        wait = QuorumWait(self.sim, calls, cfg.write_quorum,
                          cfg.request_timeout)
        try:
            oks, fails = yield from wait.wait()
        except (RpcTimeout, RpcError) as err:
            self._post_quorum_watch(calls, vnode_id, set())
            if attempt == 0:
                yield from self.cache.invalidate(vnode_id)
                _v, fresh = self.cache.replicas_for_key(keys[0])
                yield from self._mdelete_group(vnode_id, keys, fresh, out,
                                               attempt=1)
                return
            for k in keys:
                out[k] = {"status": "failure", "acks": [],
                          "error": f"delete-quorum-failed:{err}"}
            return
        for name, _exc in fails:
            self._suspect(name, vnode_id)
        self._post_quorum_watch(calls, vnode_id, {n for n, _v in oks})
        acks = [name for name, _v in oks]
        for k in keys:
            out[k] = {"status": "ok", "acks": acks}
