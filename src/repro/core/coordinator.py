"""Quorum coordination: the parallel N-replica fan-out of §III.C/F.

Sedna is "a zero-hop DHT that each node caches enough routing
information locally to route a request to the appropriate node
directly" (§VII).  The same coordination logic therefore runs in two
places:

* inside every :class:`~repro.core.node.SednaNode`, serving requests
  from thin clients that route to any server (§III.A); and
* inside the *smart* :class:`~repro.core.client.SednaClient`, which
  caches the mapping itself and talks straight to the replicas — the
  configuration the paper's load-test programs use ("Sedna writes every
  key value pair three times into different real nodes parallel",
  §VI.A.1).

:class:`QuorumCoordinator` encapsulates it once for both.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..net.rpc import RpcError, RpcNode, RpcRejected, RpcTimeout
from ..net.simulator import AnyOf, Event, Simulator
from ..storage.versioned import ValueElement, VersionedStore, WriteOutcome
from .cache import MappingCache
from .config import SednaConfig

__all__ = ["QuorumCoordinator", "wire_elements", "unwire_elements"]


def wire_elements(elements: list[ValueElement]) -> list[tuple]:
    """Serialize value-list elements for the simulated wire."""
    return [(e.source, e.timestamp, e.value) for e in elements]


def unwire_elements(blob: list[tuple]) -> list[ValueElement]:
    """Inverse of :func:`wire_elements`."""
    return [ValueElement(source, ts, value) for source, ts, value in blob]


class QuorumCoordinator:
    """Runs quorum reads/writes against the replica plane.

    Parameters
    ----------
    sim, rpc, cache, config:
        The substrate handles.
    local_name / local_dispatch:
        When the coordinator lives on a storage node, calls to itself
        short-circuit the network through ``local_dispatch(method,
        args) -> Event``.
    on_suspect:
        Callback ``(replica_name, vnode_id)`` fired when a replica
        refuses or stays silent — nodes hook their lazy-recovery
        investigation here (§III.C).
    """

    def __init__(self, sim: Simulator, rpc: RpcNode, cache: MappingCache,
                 config: SednaConfig,
                 local_name: Optional[str] = None,
                 local_dispatch: Optional[Callable[[str, Any], Event]] = None,
                 on_suspect: Optional[Callable[[str, int], None]] = None):
        self.sim = sim
        self.rpc = rpc
        self.cache = cache
        self.config = config
        self.local_name = local_name
        self.local_dispatch = local_dispatch
        self.on_suspect = on_suspect
        # Stats.
        self.coordinated_writes = 0
        self.coordinated_reads = 0
        self.coordinated_deletes = 0
        self.read_repairs = 0

    # -- plumbing -----------------------------------------------------------
    def _suspect(self, name: str, vnode_id: int) -> None:
        if self.on_suspect is not None:
            self.on_suspect(name, vnode_id)

    def _replica_call(self, replica: str, method: str, args: Any) -> Event:
        if replica == self.local_name and self.local_dispatch is not None:
            return self.local_dispatch(method, args)
        return self.rpc.call_async(replica, method, args)

    def _quorum_fanout(self, calls: list[tuple[str, Event]], needed: int,
                       timeout: float):
        """Wait for ``needed`` successes with replica attribution.

        Returns ``(oks, fails)`` as ``[(name, value)]`` /
        ``[(name, exception)]``; raises :class:`RpcTimeout` on deadline
        and :class:`RpcError` when too many replicas failed.
        """
        deadline = self.sim.timeout(timeout)
        oks: list[tuple[str, Any]] = []
        fails: list[tuple[str, BaseException]] = []
        pending = dict(calls)
        while True:
            for name, ev in list(pending.items()):
                if ev.triggered:
                    del pending[name]
                    if ev.ok:
                        oks.append((name, ev.value))
                    else:
                        fails.append((name, ev.value))
            if len(oks) >= needed:
                return oks, fails
            if len(oks) + len(pending) < needed:
                raise RpcError(f"quorum unreachable: {len(fails)} failures")
            if deadline.processed:
                raise RpcTimeout(
                    f"quorum {needed} not met; {len(oks)} ok so far")
            try:
                yield AnyOf(self.sim,
                            tuple(ev for ev in pending.values()) + (deadline,))
            except RpcError:
                pass  # loop re-scans and attributes the failure

    def _post_quorum_watch(self, calls: list[tuple[str, Event]],
                           vnode_id: int, already_ok: set[str]) -> None:
        """Keep watching the laggards after the quorum returned.

        Late refusals trigger suspicion, and so does *silence*: a dead
        replica never answers, so each outstanding call gets a deadline
        (§III.C: "according to the 'timeout', 'refuse' response ...
        Sedna service will determine whether the servers have failed").
        """
        for name, ev in calls:
            if name in already_ok:
                continue

            def check(done: Event, name=name) -> None:
                if not done.ok:
                    self._suspect(name, vnode_id)

            if ev.callbacks is None:
                check(ev)
                continue
            ev.callbacks.append(check)

            def silence(name=name, ev=ev) -> None:
                if not ev.triggered:
                    self._suspect(name, vnode_id)

            self.sim.schedule_callback(self.config.request_timeout, silence)

    def _replica_set(self, key: str):
        """Replica set from the cache, with one invalidation retry."""
        vnode_id, replicas = self.cache.replicas_for_key(key)
        if len(replicas) < self.config.replicas:
            yield from self.cache.invalidate(vnode_id)
            vnode_id, replicas = self.cache.replicas_for_key(key)
        return vnode_id, replicas

    # -- operations -----------------------------------------------------------
    def coordinate_write(self, args: Any):
        """Parallel N-way replica write; returns at W acks (§III.C/F)."""
        self.coordinated_writes += 1
        cfg = self.config
        key = args["key"]
        vnode_id, replicas = yield from self._replica_set(key)
        if len(replicas) < cfg.write_quorum:
            raise RpcRejected("not-enough-replicas")
        payload = {"vnode": vnode_id, "key": key, "value": args["value"],
                   "ts": args["ts"], "source": args["source"],
                   "mode": args["mode"]}
        calls = [(r, self._replica_call(r, "replica.write", payload))
                 for r in replicas]
        try:
            oks, fails = yield from self._quorum_fanout(
                calls, cfg.write_quorum, cfg.request_timeout)
        except (RpcTimeout, RpcError) as err:
            self._post_quorum_watch(calls, vnode_id, set())
            if not args.get("_retried"):
                # A stale mapping can fail a quorum with 'not-owner'
                # refusals: invalidate and retry once (§III.E).
                yield from self.cache.invalidate(vnode_id)
                retry = dict(args)
                retry["_retried"] = True
                result = yield from self.coordinate_write(retry)
                return result
            raise RpcRejected(f"write-quorum-failed:{err}")
        statuses = [value["status"] for _n, value in oks]
        outcome = (WriteOutcome.OK if WriteOutcome.OK in statuses
                   else WriteOutcome.OUTDATED)
        self._post_quorum_watch(calls, vnode_id, {n for n, _v in oks})
        for name, _exc in fails:
            self._suspect(name, vnode_id)
        return {"status": outcome, "vnode": vnode_id,
                "acks": [name for name, _v in oks]}

    def coordinate_read(self, args: Any):
        """Parallel read from all replicas, waiting for R agreeing copies.

        §III.C: "requests all the corresponding real nodes to get data
        with timestamp, then checks for R equality."  When fewer than R
        copies agree on the freshest version, the coordinator pushes
        the merged freshest elements to the stale replicas (read
        repair) before answering.
        """
        self.coordinated_reads += 1
        cfg = self.config
        key = args["key"]
        mode = args.get("mode", "latest")
        vnode_id, replicas = yield from self._replica_set(key)
        if len(replicas) < cfg.read_quorum:
            raise RpcRejected("not-enough-replicas")
        payload = {"vnode": vnode_id, "key": key}
        calls = [(r, self._replica_call(r, "replica.read", payload))
                 for r in replicas]
        try:
            oks, fails = yield from self._quorum_fanout(
                calls, cfg.read_quorum, cfg.request_timeout)
        except (RpcTimeout, RpcError) as err:
            self._post_quorum_watch(calls, vnode_id, set())
            warming = any(isinstance(exc, RpcRejected)
                          and "warming" in str(exc)
                          for _n, exc in ((n, ev.value) for n, ev in calls
                                          if ev.triggered and not ev.ok))
            if warming:
                # A freshly claimed replica refuses reads until its
                # handoff catch-up finishes; that is transient, so wait
                # it out instead of failing the read.
                waits = args.get("_warm_waits", 0)
                limit = int(self.config.lease_base * 2
                            / cfg.request_timeout) + 2
                if waits < limit:
                    yield self.sim.timeout(cfg.request_timeout)
                    retry = dict(args)
                    retry["_warm_waits"] = waits + 1
                    result = yield from self.coordinate_read(retry)
                    return result
            if not args.get("_retried"):
                yield from self.cache.invalidate(vnode_id)
                retry = dict(args)
                retry["_retried"] = True
                result = yield from self.coordinate_read(retry)
                return result
            raise RpcRejected(f"read-quorum-failed:{err}")
        for name, _exc in fails:
            self._suspect(name, vnode_id)
        # Merge responses: newest element per source.
        merged = VersionedStore()
        responses: dict[str, list[ValueElement]] = {}
        for name, value in oks:
            elements = unwire_elements(value["elements"])
            responses[name] = elements
            merged.merge_elements(key, elements)
        merged_elements = merged.read_all(key)
        latest = merged.read_latest(key)

        if latest is None and len(responses) < len(calls):
            # An apparent miss met by the first R (empty) replies can be
            # a membership-churn artifact: a recent write may live only
            # on a replica that has not answered yet (its quorum-set
            # overlap shrank while the mapping moved).  Cheap insurance:
            # wait out the remaining replies before concluding.
            deadline = self.sim.timeout(cfg.request_timeout)
            answered = set(responses)
            pending = {name: ev for name, ev in calls
                       if name not in answered}
            while pending and not deadline.processed:
                for name, ev in list(pending.items()):
                    if ev.triggered:
                        del pending[name]
                        if ev.ok:
                            elements = unwire_elements(ev.value["elements"])
                            responses[name] = elements
                            merged.merge_elements(key, elements)
                if not pending:
                    break
                try:
                    yield AnyOf(self.sim,
                                tuple(pending.values()) + (deadline,))
                except RpcError:
                    pass
            merged_elements = merged.read_all(key)
            latest = merged.read_latest(key)

        def agree_count() -> int:
            if latest is None:
                return sum(1 for els in responses.values() if not els)
            return sum(1 for els in responses.values()
                       if any(e.source == latest.source
                              and e.timestamp == latest.timestamp
                              for e in els))

        stale = [name for name, els in responses.items()
                 if latest is not None
                 and not any(e.source == latest.source
                             and e.timestamp == latest.timestamp
                             for e in els)]
        if stale and merged_elements:
            # Read repair: push the merged freshest elements to every
            # responder that lacked them.  The wait is only as long as
            # R-equality requires (§III.C); extra repairs are
            # fire-and-forget so divergent third replicas converge on
            # the next read instead of lingering stale.
            repair_payload = {"vnode": vnode_id, "key": key,
                              "elements": wire_elements(merged_elements)}
            repair_calls = [(r, self._replica_call(r, "replica.repair",
                                                   repair_payload))
                            for r in stale]
            self.read_repairs += 1
            needed = cfg.read_quorum - agree_count()
            if needed > 0:
                try:
                    yield from self._quorum_fanout(
                        repair_calls, min(needed, len(repair_calls)),
                        cfg.request_timeout)
                except (RpcTimeout, RpcError) as err:
                    raise RpcRejected(f"read-repair-failed:{err}")
        self._post_quorum_watch(calls, vnode_id, {n for n, _v in oks})
        if latest is not None and merged_elements:
            # Laggards that answer *after* the quorum may still be stale
            # (e.g. a freshly recovered replica with an empty row): check
            # their late responses and repair fire-and-forget.
            answered = set(responses)
            repair_payload = {"vnode": vnode_id, "key": key,
                              "elements": wire_elements(merged_elements)}

            def late_check(done, name):
                if not done.ok:
                    return
                els = unwire_elements(done.value["elements"])
                if not any(e.source == latest.source
                           and e.timestamp == latest.timestamp
                           for e in els):
                    self._replica_call(name, "replica.repair",
                                       repair_payload)

            for name, ev in calls:
                if name in answered:
                    continue
                if ev.callbacks is None:
                    late_check(ev, name)
                else:
                    ev.callbacks.append(
                        lambda done, name=name: late_check(done, name))
        responders = list(responses)
        if mode == "all":
            return {"elements": wire_elements(merged_elements),
                    "responders": responders}
        if latest is None:
            return {"found": False, "responders": responders}
        return {"found": True, "value": latest.value,
                "ts": latest.timestamp, "source": latest.source,
                "responders": responders}

    def coordinate_delete(self, args: Any):
        """Quorum delete (not in the paper's API; completes the CRUD).

        Mirrors :meth:`coordinate_write` end to end: replica-set sanity
        check, invalidate-and-retry on a stale-mapping quorum failure,
        laggard watching and suspicion — deletes issued right after
        churn must trigger the same lazy recovery as writes (§III.C/E).
        """
        self.coordinated_deletes += 1
        cfg = self.config
        key = args["key"]
        vnode_id, replicas = yield from self._replica_set(key)
        if len(replicas) < cfg.write_quorum:
            raise RpcRejected("not-enough-replicas")
        payload = {"vnode": vnode_id, "key": key}
        calls = [(r, self._replica_call(r, "replica.delete", payload))
                 for r in replicas]
        try:
            oks, fails = yield from self._quorum_fanout(
                calls, cfg.write_quorum, cfg.request_timeout)
        except (RpcTimeout, RpcError) as err:
            self._post_quorum_watch(calls, vnode_id, set())
            if not args.get("_retried"):
                yield from self.cache.invalidate(vnode_id)
                retry = dict(args)
                retry["_retried"] = True
                result = yield from self.coordinate_delete(retry)
                return result
            raise RpcRejected(f"delete-quorum-failed:{err}")
        self._post_quorum_watch(calls, vnode_id, {n for n, _v in oks})
        for name, _exc in fails:
            self._suspect(name, vnode_id)
        return {"status": "ok", "vnode": vnode_id,
                "acks": [name for name, _v in oks]}
