"""SednaCluster — one-call assembly of the whole system.

Builds the simulated network, the ZooKeeper sub-cluster and the Sedna
real nodes, reproducing the paper's deployment shape (§VI.A: 9 servers,
3 of them ZooKeeper members, 1 GbE, sub-ms RTT).

Two bootstrap modes:

* ``assign`` (default) — the cluster pre-assigns virtual nodes
  round-robin in ZooKeeper before the nodes join.  Fast and balanced;
  what a production operator would do for a fixed fleet.
* ``join`` — nodes race to claim vnodes through the §III.D protocol
  (version-checked sets, overload stealing).  Slower but exercises the
  real membership path; used by the membership tests and the vnode
  ablation bench.
"""

from __future__ import annotations

from typing import Optional

from ..net.latency import LanGigabit, LatencyModel
from ..net.failure import FailureInjector
from ..net.simulator import AllOf, Simulator
from ..net.transport import Network
from ..persistence.disk import SimDisk
from ..zk.ensemble import ZkEnsemble
from ..zk.server import ZkConfig
from .cache import ZkLayout
from .hashring import build_assignment
from .client import SednaClient, SmartSednaClient
from .config import SednaConfig
from .node import SednaNode

__all__ = ["SednaCluster"]


class SednaCluster:
    """A complete simulated Sedna deployment.

    Parameters
    ----------
    n_nodes:
        Sedna real-node count (paper experiments: 9, minus ZK members'
        storage budget — we model ZK members as separate endpoints on
        the same simulated boxes).
    zk_size:
        ZooKeeper sub-cluster size (paper deployment: 3).
    config / zk_config:
        Behaviour knobs; defaults reproduce the paper setup.
    latency:
        Network model; defaults to the calibrated gigabit LAN.
    seed:
        Seed for the latency jitter stream.
    """

    def __init__(self, n_nodes: int = 9, zk_size: int = 3,
                 config: Optional[SednaConfig] = None,
                 zk_config: Optional[ZkConfig] = None,
                 latency: Optional[LatencyModel] = None,
                 sim: Optional[Simulator] = None,
                 seed: int = 42,
                 zk_durable: bool = False,
                 obs=None):
        self.sim = sim if sim is not None else Simulator()
        self.network = Network(
            self.sim,
            latency=latency if latency is not None else LanGigabit(seed=seed))
        self.config = config if config is not None else SednaConfig()
        self.zk_config = zk_config if zk_config is not None else ZkConfig()
        # Observability bundle: attach the span tracer to the kernel and
        # stamp outgoing messages with the ambient trace id so the tap
        # can slice traffic per request.
        self.obs = obs
        if obs is not None:
            obs.attach(self.sim)
            self.network.tracer = obs.tracer
        self.ensemble = ZkEnsemble(self.sim, self.network, size=zk_size,
                                   config=self.zk_config,
                                   durable=zk_durable)
        if obs is not None and obs.tracer is not None:
            for server in self.ensemble.servers:
                server.rpc.tracer = obs.tracer
        self.disks: dict[str, SimDisk] = {}
        self.node_names = [f"node{i}" for i in range(n_nodes)]
        self.nodes: dict[str, SednaNode] = {}
        for name in self.node_names:
            disk = SimDisk()
            self.disks[name] = disk
            self.nodes[name] = SednaNode(
                self.sim, self.network, name, self.ensemble.names,
                self.config, self.zk_config, disk=disk, obs=obs)
        self.failures = FailureInjector(self.network)
        self._clients = 0
        self.started = False

    # -- bootstrap -----------------------------------------------------------
    def start(self, bootstrap: str = "assign") -> None:
        """Boot ZooKeeper and join every node; blocks (runs the sim)."""
        if bootstrap not in ("assign", "join"):
            raise ValueError("bootstrap must be 'assign' or 'join'")
        self.ensemble.start()
        if bootstrap == "assign":
            boot = self.sim.process(self._preassign(), name="bootstrap")
            self.sim.run(until=boot)
        joins = [self.sim.process(node.join(), name=f"{name}-join")
                 for name, node in self.nodes.items()]
        self.sim.run(until=AllOf(self.sim, joins))
        self.started = True

    def _preassign(self):
        """Create the /sedna namespace with a balanced assignment."""
        zk = self.ensemble.client("bootstrap")
        yield from zk.connect()
        yield from zk.create(ZkLayout.ROOT, b"")
        for path in (ZkLayout.REAL_NODES, ZkLayout.VNODES,
                     ZkLayout.CHANGELOG, ZkLayout.IMBALANCE):
            yield from zk.create(path, b"")
        owners = build_assignment(self.config.num_vnodes, self.node_names,
                                  self.config.placement)
        for vnode_id, owner in enumerate(owners):
            yield from zk.create(ZkLayout.vnode(vnode_id), owner.encode())
        yield from zk.create(ZkLayout.CONFIG,
                             str(self.config.num_vnodes).encode())
        yield from zk.close()

    # -- handles ---------------------------------------------------------------
    def client(self, name: Optional[str] = None,
               pinned: Optional[str] = None) -> SednaClient:
        """A new client; optionally pinned to one coordinator node."""
        self._clients += 1
        return SednaClient(self.sim, self.network,
                           name or f"client{self._clients}",
                           self.node_names, self.config, pinned=pinned,
                           obs=self.obs)

    def smart_client(self, name: Optional[str] = None) -> SmartSednaClient:
        """A zero-hop client that coordinates quorums itself (§VII).

        Remember to ``yield from client.connect()`` before the first
        operation."""
        self._clients += 1
        return SmartSednaClient(self.sim, self.network,
                                name or f"smart{self._clients}",
                                self.ensemble.names, self.config,
                                self.zk_config, obs=self.obs)

    def node(self, name: str) -> SednaNode:
        """Node handle by name."""
        return self.nodes[name]

    def crash_node(self, name: str) -> None:
        """Crash one Sedna real node (memory lost, disk kept)."""
        self.nodes[name].crash()

    def restart_node(self, name: str) -> None:
        """Restart a crashed node; blocks until it rejoined."""
        proc = self.sim.process(self.nodes[name].restart(),
                                name=f"{name}-restart")
        self.sim.run(until=proc)

    # -- background maintenance -----------------------------------------------
    def enable_maintenance(self, anti_entropy: bool = True,
                           gc: bool = True, rebalance: bool = True,
                           active_detection: bool = True) -> dict:
        """Start the production background services on every node.

        * anti-entropy — replica convergence without reads;
        * garbage collection — reclaim orphaned replicas after moves;
        * rebalancing — one data-balance manager (hosted on node0);
        * active detection — probe peers, repair dead nodes' data even
          with zero traffic.

        Returns the service handles (each has ``stop()``); call
        :meth:`disable_maintenance` to stop them all.
        """
        from .antientropy import AntiEntropyManager
        from .detector import ActiveDetector
        from .gc import GarbageCollector
        from .rebalance import Rebalancer
        services: dict[str, list] = {"anti_entropy": [], "gc": [],
                                     "rebalance": [], "detector": []}
        for node in self.nodes.values():
            if anti_entropy:
                manager = AntiEntropyManager(node)
                manager.start()
                services["anti_entropy"].append(manager)
            if gc:
                collector = GarbageCollector(node)
                collector.start()
                services["gc"].append(collector)
            if active_detection:
                detector = ActiveDetector(node)
                detector.start()
                services["detector"].append(detector)
        if rebalance:
            balancer = Rebalancer(self.nodes[self.node_names[0]])
            balancer.start()
            services["rebalance"].append(balancer)
        self._maintenance = services
        return services

    def disable_maintenance(self) -> None:
        """Stop every service started by :meth:`enable_maintenance`."""
        for group in getattr(self, "_maintenance", {}).values():
            for service in group:
                service.stop()
        self._maintenance = {}

    # -- driving ----------------------------------------------------------------
    def run(self, script, name: str = "script"):
        """Run a generator to completion on the simulator; returns its
        result.  The standard way tests and benches drive the cluster."""
        proc = self.sim.process(script, name=name)
        return self.sim.run(until=proc)

    def run_all(self, scripts) -> list:
        """Run several generators concurrently; returns their results."""
        procs = [self.sim.process(s, name=f"script{i}")
                 for i, s in enumerate(scripts)]
        self.sim.run(until=AllOf(self.sim, procs))
        return [p.value for p in procs]

    def settle(self, duration: float) -> None:
        """Advance simulated time (lets leases, repairs, scans run)."""
        self.sim.run(until=self.sim.now + duration)

    # -- introspection -------------------------------------------------------
    def stats(self) -> dict:
        """Cluster-wide counter aggregate."""
        node_stats = [node.stats() for node in self.nodes.values()]
        return {
            "nodes": node_stats,
            "zk": self.ensemble.stats(),
            "network": {"delivered": self.network.delivered,
                        "dropped": self.network.dropped},
            "total_keys": sum(s["keys"] for s in node_stats),
        }

    def total_replicas_of(self, encoded_key: str) -> int:
        """How many live nodes hold some version of ``encoded_key``."""
        count = 0
        for node in self.nodes.values():
            if node.running and encoded_key in node.store:
                count += 1
        return count
