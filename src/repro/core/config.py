"""Sedna cluster configuration.

One dataclass gathering every knob the paper exposes or implies:
virtual-node count (fixed for the cluster's lifetime, §III.D), quorum
parameters with the paper's two constraints (R + W > N, W > N/2,
§III.C), ZooKeeper lease adaptation bounds (§III.E), retrieval-thread
count for vnode acquisition (§III.D), and trigger flow-control
intervals (§IV.B).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["SednaConfig"]


@dataclass
class SednaConfig:
    """Cluster-wide parameters (simulated seconds for all durations)."""

    # Partitioning (§III.B, §III.D).
    num_vnodes: int = 512
    """Virtual-node count; fixed once the cluster starts (§III.D).  The
    paper sizes ~100 vnodes per real node (e.g. 100,000 for 1,000
    servers); tests use smaller rings."""

    placement: str = "modulo"
    """Bootstrap vnode → node placement: ``modulo`` (round-robin
    striping, the historical default) or ``jump`` (jump consistent
    hash — minimal monotonic remapping as the cluster grows; see
    ``core.hashring.build_assignment``)."""

    retrieval_threads: int = 8
    """Concurrent vnode-acquisition workers during join (paper: 8-16)."""

    # Replication (§III.C).
    replicas: int = 3
    """N — copies per datum ("at least other two copies")."""

    read_quorum: int = 2
    """R — matching replies needed before a read returns."""

    write_quorum: int = 2
    """W — acks needed before a write returns."""

    dvv_sibling_cap: int = 16
    """Causal mode (DVV): max concurrent siblings kept per key.  The
    oldest siblings beyond the cap are dropped; their dots stay covered
    by the row's version vector, so capping is merge-safe."""

    # Request handling.
    request_timeout: float = 0.5
    """Coordinator deadline for one replica RPC."""

    client_timeout: float = 2.0
    """Client deadline for one coordinator request."""

    # ZooKeeper cache lease (§III.E).
    lease_base: float = 1.0
    """Initial mapping-cache sync period."""

    lease_min: float = 0.25
    """Lower bound after repeated halving (busy churn)."""

    lease_max: float = 16.0
    """Upper bound after repeated doubling (quiet cluster)."""

    # Node management (§III.D).
    heartbeat_interval: float = 0.5
    """Sedna-service liveness ping cadence (ZK session pings)."""

    imbalance_push_interval: float = 5.0
    """How often each node uploads its imbalance row to ZooKeeper."""

    # Triggers (§IV).
    scan_interval: float = 0.05
    """Dirty-column sweep cadence of the scanner threads."""

    scan_threads: int = 4
    """Concurrent scanner workers per node ("according to the data
    size", §IV.C)."""

    trigger_interval: float = 0.2
    """Default per-application trigger interval — the flow-control
    suppression window of §IV.B.  Value changes inside the window are
    coalesced; only the freshest survives."""

    # Persistence (§II.B table: periodic flush or write-ahead log).
    persistence: str = "none"
    """One of ``none`` / ``snapshot`` / ``wal``."""

    snapshot_interval: float = 30.0
    """Periodic-flush cadence when ``persistence == 'snapshot'``."""

    def __post_init__(self):
        if self.replicas < 1:
            raise ValueError("replicas must be >= 1")
        if not (self.read_quorum + self.write_quorum > self.replicas):
            raise ValueError("quorum constraint violated: need R + W > N")
        if not (self.write_quorum > self.replicas / 2):
            raise ValueError("quorum constraint violated: need W > N/2")
        if self.num_vnodes < 1:
            raise ValueError("num_vnodes must be >= 1")
        if self.placement not in ("modulo", "jump"):
            raise ValueError(f"unknown placement {self.placement!r}")
        if self.dvv_sibling_cap < 1:
            raise ValueError("dvv_sibling_cap must be >= 1")
        if self.persistence not in ("none", "snapshot", "wal"):
            raise ValueError(f"unknown persistence strategy {self.persistence!r}")
