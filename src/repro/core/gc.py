"""Garbage collection of rows a node no longer replicates.

Vnode ownership moves — joins steal from overloaded owners (§III.D),
rebalancing migrates load (§III.B), recovery rewrites dead nodes'
assignments (§III.C) — but the *old* owner keeps its copies: dropping
them eagerly would race the transfer.  The paper leaves cleanup
unspecified; in a memory-constrained store those orphans are exactly
the bytes you bought RAM for, so the reproduction ships a safe janitor:

For each locally indexed vnode whose current replica set (per the
lease-synced ring) does not include this node, the janitor first
*verifies* via digest exchange that every current replica holds
versions at least as new as ours — pushing any rows they lack — and
only then drops the local copies.  A row is therefore never deleted
from its last up-to-date holder.
"""

from __future__ import annotations

from ..net.rpc import RpcRejected, RpcTimeout
from ..storage.versioned import wire_dvv_row
from .antientropy import digest_diff, dvv_covered
from .coordinator import wire_elements
from .node import SednaNode

__all__ = ["GarbageCollector"]


class GarbageCollector:
    """Periodic orphan-replica janitor hosted on one node."""

    def __init__(self, node: SednaNode, interval: float = 15.0,
                 vnodes_per_pass: int = 8):
        self.node = node
        self.sim = node.sim
        self.interval = interval
        self.vnodes_per_pass = vnodes_per_pass
        self.running = False
        # Stats.
        self.passes = 0
        self.rows_dropped = 0
        self.rows_pushed = 0

    def start(self) -> None:
        """Spawn the janitor loop."""
        if self.running:
            return
        self.running = True
        self.sim.process(self._loop(), name=f"{self.node.name}-gc")

    def stop(self) -> None:
        """Stop at the next wakeup."""
        self.running = False

    def _orphaned_vnodes(self) -> list[int]:
        """Locally indexed vnodes we are no longer a replica of."""
        node = self.node
        ring = node.cache.ring
        n = node.config.replicas
        return [v for v, keys in node.vnode_keys.items()
                if keys and node.name not in ring.replicas_for(v, n)]

    def _loop(self):
        pass_timer = self.sim.recurring(self.interval)
        while self.running and self.node.running:
            yield pass_timer.tick()
            if not (self.running and self.node.running):
                return
            yield from self.run_pass()

    def run_pass(self):
        """Collect up to ``vnodes_per_pass`` orphaned vnodes; returns
        the number of rows dropped."""
        self.passes += 1
        dropped = 0
        for vnode_id in self._orphaned_vnodes()[: self.vnodes_per_pass]:
            dropped += yield from self._collect(vnode_id)
        return dropped

    def _collect(self, vnode_id: int):
        """Verify-then-drop one orphaned vnode."""
        node = self.node
        replicas = node.cache.ring.replicas_for(vnode_id,
                                                node.config.replicas)
        if node.name in replicas or not replicas:
            return 0
        mine = node.vnode_digest(vnode_id)
        mine_dvv = node.vnode_dvv_digest(vnode_id)
        if not mine and not mine_dvv:
            node.vnode_keys.pop(vnode_id, None)
            return 0
        # Every current replica must dominate our versions first —
        # causal rows included (vv dominance, see dvv_covered).
        for peer in replicas:
            try:
                reply = yield from node.rpc.call(
                    peer, "replica.digest", {"vnode": vnode_id},
                    timeout=node.config.request_timeout)
            except (RpcTimeout, RpcRejected):
                return 0  # cannot verify -> keep the data, retry later
            _pull, push = digest_diff(mine, reply["digest"])
            dvv_push = dvv_covered(mine_dvv, reply.get("dvv", {}))
            if push or dvv_push:
                rows = {}
                for key in push:
                    elements = node.store.read_all(key)
                    if elements:
                        rows[key] = wire_elements(elements)
                dvv_rows = {}
                for key in dvv_push:
                    row = node.store.dvv_rows.get(key)
                    if row is not None:
                        dvv_rows[key] = wire_dvv_row(row)
                try:
                    yield from node.rpc.call(
                        peer, "replica.install",
                        {"vnode": vnode_id, "rows": rows,
                         "lww": node._lww_flags(rows),
                         "dvv_rows": dvv_rows},
                        timeout=node.config.request_timeout * 2)
                    self.rows_pushed += len(rows) + len(dvv_rows)
                except (RpcTimeout, RpcRejected):
                    return 0
        # Safe: drop the local copies.
        keys = node.vnode_keys.pop(vnode_id, set())
        dropped = 0
        for key in keys:
            if node.store.delete(key):
                dropped += 1
        self.rows_dropped += dropped
        node.vnode_status.pop(vnode_id, None)
        return dropped
