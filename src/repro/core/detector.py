"""Active failure detection (Table I: "Heart-beat protocol and Active
detection").

The lazy path (§III.C) repairs a dead node's replicas when traffic
touches them; keys nobody reads stay under-replicated until then.  The
paper's technique table lists *active detection* alongside heartbeats
to close that gap: :class:`ActiveDetector` runs on every node and

1. pings a few peers each pass (cheap liveness probes);
2. on silence, confirms death against the ZooKeeper ephemeral (the same
   §III.D check the lazy path uses);
3. for a confirmed-dead peer, walks this node's *own* vnodes, finds the
   ones whose replica set contained the corpse, and runs the standard
   recovery (reassign + re-duplicate) for a bounded number per pass —
   so background repair never swamps foreground traffic.
"""

from __future__ import annotations

from ..net.rpc import RpcRejected, RpcTimeout
from .cache import ZkLayout
from .node import SednaNode

__all__ = ["ActiveDetector"]


class ActiveDetector:
    """Background liveness prober + proactive replica repair."""

    def __init__(self, node: SednaNode, interval: float = 2.0,
                 peers_per_pass: int = 2, repairs_per_pass: int = 4,
                 probe_timeout: float = 0.3):
        self.node = node
        self.sim = node.sim
        self.interval = interval
        self.peers_per_pass = peers_per_pass
        self.repairs_per_pass = repairs_per_pass
        self.probe_timeout = probe_timeout
        self.running = False
        self._rr = 0
        # Vnodes still awaiting proactive repair, per confirmed corpse.
        # Snapshotted at confirmation time: the first repairs rewrite
        # the mapping, which would otherwise hide the remaining work.
        self._repair_queue: dict[str, list[int]] = {}
        # Stats.
        self.probes = 0
        self.deaths_confirmed = 0
        self.proactive_recoveries = 0
        # The node registers the replica.ping handler itself (see
        # SednaNode._register_rpc): every handler must exist before the
        # endpoint serves traffic, so a late-attached detector cannot
        # be the one to add it.

    def start(self) -> None:
        """Spawn the probe loop."""
        if self.running:
            return
        self.running = True
        self.sim.process(self._loop(), name=f"{self.node.name}-detector")

    def stop(self) -> None:
        """Stop at the next wakeup."""
        self.running = False

    def _known_peers(self) -> list[str]:
        ring = self.node.cache.ring
        return [n for n in ring.real_nodes() if n != self.node.name]

    def _loop(self):
        probe_timer = self.sim.recurring(self.interval)
        while self.running and self.node.running:
            yield probe_timer.tick()
            if not (self.running and self.node.running):
                return
            peers = self._known_peers()
            for offset in range(min(self.peers_per_pass, len(peers))):
                peer = peers[(self._rr + offset) % len(peers)]
                yield from self._probe(peer)
            self._rr += self.peers_per_pass
            yield from self._drain_repairs()

    def _probe(self, peer: str):
        self.probes += 1
        try:
            yield from self.node.rpc.call(peer, "replica.ping", {},
                                          timeout=self.probe_timeout)
            return
        except (RpcTimeout, RpcRejected):
            pass
        # Silent peer: confirm against ZooKeeper (§III.D).
        try:
            stat = yield from self.node.zk.exists(ZkLayout.real_node(peer))
        except (RpcTimeout, RpcRejected):
            return
        if stat is not None:
            return  # transient; the ephemeral still lives
        self.deaths_confirmed += 1
        self._enqueue_repairs(peer)

    def _enqueue_repairs(self, dead: str) -> None:
        """Snapshot every vnode whose replica set holds the corpse and
        involves this node (so we can source or receive the data)."""
        if dead in self._repair_queue:
            return
        ring = self.node.cache.ring
        n = self.node.config.replicas
        affected = []
        for vnode_id in range(ring.num_vnodes):
            replicas = ring.replicas_for(vnode_id, n)
            if dead in replicas and self.node.name in replicas:
                affected.append(vnode_id)
        self._repair_queue[dead] = affected

    def _drain_repairs(self):
        """Run a bounded batch of queued recoveries per pass."""
        budget = self.repairs_per_pass
        for dead in list(self._repair_queue):
            queue = self._repair_queue[dead]
            while queue and budget > 0:
                vnode_id = queue.pop(0)
                self.proactive_recoveries += 1
                # Heal the mapping if the corpse is still in this
                # vnode's walk (another detector may have beaten us)...
                yield from self.node._recover_vnode(dead, vnode_id)
                # ...then make sure every current member has the data.
                yield from self.node.reconcile_vnode(vnode_id)
                budget -= 1
            if not queue:
                del self._repair_queue[dead]
            if budget <= 0:
                return
