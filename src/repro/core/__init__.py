"""Sedna core: partitioning, replication, node management, client API.

The primary contribution of the paper — a memory-based distributed
key-value store with a hierarchical (ZooKeeper-backed) cluster-status
structure and quorum replication — lives here.
"""

from .config import SednaConfig
from .types import DEFAULT_DATASET, DEFAULT_TABLE, FullKey
from .hashring import ImbalanceTable, Ring, VnodeStatus
from .cache import MappingCache, ZkLayout
from .coordinator import QuorumCoordinator
from .node import SednaNode
from .client import SednaClient, SmartSednaClient
from .cluster import SednaCluster
from .rebalance import Rebalancer
from .antientropy import AntiEntropyManager
from .gc import GarbageCollector
from .detector import ActiveDetector
from .stats import LatencySeries, percentile, summarize

__all__ = [
    "SednaConfig",
    "DEFAULT_DATASET", "DEFAULT_TABLE", "FullKey",
    "ImbalanceTable", "Ring", "VnodeStatus",
    "MappingCache", "ZkLayout",
    "QuorumCoordinator",
    "SednaNode", "SednaClient", "SmartSednaClient", "SednaCluster",
    "Rebalancer", "AntiEntropyManager", "GarbageCollector",
    "ActiveDetector",
    "LatencySeries", "percentile", "summarize",
]
