"""Anti-entropy: background replica convergence.

The paper guarantees *eventual* consistency through quorum overlap and
read repair (§III.C); replicas that diverge on keys nobody reads stay
divergent.  Dynamo-family systems close that gap with an anti-entropy
protocol, and Sedna's related-work section cites exactly that lineage —
so the reproduction ships one as the optional background half of
"Replica Management" (one of the §III.A pluggable cluster-status
modules).

:class:`AntiEntropyManager` runs on a node and, each pass, picks a few
vnodes this node replicates and reconciles them with the other replica
holders:

1. exchange per-key version digests (cheap: (source, timestamp) pairs);
2. *pull* keys where the peer has versions we lack;
3. *push* keys where we have versions the peer lacks.

Merging is the newest-per-source rule of
:meth:`~repro.storage.versioned.VersionedStore.merge_elements`, so
reconciliation is idempotent and order-free.
"""

from __future__ import annotations

from .node import SednaNode

__all__ = ["AntiEntropyManager"]


def digest_diff(mine: dict, theirs: dict) -> tuple[list[str], list[str]]:
    """Keys to pull (peer newer/extra) and to push (we are newer/extra).

    A key needs sync in a direction when that side has a (source, ts)
    pair the other side does not dominate.

    Ordering audit note: the strict per-source ``ts >`` comparisons are
    tie-safe *without* the (timestamp, source) tie-break used
    elsewhere, because both sides of each comparison carry the same
    source — and one client's timestamps never collide (the client
    clock is strictly increasing per source), so equal (source, ts)
    pairs denote the same write.
    """
    pull: list[str] = []
    push: list[str] = []
    for key in sorted(set(mine) | set(theirs)):
        my_versions = {src: ts for src, ts in mine.get(key, [])}
        their_versions = {src: ts for src, ts in theirs.get(key, [])}
        if any(ts > my_versions.get(src, float("-inf"))
               for src, ts in their_versions.items()):
            pull.append(key)
        if any(ts > their_versions.get(src, float("-inf"))
               for src, ts in my_versions.items()):
            push.append(key)
    return sorted(pull), sorted(push)


def dvv_digest_diff(mine: dict, theirs: dict) -> tuple[list[str], list[str]]:
    """Causal-row keys to pull and to push.

    Digest entries are ``[sorted vv pairs, sorted sibling dots]``
    (:meth:`~repro.core.node.SednaNode.vnode_dvv_digest`).  The DVV
    merge is idempotent and commutative, so whenever the entries differ
    at all the row is exchanged in both directions — one reconcile
    round leaves both replicas with the joined row and equal digests.
    """
    pull: list[str] = []
    push: list[str] = []
    for key in sorted(set(mine) | set(theirs)):
        if mine.get(key) == theirs.get(key):
            continue
        if key in theirs:
            pull.append(key)
        if key in mine:
            push.append(key)
    return pull, push


def dvv_covered(mine: dict, theirs: dict) -> list[str]:
    """Causal-row keys of ``mine`` whose events ``theirs`` has not seen.

    Coverage is version-vector dominance: every counter in my entry's
    vv must be <= the peer's.  A sibling I hold that the peer's vv
    covers but its sibling list lacks was *knowingly* superseded there,
    so vv dominance alone is the safe hand-off criterion (GC, migration
    cutover verify).
    """
    missing: list[str] = []
    for key in sorted(mine):
        my_vv = dict(tuple(pair) for pair in mine[key][0])
        their_entry = theirs.get(key)
        their_vv = (dict(tuple(pair) for pair in their_entry[0])
                    if their_entry else {})
        if any(cnt > their_vv.get(rep, 0) for rep, cnt in my_vv.items()):
            missing.append(key)
    return missing


class AntiEntropyManager:
    """Periodic digest-based reconciliation hosted on one node.

    Parameters
    ----------
    node:
        Host node.
    interval:
        Seconds between passes.
    vnodes_per_pass:
        How many of this node's vnodes to reconcile per pass (bounded
        so the background traffic stays negligible next to foreground
        requests).
    """

    def __init__(self, node: SednaNode, interval: float = 10.0,
                 vnodes_per_pass: int = 4):
        self.node = node
        self.sim = node.sim
        self.interval = interval
        self.vnodes_per_pass = vnodes_per_pass
        self.running = False
        self._cursor = 0
        # Stats.
        self.passes = 0
        self.keys_pulled = 0
        self.keys_pushed = 0

    def start(self) -> None:
        """Spawn the reconciliation loop."""
        if self.running:
            return
        self.running = True
        self.sim.process(self._loop(), name=f"{self.node.name}-antientropy")

    def stop(self) -> None:
        """Stop at the next wakeup."""
        self.running = False

    def _my_vnodes(self) -> list[int]:
        """Vnodes whose replica set includes this node."""
        ring = self.node.cache.ring
        n = self.node.config.replicas
        return [v for v in range(ring.num_vnodes)
                if self.node.name in ring.replicas_for(v, n)]

    def _loop(self):
        pass_timer = self.sim.recurring(self.interval)
        while self.running and self.node.running:
            yield pass_timer.tick()
            if not (self.running and self.node.running):
                return
            yield from self.run_pass()

    def run_pass(self):
        """Reconcile the next ``vnodes_per_pass`` vnodes; returns the
        number of keys transferred either way."""
        self.passes += 1
        owned = self._my_vnodes()
        if not owned:
            return 0
        moved = 0
        for offset in range(min(self.vnodes_per_pass, len(owned))):
            vnode_id = owned[(self._cursor + offset) % len(owned)]
            moved += yield from self._reconcile(vnode_id)
        self._cursor = (self._cursor + self.vnodes_per_pass) % max(1, len(owned))
        return moved

    def _reconcile(self, vnode_id: int):
        pulled, pushed, _failed = yield from self.node.reconcile_vnode(
            vnode_id)
        self.keys_pulled += pulled
        self.keys_pushed += pushed
        return pulled + pushed
