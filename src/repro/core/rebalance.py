"""Data-balance manager — one of the pluggable cluster-status modules.

§III.A: "the top layer cluster status manager layer ... contains
components which are pluggable modules providing different
functionalities, like replica management, nodes management, data
balance, etc."  §III.B supplies its input: the per-real-node imbalance
table computed from virtual-node statuses and pushed to ZooKeeper
("this information is calculated and stored locally, and periodically
updated to ZooKeeper").

:class:`Rebalancer` attaches to any Sedna node and periodically:

1. reads the imbalance rows from ``/sedna/imbalance`` and the live
   membership from ``/sedna/real_nodes``;
2. drops rows of departed nodes;
3. when the vnode spread exceeds ``threshold``, moves vnodes from the
   most- to the least-loaded node with version-checked assignment
   rewrites (safe under concurrent rebalancers), changelog entries, and
   an explicit data transfer old-owner → new-owner.
"""

from __future__ import annotations

import ast
from typing import Optional

from ..net.rpc import RpcRejected, RpcTimeout
from ..zk.znode import BadVersionError, NoNodeError
from .cache import ZkLayout
from .hashring import ImbalanceTable
from .node import SednaNode

__all__ = ["Rebalancer"]


class Rebalancer:
    """Periodic vnode-balance process hosted on one Sedna node.

    Parameters
    ----------
    node:
        Host node; its ZooKeeper client, RPC endpoint and mapping cache
        are reused.
    interval:
        Seconds between balance passes.
    threshold:
        Minimum (max - min) vnode-count spread before moving anything.
    max_moves_per_pass:
        Upper bound on vnode moves per pass (gradual rebalancing keeps
        the change-log churn within what the adaptive lease absorbs).
    """

    def __init__(self, node: SednaNode, interval: float = 5.0,
                 threshold: int = 2, max_moves_per_pass: int = 4):
        self.node = node
        self.sim = node.sim
        self.interval = interval
        self.threshold = threshold
        self.max_moves_per_pass = max_moves_per_pass
        self.running = False
        # Stats.
        self.passes = 0
        self.moves = 0
        self.rows_dropped = 0
        metrics = node.obs.metrics if node.obs is not None else None
        if metrics is None:
            from ..obs.metrics import DISABLED
            metrics = DISABLED
        self._m_passes = metrics.counter("rebalance.passes", node=node.name)
        self._m_moves = metrics.counter("rebalance.moves", node=node.name)
        self._m_spread = metrics.gauge("rebalance.vnode_spread",
                                       node=node.name)

    def start(self) -> None:
        """Spawn the balance loop."""
        if self.running:
            return
        self.running = True
        self.sim.process(self._loop(), name=f"{self.node.name}-rebalance")

    def stop(self) -> None:
        """Stop at the next wakeup."""
        self.running = False

    # ------------------------------------------------------------------
    def _loop(self):
        while self.running and self.node.running:
            yield self.sim.timeout(self.interval)
            if not (self.running and self.node.running):
                return
            try:
                yield from self.run_pass()
            except (RpcTimeout, RpcRejected, NoNodeError):
                continue

    def read_table(self):
        """Fetch the imbalance table and prune departed nodes' rows."""
        zk = self.node.zk
        table = ImbalanceTable()
        live = yield from zk.get_children(ZkLayout.REAL_NODES)
        live_set = set(live)
        try:
            rows = yield from zk.get_children(ZkLayout.IMBALANCE)
        except NoNodeError:
            return table, live_set
        for name in rows:
            if name not in live_set:
                try:
                    yield from zk.delete(f"{ZkLayout.IMBALANCE}/{name}")
                    self.rows_dropped += 1
                except (NoNodeError, BadVersionError):
                    pass
                continue
            try:
                data, _ = yield from zk.get(f"{ZkLayout.IMBALANCE}/{name}")
            except NoNodeError:
                continue
            try:
                table.update(name, ast.literal_eval(data.decode()))
            except (ValueError, SyntaxError):
                continue
        return table, live_set

    def run_pass(self):
        """One balance pass; returns the number of vnodes moved."""
        self.passes += 1
        self._m_passes.inc()
        table, live = yield from self.read_table()
        if len(table.rows) < 2:
            return 0
        # Ownership counts come from the host's lease-synced ring — the
        # imbalance rows lag by up to a push interval, and acting on
        # stale counts makes concurrent rebalancers thrash; the table
        # still supplies the activity metrics (keys/reads/writes).
        ring_counts = self.node.cache.ring.load_counts()
        for name in table.rows:
            if name in ring_counts:
                table.rows[name]["vnodes"] = ring_counts[name]
        self._m_spread.set(table.spread("vnodes"))
        moved = 0
        for _ in range(self.max_moves_per_pass):
            donor = table.most_loaded("vnodes")
            receiver = table.least_loaded("vnodes")
            if donor is None or receiver is None or donor == receiver:
                break
            spread = (table.rows[donor]["vnodes"]
                      - table.rows[receiver]["vnodes"])
            if spread <= self.threshold:
                break
            vnode_id = self._pick_vnode(donor)
            if vnode_id is None:
                break
            ok = yield from self._move(vnode_id, donor, receiver)
            if ok:
                moved += 1
                self.moves += 1
                self._m_moves.inc()
                table.rows[donor]["vnodes"] -= 1
                table.rows[receiver]["vnodes"] += 1
            else:
                break
        return moved

    def _pick_vnode(self, donor: str) -> Optional[int]:
        """A vnode of the donor, per our cached ring (approximate)."""
        owned = self.node.cache.ring.vnodes_of(donor)
        return owned[0] if owned else None

    def _move(self, vnode_id: int, donor: str, receiver: str):
        """Version-checked reassignment plus data transfer."""
        zk = self.node.zk
        try:
            data, stat = yield from zk.get(ZkLayout.vnode(vnode_id))
        except NoNodeError:
            return False
        if data.decode() != donor:
            self.node.cache.ring.assign(vnode_id, data.decode())
            return False
        try:
            yield from self.node.write_assignment(vnode_id, receiver,
                                                  stat["version"])
        except (BadVersionError, NoNodeError):
            return False
        self.node.cache.ring.assign(vnode_id, receiver)
        # Ship the vnode's rows donor -> receiver.
        rpc = self.node.rpc
        try:
            result = yield from rpc.call(
                donor, "replica.transfer", {"vnode": vnode_id},
                timeout=self.node.config.request_timeout * 4)
            yield from rpc.call(
                receiver, "replica.install",
                {"vnode": vnode_id, "rows": result["rows"]},
                timeout=self.node.config.request_timeout * 4)
        except (RpcTimeout, RpcRejected):
            pass  # the read path's lazy repair will finish the job
        return True
