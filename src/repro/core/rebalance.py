"""Data-balance manager — one of the pluggable cluster-status modules.

§III.A: "the top layer cluster status manager layer ... contains
components which are pluggable modules providing different
functionalities, like replica management, nodes management, data
balance, etc."  §III.B supplies its input: the per-real-node imbalance
table computed from virtual-node statuses and pushed to ZooKeeper
("this information is calculated and stored locally, and periodically
updated to ZooKeeper").

:class:`Rebalancer` attaches to any Sedna node and periodically:

1. reads the imbalance rows from ``/sedna/imbalance`` and the live
   membership from ``/sedna/real_nodes``;
2. drops rows of departed nodes;
3. scores every node with the weighted *heat* metric (§III.B carries
   read/write frequency, not just capacity) over the activity since
   the previous pass, and plans hottest → coldest moves that strictly
   shrink the heat gap;
4. executes each move as a *live chunked migration*: a forwarding
   window opens on the donor (writes are double-applied to the
   receiver so no acked write is stranded), the vnode streams over in
   byte-budgeted chunks, a digest check verifies the copy, and only
   then does the version-checked assignment flip — concurrent
   rebalancers and mid-flight crashes leave the vnode where it was.

Failed or unfinished migrations live in a pending ledger and resume
next pass (bounded attempts, then abort) instead of being silently
dropped.
"""

from __future__ import annotations

import ast
import math
from dataclasses import dataclass, field
from typing import Optional

from ..net.rpc import RpcRejected, RpcTimeout
from ..zk.znode import BadVersionError, NoNodeError
from .antientropy import digest_diff, dvv_covered
from .cache import ZkLayout
from .hashring import HEAT_WEIGHTS, ImbalanceTable, vnode_heat
from .node import SednaNode

__all__ = ["Rebalancer", "Migration", "plan_move", "pick_migration_vnode",
           "activity_delta"]

#: Fraction of the donor/receiver heat gap reserved as anti-thrash
#: slack: a vnode only moves when its own heat fits well inside the
#: gap, so near-balanced nodes never swap vnodes back and forth.
HEAT_SLACK_FRAC = 0.25

#: Cumulative counters in stats rows (everything else is a level).
_COUNTER_FIELDS = ("reads", "writes")


def activity_delta(current: dict, previous: Optional[dict]) -> dict:
    """Stats row describing activity *since the previous observation*.

    ``reads``/``writes`` are monotone counters, so the delta is the
    difference (clamped at 0 — a restart resets counters); gauges like
    ``keys``/``bytes``/``vnodes`` pass through.  Without a previous
    observation the cumulative row is the delta.
    """
    if previous is None:
        return dict(current)
    out = dict(current)
    for name in _COUNTER_FIELDS:
        out[name] = max(0, current.get(name, 0) - previous.get(name, 0))
    return out


def plan_move(rows: dict[str, dict], *, mode: str = "heat",
              threshold: float = 2.0,
              slack_frac: float = HEAT_SLACK_FRAC,
              weights: Optional[dict] = None,
              ) -> Optional[tuple[str, str, float]]:
    """Pure planner: ``(donor, receiver, heat_limit)`` or None.

    ``heat_limit`` bounds the heat of the vnode allowed to move: a
    move only strictly improves the donor/receiver gap when the moved
    vnode's heat fits under ``gap * (1 - slack_frac) / 2``.  In
    ``count`` mode (legacy behaviour) the donor/receiver come from
    vnode counts and any vnode may move (limit = inf) once the count
    spread exceeds ``threshold``.

    The planner never returns ``donor == receiver``.
    """
    if len(rows) < 2:
        return None
    table = ImbalanceTable()
    for name in sorted(rows):
        table.update(name, rows[name])
    if mode == "count":
        donor = table.most_loaded("vnodes")
        receiver = table.least_loaded("vnodes")
        if donor is None or receiver is None or donor == receiver:
            return None
        spread = (table.rows[donor].get("vnodes", 0)
                  - table.rows[receiver].get("vnodes", 0))
        if spread <= threshold:
            return None
        return donor, receiver, math.inf
    if mode != "heat":
        raise ValueError(f"unknown rebalance mode {mode!r}")
    donor = table.hottest(weights)
    receiver = table.coldest(weights)
    if donor is None or receiver is None or donor == receiver:
        return None
    gap = table.heat(donor, weights) - table.heat(receiver, weights)
    limit = gap * (1.0 - slack_frac) / 2.0
    w = weights if weights is not None else HEAT_WEIGHTS
    if limit < w.get("vnodes", 0.0):
        # Not even an idle vnode can move without overshooting.
        return None
    return donor, receiver, limit


def pick_migration_vnode(owned: list[int], stats: dict[int, dict],
                         limit: float = math.inf,
                         weights: Optional[dict] = None) -> Optional[int]:
    """The hottest of the donor's vnodes whose heat fits ``limit``.

    Deterministic tiebreak: equal heat prefers the lowest vnode id.
    Vnodes without a stats row count as idle (base heat only).
    """
    best: Optional[int] = None
    best_heat = -1.0
    for vnode_id in sorted(owned):
        heat = vnode_heat(stats.get(vnode_id, {}), weights)
        if heat <= limit and heat > best_heat:
            best = vnode_id
            best_heat = heat
    return best


@dataclass
class Migration:
    """Ledger entry for one vnode move (live, resumable, abortable)."""

    vnode: int
    donor: str
    receiver: str
    state: str = "pending"          # pending -> copying -> done|aborted
    cursor: int = 0                 # chunk-stream position in the snapshot
    attempts: int = 0
    chunks: int = 0
    bytes_moved: int = 0
    reason: str = ""                # last failure, '' while healthy
    started_at: float = 0.0
    history: list[str] = field(default_factory=list)

    def note(self, event: str) -> None:
        self.history.append(event)


class Rebalancer:
    """Periodic load-aware balance process hosted on one Sedna node.

    Parameters
    ----------
    node:
        Host node; its ZooKeeper client, RPC endpoint and mapping cache
        are reused.
    interval:
        Seconds between balance passes.
    threshold:
        Count-mode only: minimum (max - min) vnode-count spread before
        moving anything.
    max_moves_per_pass:
        Upper bound on *new* migrations started per pass (gradual
        rebalancing keeps the change-log churn within what the
        adaptive lease absorbs).
    mode:
        ``"heat"`` (default) scores nodes by the weighted activity
        metric; ``"count"`` reproduces the legacy count-equalizing
        behaviour (still with live chunked migration).
    pass_byte_budget:
        Migration bytes shipped per pass across all migrations; an
        unfinished copy parks in the ledger and resumes next pass.
    chunk_bytes:
        Byte budget per ``migrate.chunk`` pull.
    max_attempts:
        Begin/copy/verify failures tolerated per migration before it
        is abandoned (``aborted``).
    """

    def __init__(self, node: SednaNode, interval: float = 5.0,
                 threshold: int = 2, max_moves_per_pass: int = 4,
                 mode: str = "heat", pass_byte_budget: int = 512 * 1024,
                 chunk_bytes: int = 16 * 1024, max_attempts: int = 4,
                 weights: Optional[dict] = None):
        if mode not in ("heat", "count"):
            raise ValueError(f"unknown rebalance mode {mode!r}")
        self.node = node
        self.sim = node.sim
        self.interval = interval
        self.threshold = threshold
        self.max_moves_per_pass = max_moves_per_pass
        self.mode = mode
        self.pass_byte_budget = pass_byte_budget
        self.chunk_bytes = chunk_bytes
        self.max_attempts = max_attempts
        self.weights = dict(weights if weights is not None else HEAT_WEIGHTS)
        self.running = False
        self._in_pass = False
        self._loop_alive = False
        # Ledger.
        self.pending: dict[int, Migration] = {}
        self.completed: list[Migration] = []
        # Activity baselines for between-pass deltas.
        self._prev_rows: dict[str, dict] = {}
        self._prev_vstats: dict[tuple[str, int], dict] = {}
        # Stats.
        self.passes = 0
        self.moves = 0
        self.rows_dropped = 0
        self.chunks = 0
        self.bytes_moved = 0
        self.aborts = 0
        self.transfer_failures = 0
        metrics = node.obs.metrics if node.obs is not None else None
        if metrics is None:
            from ..obs.metrics import DISABLED
            metrics = DISABLED
        self._m_passes = metrics.counter("rebalance.passes", node=node.name)
        self._m_moves = metrics.counter("rebalance.moves", node=node.name)
        self._m_spread = metrics.gauge("rebalance.vnode_spread",
                                       node=node.name)
        self._m_heat_spread = metrics.gauge("rebalance.heat_spread",
                                            node=node.name)
        self._m_chunks = metrics.counter("migrate.chunks", node=node.name)
        self._m_bytes = metrics.counter("migrate.bytes", node=node.name)
        self._m_aborts = metrics.counter("migrate.aborts", node=node.name)

    def start(self) -> None:
        """Spawn the balance loop (or revive it after a host crash)."""
        if self.running and self._loop_alive:
            return
        self.running = True
        self._loop_alive = True
        self.sim.process(self._loop(), name=f"{self.node.name}-rebalance")

    def stop(self) -> None:
        """Stop at the next wakeup."""
        self.running = False

    def drain(self, timeout: float = 30.0):
        """Wait until no migration is pending or in flight (bounded).

        Run as ``yield from rebalancer.drain()`` before final-state
        checks: a parked copy is harmless (the donor still owns the
        vnode) but letting it finish exercises the cutover too.
        """
        deadline = self.sim.now + timeout
        while ((self._in_pass or self.pending)
               and self.sim.now < deadline and self.running
               and self._loop_alive and self.node.running):
            yield self.sim.timeout(self.interval / 2.0)

    def abort_pending(self, reason: str = "drained") -> None:
        """Abort every parked migration (quiesce cleanup: a parked copy
        is safe — the donor still owns the vnode — but the ledger must
        end with every entry resolved)."""
        for vnode_id in sorted(self.pending):
            self._abort(self.pending[vnode_id], reason)

    def ledger(self) -> list[dict]:
        """Summary rows for every migration driven (resolved first,
        then still-parked ones) — what chaos reports and invariants
        consume."""
        entries = list(self.completed)
        entries.extend(self.pending[v] for v in sorted(self.pending))
        return [{"vnode": m.vnode, "donor": m.donor,
                 "receiver": m.receiver, "state": m.state,
                 "attempts": m.attempts, "chunks": m.chunks,
                 "bytes": m.bytes_moved, "reason": m.reason}
                for m in entries]

    # ------------------------------------------------------------------
    def _loop(self):
        pass_timer = self.sim.recurring(self.interval)
        try:
            while self.running and self.node.running:
                yield pass_timer.tick()
                if not (self.running and self.node.running):
                    return
                try:
                    self._in_pass = True
                    yield from self.run_pass()
                except (RpcTimeout, RpcRejected, NoNodeError):
                    continue
                finally:
                    self._in_pass = False
        finally:
            self._loop_alive = False

    def read_table(self):
        """Fetch the imbalance table and prune departed nodes' rows."""
        zk = self.node.zk
        table = ImbalanceTable()
        live = yield from zk.get_children(ZkLayout.REAL_NODES)
        live_set = set(live)
        try:
            rows = yield from zk.get_children(ZkLayout.IMBALANCE)
        except NoNodeError:
            return table, live_set
        for name in rows:
            if name not in live_set:
                try:
                    yield from zk.delete(f"{ZkLayout.IMBALANCE}/{name}")
                    self.rows_dropped += 1
                except (NoNodeError, BadVersionError):
                    pass
                continue
            try:
                data, _ = yield from zk.get(f"{ZkLayout.IMBALANCE}/{name}")
            except NoNodeError:
                continue
            try:
                table.update(name, ast.literal_eval(data.decode()))
            except (ValueError, SyntaxError):
                continue
        return table, live_set

    def run_pass(self):
        """One balance pass; returns the number of vnodes moved."""
        self.passes += 1
        self._m_passes.inc()
        table, live = yield from self.read_table()
        if len(table.rows) < 2:
            return 0
        # Ownership counts come from the host's lease-synced ring — the
        # imbalance rows lag by up to a push interval, and acting on
        # stale counts makes concurrent rebalancers thrash; the table
        # still supplies the activity metrics (keys/reads/writes).
        ring_counts = self.node.cache.ring.load_counts()
        for name in table.rows:
            if name in ring_counts:
                table.rows[name]["vnodes"] = ring_counts[name]
        # Heat works on activity *since the last pass*: a node that
        # migrated its hot vnode away must stop looking hot, or every
        # later pass would keep draining it.
        raw_rows = {name: dict(row) for name, row in table.rows.items()}
        for name in table.rows:
            table.rows[name] = activity_delta(table.rows[name],
                                              self._prev_rows.get(name))
        self._prev_rows = raw_rows
        self._m_spread.set(table.spread("vnodes"))
        self._m_heat_spread.set(table.heat_spread(self.weights))

        budget = self.pass_byte_budget
        moved = 0
        # 1. Resume parked migrations before planning anything new.
        for vnode_id in sorted(self.pending):
            if budget <= 0:
                break
            migration = self.pending[vnode_id]
            if migration.receiver not in live:
                self._abort(migration, "receiver-dead")
                continue
            if migration.donor not in live:
                self._abort(migration, "donor-dead")
                continue
            done, budget = yield from self._drive(migration, budget)
            if done:
                moved += 1
        # 2. Plan new moves off the (delta-heat) table.
        started = 0
        while started < self.max_moves_per_pass and budget > 0:
            plan = plan_move(table.rows, mode=self.mode,
                             threshold=self.threshold,
                             weights=self.weights)
            if plan is None:
                break
            donor, receiver, limit = plan
            vnode_id, stats = yield from self._pick_vnode(donor, limit)
            if vnode_id is None:
                break
            started += 1
            migration = Migration(vnode=vnode_id, donor=donor,
                                  receiver=receiver,
                                  started_at=self.sim.now)
            self.pending[vnode_id] = migration
            done, budget = yield from self._drive(migration, budget)
            if done:
                moved += 1
            # Re-plan off adjusted rows either way: an in-flight copy
            # still ends up moving this vnode's heat to the receiver.
            self._shift_row(table, donor, receiver, stats)
        return moved

    def _shift_row(self, table: ImbalanceTable, donor: str, receiver: str,
                   stats: dict) -> None:
        """Move one vnode's worth of load between two table rows."""
        if donor not in table.rows or receiver not in table.rows:
            return
        sign = {donor: -1, receiver: +1}
        for name in (donor, receiver):
            row = table.rows[name]
            row["vnodes"] = row.get("vnodes", 0) + sign[name]
            for field_name in ("keys", "bytes", "reads", "writes"):
                shift = sign[name] * stats.get(field_name, 0)
                row[field_name] = max(0, row.get(field_name, 0) + shift)

    def _pick_vnode(self, donor: str, limit: float = math.inf):
        """(vnode id, its delta-activity row) for the donor, or (None, {}).

        Asks the donor for its live per-vnode stats feed and picks the
        hottest vnode under ``limit`` (idle fallback keeps count mode
        working when the donor cannot answer).
        """
        owned = self.node.cache.ring.vnodes_of(donor)
        owned = [v for v in owned if v not in self.pending]
        if not owned:
            return None, {}
        try:
            reply = yield from self.node.rpc.call(
                donor, "stats.vnodes", {},
                timeout=self.node.config.request_timeout)
            raw = reply["stats"]
        except (RpcTimeout, RpcRejected):
            raw = {}
        stats = {}
        for vnode_id in owned:
            row = raw.get(vnode_id, {})
            stats[vnode_id] = activity_delta(
                row, self._prev_vstats.get((donor, vnode_id)))
            self._prev_vstats[(donor, vnode_id)] = dict(row)
        vnode_id = pick_migration_vnode(owned, stats, limit, self.weights)
        if vnode_id is None:
            return None, {}
        return vnode_id, stats[vnode_id]

    # ------------------------------------------------------------------
    # Migration driver
    # ------------------------------------------------------------------
    def _drive(self, migration: Migration, budget: int):
        """Advance one migration; returns (committed, remaining budget).

        Any RPC failure parks the migration for a retry next pass
        (bounded by ``max_attempts``) — never a silent drop.
        """
        rpc = self.node.rpc
        timeout = self.node.config.request_timeout
        vnode_id = migration.vnode
        try:
            if migration.state == "pending":
                yield from rpc.call(
                    migration.donor, "migrate.begin",
                    {"vnode": vnode_id, "to": migration.receiver},
                    timeout=timeout)
                migration.state = "copying"
                migration.cursor = 0
                migration.note("begin")
            # Chunked copy: donor walks its begin-time snapshot.
            while True:
                chunk = yield from rpc.call(
                    migration.donor, "migrate.chunk",
                    {"vnode": vnode_id, "cursor": migration.cursor,
                     "budget": min(self.chunk_bytes, max(budget, 1))},
                    timeout=timeout)
                if chunk["rows"] or chunk.get("dvv_rows"):
                    yield from rpc.call(
                        migration.receiver, "migrate.forward",
                        {"vnode": vnode_id, "rows": chunk["rows"],
                         "lww": chunk.get("lww", {}),
                         "dvv_rows": chunk.get("dvv_rows", {})},
                        timeout=timeout)
                migration.cursor = chunk["next"]
                migration.chunks += 1
                migration.bytes_moved += chunk["bytes"]
                self.chunks += 1
                self.bytes_moved += chunk["bytes"]
                self._m_chunks.inc()
                self._m_bytes.inc(chunk["bytes"])
                budget -= max(chunk["bytes"], 1)
                if chunk["done"]:
                    break
                if budget <= 0:
                    migration.note("parked")
                    return False, 0
            # Verified cutover: the receiver must hold everything the
            # donor holds before the assignment flips.
            ok = yield from self._verify(migration)
            if not ok:
                self._retry(migration, "digest-mismatch")
                return False, budget
            committed = yield from self._cutover(migration)
            if not committed:
                self._abort(migration, "lost-ownership-race")
                return False, budget
            migration.state = "done"
            migration.note("committed")
            self.pending.pop(vnode_id, None)
            self.completed.append(migration)
            self.moves += 1
            self._m_moves.inc()
            return True, budget
        except (RpcTimeout, RpcRejected) as err:
            self.transfer_failures += 1
            self._retry(migration, type(err).__name__)
            return False, budget

    def _verify(self, migration: Migration):
        """Digest check + bounded repair pulls; True when receiver has
        every key/version the donor has for the vnode."""
        rpc = self.node.rpc
        timeout = self.node.config.request_timeout
        vnode_id = migration.vnode
        for _ in range(3):
            donor_d = yield from rpc.call(
                migration.donor, "replica.digest", {"vnode": vnode_id},
                timeout=timeout)
            recv_d = yield from rpc.call(
                migration.receiver, "replica.digest", {"vnode": vnode_id},
                timeout=timeout)
            pull, _push = digest_diff(recv_d["digest"], donor_d["digest"])
            # Causal rows: the receiver must have *seen* every donor
            # event (vv dominance) before the assignment flips.
            dvv_pull = dvv_covered(donor_d.get("dvv", {}),
                                   recv_d.get("dvv", {}))
            if not pull and not dvv_pull:
                return True
            fetched = yield from rpc.call(
                migration.donor, "replica.fetch",
                {"keys": pull, "dvv_keys": dvv_pull},
                timeout=timeout)
            if fetched["rows"] or fetched.get("dvv_rows"):
                yield from rpc.call(
                    migration.receiver, "migrate.forward",
                    {"vnode": vnode_id, "rows": fetched["rows"],
                     "lww": fetched.get("lww", {}),
                     "dvv_rows": fetched.get("dvv_rows", {})},
                    timeout=timeout)
            migration.note(f"verify-pull:{len(pull) + len(dvv_pull)}")
        return False

    def _cutover(self, migration: Migration):
        """Version-checked assignment flip, then settle/end notices."""
        zk = self.node.zk
        rpc = self.node.rpc
        timeout = self.node.config.request_timeout
        vnode_id = migration.vnode
        try:
            data, stat = yield from zk.get(ZkLayout.vnode(vnode_id))
        except NoNodeError:
            return False
        if data.decode() != migration.donor:
            # A concurrent rebalancer (or recovery) moved it first.
            self.node.cache.ring.assign(vnode_id, data.decode())
            return False
        try:
            yield from self.node.write_assignment(vnode_id,
                                                  migration.receiver,
                                                  stat["version"])
        except (BadVersionError, NoNodeError):
            return False
        self.node.cache.ring.assign(vnode_id, migration.receiver)
        # Best-effort notices; the forwarding window and the receiver's
        # post-cutover reconcile cover a lost notice.
        try:
            yield from rpc.call(migration.receiver, "migrate.settle",
                                {"vnode": vnode_id}, timeout=timeout)
        except (RpcTimeout, RpcRejected):
            migration.note("settle-lost")
        try:
            yield from rpc.call(migration.donor, "migrate.end",
                                {"vnode": vnode_id, "committed": True},
                                timeout=timeout)
        except (RpcTimeout, RpcRejected):
            migration.note("end-lost")
        return True

    def _retry(self, migration: Migration, reason: str) -> None:
        """Park a failed migration for the next pass (bounded)."""
        migration.attempts += 1
        migration.reason = reason
        migration.state = "pending"
        migration.cursor = 0
        migration.note(f"retry:{reason}")
        if migration.attempts >= self.max_attempts:
            self._abort(migration, reason)

    def _abort(self, migration: Migration, reason: str) -> None:
        """Give up on a migration: the donor keeps the vnode."""
        migration.state = "aborted"
        migration.reason = reason
        migration.note(f"abort:{reason}")
        self.pending.pop(migration.vnode, None)
        self.completed.append(migration)
        self.aborts += 1
        self._m_aborts.inc()
        self.sim.process(self._close_donor_window(migration),
                         name=f"{self.node.name}-abort-{migration.vnode}")

    def _close_donor_window(self, migration: Migration):
        """Best-effort donor-side cleanup after an abort."""
        try:
            yield from self.node.rpc.call(
                migration.donor, "migrate.end",
                {"vnode": migration.vnode, "committed": False},
                timeout=self.node.config.request_timeout)
        except (RpcTimeout, RpcRejected):
            migration.note("abort-end-lost")
