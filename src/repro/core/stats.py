"""Measurement helpers shared by tests and the benchmark harness."""

from __future__ import annotations

import math
from typing import Iterable

__all__ = ["summarize", "percentile", "spread_stats", "LatencySeries"]


def percentile(values: list[float], pct: float) -> float:
    """The ``pct`` percentile (0-100) by linear interpolation."""
    if not values:
        raise ValueError("empty series")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    rank = (pct / 100.0) * (len(ordered) - 1)
    lo = math.floor(rank)
    hi = math.ceil(rank)
    if lo == hi:
        return ordered[lo]
    frac = rank - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


def summarize(values: Iterable[float]) -> dict:
    """count/mean/min/max/p50/p95/p99 of a latency series (seconds)."""
    data = list(values)
    if not data:
        return {"count": 0}
    return {
        "count": len(data),
        "mean": sum(data) / len(data),
        "min": min(data),
        "max": max(data),
        "p50": percentile(data, 50),
        "p95": percentile(data, 95),
        "p99": percentile(data, 99),
        "total": sum(data),
    }


def spread_stats(values: Iterable[float]) -> dict:
    """max/min/mean/spread of a per-node series, plus the relative
    spread (spread over mean — the balance number the rebalance bench
    compares count-only vs load-aware on)."""
    data = list(values)
    if not data:
        return {"count": 0, "max": 0.0, "min": 0.0, "mean": 0.0,
                "spread": 0.0, "rel_spread": 0.0}
    mean = sum(data) / len(data)
    spread = max(data) - min(data)
    return {
        "count": len(data),
        "max": max(data),
        "min": min(data),
        "mean": mean,
        "spread": spread,
        "rel_spread": spread / mean if mean else 0.0,
    }


class LatencySeries:
    """Accumulates (op_index, cumulative_ms) points — the exact series
    the paper's Fig. 7/8 plot (cumulative time spent vs. operations)."""

    def __init__(self, label: str):
        self.label = label
        self.points: list[tuple[int, float]] = []
        self._total = 0.0
        self._count = 0

    def record(self, latency_s: float, every: int = 1000) -> None:
        """Add one operation; sample a plot point every ``every`` ops.

        Between sample points the tail rides in ``_total``/``_count``;
        :meth:`finish` flushes it as a final point, so a series whose
        count is not a multiple of ``every`` loses nothing."""
        if every < 1:
            raise ValueError("every must be >= 1")
        self._total += latency_s
        self._count += 1
        if self._count % every == 0:
            self.points.append((self._count, self._total * 1e3))

    @property
    def count(self) -> int:
        return self._count

    @property
    def total_ms(self) -> float:
        """Cumulative time spent, in milliseconds (the Fig. 7 y-axis)."""
        return self._total * 1e3

    def finish(self) -> None:
        """Force a final plot point at the true count.

        No-op on an empty series — a ``(0, 0.0)`` point would plot a
        spurious origin marker and divide-by-zero downstream rates."""
        if self._count == 0:
            return
        if not self.points or self.points[-1][0] != self._count:
            self.points.append((self._count, self.total_ms))
