"""SednaClient — the application-facing API of §III.F.

``write_latest`` / ``write_all`` / ``read_latest`` / ``read_all`` with
the paper's reply vocabulary (``ok`` / ``outdated`` / ``failure``).
Requests are "directly routed to a server in data center" (§III.A):
the client picks a coordinator node (round-robin by default) and that
node runs the quorum fan-out.

All operations are process helpers — use ``yield from`` inside a
simulation process.  Per-operation latencies are recorded for the
benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..net.rpc import RpcNode, RpcRejected, RpcTimeout
from ..net.simulator import Simulator
from ..net.transport import Network
from ..storage.versioned import ValueElement, WriteOutcome
from ..zk.client import ZkClient
from ..zk.server import ZkConfig
from .cache import MappingCache
from .config import SednaConfig
from .coordinator import QuorumCoordinator
from .types import DEFAULT_DATASET, DEFAULT_TABLE, FullKey

__all__ = ["CausalReadResult", "CausalWriteAck", "SednaClient",
           "SmartSednaClient"]


def _init_client_obs(client, obs) -> None:
    """Shared client-side instrumentation setup (both client flavours).

    The client is where a request-scoped trace is minted — it is the
    entry point of every operation — and where the end-to-end latency
    histograms live.  Without an obs bundle every handle is a no-op.
    """
    client._tracer = obs.tracer if obs is not None else None
    client.rpc.tracer = client._tracer
    metrics = obs.metrics if obs is not None else None
    if metrics is None:
        from ..obs.metrics import DISABLED
        metrics = DISABLED
    client._m_write_lat = metrics.histogram("client.write_seconds",
                                            node=client.name)
    client._m_read_lat = metrics.histogram("client.read_seconds",
                                           node=client.name)
    client._m_failures = metrics.counter("client.failures", node=client.name)


def _client_trace(self, name: str):
    """Mint a new request-scoped trace (None when tracing is off)."""
    if self._tracer is None:
        return None
    return self._tracer.start_trace(f"client.{name}", node=self.name)


def _client_trace_end(self, span, **tags) -> None:
    if self._tracer is not None:
        self._tracer.finish(span, **tags)


def _client_record_write(self, t0: float) -> None:
    dt = self.sim.now - t0
    self.write_latencies.append(dt)
    self._m_write_lat.observe(dt)


def _client_record_read(self, t0: float) -> None:
    dt = self.sim.now - t0
    self.read_latencies.append(dt)
    self._m_read_lat.observe(dt)


def _client_fail(self) -> None:
    self.failures += 1
    self._m_failures.inc()


@dataclass(frozen=True)
class CausalWriteAck:
    """Result of :meth:`write_causal` (docs/protocols.md §16).

    ``context`` is the minting replica's causal context in wire form;
    passing it to the next :meth:`write_causal` on the same key
    supersedes exactly the versions in ``siblings`` (which is why the
    ack carries them — overwriting is always informed, never silent).
    """

    status: str
    dot: Optional[tuple]
    context: tuple
    siblings: tuple = ()

    @property
    def ok(self) -> bool:
        return self.status == WriteOutcome.OK


@dataclass(frozen=True)
class CausalReadResult:
    """Result of :meth:`read_causal` (docs/protocols.md §16).

    ``siblings`` holds every concurrent version as (source, timestamp,
    value) triples; ``context`` is the causal context to thread into
    the write that reconciles them.
    """

    found: bool
    siblings: tuple
    context: tuple

    @property
    def values(self) -> list:
        """Sibling values only, storage order (oldest first)."""
        return [v for _s, _ts, v in self.siblings]


def _causal_write_ack(result: dict, ctx) -> CausalWriteAck:
    return CausalWriteAck(
        status=result["status"],
        dot=tuple(result["dot"]) if result.get("dot") else None,
        context=tuple((r, c) for r, c in result.get("context", ctx)),
        siblings=tuple((s, ts, v)
                       for s, ts, v in result.get("siblings", [])))


def _causal_read_result(result: dict) -> CausalReadResult:
    return CausalReadResult(
        found=bool(result.get("found")),
        siblings=tuple((s, ts, v) for s, ts, v in result.get("siblings", [])),
        context=tuple((r, c) for r, c in result.get("context", [])))


class SednaClient:
    """Client handle bound to a set of coordinator nodes.

    Parameters
    ----------
    sim, network:
        Simulation substrate.
    name:
        Unique endpoint name; doubles as the write *source* identity
        used by ``write_all`` value lists.
    nodes:
        Coordinator endpoint names (usually every Sedna real node).
    config:
        The cluster's :class:`~repro.core.config.SednaConfig`.
    pinned:
        When set, always use this node as coordinator instead of
        round-robin (the paper's experiments run one client per server
        against its local Sedna service).
    """

    def __init__(self, sim: Simulator, network: Network, name: str,
                 nodes: list[str], config: Optional[SednaConfig] = None,
                 pinned: Optional[str] = None, obs=None):
        self.sim = sim
        self.name = name
        self.nodes = list(nodes)
        self.config = config if config is not None else SednaConfig()
        self.rpc = RpcNode(network, name)
        self.pinned = pinned
        self._rr = 0
        self._last_ts = 0.0
        # Measurements for the harness.
        self.write_latencies: list[float] = []
        self.read_latencies: list[float] = []
        self.failures = 0
        _init_client_obs(self, obs)

    # -- plumbing ---------------------------------------------------------
    _trace = _client_trace
    _trace_end = _client_trace_end
    _record_write = _client_record_write
    _record_read = _client_record_read
    _fail = _client_fail
    def _timestamp(self) -> float:
        """Strictly increasing per-client timestamp (write versions)."""
        ts = self.sim.now
        if ts <= self._last_ts:
            ts = self._last_ts + 1e-9
        self._last_ts = ts
        return ts

    def _coordinator(self) -> str:
        if self.pinned is not None:
            return self.pinned
        node = self.nodes[self._rr % len(self.nodes)]
        self._rr += 1
        return node

    def _request(self, method: str, args: Any):
        """One coordinator RPC with a single failover retry."""
        coordinator = self._coordinator()
        try:
            result = yield from self.rpc.call(coordinator, method, args,
                                              timeout=self.config.client_timeout)
            return result
        except (RpcTimeout, RpcRejected):
            fallback = self._coordinator()
            if fallback == coordinator and len(self.nodes) > 1:
                fallback = self._coordinator()
            result = yield from self.rpc.call(fallback, method, args,
                                              timeout=self.config.client_timeout)
            return result

    @staticmethod
    def _encode(key: str, table: str, dataset: str) -> str:
        return FullKey(dataset=dataset, table=table, key=key).encoded()

    # -- write APIs (§III.F.1) ------------------------------------------------
    def _write(self, mode: str, key: str, value: Any, table: str,
               dataset: str):
        args = {"key": self._encode(key, table, dataset), "value": value,
                "ts": self._timestamp(), "source": self.name, "mode": mode}
        t0 = self.sim.now
        span = self._trace("write")
        try:
            result = yield from self._request("sedna.write", args)
        except (RpcTimeout, RpcRejected):
            self._fail()
            self._record_write(t0)
            self._trace_end(span, status="failure")
            return WriteOutcome.FAILURE
        self._record_write(t0)
        self._trace_end(span, status=result["status"])
        return result["status"]

    def write_latest(self, key: str, value: Any,
                     table: str = DEFAULT_TABLE,
                     dataset: str = DEFAULT_DATASET):
        """Lock-free last-write-wins write; returns ok/outdated/failure."""
        result = yield from self._write("latest", key, value, table, dataset)
        return result

    def write_all(self, key: str, value: Any,
                  table: str = DEFAULT_TABLE,
                  dataset: str = DEFAULT_DATASET):
        """Per-source value-list write; returns ok/outdated/failure."""
        result = yield from self._write("all", key, value, table, dataset)
        return result

    # -- read APIs (§III.F.2) -------------------------------------------------
    def read_latest(self, key: str, table: str = DEFAULT_TABLE,
                    dataset: str = DEFAULT_DATASET):
        """The freshest value regardless of writer; None when absent."""
        args = {"key": self._encode(key, table, dataset), "mode": "latest"}
        t0 = self.sim.now
        span = self._trace("read")
        try:
            result = yield from self._request("sedna.read", args)
        except (RpcTimeout, RpcRejected):
            self._fail()
            self._record_read(t0)
            self._trace_end(span, status="failure")
            return None
        self._record_read(t0)
        self._trace_end(span, status="ok", found=bool(result.get("found")))
        if not result.get("found"):
            return None
        return result["value"]

    def read_latest_element(self, key: str, table: str = DEFAULT_TABLE,
                            dataset: str = DEFAULT_DATASET):
        """Like :meth:`read_latest` but returns the full element."""
        args = {"key": self._encode(key, table, dataset), "mode": "latest"}
        span = self._trace("read")
        try:
            result = yield from self._request("sedna.read", args)
        except (RpcTimeout, RpcRejected):
            self._fail()
            self._trace_end(span, status="failure")
            return None
        self._trace_end(span, status="ok", found=bool(result.get("found")))
        if not result.get("found"):
            return None
        return ValueElement(result["source"], result["ts"], result["value"])

    def read_all(self, key: str, table: str = DEFAULT_TABLE,
                 dataset: str = DEFAULT_DATASET):
        """Every element of the value list ("all the values corresponding
        that key", §III.F.2)."""
        args = {"key": self._encode(key, table, dataset), "mode": "all"}
        t0 = self.sim.now
        span = self._trace("read_all")
        try:
            result = yield from self._request("sedna.read", args)
        except (RpcTimeout, RpcRejected):
            self._fail()
            self._record_read(t0)
            self._trace_end(span, status="failure")
            return []
        self._record_read(t0)
        self._trace_end(span, status="ok")
        return [ValueElement(s, ts, v) for s, ts, v in result["elements"]]

    def delete(self, key: str, table: str = DEFAULT_TABLE,
               dataset: str = DEFAULT_DATASET):
        """Quorum delete of a key."""
        args = {"key": self._encode(key, table, dataset)}
        span = self._trace("delete")
        try:
            yield from self._request("sedna.delete", args)
            self._trace_end(span, status="ok")
            return True
        except (RpcTimeout, RpcRejected):
            self._fail()
            self._trace_end(span, status="failure")
            return False

    # -- causal APIs (docs/protocols.md §16) ----------------------------------
    def write_causal(self, key: str, value: Any, context=None,
                     table: str = DEFAULT_TABLE,
                     dataset: str = DEFAULT_DATASET):
        """Dotted-version-vector write: concurrent writers each survive
        as siblings instead of being silently last-write-wins'd.

        ``context`` is the causal context from a prior
        :meth:`read_causal` (or a prior write's ack) on this key; omit
        it for a blind write, which the server keeps *alongside* any
        concurrent versions.
        """
        args = {"key": self._encode(key, table, dataset), "value": value,
                "ts": self._timestamp(), "source": self.name,
                "ctx": [list(pair) for pair in (context or ())]}
        t0 = self.sim.now
        span = self._trace("write_causal")
        try:
            result = yield from self._request("sedna.cwrite", args)
        except (RpcTimeout, RpcRejected):
            self._fail()
            self._record_write(t0)
            self._trace_end(span, status="failure")
            return CausalWriteAck(WriteOutcome.FAILURE, None,
                                  tuple(tuple(p) for p in (context or ())))
        self._record_write(t0)
        self._trace_end(span, status=result["status"])
        return _causal_write_ack(result, context or ())

    def read_causal(self, key: str, table: str = DEFAULT_TABLE,
                    dataset: str = DEFAULT_DATASET):
        """Quorum read of every surviving sibling plus the causal
        context to thread into the reconciling write; None on failure.
        """
        args = {"key": self._encode(key, table, dataset)}
        t0 = self.sim.now
        span = self._trace("read_causal")
        try:
            result = yield from self._request("sedna.cread", args)
        except (RpcTimeout, RpcRejected):
            self._fail()
            self._record_read(t0)
            self._trace_end(span, status="failure")
            return None
        self._record_read(t0)
        self._trace_end(span, status="ok", found=bool(result.get("found")))
        return _causal_read_result(result)

    # -- batch APIs (docs/protocols.md §12) -----------------------------------
    def multi_write(self, items: dict, mode: str = "latest",
                    table: str = DEFAULT_TABLE,
                    dataset: str = DEFAULT_DATASET):
        """Batched write: {key: value} in, {key: ok/outdated/failure} out.

        The coordinator groups keys by virtual node and issues one
        ``replica.mwrite`` per replica per vnode-group, so the N-way
        round-trip cost is paid per *group*, not per key.
        """
        enc = {self._encode(k, table, dataset): k for k in items}
        entries = [{"key": ek, "value": items[uk], "ts": self._timestamp(),
                    "source": self.name, "mode": mode}
                   for ek, uk in enc.items()]
        t0 = self.sim.now
        span = self._trace("mwrite")
        try:
            reply = yield from self._request("sedna.mwrite",
                                             {"entries": entries})
        except (RpcTimeout, RpcRejected):
            self._fail()
            self._record_write(t0)
            self._trace_end(span, status="failure")
            return {uk: WriteOutcome.FAILURE for uk in items}
        self._record_write(t0)
        self._trace_end(span, status="ok", keys=len(entries))
        results = reply["results"]
        return {uk: results.get(ek, {}).get("status", WriteOutcome.FAILURE)
                for ek, uk in enc.items()}

    def multi_read(self, keys, table: str = DEFAULT_TABLE,
                   dataset: str = DEFAULT_DATASET):
        """Batched ``read_latest``: {key: value or None (miss/failure)}."""
        enc = {self._encode(k, table, dataset): k for k in keys}
        t0 = self.sim.now
        span = self._trace("mread")
        try:
            reply = yield from self._request(
                "sedna.mread", {"keys": list(enc), "mode": "latest"})
        except (RpcTimeout, RpcRejected):
            self._fail()
            self._record_read(t0)
            self._trace_end(span, status="failure")
            return {uk: None for uk in enc.values()}
        self._record_read(t0)
        self._trace_end(span, status="ok", keys=len(enc))
        out = {}
        for ek, uk in enc.items():
            r = reply["results"].get(ek)
            out[uk] = r["value"] if r and r.get("found") else None
        return out

    def multi_read_all(self, keys, table: str = DEFAULT_TABLE,
                       dataset: str = DEFAULT_DATASET):
        """Batched ``read_all``: {key: [ValueElement, ...]}."""
        enc = {self._encode(k, table, dataset): k for k in keys}
        t0 = self.sim.now
        span = self._trace("mread")
        try:
            reply = yield from self._request(
                "sedna.mread", {"keys": list(enc), "mode": "all"})
        except (RpcTimeout, RpcRejected):
            self._fail()
            self._record_read(t0)
            self._trace_end(span, status="failure")
            return {uk: [] for uk in enc.values()}
        self._record_read(t0)
        self._trace_end(span, status="ok", keys=len(enc))
        out = {}
        for ek, uk in enc.items():
            r = reply["results"].get(ek) or {}
            out[uk] = [ValueElement(s, ts, v)
                       for s, ts, v in r.get("elements", [])]
        return out

    def multi_delete(self, keys, table: str = DEFAULT_TABLE,
                     dataset: str = DEFAULT_DATASET):
        """Batched delete: {key: True/False} per-key success."""
        enc = {self._encode(k, table, dataset): k for k in keys}
        span = self._trace("mdelete")
        try:
            reply = yield from self._request("sedna.mdelete",
                                             {"keys": list(enc)})
        except (RpcTimeout, RpcRejected):
            self._fail()
            self._trace_end(span, status="failure")
            return {uk: False for uk in enc.values()}
        self._trace_end(span, status="ok", keys=len(enc))
        results = reply["results"]
        return {uk: results.get(ek, {}).get("status") == "ok"
                for ek, uk in enc.items()}


class SmartSednaClient:
    """Zero-hop client: coordinates quorums itself (§VII).

    "Sedna uses a zero-hop DHT that each node caches enough routing
    information locally to route a request to the appropriate node
    directly."  The smart client holds its own mapping cache (synced
    from ZooKeeper with the same adaptive lease as the nodes) and fans
    writes/reads out to the replicas in parallel without an
    intermediate coordinator hop.  This is the configuration the
    paper's §VI load-test programs use: "Sedna writes every key value
    pair three times into different real nodes parallel, and reads
    every key value pair three times from different real nodes."

    Call :meth:`connect` (with ``yield from``) before the first
    operation.
    """

    def __init__(self, sim: Simulator, network: Network, name: str,
                 zk_servers: list[str],
                 config: Optional[SednaConfig] = None,
                 zk_config: Optional[ZkConfig] = None, obs=None):
        self.sim = sim
        self.name = name
        self.config = config if config is not None else SednaConfig()
        metrics = obs.metrics if obs is not None else None
        self.rpc = RpcNode(network, name)
        self.zk = ZkClient(sim, network, f"{name}-zk", zk_servers, zk_config,
                           metrics=metrics)
        self.cache = MappingCache(sim, self.zk, self.config,
                                  metrics=metrics, owner=name)
        self.coordinator = QuorumCoordinator(sim, self.rpc, self.cache,
                                             self.config, obs=obs)
        self._last_ts = 0.0
        self.write_latencies: list[float] = []
        self.read_latencies: list[float] = []
        self.failures = 0
        _init_client_obs(self, obs)
        self.zk.rpc.tracer = self._tracer

    _trace = _client_trace
    _trace_end = _client_trace_end
    _record_write = _client_record_write
    _record_read = _client_record_read
    _fail = _client_fail

    def connect(self):
        """Open the ZooKeeper session and load the vnode mapping."""
        yield from self.zk.connect()
        yield from self.cache.load_full()
        self.cache.start_lease_loop()
        return self.name

    def close(self):
        """Stop the lease loop and release the ZooKeeper session."""
        self.cache.stop()
        yield from self.zk.close()

    def _timestamp(self) -> float:
        ts = self.sim.now
        if ts <= self._last_ts:
            ts = self._last_ts + 1e-9
        self._last_ts = ts
        return ts

    @staticmethod
    def _encode(key: str, table: str, dataset: str) -> str:
        return FullKey(dataset=dataset, table=table, key=key).encoded()

    # -- write APIs ---------------------------------------------------------
    def _write(self, mode: str, key: str, value: Any, table: str,
               dataset: str):
        args = {"key": self._encode(key, table, dataset), "value": value,
                "ts": self._timestamp(), "source": self.name, "mode": mode}
        t0 = self.sim.now
        span = self._trace("write")
        try:
            result = yield from self.coordinator.coordinate_write(args)
        except (RpcTimeout, RpcRejected):
            self._fail()
            self._record_write(t0)
            self._trace_end(span, status="failure")
            return WriteOutcome.FAILURE
        self._record_write(t0)
        self._trace_end(span, status=result["status"])
        return result["status"]

    def write_latest(self, key: str, value: Any,
                     table: str = DEFAULT_TABLE,
                     dataset: str = DEFAULT_DATASET):
        """Lock-free last-write-wins write, straight to the replicas."""
        result = yield from self._write("latest", key, value, table, dataset)
        return result

    def write_all(self, key: str, value: Any,
                  table: str = DEFAULT_TABLE,
                  dataset: str = DEFAULT_DATASET):
        """Per-source value-list write, straight to the replicas."""
        result = yield from self._write("all", key, value, table, dataset)
        return result

    # -- read APIs -----------------------------------------------------------
    def read_latest(self, key: str, table: str = DEFAULT_TABLE,
                    dataset: str = DEFAULT_DATASET):
        """Quorum read of the freshest value; None when absent."""
        args = {"key": self._encode(key, table, dataset), "mode": "latest"}
        t0 = self.sim.now
        span = self._trace("read")
        try:
            result = yield from self.coordinator.coordinate_read(args)
        except (RpcTimeout, RpcRejected):
            self._fail()
            self._record_read(t0)
            self._trace_end(span, status="failure")
            return None
        self._record_read(t0)
        self._trace_end(span, status="ok", found=bool(result.get("found")))
        if not result.get("found"):
            return None
        return result["value"]

    def read_all(self, key: str, table: str = DEFAULT_TABLE,
                 dataset: str = DEFAULT_DATASET):
        """Quorum read of the whole value list."""
        args = {"key": self._encode(key, table, dataset), "mode": "all"}
        t0 = self.sim.now
        span = self._trace("read_all")
        try:
            result = yield from self.coordinator.coordinate_read(args)
        except (RpcTimeout, RpcRejected):
            self._fail()
            self._record_read(t0)
            self._trace_end(span, status="failure")
            return []
        self._record_read(t0)
        self._trace_end(span, status="ok")
        return [ValueElement(s, ts, v) for s, ts, v in result["elements"]]

    def delete(self, key: str, table: str = DEFAULT_TABLE,
               dataset: str = DEFAULT_DATASET):
        """Quorum delete of a key."""
        args = {"key": self._encode(key, table, dataset)}
        span = self._trace("delete")
        try:
            yield from self.coordinator.coordinate_delete(args)
            self._trace_end(span, status="ok")
            return True
        except (RpcTimeout, RpcRejected):
            self._fail()
            self._trace_end(span, status="failure")
            return False

    def read_latest_element(self, key: str, table: str = DEFAULT_TABLE,
                            dataset: str = DEFAULT_DATASET):
        """Like :meth:`read_latest` but returns the full element
        (source, timestamp, value); None when absent."""
        args = {"key": self._encode(key, table, dataset), "mode": "latest"}
        span = self._trace("read")
        try:
            result = yield from self.coordinator.coordinate_read(args)
        except (RpcTimeout, RpcRejected):
            self._fail()
            self._trace_end(span, status="failure")
            return None
        self._trace_end(span, status="ok", found=bool(result.get("found")))
        if not result.get("found"):
            return None
        return ValueElement(result["source"], result["ts"], result["value"])

    # -- causal APIs (docs/protocols.md §16) ----------------------------------
    def write_causal(self, key: str, value: Any, context=None,
                     table: str = DEFAULT_TABLE,
                     dataset: str = DEFAULT_DATASET):
        """Dotted-version-vector write, coordinated client-side."""
        args = {"key": self._encode(key, table, dataset), "value": value,
                "ts": self._timestamp(), "source": self.name,
                "ctx": [list(pair) for pair in (context or ())]}
        t0 = self.sim.now
        span = self._trace("write_causal")
        try:
            result = yield from self.coordinator.coordinate_causal_write(args)
        except (RpcTimeout, RpcRejected):
            self._fail()
            self._record_write(t0)
            self._trace_end(span, status="failure")
            return CausalWriteAck(WriteOutcome.FAILURE, None,
                                  tuple(tuple(p) for p in (context or ())))
        self._record_write(t0)
        self._trace_end(span, status=result["status"])
        return _causal_write_ack(result, context or ())

    def read_causal(self, key: str, table: str = DEFAULT_TABLE,
                    dataset: str = DEFAULT_DATASET):
        """Quorum sibling read, coordinated client-side; None on failure."""
        args = {"key": self._encode(key, table, dataset)}
        t0 = self.sim.now
        span = self._trace("read_causal")
        try:
            result = yield from self.coordinator.coordinate_causal_read(args)
        except (RpcTimeout, RpcRejected):
            self._fail()
            self._record_read(t0)
            self._trace_end(span, status="failure")
            return None
        self._record_read(t0)
        self._trace_end(span, status="ok", found=bool(result.get("found")))
        return _causal_read_result(result)

    # -- batch APIs (docs/protocols.md §12) -----------------------------------
    def multi_write(self, items: dict, mode: str = "latest",
                    table: str = DEFAULT_TABLE,
                    dataset: str = DEFAULT_DATASET):
        """Batched write, coordinated client-side: {key: value} in,
        {key: ok/outdated/failure} out — one ``replica.mwrite`` per
        replica per vnode-group."""
        enc = {self._encode(k, table, dataset): k for k in items}
        entries = [{"key": ek, "value": items[uk], "ts": self._timestamp(),
                    "source": self.name, "mode": mode}
                   for ek, uk in enc.items()]
        t0 = self.sim.now
        span = self._trace("mwrite")
        try:
            reply = yield from self.coordinator.coordinate_multi_write(
                {"entries": entries})
        except (RpcTimeout, RpcRejected):
            self._fail()
            self._record_write(t0)
            self._trace_end(span, status="failure")
            return {uk: WriteOutcome.FAILURE for uk in items}
        self._record_write(t0)
        self._trace_end(span, status="ok", keys=len(entries))
        results = reply["results"]
        return {uk: results.get(ek, {}).get("status", WriteOutcome.FAILURE)
                for ek, uk in enc.items()}

    def multi_read(self, keys, table: str = DEFAULT_TABLE,
                   dataset: str = DEFAULT_DATASET):
        """Batched ``read_latest``: {key: value or None (miss/failure)}."""
        enc = {self._encode(k, table, dataset): k for k in keys}
        t0 = self.sim.now
        span = self._trace("mread")
        try:
            reply = yield from self.coordinator.coordinate_multi_read(
                {"keys": list(enc), "mode": "latest"})
        except (RpcTimeout, RpcRejected):
            self._fail()
            self._record_read(t0)
            self._trace_end(span, status="failure")
            return {uk: None for uk in enc.values()}
        self._record_read(t0)
        self._trace_end(span, status="ok", keys=len(enc))
        out = {}
        for ek, uk in enc.items():
            r = reply["results"].get(ek)
            out[uk] = r["value"] if r and r.get("found") else None
        return out

    def multi_read_all(self, keys, table: str = DEFAULT_TABLE,
                       dataset: str = DEFAULT_DATASET):
        """Batched ``read_all``: {key: [ValueElement, ...]}."""
        enc = {self._encode(k, table, dataset): k for k in keys}
        t0 = self.sim.now
        span = self._trace("mread")
        try:
            reply = yield from self.coordinator.coordinate_multi_read(
                {"keys": list(enc), "mode": "all"})
        except (RpcTimeout, RpcRejected):
            self._fail()
            self._record_read(t0)
            self._trace_end(span, status="failure")
            return {uk: [] for uk in enc.values()}
        self._record_read(t0)
        self._trace_end(span, status="ok", keys=len(enc))
        out = {}
        for ek, uk in enc.items():
            r = reply["results"].get(ek) or {}
            out[uk] = [ValueElement(s, ts, v)
                       for s, ts, v in r.get("elements", [])]
        return out

    def multi_delete(self, keys, table: str = DEFAULT_TABLE,
                     dataset: str = DEFAULT_DATASET):
        """Batched delete: {key: True/False} per-key success."""
        enc = {self._encode(k, table, dataset): k for k in keys}
        span = self._trace("mdelete")
        try:
            reply = yield from self.coordinator.coordinate_multi_delete(
                {"keys": list(enc)})
        except (RpcTimeout, RpcRejected):
            self._fail()
            self._trace_end(span, status="failure")
            return {uk: False for uk in enc.values()}
        self._trace_end(span, status="ok", keys=len(enc))
        results = reply["results"]
        return {uk: results.get(ek, {}).get("status") == "ok"
                for ek, uk in enc.items()}
