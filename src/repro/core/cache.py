"""Local mapping cache with adaptive lease and changelog refresh.

§III.E gives Sedna three strategies against the ZooKeeper read
bottleneck, all implemented here:

1. **Local cache** — every node/client keeps the full vnode→real-node
   assignment in memory and reads ZooKeeper only on invalidation
   ("target node returns 'reject' or 'timeout'").
2. **Adaptive lease** — a periodic sync whose period *halves* when the
   last lease saw many changes and *doubles* when it saw none.
3. **Changelog** — every mapping update also appends a sequential
   znode under ``/sedna/changelog``, so a refresh re-reads only the
   vnodes that actually changed instead of the whole ring.

Watches are deliberately not used (watch-storm argument, §III.E); the
ablation bench ``benchmarks/test_zk_bottleneck.py`` quantifies all
four variants (no cache / fixed lease / adaptive lease / adaptive +
changelog).
"""

from __future__ import annotations

from typing import Optional

from ..net.simulator import Simulator
from ..zk.client import ZkClient
from ..zk.znode import NoNodeError
from .config import SednaConfig
from .hashring import Ring

__all__ = ["ZkLayout", "MappingCache"]


class ZkLayout:
    """Canonical znode paths of a Sedna cluster."""

    ROOT = "/sedna"
    CONFIG = "/sedna/config"
    REAL_NODES = "/sedna/real_nodes"
    VNODES = "/sedna/vnodes"
    CHANGELOG = "/sedna/changelog"
    IMBALANCE = "/sedna/imbalance"

    @staticmethod
    def vnode(vnode_id: int) -> str:
        """Znode path of one virtual node's assignment."""
        return f"{ZkLayout.VNODES}/{vnode_id}"

    @staticmethod
    def real_node(name: str) -> str:
        """Ephemeral liveness znode of a real node."""
        return f"{ZkLayout.REAL_NODES}/{name}"

    @staticmethod
    def imbalance(name: str) -> str:
        """Imbalance-table row znode of a real node."""
        return f"{ZkLayout.IMBALANCE}/{name}"


class MappingCache:
    """The cached ring plus its synchronization policies."""

    def __init__(self, sim: Simulator, zk: ZkClient, config: SednaConfig,
                 adaptive: bool = True, use_changelog: bool = True,
                 metrics=None, owner: str = ""):
        self.sim = sim
        self.zk = zk
        self.config = config
        self.ring = Ring(config.num_vnodes)
        self.adaptive = adaptive
        self.use_changelog = use_changelog
        self.lease = config.lease_base
        self.last_changelog_seq = -1
        self.loaded = False
        self._running = False
        self._generation = 0
        # Stats for the bottleneck ablation.
        self.full_loads = 0
        self.incremental_refreshes = 0
        self.vnode_reads = 0
        self.invalidations = 0
        if metrics is None:
            from ..obs.metrics import DISABLED
            metrics = DISABLED
        owner = owner or zk.name
        self._m_full_loads = metrics.counter("cache.full_loads", node=owner)
        self._m_refreshes = metrics.counter("cache.refreshes", node=owner)
        self._m_vnode_reads = metrics.counter("cache.vnode_reads", node=owner)
        self._m_invalidations = metrics.counter(
            "cache.invalidations", node=owner)
        self._m_lookups = metrics.counter("cache.lookups", node=owner)

    # -- full load ---------------------------------------------------------
    def load_full(self):
        """Read the entire assignment (boot path; §III.E situation 1).

        The changelog position is recorded *before* the vnode sweep: a
        reassignment that commits mid-sweep may or may not be visible
        in the vnodes we read, but its changelog sequence is strictly
        newer than the recorded one, so the next refresh re-reads it.
        Recording the position after the sweep loses exactly that
        window — the entry's sequence is consumed while the sweep still
        returned the old owner, and no refresh ever looks again.
        """
        self.full_loads += 1
        self._m_full_loads.inc()
        seq = yield from self._newest_changelog_seq()
        for vnode_id in range(self.config.num_vnodes):
            try:
                data, _stat = yield from self.zk.get(ZkLayout.vnode(vnode_id))
                self.vnode_reads += 1
                self._m_vnode_reads.inc()
                self.ring.assign(vnode_id, data.decode())
            except NoNodeError:
                self.ring.assign(vnode_id, Ring.UNASSIGNED)
        self.last_changelog_seq = seq
        self.loaded = True

    def _newest_changelog_seq(self):
        try:
            children = yield from self.zk.get_children(ZkLayout.CHANGELOG)
        except NoNodeError:
            return -1
        if not children:
            return -1
        return max(int(name.rsplit("-", 1)[1]) for name in children)

    # -- incremental refresh ----------------------------------------------
    def refresh(self):
        """One sync pass; returns the number of vnodes that changed."""
        if not self.use_changelog:
            # Fall back to re-reading the full assignment.
            before = self.ring.snapshot()
            yield from self.load_full()
            return sum(1 for a, b in zip(before, self.ring.snapshot())
                       if a != b)
        self.incremental_refreshes += 1
        self._m_refreshes.inc()
        try:
            children = yield from self.zk.get_children(ZkLayout.CHANGELOG)
        except NoNodeError:
            return 0
        fresh = []
        newest = -1
        for name in children:
            seq = int(name.rsplit("-", 1)[1])
            if seq > newest:
                newest = seq
            if seq > self.last_changelog_seq:
                fresh.append((seq, name))
        if newest < self.last_changelog_seq:
            # The changelog's newest entry is *older* than one we have
            # already consumed.  Nothing ever trims the changelog, so
            # consumed history can only vanish one way: a deposed
            # leader's applied tail was truncated by snapshot sync
            # (zk/server._on_commit), taking reassignments we acted on
            # with it.  The incremental path is blind to this — it only
            # looks forward from ``last_changelog_seq`` — so the ring
            # would diverge permanently.  Reload everything and
            # re-anchor the sequence.  (A rollback whose history is
            # re-minted past our position before we look is still
            # healed lazily by the reject→invalidate path.)
            before = self.ring.snapshot()
            yield from self.load_full()
            return sum(1 for a, b in zip(before, self.ring.snapshot())
                       if a != b)
        fresh.sort()
        touched: set[int] = set()
        for seq, name in fresh:
            try:
                data, _ = yield from self.zk.get(f"{ZkLayout.CHANGELOG}/{name}")
                touched.add(int(data.decode()))
            except NoNodeError:
                # Trimmed entry: nothing left to read, but its sequence
                # is consumed all the same — otherwise every later
                # refresh re-fetches the same dead entries forever.
                pass
            self.last_changelog_seq = seq
        changes = 0
        for vnode_id in sorted(touched):
            try:
                data, _ = yield from self.zk.get(ZkLayout.vnode(vnode_id))
                self.vnode_reads += 1
                self._m_vnode_reads.inc()
                owner = data.decode()
            except NoNodeError:
                owner = Ring.UNASSIGNED
            if self.ring.owner(vnode_id) != owner:
                self.ring.assign(vnode_id, owner)
                changes += 1
        return changes

    def invalidate(self, vnode_id: int):
        """Targeted re-read after a 'reject'/'timeout' (§III.E strategy 1)."""
        self.invalidations += 1
        self._m_invalidations.inc()
        try:
            data, _ = yield from self.zk.get(ZkLayout.vnode(vnode_id))
            self.vnode_reads += 1
            self._m_vnode_reads.inc()
            self.ring.assign(vnode_id, data.decode())
        except NoNodeError:
            self.ring.assign(vnode_id, Ring.UNASSIGNED)

    # -- lease loop --------------------------------------------------------
    def start_lease_loop(self) -> None:
        """Spawn the periodic sync process (strategy 2)."""
        if self._running:
            return
        self._running = True
        # Each spawn gets a fresh generation token: a stopped loop that
        # is still asleep when the next one starts must retire at its
        # wakeup instead of being revived by the shared flag (which
        # would leave two concurrent sync processes running).
        self._generation += 1
        self.sim.process(self._lease_loop(self._generation),
                         name=f"{self.zk.name}-lease")

    def stop(self) -> None:
        """Stop the lease loop at its next wakeup."""
        self._running = False

    def _alive(self, generation: int) -> bool:
        return (self._running and self._generation == generation
                and self.zk.rpc.endpoint.up)

    def _lease_loop(self, generation: int):
        # tick(self.lease): the adaptive lease length changes per round.
        lease_timer = self.sim.recurring(self.lease)
        while self._alive(generation):
            yield lease_timer.tick(self.lease)
            if not self._alive(generation):
                return
            changes = yield from self.refresh()
            if self.adaptive:
                if changes > 0:
                    # "lease time will reduce to half if there are lots of
                    # changes in ZooKeeper in last lease time"
                    self.lease = max(self.config.lease_min, self.lease / 2)
                else:
                    # "...and grow to double if no change in last lease time"
                    self.lease = min(self.config.lease_max, self.lease * 2)

    # -- lookups -----------------------------------------------------------
    def replicas_for_key(self, encoded_key: str) -> tuple[int, list[str]]:
        """(vnode, replica list) from the cached ring.

        Every lookup answered from the local cache is a ZooKeeper read
        *avoided*; ``cache.lookups`` vs ``zk.reads`` in a snapshot is
        the cache-effectiveness ratio of §III.E."""
        self._m_lookups.inc()
        return self.ring.replicas_for_key(encoded_key, self.config.replicas)
