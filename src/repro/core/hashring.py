"""Consistent-hash ring with virtual nodes and the imbalance table.

§III.B: the ring "was equally divided into millions of slices, so every
slice represents a sub-range of INTEGER ... each sub-range is called a
virtual node".  A key hashes to an integer and mods into a virtual
node; the virtual node maps to a *real node* (its primary, r1) and its
data is replicated on the next distinct real nodes along the ring
(r2, r3).

The vnode → real-node *placement* used at bootstrap is pluggable
(:func:`build_assignment`):

* ``modulo`` — round-robin striping (``vnode % n``), the historical
  default.  Perfectly even, but growing the cluster by one node
  reshuffles almost every vnode.
* ``jump`` — jump consistent hash (Lamping & Veach, 2014): an O(1)
  memory, ~5-line function whose placement is a pure function of
  ``(vnode id, node count)``.  Growing from n to n+1 nodes moves
  exactly the ~1/(n+1) of vnodes that land on the new node and no
  others — minimal, monotonic remapping, which is what makes the
  100–1000 node north star tractable (rebalances proportional to the
  change, not to the cluster).

The ring also records per-virtual-node status (capacity, read/write
frequency) from which each real node computes an *imbalance table* row
that is periodically pushed to ZooKeeper — "it is only necessary to
update the imbalance table, which is quite small comparing with the
virtual nodes number".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

from ..storage.hashtable import fnv1a

__all__ = ["VnodeStatus", "Ring", "ImbalanceTable", "HEAT_WEIGHTS",
           "row_heat", "vnode_heat", "jump_hash", "build_assignment",
           "PLACEMENTS"]

_MASK64 = (1 << 64) - 1
_JUMP_LCG = 2862933555777941757


def _mix64(h: int) -> int:
    """splitmix64 finalizer: small sequential ints (vnode ids) need an
    avalanche pass before feeding the jump LCG, whose low bits are weak
    for clustered keys."""
    h = (h + 0x9E3779B97F4A7C15) & _MASK64
    h = ((h ^ (h >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    h = ((h ^ (h >> 27)) * 0x94D049BB133111EB) & _MASK64
    return h ^ (h >> 31)


def jump_hash(key: int, num_buckets: int) -> int:
    """Jump consistent hash (Lamping & Veach): key → [0, num_buckets).

    O(ln n) time, O(1) memory, and *monotone*: growing to n+1 buckets
    only ever moves keys into bucket n.  ``key`` should be well-mixed
    64-bit (see :func:`_mix64`).
    """
    if num_buckets < 1:
        raise ValueError("need at least one bucket")
    key &= _MASK64
    b, j = -1, 0
    while j < num_buckets:
        b = j
        key = (key * _JUMP_LCG + 1) & _MASK64
        j = int((b + 1) * ((1 << 31) / ((key >> 33) + 1)))
    return b


def _modulo_assignment(num_vnodes: int, nodes: Sequence[str]) -> list[str]:
    n = len(nodes)
    return [nodes[v % n] for v in range(num_vnodes)]


def _jump_assignment(num_vnodes: int, nodes: Sequence[str]) -> list[str]:
    n = len(nodes)
    return [nodes[jump_hash(_mix64(v), n)] for v in range(num_vnodes)]


PLACEMENTS = {
    "modulo": _modulo_assignment,
    "jump": _jump_assignment,
}


def build_assignment(num_vnodes: int, nodes: Sequence[str],
                     placement: str = "modulo") -> list[str]:
    """Initial vnode → owner assignment under the named placement.

    The result is a pure function of its arguments — every node and
    client bootstrapping from the same config derives the same map,
    which is why the placement name can live in SednaConfig instead of
    ZooKeeper.
    """
    if not nodes:
        raise ValueError("need at least one node")
    try:
        fn = PLACEMENTS[placement]
    except KeyError:
        raise ValueError(
            f"unknown placement {placement!r}; "
            f"expected one of {sorted(PLACEMENTS)}") from None
    return fn(num_vnodes, nodes)

#: Default heat-metric weights (§III.B: capacity *and* read/write
#: frequency).  One owned vnode carries a base weight so an idle
#: cluster still balances by counts; writes weigh double reads (every
#: write costs N replica applies plus persistence), and keys stand in
#: for resident capacity.
HEAT_WEIGHTS: dict[str, float] = {
    "vnodes": 4.0,
    "keys": 0.05,
    "reads": 1.0,
    "writes": 2.0,
}


def row_heat(row: Mapping[str, float],
             weights: Optional[Mapping[str, float]] = None) -> float:
    """Weighted heat of one imbalance-table row.

    ``row`` carries the per-node aggregates (vnodes/keys/reads/writes);
    missing fields count as zero, so partial rows (old publishers,
    tests) still score.
    """
    w = weights if weights is not None else HEAT_WEIGHTS
    return sum(row.get(field, 0) * weight
               for field, weight in sorted(w.items()))


def vnode_heat(stats: Mapping[str, float],
               weights: Optional[Mapping[str, float]] = None) -> float:
    """Weighted heat of one vnode's activity row.

    A vnode always contributes the per-vnode base weight (it is one
    unit of ownership) plus its weighted keys/reads/writes.
    """
    w = weights if weights is not None else HEAT_WEIGHTS
    heat = w.get("vnodes", 0.0)
    for field, weight in sorted(w.items()):
        if field != "vnodes":
            heat += stats.get(field, 0) * weight
    return heat


@dataclass
class VnodeStatus:
    """Per-virtual-node bookkeeping (§III.B)."""

    keys: int = 0
    bytes: int = 0
    reads: int = 0
    writes: int = 0
    # True while a freshly claimed vnode is still catching up on writes
    # that raced the handoff through stale mapping caches; reads are
    # refused until the catch-up pull completes (writes are accepted —
    # they only add newer data).
    warming: bool = False


class Ring:
    """The vnode → real-node assignment plus hashing.

    The assignment is the replicated truth held in ZooKeeper; this
    class is the in-memory working copy every node and client caches.
    """

    UNASSIGNED = ""

    def __init__(self, num_vnodes: int) -> None:
        if num_vnodes < 1:
            raise ValueError("need at least one virtual node")
        self.num_vnodes = num_vnodes
        self.assignment: list[str] = [self.UNASSIGNED] * num_vnodes

    # -- hashing ---------------------------------------------------------
    def vnode_of(self, encoded_key: str) -> int:
        """Hash a key into its virtual node (hash then mod, §III.B)."""
        return fnv1a(encoded_key.encode("utf-8")) % self.num_vnodes

    # -- assignment -------------------------------------------------------
    def assign(self, vnode: int, owner: str) -> None:
        """Set the primary owner of ``vnode``."""
        self.assignment[vnode] = owner

    def owner(self, vnode: int) -> str:
        """Primary owner name ('' when unassigned)."""
        return self.assignment[vnode]

    def vnodes_of(self, owner: str) -> list[int]:
        """All vnodes whose primary is ``owner``."""
        return [v for v, o in enumerate(self.assignment) if o == owner]

    def unassigned(self) -> list[int]:
        """Vnodes with no primary yet."""
        return [v for v, o in enumerate(self.assignment)
                if o == self.UNASSIGNED]

    def real_nodes(self) -> list[str]:
        """Distinct owners in the assignment (sorted)."""
        return sorted({o for o in self.assignment if o != self.UNASSIGNED})

    def load_counts(self) -> dict[str, int]:
        """Owner -> primary-vnode count."""
        counts: dict[str, int] = {}
        for o in self.assignment:
            if o != self.UNASSIGNED:
                counts[o] = counts.get(o, 0) + 1
        return counts

    # -- replica placement ------------------------------------------------
    def replicas_for(self, vnode: int, n: int,
                     exclude: Iterable[str] = ()) -> list[str]:
        """The replica set [r1, r2, ... rn] for ``vnode``.

        r1 is the vnode's primary; r2.. are the owners of the following
        vnodes walking clockwise, skipping duplicates — the classic
        successor-list placement of consistent hashing (§III.B, Fig. 3).
        Fewer than ``n`` names are returned when the cluster is smaller
        than the replication factor.
        """
        excluded = set(exclude)
        out: list[str] = []
        primary = self.assignment[vnode]
        if primary != self.UNASSIGNED and primary not in excluded:
            out.append(primary)
        idx = vnode
        for _ in range(self.num_vnodes):
            if len(out) >= n:
                break
            idx = (idx + 1) % self.num_vnodes
            candidate = self.assignment[idx]
            if (candidate != self.UNASSIGNED and candidate not in out
                    and candidate not in excluded):
                out.append(candidate)
        return out

    def replicas_for_key(self, encoded_key: str, n: int) -> tuple[int, list[str]]:
        """(vnode, replica set) for a key."""
        vnode = self.vnode_of(encoded_key)
        return vnode, self.replicas_for(vnode, n)

    def walk_positions(self, vnode: int, n: int) -> list[tuple[int, str]]:
        """The (vnode index, owner) pairs contributing the replica set.

        First occurrence per distinct owner along the clockwise walk —
        the assignment entries recovery must rewrite when one of those
        owners is found dead (§III.C read recovery).
        """
        out: list[tuple[int, str]] = []
        seen: set[str] = set()
        idx = vnode
        for step in range(self.num_vnodes):
            candidate = self.assignment[idx]
            if candidate != self.UNASSIGNED and candidate not in seen:
                seen.add(candidate)
                out.append((idx, candidate))
                if len(out) >= n:
                    break
            idx = (idx + 1) % self.num_vnodes
        return out

    # -- bulk import/export -----------------------------------------------
    def snapshot(self) -> list[str]:
        """Copy of the assignment array."""
        return list(self.assignment)

    def load(self, assignment: list[str]) -> None:
        """Replace the assignment array."""
        if len(assignment) != self.num_vnodes:
            raise ValueError("assignment length mismatch")
        self.assignment = list(assignment)


class ImbalanceTable:
    """Per-real-node load rows computed from vnode statuses (§III.B).

    Each Sedna service keeps vnode statistics locally and periodically
    publishes one small row; the rebalancer and join protocol consume
    the whole table to decide which vnodes should move.
    """

    def __init__(self) -> None:
        self.rows: dict[str, dict] = {}

    @staticmethod
    def row_from_statuses(statuses: dict[int, VnodeStatus]) -> dict:
        """Aggregate one node's vnode statuses into its table row."""
        return {
            "vnodes": len(statuses),
            "keys": sum(s.keys for s in statuses.values()),
            "bytes": sum(s.bytes for s in statuses.values()),
            "reads": sum(s.reads for s in statuses.values()),
            "writes": sum(s.writes for s in statuses.values()),
        }

    def update(self, node: str, row: dict) -> None:
        """Install/refresh a node's row."""
        self.rows[node] = dict(row)

    def remove(self, node: str) -> None:
        """Drop a departed node's row."""
        self.rows.pop(node, None)

    def most_loaded(self, metric: str = "vnodes") -> Optional[str]:
        """Node with the max of ``metric`` (None when empty)."""
        if not self.rows:
            return None
        return max(self.rows, key=lambda n: (self.rows[n].get(metric, 0), n))

    def least_loaded(self, metric: str = "vnodes") -> Optional[str]:
        """Node with the min of ``metric`` (None when empty)."""
        if not self.rows:
            return None
        return min(self.rows, key=lambda n: (self.rows[n].get(metric, 0), n))

    def spread(self, metric: str = "vnodes") -> float:
        """max - min of ``metric`` across rows (0 when < 2 rows)."""
        if len(self.rows) < 2:
            return 0.0
        values = [row.get(metric, 0) for row in self.rows.values()]
        return float(max(values) - min(values))

    # -- heat metric (load-aware rebalancing) ---------------------------
    def heat(self, node: str, weights: Optional[dict] = None) -> float:
        """Weighted heat of one node's row (0.0 for unknown nodes)."""
        row = self.rows.get(node)
        return 0.0 if row is None else row_heat(row, weights)

    def hottest(self, weights: Optional[dict] = None) -> Optional[str]:
        """Node with the max heat; ties break on the larger name so the
        choice is deterministic regardless of row insertion order."""
        if not self.rows:
            return None
        return max(self.rows, key=lambda n: (row_heat(self.rows[n],
                                                      weights), n))

    def coldest(self, weights: Optional[dict] = None) -> Optional[str]:
        """Node with the min heat (deterministic tiebreak, see
        :meth:`hottest`)."""
        if not self.rows:
            return None
        return min(self.rows, key=lambda n: (row_heat(self.rows[n],
                                                      weights), n))

    def heat_spread(self, weights: Optional[dict] = None) -> float:
        """max - min heat across rows (0 when < 2 rows)."""
        if len(self.rows) < 2:
            return 0.0
        values = [row_heat(row, weights) for row in self.rows.values()]
        return max(values) - min(values)

    def mean_heat(self, weights: Optional[dict] = None) -> float:
        """Average heat across rows (0 when empty)."""
        if not self.rows:
            return 0.0
        return sum(row_heat(row, weights)
                   for row in self.rows.values()) / len(self.rows)
