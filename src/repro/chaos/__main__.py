"""CLI for one-off chaos runs.

Examples::

    python -m repro.chaos --seed 7 --profile mixed
    python -m repro.chaos --seed 7 --hazards        # tie-hazard scan
    python -m repro.chaos --seeds 0-9 --hazards     # sweep
    python -m repro.chaos --seed 7 --slo            # burn-rate alerts
    python -m repro.chaos --seed 7 --scenario flash-crowd
    python -m repro.chaos --seed 7 --record out.json  # flight recorder

Exit status: 0 when every run held all invariants (and, with
``--hazards``, surfaced no tie hazard), 1 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from ..workloads.scenarios import SCENARIOS
from .runner import ChaosRunner
from .schedule import PROFILES


def _parse_seeds(spec: str) -> list[int]:
    seeds: list[int] = []
    for part in spec.split(","):
        part = part.strip()
        if "-" in part[1:]:
            lo, hi = part.split("-", 1)
            seeds.extend(range(int(lo), int(hi) + 1))
        else:
            seeds.append(int(part))
    return seeds


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="Run seeded chaos experiments against the "
                    "simulated Sedna cluster.")
    parser.add_argument("--seed", type=int, default=1,
                        help="single seed to run (default 1)")
    parser.add_argument("--seeds", type=str, default=None,
                        help="comma/range list, e.g. '0-9' or '1,4,7'; "
                             "overrides --seed")
    parser.add_argument("--profile", choices=sorted(PROFILES),
                        default="mixed")
    parser.add_argument("--duration", type=float, default=8.0,
                        help="simulated seconds of faulted workload")
    parser.add_argument("--nodes", type=int, default=6)
    parser.add_argument("--scenario", choices=sorted(SCENARIOS),
                        default=None,
                        help="drive a workload-matrix scenario "
                             "(repro.workloads.scenarios) instead of "
                             "the default chaos mix; faults and "
                             "invariants are unchanged")
    parser.add_argument("--hazards", action="store_true",
                        help="attach the tie-hazard detector "
                             "(repro.analysis.hazards) to the run")
    parser.add_argument("--rebalance", action="store_true",
                        help="host a load-aware rebalancer so live "
                             "chunked migrations race the fault "
                             "schedule (adds the migration invariant)")
    parser.add_argument("--causal", choices=("dvv", "lww"), default=None,
                        help="add a causal workload slice: 'dvv' runs "
                             "it through the dotted-version-vector "
                             "mode (checked by the no-silent-loss "
                             "invariant), 'lww' runs the identical "
                             "concurrency pattern through plain "
                             "write_latest for comparison")
    parser.add_argument("--slo", action="store_true",
                        help="evaluate the default SLOs with "
                             "multi-window burn-rate alerting "
                             "(implies the observability bundle)")
    parser.add_argument("--record", metavar="PATH", default=None,
                        help="arm the flight recorder; on any hard "
                             "invariant violation its dump is written "
                             "to PATH (seed suffix added on sweeps)")
    parser.add_argument("--record-always", action="store_true",
                        help="with --record: dump even on clean runs "
                             "(CI artifact collection)")
    args = parser.parse_args(argv)

    seeds = _parse_seeds(args.seeds) if args.seeds else [args.seed]
    failed = 0
    for seed in seeds:
        report = ChaosRunner(seed=seed, profile=args.profile,
                             duration=args.duration,
                             n_nodes=args.nodes,
                             scenario=args.scenario,
                             hazards=args.hazards,
                             rebalance=args.rebalance,
                             causal=args.causal,
                             slo=args.slo,
                             record=args.record is not None,
                             record_always=(args.record is not None
                                            and args.record_always)).run()
        print(report.describe())
        if args.record is not None and report.flight_dump:
            path = args.record if len(seeds) == 1 else \
                f"{args.record}.seed{seed}"
            with open(path, "w") as fh:
                json.dump(report.flight_dump, fh, indent=1, sort_keys=True)
            print(f"  flight dump written to {path}")
        if not report.ok or report.hazards:
            failed += 1
    if len(seeds) > 1:
        print(f"{len(seeds) - failed}/{len(seeds)} runs clean")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
