"""Deterministic chaos harness: fault schedules, operation histories,
and safety-invariant checking for the simulated Sedna cluster.

The paper's failure story (§III.C/D) is *lazy* — crashes are repaired
on the next read/write that touches the lost replica — which makes the
correctness of quorum operations under churn load-bearing.  This
package composes the :mod:`repro.net.failure` primitives into seeded,
replayable schedules, runs seeded workloads against a live cluster
while the schedule injects faults, records a per-operation history,
and checks after the dust settles that nothing the cluster promised
was lost:

1. no quorum-acked write is lost once the cluster heals and
   anti-entropy quiesces;
2. R+W>N freshness — a read invoked after an acked write returns that
   write or something newer;
3. the replication factor converges back to N for every written key;
4. ``write_all`` value lists never lose a source's newest element;
5. every node's and client's mapping cache converges to the ZooKeeper
   assignment.

Everything is seeded, so a failing schedule replays byte-identically
from its seed (same schedule → identical history digest).
"""

from .history import History, OpRecord
from .invariants import Anomaly, check_all
from .runner import ChaosReport, ChaosRunner
from .schedule import FaultEvent, Schedule, ScheduleGenerator

__all__ = [
    "Anomaly",
    "ChaosReport",
    "ChaosRunner",
    "FaultEvent",
    "History",
    "OpRecord",
    "Schedule",
    "ScheduleGenerator",
    "check_all",
]
