"""Golden end-state digests: the kernel-refactor regression guard.

A chaos run's history digest is its replay identity — byte-identical
digests mean the exact same interleaving executed.  The sweeps used to
prove that by running every seed *twice* per change; this module pins
the digests once as a checked-in fixture instead, so a kernel or RPC
refactor is validated against the recorded interleavings with a single
run per seed.

Three canonical sweep configurations are covered (the same shapes the
tier-1 sweep tests and CI jobs run):

* ``chaos`` — the mixed fault profile every PR exercises;
* ``migration`` — rebalancer live, chunked migrations racing faults;
* ``causal`` — DVV mode under partition schedules.

The fixture lives at ``tests/chaos/golden_digests.json``.  Regenerate
it (ONLY when a deliberate protocol/workload change legitimately moves
the interleaving — never to paper over an unexplained mismatch) with::

    python -m repro.chaos.goldens --regen

and review the diff: a digest that moved for a seed you did not expect
is a determinism regression, not noise.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Optional

from .runner import ChaosReport, ChaosRunner

__all__ = ["GOLDEN_CONFIGS", "GOLDEN_SEEDS", "golden_path", "run_config",
           "load_goldens", "generate"]

#: Canonical sweep configurations.  Keep in lockstep with the quick
#: sweep tests (tests/chaos/) — the point is that the guarded shapes
#: are the ones every PR already runs.
GOLDEN_CONFIGS: dict[str, dict] = {
    "chaos": {"profile": "mixed", "duration": 6.0},
    "migration": {"profile": "migration", "duration": 8.0,
                  "rebalance": True},
    "causal": {"profile": "partition", "duration": 8.0, "causal": "dvv"},
    # One workload-matrix scenario per kind (repro.workloads.scenarios):
    # the scenario stream layers on the same seeded substrate, so its
    # interleavings deserve the same refactor guard as the default mix.
    "scenario-zipf": {"profile": "mixed", "duration": 5.0,
                      "scenario": "zipf-hot"},
    "scenario-drift": {"profile": "mixed", "duration": 5.0,
                       "scenario": "drift-diurnal", "rebalance": True},
    "scenario-flash": {"profile": "crash", "duration": 5.0,
                       "scenario": "flash-crowd"},
    "scenario-storm": {"profile": "partition", "duration": 5.0,
                       "scenario": "trigger-storm"},
}

GOLDEN_SEEDS = tuple(range(8))


def golden_path() -> Path:
    """Location of the checked-in fixture."""
    return (Path(__file__).resolve().parents[3]
            / "tests" / "chaos" / "golden_digests.json")


def run_config(name: str, seed: int) -> ChaosReport:
    """Run one canonical configuration at ``seed``."""
    return ChaosRunner(seed=seed, **GOLDEN_CONFIGS[name]).run()


def load_goldens(path: Optional[Path] = None) -> dict:
    """Parse the fixture into {config: {seed(int): digest}}."""
    raw = json.loads((path or golden_path()).read_text())
    return {name: {int(seed): digest
                   for seed, digest in entry["digests"].items()}
            for name, entry in raw.items()}


def generate(seeds: tuple = GOLDEN_SEEDS) -> dict:
    """Run every config × seed and return the fixture dict."""
    out: dict[str, dict] = {}
    for name, params in GOLDEN_CONFIGS.items():
        digests = {}
        for seed in seeds:
            report = run_config(name, seed)
            if not report.ok:
                raise RuntimeError(
                    f"golden run {name} seed={seed} violated invariants:\n"
                    + report.describe())
            digests[str(seed)] = report.digest
        out[name] = {"params": params, "digests": digests}
    return out


def main(argv: Optional[list] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos.goldens",
        description="Verify (default) or regenerate the golden "
                    "chaos-digest fixture.")
    parser.add_argument("--regen", action="store_true",
                        help="rewrite tests/chaos/golden_digests.json "
                             "from fresh runs")
    args = parser.parse_args(argv)

    if args.regen:
        fixture = generate()
        golden_path().write_text(json.dumps(fixture, indent=2,
                                            sort_keys=True) + "\n")
        print(f"wrote {golden_path()}")
        return 0

    goldens = load_goldens()
    bad = 0
    for name, digests in goldens.items():
        for seed, want in digests.items():
            got = run_config(name, seed).digest
            status = "ok" if got == want else "MISMATCH"
            bad += got != want
            print(f"{name} seed={seed}: {status}")
    return 1 if bad else 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
