"""Per-operation history of a chaos run.

Every client operation is recorded twice — at *invocation* (timestamp,
kind, key, the write's version timestamp) and at *response* (status,
acking/responding replicas, the value that came back).  The invariant
checkers in :mod:`repro.chaos.invariants` reason over these records;
the sha256 digest over the canonical byte form is the replay-identity
fingerprint (same seed → same digest, byte for byte).

The recorder also tallies network traffic by (message kind, RPC
method) through :class:`repro.net.tap.NetworkTap`'s streaming
``on_record`` hook — counts only, so a long run does not buffer every
transmission.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["OpRecord", "History"]

WRITE_KINDS = ("write_latest", "write_all")


@dataclass
class OpRecord:
    """One client operation, invocation through response."""

    op_id: int
    client: str
    kind: str                 # write_latest/write_all/read_latest/read_all/delete
    key: str                  # encoded full key
    invoked: float
    value: Any = None         # written value (writes only)
    ts: Optional[float] = None        # write version timestamp
    completed: Optional[float] = None
    status: Optional[str] = None      # ok/outdated/failure/found/miss
    acks: tuple = ()                  # replicas that acked (writes/deletes)
    responders: tuple = ()            # replicas that answered (reads)
    result_ts: Optional[float] = None
    result_source: Optional[str] = None
    result_value: Any = None
    result_elements: tuple = ()       # ((source, ts, value), ...) for read_all
    # Causal (DVV) fields — docs/protocols.md §16.  Serialized only
    # when set, so histories of non-causal runs keep the exact byte
    # form (and digest) they had before the causal mode existed.
    ctx: tuple = ()                   # supplied/returned causal context
    dot: Optional[tuple] = None       # (replica, counter) the write minted

    @property
    def done(self) -> bool:
        """Whether the response was recorded."""
        return self.completed is not None

    def to_line(self) -> str:
        """Canonical one-line form (feeds the history digest)."""
        fields = [
            str(self.op_id), self.client, self.kind, self.key,
            repr(self.invoked), repr(self.ts), repr(self.value),
            repr(self.completed), str(self.status),
            ",".join(self.acks), ",".join(self.responders),
            repr(self.result_ts), str(self.result_source),
            repr(self.result_value),
            ";".join(f"{s},{repr(t)},{repr(v)}"
                     for s, t, v in self.result_elements),
        ]
        if self.ctx or self.dot is not None:
            fields.append(";".join(f"{r},{c}" for r, c in self.ctx))
            fields.append(repr(self.dot))
        return "|".join(fields)


class History:
    """Append-only operation log plus message tallies."""

    def __init__(self):
        self.records: list[OpRecord] = []
        self.message_counts: dict[tuple[str, str], int] = {}

    # -- recording --------------------------------------------------------
    def begin(self, client: str, kind: str, key: str, now: float,
              value: Any = None, ts: Optional[float] = None,
              ctx: tuple = ()) -> OpRecord:
        """Open a record at invocation time; returns it for completion."""
        record = OpRecord(op_id=len(self.records), client=client, kind=kind,
                          key=key, invoked=now, value=value, ts=ts,
                          ctx=tuple(tuple(pair) for pair in ctx))
        self.records.append(record)
        return record

    def complete(self, record: OpRecord, now: float, status: str,
                 acks: tuple = (), responders: tuple = (),
                 result_ts: Optional[float] = None,
                 result_source: Optional[str] = None,
                 result_value: Any = None,
                 result_elements: tuple = (),
                 ctx: Optional[tuple] = None,
                 dot: Optional[tuple] = None) -> None:
        """Close a record at response time."""
        record.completed = now
        record.status = status
        record.acks = tuple(acks)
        record.responders = tuple(responders)
        record.result_ts = result_ts
        record.result_source = result_source
        record.result_value = result_value
        record.result_elements = tuple(result_elements)
        if ctx is not None:
            record.ctx = tuple(tuple(pair) for pair in ctx)
        if dot is not None:
            record.dot = tuple(dot)

    def tally(self, tap_record) -> None:
        """`NetworkTap.on_record` hook: count by (kind, method)."""
        token = (tap_record.kind, tap_record.method)
        self.message_counts[token] = self.message_counts.get(token, 0) + 1

    # -- queries ----------------------------------------------------------
    def ops(self, kind: Optional[str] = None,
            key: Optional[str] = None) -> list[OpRecord]:
        """Completed records matching the criteria, in op order."""
        out = []
        for record in self.records:
            if not record.done:
                continue
            if kind is not None and record.kind != kind:
                continue
            if key is not None and record.key != key:
                continue
            out.append(record)
        return out

    def written_keys(self) -> list[str]:
        """Keys any write (acked or not) was attempted on, sorted."""
        return sorted({r.key for r in self.records
                       if r.kind in WRITE_KINDS})

    def deleted_keys(self) -> set[str]:
        """Keys touched by any delete attempt — even a *failed* delete
        may have removed the row on a minority of replicas, so these
        keys are tainted for the durability-flavoured invariants."""
        return {r.key for r in self.records if r.kind == "delete"}

    def acked_writes(self, key: str, kind: Optional[str] = None
                     ) -> list[OpRecord]:
        """Quorum-acknowledged (status ``ok``) writes on ``key``."""
        out = []
        for record in self.records:
            if record.key != key or record.status != "ok":
                continue
            if record.kind not in WRITE_KINDS:
                continue
            if kind is not None and record.kind != kind:
                continue
            out.append(record)
        return out

    def causal_keys(self) -> list[str]:
        """Keys any causal (DVV) write was attempted on, sorted."""
        return sorted({r.key for r in self.records
                       if r.kind == "write_causal"})

    def acked_causal_writes(self, key: str) -> list[OpRecord]:
        """Quorum-acknowledged causal writes on ``key``, op order."""
        return [r for r in self.records
                if r.key == key and r.kind == "write_causal"
                and r.status == "ok"]

    # -- fingerprinting ---------------------------------------------------
    def to_bytes(self) -> bytes:
        """Canonical byte form of the whole history."""
        lines = [record.to_line() for record in self.records]
        lines.append("messages:" + ",".join(
            f"{kind}/{method}={count}"
            for (kind, method), count in sorted(self.message_counts.items())))
        return "\n".join(lines).encode()

    def digest(self) -> str:
        """sha256 over :meth:`to_bytes` — the replay-identity check."""
        return hashlib.sha256(self.to_bytes()).hexdigest()

    def __len__(self) -> int:
        return len(self.records)
