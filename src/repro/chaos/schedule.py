"""Seeded fault-schedule generation.

A :class:`Schedule` is a time-ordered list of :class:`FaultEvent`
tuples; :class:`ScheduleGenerator` draws one deterministically from a
seed, a fault *profile*, and a duration.  Profiles select which fault
families appear:

* ``crash``     — node crashes, repaired only at quiesce;
* ``partition`` — minority island cuts that heal during the run;
* ``loss``      — windows of seeded message loss on the whole fabric;
* ``churn``     — leave/rejoin cycles (crash + restart inside the run,
  exercising the §III.D rejoin and vnode re-acquisition path);
* ``migration`` — crash + partition families only: the sweet spot for
  chaos-testing live vnode migration (the rebalancer's begin / chunk /
  cutover windows race crashes and cuts, while loss/churn noise stays
  out of the way);
* ``mixed``     — all of the above.

The generator keeps the cluster *testable* while faulted: it never
takes down more than ``max_down`` nodes at once (crashed or islanded),
and spaces a restart at least a ZooKeeper session expiry after the
crash so the ephemeral znode cycle is realistic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

__all__ = ["FaultEvent", "Schedule", "ScheduleGenerator", "PROFILES"]

PROFILES = ("crash", "partition", "loss", "churn", "migration", "mixed")


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault action.

    ``kind`` is one of ``crash`` / ``restart`` / ``partition`` /
    ``heal`` / ``loss_start`` / ``loss_stop``.  ``targets`` carries the
    node names involved (the minority group for partitions), ``rate``
    the loss fraction, and ``tag`` pairs start/stop events.
    """

    time: float
    kind: str
    targets: tuple[str, ...] = ()
    rate: float = 0.0
    tag: int = 0

    def describe(self) -> str:
        """One human-readable line (used by schedule dumps)."""
        extra = ""
        if self.kind in ("loss_start",):
            extra = f" rate={self.rate:.3f}"
        names = ",".join(self.targets)
        return f"t={self.time:8.3f}  {self.kind:<10} {names}{extra}"


@dataclass
class Schedule:
    """A deterministic, replayable fault schedule."""

    seed: int
    profile: str
    duration: float
    events: list[FaultEvent] = field(default_factory=list)

    @property
    def kinds(self) -> set[str]:
        """Fault kinds present (coverage bookkeeping)."""
        return {ev.kind for ev in self.events}

    def describe(self) -> str:
        """The whole schedule, one event per line."""
        head = (f"schedule seed={self.seed} profile={self.profile} "
                f"duration={self.duration}")
        return "\n".join([head] + [ev.describe() for ev in self.events])

    def to_bytes(self) -> bytes:
        """Canonical byte form (replay-identity checks)."""
        return self.describe().encode()


class ScheduleGenerator:
    """Draws a :class:`Schedule` deterministically from a seed.

    Parameters
    ----------
    node_names:
        The cluster's real-node endpoint names.  Their ``-zk`` session
        endpoints are partitioned along with them.
    seed:
        Drives every random choice; same seed → identical schedule.
    duration:
        Fault window length (simulated seconds); all events land in
        ``[0.5, duration]``.
    profile:
        One of :data:`PROFILES`.
    max_down:
        Upper bound on simultaneously unavailable nodes (crashed or cut
        off); defaults to ``len(node_names) - 3`` so a quorum-capable
        core always remains.
    session_expiry:
        Minimum crash→restart dwell (ZooKeeper session timeout).
    """

    def __init__(self, node_names: list[str], seed: int,
                 duration: float = 12.0, profile: str = "mixed",
                 max_down: int | None = None,
                 session_expiry: float = 1.0):
        if profile not in PROFILES:
            raise ValueError(f"unknown profile {profile!r}")
        self.node_names = list(node_names)
        self.seed = seed
        self.duration = duration
        self.profile = profile
        self.max_down = (max_down if max_down is not None
                         else max(0, len(node_names) - 3))
        self.session_expiry = session_expiry

    def generate(self) -> Schedule:
        """The schedule for this generator's parameters."""
        rng = random.Random(
            f"{self.seed}/{self.profile}/{len(self.node_names)}")
        events: list[FaultEvent] = []
        # Every fault is an unavailability interval: crashed nodes are
        # down from the crash to their restart (or quiesce), islanded
        # nodes from the cut to its heal.  The max_down cap is checked
        # against *overlapping* intervals, so crashes and islands
        # together never take out more than max_down nodes at once.
        outages: list[tuple[float, float, frozenset[str]]] = []

        def cut_off(start: float, stop: float) -> set[str]:
            """Nodes unavailable at some instant of [start, stop)."""
            busy: set[str] = set()
            for a, b, members in outages:
                if a < stop and start < b:
                    busy |= members
            return busy

        def pick_victim(start: float, stop: float, cap: int) -> str | None:
            """A node whose outage over [start, stop) stays within cap."""
            busy = cut_off(start, stop)
            if len(busy) >= cap:
                return None
            free = [n for n in self.node_names if n not in busy]
            if not free:
                return None
            return rng.choice(sorted(free))

        quiesce = self.duration + 1.0  # crash-only victims restart here
        want = self.profile
        # The first crash is placed before everything else (the outage
        # list is empty, so it always fits); the bounded families then
        # work around it within the cap, and any extra crash only lands
        # where room remains.  Each event gets a few placement attempts
        # before being dropped.
        extra_crashes = 0
        if want in ("crash", "migration", "mixed") and self.max_down > 0:
            extra_crashes = rng.randint(1, 2) - 1
            at = rng.uniform(0.5, self.duration * 0.6)
            victim = pick_victim(at, quiesce, self.max_down)
            events.append(FaultEvent(at, "crash", (victim,)))
            outages.append((at, quiesce, frozenset((victim,))))

        if want in ("partition", "migration", "mixed"):
            cuts = rng.randint(1, 2)
            for tag in range(cuts):
                for _attempt in range(4):
                    at = rng.uniform(0.5, self.duration * 0.7)
                    heal_at = min(at + rng.uniform(1.5, 4.0),
                                  self.duration)
                    busy = cut_off(at, heal_at)
                    room = min(2, self.max_down - len(busy),
                               len(self.node_names) - len(busy))
                    if room < 1:
                        continue
                    free = sorted(n for n in self.node_names
                                  if n not in busy)
                    size = rng.randint(1, room)
                    island = tuple(sorted(rng.sample(free, size)))
                    events.append(FaultEvent(at, "partition", island,
                                             tag=tag))
                    events.append(FaultEvent(heal_at, "heal", island,
                                             tag=tag))
                    outages.append((at, heal_at, frozenset(island)))
                    break

        if want in ("churn", "mixed") and self.max_down > 0:
            cycles = rng.randint(2, 3) if want == "churn" else 1
            for _ in range(cycles):
                for _attempt in range(4):
                    at = rng.uniform(0.5, self.duration * 0.5)
                    dwell = rng.uniform(self.session_expiry * 2.0,
                                        self.session_expiry * 2.0 + 3.0)
                    back = min(at + dwell, self.duration)
                    victim = pick_victim(at, back, self.max_down)
                    if victim is None:
                        continue
                    events.append(FaultEvent(at, "crash", (victim,)))
                    events.append(FaultEvent(back, "restart", (victim,)))
                    outages.append((at, back, frozenset((victim,))))
                    break

        for _ in range(extra_crashes):
            for _attempt in range(4):
                at = rng.uniform(0.5, self.duration * 0.6)
                victim = pick_victim(at, quiesce, self.max_down)
                if victim is None:
                    continue
                events.append(FaultEvent(at, "crash", (victim,)))
                outages.append((at, quiesce, frozenset((victim,))))
                break

        if want in ("loss", "mixed"):
            windows = rng.randint(1, 2)
            for tag in range(windows):
                at = rng.uniform(0.5, self.duration * 0.7)
                rate = rng.uniform(0.02, 0.15)
                stop_at = min(at + rng.uniform(1.0, 3.0), self.duration)
                events.append(FaultEvent(at, "loss_start", (),
                                         rate=rate, tag=100 + tag))
                events.append(FaultEvent(stop_at, "loss_stop", (),
                                         tag=100 + tag))

        events.sort(key=lambda ev: (ev.time, ev.kind, ev.targets))
        return Schedule(seed=self.seed, profile=self.profile,
                        duration=self.duration, events=events)
