"""The chaos runner: seeded workloads + fault schedule + invariants.

One :class:`ChaosRunner` run is fully determined by its parameters:

1. build a :class:`~repro.core.cluster.SednaCluster` (seeded latency);
2. attach a :class:`~repro.net.tap.NetworkTap` streaming into the
   history's message tallies;
3. start background maintenance (anti-entropy, GC, active detection —
   rebalancing stays off by default so the assignment only moves
   through the §III.C/D recovery paths under test; ``rebalance=True``
   hosts a load-aware rebalancer so live chunked migrations race the
   fault schedule, checked by the migration invariant);
4. run seeded smart-client workloads while the seeded fault schedule
   injects crashes, restarts, partitions and message loss;
5. quiesce: heal everything, restart every crashed node, let
   ZooKeeper sessions expire and recoveries finish, run a GC pass
   (ex-replicas push rows for vnodes that rotated away from them)
   and full anti-entropy passes, force-refresh every mapping cache;
6. snapshot the final state against the assignment freshly loaded from
   ZooKeeper and run the five invariant checkers.

Replays are byte-identical: the same seed yields the same schedule,
the same operation history and the same sha256 history digest.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Optional

from ..core.antientropy import AntiEntropyManager
from ..core.cache import MappingCache
from ..core.cluster import SednaCluster
from ..core.config import SednaConfig
from ..core.gc import GarbageCollector
from ..core.types import FullKey
from ..net.rpc import RpcRejected, RpcTimeout
from ..storage.versioned import wire_dvv_row
from ..net.simulator import AllOf
from ..net.tap import NetworkTap
from ..zk.server import ZkConfig
from .history import History
from .invariants import Anomaly, FinalState, causal_outcomes, check_all
from .schedule import Schedule, ScheduleGenerator

__all__ = ["ChaosRunner", "ChaosReport"]


@dataclass
class ChaosReport:
    """Everything one chaos run produced."""

    seed: int
    profile: str
    schedule: Schedule
    history: History
    anomalies: list[Anomaly]
    state: FinalState
    end_time: float
    # Scenario name when the run drove a workload-matrix scenario
    # instead of the default chaos mix ("" otherwise).
    scenario: str = ""
    crashes: int = 0
    restarts: int = 0
    op_counts: dict = field(default_factory=dict)
    # Tie hazards found by the opt-in detector (hazards=True); empty
    # both when clean and when detection was off — check
    # ``hazard_report`` for whether it ran.
    hazards: list = field(default_factory=list)
    hazard_report: str = ""
    # Metrics snapshot from the opt-in observability bundle (obs=True);
    # empty dict when obs was off.
    obs_snapshot: dict = field(default_factory=dict)
    # Rebalancer ledger rows (rebalance=True); empty when it was off.
    migrations: list = field(default_factory=list)
    # SLO evaluation artifacts (slo=True): exported alert transitions
    # and the whole-run per-spec status table.
    slo_alerts: list = field(default_factory=list)
    slo_status: dict = field(default_factory=dict)
    # Flight-recorder dump (record=True): non-empty exactly when a
    # hard anomaly tripped it (or record_always forced a dump).
    flight_dump: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when every invariant held (expected anomalies — e.g.
        durability losses after a whole ack set crashed — don't fail
        the run; see ``repro.chaos.invariants``)."""
        return not [a for a in self.anomalies if not a.expected]

    @property
    def digest(self) -> str:
        """The history's sha256 — the replay-identity fingerprint."""
        return self.history.digest()

    def describe(self) -> str:
        """Human-readable summary (bench output, failure triage)."""
        lines = [
            f"chaos seed={self.seed} profile={self.profile} "
            + (f"scenario={self.scenario} " if self.scenario else "")
            + f"ops={len(self.history)} digest={self.digest[:16]}…",
            f"  faults: {len(self.schedule.events)} events "
            f"({self.crashes} crashes, {self.restarts} mid-run restarts)",
            f"  ops: " + ", ".join(f"{k}={v}" for k, v
                                   in sorted(self.op_counts.items())),
        ]
        hard = [a for a in self.anomalies if not a.expected]
        expected = [a for a in self.anomalies if a.expected]
        if hard:
            lines.append(f"  ANOMALIES ({len(hard)}):")
            lines.extend(f"    {a}" for a in hard)
        else:
            lines.append("  all invariants held")
        if expected:
            lines.append(f"  expected anomalies ({len(expected)}):")
            lines.extend(f"    {a}" for a in expected)
        if self.migrations:
            done = sum(1 for m in self.migrations if m["state"] == "done")
            aborted = sum(1 for m in self.migrations
                          if m["state"] == "aborted")
            lines.append(f"  migrations: {len(self.migrations)} driven "
                         f"({done} committed, {aborted} aborted)")
        if self.history.causal_keys():
            fates = causal_outcomes(self.history, self.state)
            lines.append(
                f"  causal: {fates['acked']} acked "
                f"({fates['preserved']} preserved, "
                f"{fates['superseded']} superseded, "
                f"{fates['lost']} lost)")
        if self.slo_status:
            missed = sorted(name for name, entry in self.slo_status.items()
                            if not entry["met"])
            lines.append(f"  slo: {len(self.slo_status)} specs, "
                         f"{len(self.slo_alerts)} alert transitions"
                         + (f", missed: {', '.join(missed)}" if missed
                            else ", all met"))
        if self.flight_dump:
            lines.append(
                f"  flight recorder: dumped "
                f"{len(self.flight_dump.get('recent_spans', ()))} spans, "
                f"{len(self.flight_dump.get('samples', ()))} samples, "
                f"{len(self.flight_dump.get('packets', ()))} packets "
                f"({len(self.flight_dump.get('violating_traces', {}))} "
                f"violating keys cross-referenced)")
        if self.hazard_report:
            lines.append("  " + self.hazard_report.replace("\n", "\n  "))
        return "\n".join(lines)


class ChaosRunner:
    """One deterministic chaos experiment; see the module docstring.

    Parameters
    ----------
    seed:
        Drives the fault schedule, the workload mix and the network
        jitter; the only thing needed to replay a run.
    profile:
        Fault family selection (see
        :class:`~repro.chaos.schedule.ScheduleGenerator`).
    duration:
        Simulated seconds of faulted workload before quiesce.
    n_nodes / n_clients / num_vnodes:
        Cluster shape; small defaults keep a run around a second of
        wall clock.
    max_down:
        Cap on simultaneously unavailable nodes; default 2 keeps every
        quorum-overlap argument per-vnode sound for N=3.
    scenario:
        Workload-matrix scenario (a
        :class:`~repro.workloads.scenarios.ScenarioSpec` or a preset
        name) replacing the default chaos mix; the fault schedule,
        history records and invariant checkers are unchanged.  ``None``
        (the default) keeps the historical mix byte-identical.
    rebalance_opts:
        With ``rebalance=True``: keyword overrides for the hosted
        :class:`~repro.core.rebalance.Rebalancer` (``pass_byte_budget``,
        ``chunk_bytes``, ``weights``, ...).  ``None`` keeps the
        historical defaults, digest for digest.
    """

    LW_PREFIX = "lw"     # write_latest keys, shared across clients
    VA_PREFIX = "va"     # write_all keys (per-source value lists)
    DEL_PREFIX = "del"   # delete-churned keys (tainted for invariants)
    CW_PREFIX = "cw"     # causal-mode keys (causal="dvv"/"lww" only)

    def __init__(self, seed: int, profile: str = "mixed",
                 duration: float = 10.0, n_nodes: int = 6,
                 zk_size: int = 3, n_clients: int = 3,
                 num_vnodes: int = 16,
                 n_lw_keys: int = 6, n_va_keys: int = 4,
                 n_del_keys: int = 3,
                 max_down: int = 2,
                 config: Optional[SednaConfig] = None,
                 zk_config: Optional[ZkConfig] = None,
                 hazards: bool = False,
                 obs: bool = False,
                 rebalance: bool = False,
                 causal: Optional[str] = None,
                 n_cw_keys: int = 4,
                 slo: Any = False,
                 record: bool = False,
                 record_always: bool = False,
                 timeseries: bool = False,
                 scenario: Any = None,
                 rebalance_opts: Optional[dict] = None):
        # The diagnosis-pipeline stages ride the observability bundle:
        # asking for any of them implies obs=True.
        obs = obs or bool(slo) or record or record_always or timeseries
        if hazards and obs:
            # Both want the simulator's single tracer slot.
            raise ValueError("hazards and obs are mutually exclusive: "
                             "the kernel has one tracer slot")
        if causal not in (None, "dvv", "lww"):
            raise ValueError(f"causal must be None, 'dvv' or 'lww': "
                             f"{causal!r}")
        self.seed = seed
        self.profile = profile
        self.duration = duration
        self.n_nodes = n_nodes
        self.zk_size = zk_size
        self.n_clients = n_clients
        self.n_lw_keys = n_lw_keys
        self.n_va_keys = n_va_keys
        self.n_del_keys = n_del_keys
        self.max_down = max_down
        self.causal = causal
        if isinstance(scenario, str):
            # Local import: plain chaos runs stay import-free of the
            # workload matrix.
            from ..workloads.scenarios import get_scenario
            scenario = get_scenario(scenario)
        self.scenario = scenario
        self.rebalance_opts = rebalance_opts
        self.n_cw_keys = n_cw_keys
        # Per-(client, key) causal contexts, refreshed by causal reads.
        self._contexts: dict[tuple[str, str], list] = {}
        if config is not None:
            self.config = config
        elif causal == "dvv":
            # Keep the causal invariant exact: a capped-out sibling is
            # vv-covered but absent, indistinguishable (to the checker)
            # from a silent loss.  The cap itself is unit-tested; the
            # sweep runs effectively uncapped.
            self.config = SednaConfig(num_vnodes=num_vnodes,
                                      dvv_sibling_cap=1024)
        else:
            self.config = SednaConfig(num_vnodes=num_vnodes)
        self.zk_config = zk_config if zk_config is not None else ZkConfig(
            session_timeout=1.0)
        self.hazards = hazards
        self.hazard_detector = None
        self.obs = obs
        self.slo = slo
        self.record = record
        self.record_always = record_always
        self.timeseries = timeseries
        self.rebalance = rebalance
        self.rebalancer = None
        # The live Observability bundle (obs=True): span timelines stay
        # readable through it after run() returns.
        self.obs_bundle = None
        self.history = History()
        self.cluster: Optional[SednaCluster] = None
        self.clients: list = []
        self._restart_procs: list = []
        self._active_loss: list = []
        self._crashes = 0
        self._restarts = 0
        self._op_counts: dict[str, int] = {}

    # -- lifecycle --------------------------------------------------------
    def run(self) -> ChaosReport:
        """Execute the whole experiment; returns the report."""
        if self.obs:
            # Local import: plain chaos runs must not pay for the
            # observability layer (same rule as the hazard detector).
            from ..obs import Observability
            slos = None
            if self.slo:
                from ..obs.slo import default_slos
                slos = (default_slos() if self.slo is True
                        else list(self.slo))
            flight = self.record or self.record_always
            self.obs_bundle = Observability(metrics=True, tracing=True,
                                            timeseries=self.timeseries,
                                            slos=slos, flight=flight)
        self.cluster = SednaCluster(
            n_nodes=self.n_nodes, zk_size=self.zk_size, seed=self.seed,
            config=self.config, zk_config=self.zk_config,
            obs=self.obs_bundle)
        sim = self.cluster.sim
        if self.hazards:
            # Local import: repro.analysis depends on repro.net only,
            # and plain chaos runs must not pay the tracer.
            from ..analysis.hazards import HazardDetector
            self.hazard_detector = HazardDetector().attach(sim)
            for name in sorted(self.cluster.nodes):
                node = self.cluster.nodes[name]
                self.hazard_detector.track_store(name, node.store)
        self.cluster.start()
        if self.obs_bundle is not None:
            # Start the diagnosis pipeline (no-op without stages): the
            # sampler joins the event queue, the flight recorder taps
            # the network.
            self.obs_bundle.start(sim, network=self.cluster.network)
        tap = NetworkTap(self.cluster.network, on_record=self.history.tally,
                         keep_records=False)
        # Production maintenance, minus the rebalancer: the assignment
        # should only move through the recovery paths under test.
        self.cluster.enable_maintenance(anti_entropy=False, rebalance=False)
        self._ae = [AntiEntropyManager(self.cluster.nodes[name],
                                       interval=1.5, vnodes_per_pass=4)
                    for name in sorted(self.cluster.nodes)]
        for manager in self._ae:
            manager.start()

        if self.rebalance:
            # Local import: plain chaos runs keep the §III.C/D-only
            # assignment-motion guarantee (module docstring, step 3).
            from ..core.rebalance import Rebalancer
            opts = {"interval": 1.0, "pass_byte_budget": 64 * 1024,
                    "chunk_bytes": 4 * 1024}
            if self.rebalance_opts:
                opts.update(self.rebalance_opts)
            self.rebalancer = Rebalancer(self.cluster.nodes["node0"],
                                         **opts)
            self.rebalancer.start()

        self.clients = [self.cluster.smart_client(f"chaos{i}")
                        for i in range(self.n_clients)]
        self.cluster.run_all([c.connect() for c in self.clients])

        t0 = sim.now
        schedule = ScheduleGenerator(
            self.cluster.node_names, self.seed, duration=self.duration,
            profile=self.profile, max_down=self.max_down,
            session_expiry=self.zk_config.session_timeout).generate()

        procs = [sim.process(self._workload(client, i, t0),
                             name=f"chaos-load-{i}")
                 for i, client in enumerate(self.clients)]
        procs.append(sim.process(self._execute(schedule, t0),
                                 name="chaos-faults"))
        sim.run(until=AllOf(sim, procs))

        self.cluster.run(self._quiesce(), name="chaos-quiesce")
        state = self._collect()
        crash_times = tuple((ev.time, target)
                            for ev in schedule.events
                            if ev.kind == "crash"
                            for target in ev.targets)
        migrations = (self.rebalancer.ledger()
                      if self.rebalancer is not None else [])
        anomalies = check_all(self.history, state, crashes=crash_times,
                              migrations=tuple(migrations))
        tap.detach()
        hazards: list = []
        hazard_report = ""
        if self.hazard_detector is not None:
            self.hazard_detector.detach()
            hazards = list(self.hazard_detector.hazards)
            hazard_report = self.hazard_detector.report()
        obs_snapshot: dict = {}
        slo_alerts: list = []
        slo_status: dict = {}
        flight_dump: dict = {}
        if self.obs_bundle is not None:
            obs_snapshot = self.obs_bundle.snapshot()
            if self.obs_bundle.slo is not None:
                slo_alerts = [a.export() for a in self.obs_bundle.slo.alerts]
                slo_status = self.obs_bundle.slo.status()
            if self.obs_bundle.flight is not None:
                hard = [a for a in anomalies if not a.expected]
                if hard or self.record_always:
                    flight_dump = self.obs_bundle.flight.dump(
                        anomalies=hard, time=sim.now)
        return ChaosReport(seed=self.seed, profile=self.profile,
                           scenario=(self.scenario.name
                                     if self.scenario is not None else ""),
                           schedule=schedule, history=self.history,
                           anomalies=anomalies, state=state,
                           end_time=sim.now, crashes=self._crashes,
                           restarts=self._restarts,
                           op_counts=dict(sorted(self._op_counts.items())),
                           hazards=hazards, hazard_report=hazard_report,
                           obs_snapshot=obs_snapshot,
                           migrations=migrations,
                           slo_alerts=slo_alerts, slo_status=slo_status,
                           flight_dump=flight_dump)

    # -- fault execution --------------------------------------------------
    def _execute(self, schedule: Schedule, t0: float):
        """Replay the schedule against the live cluster."""
        cluster = self.cluster
        sim = cluster.sim
        partitions: dict[int, object] = {}
        losses: dict[int, object] = {}
        for ev in schedule.events:
            target_time = t0 + ev.time
            if target_time > sim.now:
                yield sim.timeout(target_time - sim.now)
            if ev.kind == "crash":
                node = cluster.nodes[ev.targets[0]]
                if node.running:
                    node.crash()
                    self._crashes += 1
            elif ev.kind == "restart":
                node = cluster.nodes[ev.targets[0]]
                if not node.running:
                    # cluster.restart_node() calls sim.run and cannot be
                    # used from inside a process; spawn the node's own
                    # restart generator instead.
                    self._restart_procs.append(sim.process(
                        self._supervised_restart(node),
                        name=f"{ev.targets[0]}-chaos-up"))
                    self._restarts += 1
            elif ev.kind == "partition":
                island = [n for t in ev.targets for n in (t, f"{t}-zk")]
                mainland = [n for n in cluster.network.endpoints
                            if n not in island]
                partitions[ev.tag] = cluster.failures.partition(island,
                                                                mainland)
            elif ev.kind == "heal":
                part = partitions.pop(ev.tag, None)
                if part is not None:
                    part.heal()
            elif ev.kind == "loss_start":
                loss = cluster.failures.message_loss(
                    ev.rate, seed=self.seed * 1000 + ev.tag)
                losses[ev.tag] = loss
                self._active_loss.append(loss)
            elif ev.kind == "loss_stop":
                loss = losses.pop(ev.tag, None)
                if loss is not None:
                    loss.stop()
                    self._active_loss.remove(loss)

    # -- workload ---------------------------------------------------------
    def _workload(self, client, index: int, t0: float):
        """One client's seeded op stream until the fault window closes."""
        if self.scenario is not None:
            yield from self._scenario_workload(client, index, t0)
            return
        rng = random.Random(f"{self.seed}/client/{index}")
        counter = 0
        end = t0 + self.duration
        while self.sim.now < end:
            yield self.sim.timeout(rng.uniform(0.04, 0.18))
            if self.sim.now >= end:
                return
            counter += 1
            value = f"{client.name}:{counter}"
            roll = rng.random()
            if self.causal is not None and roll < 0.30:
                # Causal slice.  Key and action are drawn here with the
                # same rng stream in both modes, so a dvv and an lww run
                # of one seed hit identical keys with identical intents
                # — the BENCH_dvv comparison is apples to apples.  With
                # causal off this branch never draws, leaving default
                # runs byte-identical to pre-causal history digests.
                yield from self._op_causal(client, rng, value)
            elif roll < 0.24:
                key = f"{self.LW_PREFIX}-{rng.randrange(self.n_lw_keys)}"
                yield from self._op_write(client, "write_latest", key, value)
            elif roll < 0.34:
                key = f"{self.VA_PREFIX}-{rng.randrange(self.n_va_keys)}"
                yield from self._op_write(client, "write_all", key, value)
            elif roll < 0.42:
                if rng.random() < 0.5:
                    keys = self._sample_keys(rng, self.LW_PREFIX,
                                             self.n_lw_keys)
                    yield from self._op_multi_write(client, "latest", keys,
                                                    value)
                else:
                    keys = self._sample_keys(rng, self.VA_PREFIX,
                                             self.n_va_keys)
                    yield from self._op_multi_write(client, "all", keys,
                                                    value)
            elif roll < 0.62:
                key = f"{self.LW_PREFIX}-{rng.randrange(self.n_lw_keys)}"
                yield from self._op_read_latest(client, key)
            elif roll < 0.72:
                key = f"{self.VA_PREFIX}-{rng.randrange(self.n_va_keys)}"
                yield from self._op_read_all(client, key)
            elif roll < 0.82:
                keys = self._sample_keys(rng, self.LW_PREFIX,
                                         self.n_lw_keys)
                yield from self._op_multi_read(client, keys)
            elif roll < 0.90:
                key = f"{self.DEL_PREFIX}-{rng.randrange(self.n_del_keys)}"
                yield from self._op_write(client, "write_latest", key, value)
            elif roll < 0.96:
                key = f"{self.DEL_PREFIX}-{rng.randrange(self.n_del_keys)}"
                yield from self._op_delete(client, key)
            else:
                keys = self._sample_keys(rng, self.DEL_PREFIX,
                                         self.n_del_keys)
                yield from self._op_multi_delete(client, keys)

    def _scenario_workload(self, client, index: int, t0: float):
        """One client's stream of a workload-matrix scenario.

        The stream draws every key and op choice itself; this wrapper
        only owns the sim-clock pacing and routes each intent through
        the same op helpers (and history records) the default mix uses.
        """
        # Local import: plain chaos runs stay import-free of scenarios.
        from ..workloads.scenarios import ScenarioStream
        stream = ScenarioStream(self.scenario, self.seed, index, t0=t0)
        counter = 0
        end = t0 + self.duration
        while self.sim.now < end:
            yield self.sim.timeout(stream.gap())
            if self.sim.now >= end:
                return
            counter += 1
            intent = stream.next(self.sim.now)
            yield from self._apply_intent(client, intent,
                                          f"{client.name}:{counter}")

    def _apply_intent(self, client, intent, value: str):
        """Dispatch one scenario op intent to the matching op helper."""
        kind = intent.kind
        if kind in ("write_latest", "write_all"):
            yield from self._op_write(client, kind, intent.keys[0], value)
        elif kind == "read_latest":
            yield from self._op_read_latest(client, intent.keys[0])
        elif kind == "read_all":
            yield from self._op_read_all(client, intent.keys[0])
        elif kind == "multi_read":
            yield from self._op_multi_read(client, list(intent.keys))
        else:  # pragma: no cover - OpIntent validates kinds
            raise ValueError(f"unhandled intent kind {kind!r}")

    def _sample_keys(self, rng: random.Random, prefix: str,
                     pool: int) -> list[str]:
        """2-4 distinct keys of one pool, deterministically sampled."""
        count = rng.randint(2, min(4, pool))
        return [f"{prefix}-{i}" for i in sorted(rng.sample(range(pool),
                                                           count))]

    @property
    def sim(self):
        return self.cluster.sim

    def _count(self, kind: str) -> None:
        self._op_counts[kind] = self._op_counts.get(kind, 0) + 1

    def _mint(self, client, name: str, key: str):
        """Root span for one workload op (None when obs is off).

        Tagged with the encoded key so a history anomaly maps straight
        to its span timeline."""
        bundle = self.obs_bundle
        if bundle is None or bundle.tracer is None:
            return None
        span = bundle.tracer.start_trace(f"chaos.{name}", node=client.name)
        span.tags["key"] = key
        return span

    def _mint_end(self, span, **tags) -> None:
        if self.obs_bundle is not None and self.obs_bundle.tracer is not None:
            self.obs_bundle.tracer.finish(span, **tags)

    def _observe_outcome(self, client, record, failed: bool) -> None:
        """Feed the client-side end-to-end metrics for one op.

        The runner drives coordinators directly (bypassing the client
        wrapper methods that normally observe these), so it stands in
        for that layer here — the availability SLO and the flight
        recorder ride ``client.*_seconds`` / ``client.failures``.
        Every handle is a no-op when obs is off."""
        if failed:
            client._m_failures.inc()
        elif record.kind in ("read_latest", "read_all", "read_causal"):
            client._m_read_lat.observe(self.sim.now - record.invoked)
        else:
            client._m_write_lat.observe(self.sim.now - record.invoked)

    def _op_write(self, client, kind: str, key: str, value):
        self._count(kind)
        encoded = FullKey.of(key).encoded()
        mode = "latest" if kind == "write_latest" else "all"
        args = {"key": encoded, "value": value, "ts": client._timestamp(),
                "source": client.name, "mode": mode}
        record = self.history.begin(client.name, kind, encoded,
                                    self.sim.now, value=value, ts=args["ts"])
        span = self._mint(client, kind, encoded)
        try:
            result = yield from client.coordinator.coordinate_write(args)
        except (RpcTimeout, RpcRejected):
            self._mint_end(span, status="failure")
            self._observe_outcome(client, record, failed=True)
            self.history.complete(record, self.sim.now, "failure")
            return
        self._mint_end(span, status=result["status"])
        self._observe_outcome(client, record, failed=False)
        self.history.complete(record, self.sim.now, result["status"],
                              acks=tuple(result.get("acks", ())))

    def _op_read_latest(self, client, key: str):
        self._count("read_latest")
        encoded = FullKey.of(key).encoded()
        record = self.history.begin(client.name, "read_latest", encoded,
                                    self.sim.now)
        span = self._mint(client, "read_latest", encoded)
        try:
            result = yield from client.coordinator.coordinate_read(
                {"key": encoded, "mode": "latest"})
        except (RpcTimeout, RpcRejected):
            self._mint_end(span, status="failure")
            self._observe_outcome(client, record, failed=True)
            self.history.complete(record, self.sim.now, "failure")
            return
        self._mint_end(span, status="ok",
                       found=bool(result.get("found")),
                       ts=result.get("ts"))
        self._observe_outcome(client, record, failed=False)
        responders = tuple(result.get("responders", ()))
        if result.get("found"):
            self.history.complete(record, self.sim.now, "found",
                                  responders=responders,
                                  result_ts=result["ts"],
                                  result_source=result["source"],
                                  result_value=result["value"])
        else:
            self.history.complete(record, self.sim.now, "miss",
                                  responders=responders)

    def _op_read_all(self, client, key: str):
        self._count("read_all")
        encoded = FullKey.of(key).encoded()
        record = self.history.begin(client.name, "read_all", encoded,
                                    self.sim.now)
        span = self._mint(client, "read_all", encoded)
        try:
            result = yield from client.coordinator.coordinate_read(
                {"key": encoded, "mode": "all"})
        except (RpcTimeout, RpcRejected):
            self._mint_end(span, status="failure")
            self._observe_outcome(client, record, failed=True)
            self.history.complete(record, self.sim.now, "failure")
            return
        self._mint_end(span, status="ok")
        self._observe_outcome(client, record, failed=False)
        self.history.complete(
            record, self.sim.now, "ok",
            responders=tuple(result.get("responders", ())),
            result_elements=tuple((s, t, v)
                                  for s, t, v in result["elements"]))

    def _op_causal(self, client, rng, value: str):
        """One causal-slice op: read, context write or blind write.

        In ``dvv`` mode these are real causal ops; in ``lww`` mode the
        *same* key/action draws run as plain write_latest/read_latest,
        so the two modes expose the identical concurrency pattern to
        the two conflict-resolution disciplines.
        """
        key = f"{self.CW_PREFIX}-{rng.randrange(self.n_cw_keys)}"
        action = rng.random()
        encoded = FullKey.of(key).encoded()
        if self.causal == "lww":
            if action < 0.25:
                yield from self._op_read_latest(client, key)
            else:
                yield from self._op_write(client, "write_latest", key, value)
            return
        if action < 0.25:
            yield from self._op_causal_read(client, encoded)
        else:
            # Context write when this client holds a context from an
            # earlier read; blind (concurrent-by-construction) write on
            # the rest — and always when no context is held yet.
            ctx = self._contexts.get((client.name, encoded))
            if action >= 0.65 or ctx is None:
                ctx = []
            yield from self._op_causal_write(client, encoded, value, ctx)

    def _op_causal_write(self, client, encoded: str, value, ctx):
        self._count("write_causal")
        args = {"key": encoded, "value": value, "ts": client._timestamp(),
                "source": client.name, "ctx": list(ctx)}
        record = self.history.begin(client.name, "write_causal", encoded,
                                    self.sim.now, value=value, ts=args["ts"],
                                    ctx=tuple(tuple(p) for p in ctx))
        span = self._mint(client, "write_causal", encoded)
        try:
            result = yield from client.coordinator.coordinate_causal_write(
                args)
        except (RpcTimeout, RpcRejected):
            self._mint_end(span, status="failure")
            self._observe_outcome(client, record, failed=True)
            self.history.complete(record, self.sim.now, "failure")
            return
        self._mint_end(span, status=result["status"])
        self._observe_outcome(client, record, failed=False)
        self.history.complete(record, self.sim.now, result["status"],
                              acks=tuple(result.get("acks", ())),
                              dot=tuple(result["dot"]))

    def _op_causal_read(self, client, encoded: str):
        self._count("read_causal")
        record = self.history.begin(client.name, "read_causal", encoded,
                                    self.sim.now)
        span = self._mint(client, "read_causal", encoded)
        try:
            result = yield from client.coordinator.coordinate_causal_read(
                {"key": encoded})
        except (RpcTimeout, RpcRejected):
            self._mint_end(span, status="failure")
            self._observe_outcome(client, record, failed=True)
            self.history.complete(record, self.sim.now, "failure")
            return
        found = bool(result.get("found"))
        self._mint_end(span, status="ok", found=found)
        self._observe_outcome(client, record, failed=False)
        context = tuple(tuple(p) for p in result.get("context", ()))
        self._contexts[(client.name, encoded)] = list(context)
        self.history.complete(
            record, self.sim.now, "found" if found else "miss",
            responders=tuple(result.get("responders", ())),
            result_elements=tuple((s, t, v)
                                  for s, t, v in result.get("siblings", ())),
            ctx=context)

    def _op_delete(self, client, key: str):
        self._count("delete")
        encoded = FullKey.of(key).encoded()
        record = self.history.begin(client.name, "delete", encoded,
                                    self.sim.now)
        span = self._mint(client, "delete", encoded)
        try:
            result = yield from client.coordinator.coordinate_delete(
                {"key": encoded})
        except (RpcTimeout, RpcRejected):
            self._mint_end(span, status="failure")
            self._observe_outcome(client, record, failed=True)
            self.history.complete(record, self.sim.now, "failure")
            return
        self._mint_end(span, status=result["status"])
        self._observe_outcome(client, record, failed=False)
        self.history.complete(record, self.sim.now, result["status"],
                              acks=tuple(result.get("acks", ())))

    def _op_multi_write(self, client, mode: str, keys: list[str],
                        value_base: str):
        """One batched write; history gets one per-key record of the
        matching single-op kind, so every invariant (durability,
        freshness, replication, value lists) covers batch writes with
        zero checker changes."""
        self._count("multi_write")
        kind = "write_latest" if mode == "latest" else "write_all"
        entries = []
        records = []
        for i, key in enumerate(keys):
            encoded = FullKey.of(key).encoded()
            value = f"{value_base}.{i}"
            ts = client._timestamp()
            entries.append({"key": encoded, "value": value, "ts": ts,
                            "source": client.name, "mode": mode})
            records.append(self.history.begin(client.name, kind, encoded,
                                              self.sim.now, value=value,
                                              ts=ts))
        span = self._mint(client, "multi_write", ",".join(
            e["key"] for e in entries))
        try:
            result = yield from client.coordinator.coordinate_multi_write(
                {"entries": entries})
        except (RpcTimeout, RpcRejected):
            self._mint_end(span, status="failure")
            self._observe_outcome(client, records[0], failed=True)
            for record in records:
                self.history.complete(record, self.sim.now, "failure")
            return
        self._mint_end(span, status="ok")
        self._observe_outcome(client, records[0], failed=False)
        results = result["results"]
        for record, entry in zip(records, entries):
            per_key = results.get(entry["key"], {})
            self.history.complete(record, self.sim.now,
                                  per_key.get("status", "failure"),
                                  acks=tuple(per_key.get("acks", ())))

    def _op_multi_read(self, client, keys: list[str]):
        """One batched read; per-key ``read_latest`` history records."""
        self._count("multi_read")
        encoded_keys = [FullKey.of(key).encoded() for key in keys]
        records = [self.history.begin(client.name, "read_latest", encoded,
                                      self.sim.now)
                   for encoded in encoded_keys]
        span = self._mint(client, "multi_read", ",".join(encoded_keys))
        try:
            result = yield from client.coordinator.coordinate_multi_read(
                {"keys": encoded_keys, "mode": "latest"})
        except (RpcTimeout, RpcRejected):
            self._mint_end(span, status="failure")
            self._observe_outcome(client, records[0], failed=True)
            for record in records:
                self.history.complete(record, self.sim.now, "failure")
            return
        self._mint_end(span, status="ok")
        self._observe_outcome(client, records[0], failed=False)
        results = result["results"]
        for record, encoded in zip(records, encoded_keys):
            per_key = results.get(encoded)
            if per_key is None or per_key.get("status") != "ok":
                self.history.complete(
                    record, self.sim.now, "failure",
                    responders=tuple((per_key or {}).get("responders", ())))
            elif per_key.get("found"):
                self.history.complete(
                    record, self.sim.now, "found",
                    responders=tuple(per_key["responders"]),
                    result_ts=per_key["ts"],
                    result_source=per_key["source"],
                    result_value=per_key["value"])
            else:
                self.history.complete(
                    record, self.sim.now, "miss",
                    responders=tuple(per_key["responders"]))

    def _op_multi_delete(self, client, keys: list[str]):
        """One batched delete; per-key ``delete`` records taint keys."""
        self._count("multi_delete")
        encoded_keys = [FullKey.of(key).encoded() for key in keys]
        records = [self.history.begin(client.name, "delete", encoded,
                                      self.sim.now)
                   for encoded in encoded_keys]
        span = self._mint(client, "multi_delete", ",".join(encoded_keys))
        try:
            result = yield from client.coordinator.coordinate_multi_delete(
                {"keys": encoded_keys})
        except (RpcTimeout, RpcRejected):
            self._mint_end(span, status="failure")
            self._observe_outcome(client, records[0], failed=True)
            for record in records:
                self.history.complete(record, self.sim.now, "failure")
            return
        self._mint_end(span, status="ok")
        self._observe_outcome(client, records[0], failed=False)
        results = result["results"]
        for record, encoded in zip(records, encoded_keys):
            per_key = results.get(encoded, {})
            self.history.complete(record, self.sim.now,
                                  per_key.get("status", "failure"),
                                  acks=tuple(per_key.get("acks", ())))

    def _supervised_restart(self, node):
        """``node.restart()`` hardened against open fault windows.

        A rejoin can time out mid-join when its ZooKeeper endpoint is
        partitioned or the fabric is lossy; crash the half-joined node
        back down and retry — faults heal no later than quiesce, so the
        loop always terminates.
        """
        while True:
            try:
                yield from node.restart()
                if self.hazard_detector is not None:
                    # restart() built a fresh store; wrapping is per
                    # instance, so re-track the new one.
                    self.hazard_detector.track_store(node.name,
                                                     node.store)
                if (self.rebalancer is not None
                        and self.rebalancer.node is node):
                    # The balance loop died with its host; revive it so
                    # migrations keep racing the remaining schedule.
                    self.rebalancer.start()
                return
            except (RpcTimeout, RpcRejected):
                node.crash()
                yield self.sim.timeout(self.zk_config.rpc_timeout)

    # -- quiesce ----------------------------------------------------------
    def _quiesce(self):
        """Heal everything and drive the cluster back to convergence."""
        cluster = self.cluster
        sim = self.sim
        cluster.failures.heal_all()
        for loss in list(self._active_loss):
            loss.stop()
        self._active_loss.clear()
        # In-run maintenance off; convergence below is explicit so the
        # quiesce length is fixed instead of waiting on periodic loops.
        for manager in self._ae:
            manager.stop()
        cluster.disable_maintenance()
        for proc in self._restart_procs:
            if not proc.triggered:
                yield proc
        repair_procs = []
        for name in sorted(cluster.nodes):
            node = cluster.nodes[name]
            if not node.running:
                repair_procs.append(sim.process(
                    self._supervised_restart(node),
                    name=f"{name}-quiesce-up"))
        for proc in repair_procs:
            if not proc.triggered:
                yield proc
        # Let crashed sessions expire and in-flight investigations,
        # recoveries and fire-and-forget repairs land.
        yield sim.timeout(self.zk_config.session_timeout * 2 + 1.0)
        if self.rebalancer is not None:
            # The balance loop dies with its host; revive it so parked
            # migrations finish or abort deterministically, then
            # resolve whatever is left — a parked copy is safe (the
            # donor still owns the vnode) but the ledger must close.
            self.rebalancer.start()
            yield from self.rebalancer.drain(timeout=20.0)
            self.rebalancer.stop()
            self.rebalancer.abort_pending("quiesce")
        # Sync every ring to the final assignment BEFORE reconciling:
        # rejoining nodes may have re-claimed vnodes, and anti-entropy
        # walks each node's *cached* replica sets.
        yield from self._refresh_caches()
        # GC pass: claiming a vnode rotates the replica sets of its ring
        # *predecessors* too, so rows can be stranded on ex-replicas that
        # anti-entropy (which only walks current replica sets) never
        # consults.  The janitor pushes those rows to the authoritative
        # set before dropping them.
        for name in sorted(cluster.nodes):
            node = cluster.nodes[name]
            if node.running:
                janitor = GarbageCollector(
                    node, vnodes_per_pass=self.config.num_vnodes)
                yield from janitor.run_pass()
        # Full anti-entropy sweeps: every node reconciles every vnode it
        # replicates; three rounds close pull-then-push transitive chains.
        for _ in range(3):
            for name in sorted(cluster.nodes):
                node = cluster.nodes[name]
                if not node.running:
                    continue
                sweeper = AntiEntropyManager(
                    node, vnodes_per_pass=self.config.num_vnodes)
                yield from sweeper.run_pass()
            yield sim.timeout(0.5)
        # Force every cache up to date (invariant 5 checks the result).
        yield from self._refresh_caches()

    def _refresh_caches(self):
        for name in sorted(self.cluster.nodes):
            node = self.cluster.nodes[name]
            if node.running:
                yield from node.cache.refresh()
        for client in self.clients:
            yield from client.cache.refresh()

    # -- final-state collection ------------------------------------------
    def _authoritative_ring(self):
        """Load the assignment fresh from ZooKeeper (ground truth)."""
        zk = self.cluster.ensemble.client("chaos-probe")
        yield from zk.connect()
        probe = MappingCache(self.sim, zk, self.config)
        yield from probe.load_full()
        yield from zk.close()
        return probe.ring

    def _collect(self) -> FinalState:
        ring = self.cluster.run(self._authoritative_ring(),
                                name="chaos-collect")
        state = FinalState(assignment=ring.snapshot())
        tracked = sorted(set(self.history.written_keys())
                         | self.history.deleted_keys())
        for key in tracked:
            vnode_id, replicas = ring.replicas_for_key(key,
                                                       self.config.replicas)
            state.replica_sets[key] = (vnode_id, replicas)
            holders: dict[str, list[tuple]] = {}
            for name in replicas:
                node = self.cluster.nodes.get(name)
                if node is None or not node.running:
                    holders[name] = []
                    continue
                holders[name] = [(e.source, e.timestamp, e.value)
                                 for e in node.store.read_all(key)]
            state.holders[key] = holders
        for key in self.history.causal_keys():
            vnode_id, replicas = ring.replicas_for_key(key,
                                                       self.config.replicas)
            state.replica_sets.setdefault(key, (vnode_id, replicas))
            dvv_holders: dict[str, dict] = {}
            for name in replicas:
                node = self.cluster.nodes.get(name)
                if node is None or not node.running:
                    dvv_holders[name] = {}
                    continue
                row = node.store.dvv_rows.get(key)
                dvv_holders[name] = wire_dvv_row(row) if row is not None \
                    else {}
            state.dvv_holders[key] = dvv_holders
        for name in sorted(self.cluster.nodes):
            node = self.cluster.nodes[name]
            if node.running:
                state.node_caches[name] = node.cache.ring.snapshot()
        for client in self.clients:
            state.client_caches[client.name] = client.cache.ring.snapshot()
        return state
