"""Safety invariants checked after a chaos run quiesces.

The checkers consume the operation :class:`~repro.chaos.history.History`
plus a :class:`FinalState` snapshot (taken by the runner after healing
every fault, restarting every crashed node and letting anti-entropy
finish) and return :class:`Anomaly` records — an empty list is a pass.

Five invariants, matching the promises the cluster actually makes:

1. **durability** — a ``write_latest`` acknowledged at W quorum is
   never lost: the surviving row's latest element is that write or a
   newer one.
2. **freshness** — R + W > N: a ``read_latest`` invoked after an acked
   write completed returns that write or newer, never an older value
   and never a miss.
3. **replication** — every written key is back on all N replicas of
   its (post-churn) authoritative replica set; orphan copies GC'd off
   former owners don't count against this.
4. **value lists** — ``write_all`` never loses a source's newest acked
   element from the merged value list.
5. **cache convergence** — every running node's and every client's
   mapping cache equals the ZooKeeper assignment.

Keys touched by a ``delete`` are excluded from 1-4: the store keeps no
tombstones, so anti-entropy may legitimately resurrect a deleted key
(a faithful reproduction of the paper's no-tombstone design, noted in
docs/protocols.md), and a failed delete may still have removed the row
on a minority of replicas.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .history import History

__all__ = ["Anomaly", "FinalState", "check_all", "check_durability",
           "check_freshness", "check_replication", "check_value_lists",
           "check_cache_convergence"]


@dataclass(frozen=True)
class Anomaly:
    """One invariant violation."""

    invariant: str
    key: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.invariant}] {self.key}: {self.detail}"


@dataclass
class FinalState:
    """Post-quiesce cluster snapshot (built by the runner).

    ``holders`` maps each tracked key to ``{replica_name: [(source,
    ts, value), ...]}`` over its *authoritative* replica set (from the
    assignment freshly loaded out of ZooKeeper); ``replica_sets`` maps
    each key to its ``(vnode_id, [replica names])``.
    """

    assignment: list[str] = field(default_factory=list)
    replica_sets: dict[str, tuple[int, list[str]]] = field(default_factory=dict)
    holders: dict[str, dict[str, list[tuple]]] = field(default_factory=dict)
    node_caches: dict[str, list[str]] = field(default_factory=dict)
    client_caches: dict[str, list[str]] = field(default_factory=dict)


def _merged_elements(state: FinalState, key: str) -> dict[str, tuple]:
    """source -> (ts, value): newest-per-source across the replica set."""
    merged: dict[str, tuple] = {}
    for elements in state.holders.get(key, {}).values():
        for source, ts, value in elements:
            if source not in merged or ts > merged[source][0]:
                merged[source] = (ts, value)
    return merged


def _final_latest(state: FinalState, key: str):
    """(ts, source, value) of the freshest surviving element, or None."""
    best = None
    for source, (ts, value) in _merged_elements(state, key).items():
        if best is None or (ts, source) > (best[0], best[1]):
            best = (ts, source, value)
    return best


def check_durability(history: History, state: FinalState) -> list[Anomaly]:
    """Invariant 1: no quorum-acked ``write_latest`` lost."""
    anomalies = []
    tainted = history.deleted_keys()
    for key in history.written_keys():
        if key in tainted:
            continue
        acked = history.acked_writes(key, kind="write_latest")
        if not acked:
            continue
        winner = max(acked, key=lambda r: (r.ts, r.client))
        latest = _final_latest(state, key)
        if latest is None:
            anomalies.append(Anomaly(
                "durability", key,
                f"acked write ts={winner.ts} by {winner.client} vanished "
                f"(no surviving element on any replica)"))
        elif (latest[0], latest[1]) < (winner.ts, winner.client):
            anomalies.append(Anomaly(
                "durability", key,
                f"final latest (ts={latest[0]}, src={latest[1]}) older than "
                f"acked write (ts={winner.ts}, src={winner.client})"))
    return anomalies


def check_freshness(history: History, state: FinalState) -> list[Anomaly]:
    """Invariant 2: reads after acked writes return them or newer."""
    anomalies = []
    tainted = history.deleted_keys()
    for read in history.ops(kind="read_latest"):
        if read.key in tainted or read.status == "failure":
            continue
        acked = [w for w in history.acked_writes(read.key,
                                                 kind="write_latest")
                 if w.completed is not None and w.completed <= read.invoked]
        if not acked:
            continue
        winner = max(acked, key=lambda r: (r.ts, r.client))
        if read.status == "miss":
            anomalies.append(Anomaly(
                "freshness", read.key,
                f"op#{read.op_id} ({read.client}) missed despite write "
                f"ts={winner.ts} acked at t={winner.completed:.3f} before "
                f"read at t={read.invoked:.3f}"))
        elif (read.result_ts, read.result_source) < (winner.ts,
                                                     winner.client):
            anomalies.append(Anomaly(
                "freshness", read.key,
                f"op#{read.op_id} ({read.client}) returned stale "
                f"ts={read.result_ts} (src={read.result_source}); acked "
                f"write ts={winner.ts} (src={winner.client}) completed "
                f"earlier"))
    return anomalies


def check_replication(history: History, state: FinalState) -> list[Anomaly]:
    """Invariant 3: replication factor back to N on the final set."""
    anomalies = []
    tainted = history.deleted_keys()
    for key in history.written_keys():
        if key in tainted or not history.acked_writes(key):
            continue
        _vnode, replicas = state.replica_sets.get(key, (None, []))
        holders = state.holders.get(key, {})
        missing = [r for r in replicas if not holders.get(r)]
        if missing:
            anomalies.append(Anomaly(
                "replication", key,
                f"absent on {missing} of final replica set {replicas}"))
    return anomalies


def check_value_lists(history: History, state: FinalState) -> list[Anomaly]:
    """Invariant 4: no source's newest acked ``write_all`` element lost."""
    anomalies = []
    tainted = history.deleted_keys()
    keys = {r.key for r in history.records if r.kind == "write_all"}
    for key in sorted(keys):
        if key in tainted:
            continue
        merged = _merged_elements(state, key)
        per_source: dict[str, float] = {}
        for write in history.acked_writes(key, kind="write_all"):
            per_source[write.client] = max(per_source.get(write.client,
                                                          float("-inf")),
                                           write.ts)
        for source, newest_ts in sorted(per_source.items()):
            surviving = merged.get(source)
            if surviving is None:
                anomalies.append(Anomaly(
                    "value-list", key,
                    f"source {source} lost from value list (newest acked "
                    f"ts={newest_ts})"))
            elif surviving[0] < newest_ts:
                anomalies.append(Anomaly(
                    "value-list", key,
                    f"source {source} element ts={surviving[0]} older than "
                    f"newest acked ts={newest_ts}"))
    return anomalies


def check_cache_convergence(history: History,
                            state: FinalState) -> list[Anomaly]:
    """Invariant 5: every mapping cache equals the ZK assignment."""
    anomalies = []
    for label, caches in (("node", state.node_caches),
                          ("client", state.client_caches)):
        for name, snapshot in sorted(caches.items()):
            diffs = [v for v, (a, b) in
                     enumerate(zip(snapshot, state.assignment)) if a != b]
            if diffs:
                shown = diffs[:5]
                anomalies.append(Anomaly(
                    "cache", name,
                    f"{label} cache diverges from ZK on vnodes {shown}"
                    + (f" (+{len(diffs) - len(shown)} more)"
                       if len(diffs) > len(shown) else "")))
    return anomalies


CHECKS = (check_durability, check_freshness, check_replication,
          check_value_lists, check_cache_convergence)


def check_all(history: History, state: FinalState) -> list[Anomaly]:
    """Run every invariant; empty list == the run was safe."""
    anomalies: list[Anomaly] = []
    for check in CHECKS:
        anomalies.extend(check(history, state))
    return anomalies
