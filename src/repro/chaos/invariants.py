"""Safety invariants checked after a chaos run quiesces.

The checkers consume the operation :class:`~repro.chaos.history.History`
plus a :class:`FinalState` snapshot (taken by the runner after healing
every fault, restarting every crashed node and letting anti-entropy
finish) and return :class:`Anomaly` records — an empty list is a pass.

Five invariants, matching the promises the cluster actually makes:

1. **durability** — a ``write_latest`` acknowledged at W quorum is
   never lost: the surviving row's latest element is that write or a
   newer one.
2. **freshness** — R + W > N: a ``read_latest`` invoked after an acked
   write completed returns that write or newer, never an older value
   and never a miss.  One carve-out: quorum intersection only promises
   freshness while at least one acker still *has* the write.  Sedna is
   memory-first (§IV: persistence is asynchronous; "the most fresh
   data matters most"), so when every node that acked a write crashes
   before the read — wiping the value from memory before any flush —
   the newest acked version is provably gone from the cluster and no
   read protocol could return it.  Such reads are reported as
   *expected* ``durability-loss`` anomalies (visible in the report,
   not a failure); staleness while any acker survived is still a hard
   freshness violation.  The checker needs the fault timeline for
   this, passed as ``crashes=[(time, node), ...]``.
3. **replication** — every written key is back on all N replicas of
   its (post-churn) authoritative replica set; orphan copies GC'd off
   former owners don't count against this.
4. **value lists** — ``write_all`` never loses a source's newest acked
   element from the merged value list.
5. **cache convergence** — every running node's and every client's
   mapping cache equals the ZooKeeper assignment.
6. **migration safety** — when the run hosted a rebalancer, every
   ledger entry ends resolved and no key of a migrated vnode became
   unreachable (see :func:`check_migrations`).
7. **causal safety** — no concurrent causal (DVV) write silently
   lost: every acked ``write_causal`` survives as a sibling or was
   knowingly superseded by a context-carrying write (see
   :func:`check_causal`; docs/protocols.md §16).

Keys touched by a ``delete`` are excluded from 1-4: the store keeps no
tombstones, so anti-entropy may legitimately resurrect a deleted key
(a faithful reproduction of the paper's no-tombstone design, noted in
docs/protocols.md), and a failed delete may still have removed the row
on a minority of replicas.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..storage.versioned import DvvRow, ctx_covers, unwire_dvv_row
from .history import History

__all__ = ["Anomaly", "FinalState", "check_all", "check_durability",
           "check_freshness", "check_replication", "check_value_lists",
           "check_cache_convergence", "check_migrations", "check_causal",
           "causal_outcomes", "lww_concurrent_losses"]


@dataclass(frozen=True)
class Anomaly:
    """One invariant violation.

    ``expected`` marks anomalies the modeled system genuinely cannot
    avoid (e.g. a durability loss after the whole ack set crashed);
    they are surfaced in reports but do not fail the run.
    """

    invariant: str
    key: str
    detail: str
    expected: bool = False

    def __str__(self) -> str:
        tag = " (expected)" if self.expected else ""
        return f"[{self.invariant}]{tag} {self.key}: {self.detail}"


@dataclass
class FinalState:
    """Post-quiesce cluster snapshot (built by the runner).

    ``holders`` maps each tracked key to ``{replica_name: [(source,
    ts, value), ...]}`` over its *authoritative* replica set (from the
    assignment freshly loaded out of ZooKeeper); ``replica_sets`` maps
    each key to its ``(vnode_id, [replica names])``.
    """

    assignment: list[str] = field(default_factory=list)
    replica_sets: dict[str, tuple[int, list[str]]] = field(default_factory=dict)
    holders: dict[str, dict[str, list[tuple]]] = field(default_factory=dict)
    node_caches: dict[str, list[str]] = field(default_factory=dict)
    client_caches: dict[str, list[str]] = field(default_factory=dict)
    # Causal (DVV) rows: key -> {replica_name: wire_dvv_row blob} over
    # the key's authoritative replica set (docs/protocols.md §16).
    dvv_holders: dict[str, dict[str, dict]] = field(default_factory=dict)


def _merged_elements(state: FinalState, key: str) -> dict[str, tuple]:
    """source -> (ts, value): newest-per-source across the replica set."""
    merged: dict[str, tuple] = {}
    for elements in state.holders.get(key, {}).values():
        for source, ts, value in elements:
            if source not in merged or ts > merged[source][0]:
                merged[source] = (ts, value)
    return merged


def _final_latest(state: FinalState, key: str):
    """(ts, source, value) of the freshest surviving element, or None."""
    best = None
    for source, (ts, value) in _merged_elements(state, key).items():
        if best is None or (ts, source) > (best[0], best[1]):
            best = (ts, source, value)
    return best


def check_durability(history: History, state: FinalState) -> list[Anomaly]:
    """Invariant 1: no quorum-acked ``write_latest`` lost."""
    anomalies = []
    tainted = history.deleted_keys()
    for key in history.written_keys():
        if key in tainted:
            continue
        acked = history.acked_writes(key, kind="write_latest")
        if not acked:
            continue
        winner = max(acked, key=lambda r: (r.ts, r.client))
        latest = _final_latest(state, key)
        if latest is None:
            anomalies.append(Anomaly(
                "durability", key,
                f"acked write ts={winner.ts} by {winner.client} vanished "
                f"(no surviving element on any replica)"))
        elif (latest[0], latest[1]) < (winner.ts, winner.client):
            anomalies.append(Anomaly(
                "durability", key,
                f"final latest (ts={latest[0]}, src={latest[1]}) older than "
                f"acked write (ts={winner.ts}, src={winner.client})"))
    return anomalies


def _ack_set_lost(write, read, crashes) -> bool:
    """True when every acker of ``write`` crashed (memory wiped)
    between the write's ack and the read's invocation."""
    if not write.acks:
        return False
    for acker in write.acks:
        if not any(node == acker and write.completed < t < read.invoked
                   for t, node in crashes):
            return False
    return True


def check_freshness(history: History, state: FinalState,
                    crashes: tuple = ()) -> list[Anomaly]:
    """Invariant 2: reads after acked writes return them or newer.

    ``crashes`` is the run's crash timeline ``[(time, node), ...]``.
    A write whose entire ack set crashed before the read is excused
    from the staleness comparison (the value is provably gone from
    every live memory; asynchronous persistence may not have flushed
    it) and reported as an *expected* ``durability-loss`` anomaly
    instead — see the module docstring.
    """
    anomalies = []
    tainted = history.deleted_keys()
    for read in history.ops(kind="read_latest"):
        if read.key in tainted or read.status == "failure":
            continue
        acked = [w for w in history.acked_writes(read.key,
                                                 kind="write_latest")
                 if w.completed is not None and w.completed <= read.invoked]
        if not acked:
            continue
        winner = max(acked, key=lambda r: (r.ts, r.client))
        surviving = [w for w in acked
                     if not _ack_set_lost(w, read, crashes)]
        survivor = (max(surviving, key=lambda r: (r.ts, r.client))
                    if surviving else None)
        if read.status == "miss":
            if survivor is None:
                anomalies.append(Anomaly(
                    "durability-loss", read.key,
                    f"op#{read.op_id} ({read.client}) missed: every "
                    f"acked write's ack set crashed before the read",
                    expected=True))
                continue
            anomalies.append(Anomaly(
                "freshness", read.key,
                f"op#{read.op_id} ({read.client}) missed despite write "
                f"ts={survivor.ts} acked at t={survivor.completed:.3f} "
                f"before read at t={read.invoked:.3f}"))
        elif (read.result_ts, read.result_source) < (winner.ts,
                                                     winner.client):
            if survivor is None or (read.result_ts, read.result_source) \
                    >= (survivor.ts, survivor.client):
                # Fresh against everything that could have survived;
                # the newer acked write died with its whole ack set.
                anomalies.append(Anomaly(
                    "durability-loss", read.key,
                    f"op#{read.op_id} ({read.client}) returned "
                    f"ts={read.result_ts}; newer acked write "
                    f"ts={winner.ts} (acks={list(winner.acks)}) lost — "
                    f"all ackers crashed before the read",
                    expected=True))
            else:
                anomalies.append(Anomaly(
                    "freshness", read.key,
                    f"op#{read.op_id} ({read.client}) returned stale "
                    f"ts={read.result_ts} (src={read.result_source}); "
                    f"acked write ts={survivor.ts} "
                    f"(src={survivor.client}) completed earlier and an "
                    f"acker survived"))
    return anomalies


def check_replication(history: History, state: FinalState) -> list[Anomaly]:
    """Invariant 3: replication factor back to N on the final set."""
    anomalies = []
    tainted = history.deleted_keys()
    for key in history.written_keys():
        if key in tainted or not history.acked_writes(key):
            continue
        _vnode, replicas = state.replica_sets.get(key, (None, []))
        holders = state.holders.get(key, {})
        missing = [r for r in replicas if not holders.get(r)]
        if missing:
            anomalies.append(Anomaly(
                "replication", key,
                f"absent on {missing} of final replica set {replicas}"))
    return anomalies


def check_value_lists(history: History, state: FinalState) -> list[Anomaly]:
    """Invariant 4: no source's newest acked ``write_all`` element lost."""
    anomalies = []
    tainted = history.deleted_keys()
    keys = {r.key for r in history.records if r.kind == "write_all"}
    for key in sorted(keys):
        if key in tainted:
            continue
        merged = _merged_elements(state, key)
        per_source: dict[str, float] = {}
        for write in history.acked_writes(key, kind="write_all"):
            per_source[write.client] = max(per_source.get(write.client,
                                                          float("-inf")),
                                           write.ts)
        for source, newest_ts in sorted(per_source.items()):
            surviving = merged.get(source)
            if surviving is None:
                anomalies.append(Anomaly(
                    "value-list", key,
                    f"source {source} lost from value list (newest acked "
                    f"ts={newest_ts})"))
            elif surviving[0] < newest_ts:
                anomalies.append(Anomaly(
                    "value-list", key,
                    f"source {source} element ts={surviving[0]} older than "
                    f"newest acked ts={newest_ts}"))
    return anomalies


def check_cache_convergence(history: History,
                            state: FinalState) -> list[Anomaly]:
    """Invariant 5: every mapping cache equals the ZK assignment."""
    anomalies = []
    for label, caches in (("node", state.node_caches),
                          ("client", state.client_caches)):
        for name, snapshot in sorted(caches.items()):
            diffs = [v for v, (a, b) in
                     enumerate(zip(snapshot, state.assignment)) if a != b]
            if diffs:
                shown = diffs[:5]
                anomalies.append(Anomaly(
                    "cache", name,
                    f"{label} cache diverges from ZK on vnodes {shown}"
                    + (f" (+{len(diffs) - len(shown)} more)"
                       if len(diffs) > len(shown) else "")))
    return anomalies


def check_migrations(history: History, state: FinalState,
                     migrations: tuple = ()) -> list[Anomaly]:
    """Invariant 6: no acked write lost or key unreachable across a
    live migration.

    ``migrations`` is the rebalancer ledger (``Rebalancer.ledger()``
    rows).  Every entry must end resolved (``done`` or ``aborted`` —
    the runner aborts parked copies at quiesce, and a parked copy is
    safe because the donor still owns the vnode).  For every key whose
    vnode completed a migration, some replica of the final
    authoritative set must still hold the key — the chunk stream, the
    forwarding window and the pre-cutover digest verify together
    guarantee the receiver took over with nothing stranded on the
    donor.  Staleness/lost-update safety on those same keys rides the
    global durability/freshness/value-list checkers.
    """
    anomalies = []
    tainted = history.deleted_keys()
    done_vnodes: dict[int, dict] = {}
    for entry in migrations:
        vnode_id = entry.get("vnode")
        if entry.get("state") == "done":
            done_vnodes[vnode_id] = entry
        elif entry.get("state") != "aborted":
            anomalies.append(Anomaly(
                "migration", f"vnode-{vnode_id}",
                f"ledger entry unresolved after quiesce: state="
                f"{entry.get('state')!r} {entry.get('donor')} -> "
                f"{entry.get('receiver')} (reason={entry.get('reason')!r})"))
    if not done_vnodes:
        return anomalies
    for key in sorted(state.replica_sets):
        vnode_id, replicas = state.replica_sets[key]
        if vnode_id not in done_vnodes or key in tainted:
            continue
        if not history.acked_writes(key):
            continue
        holders = state.holders.get(key, {})
        if not any(holders.get(r) for r in replicas):
            entry = done_vnodes[vnode_id]
            anomalies.append(Anomaly(
                "migration", key,
                f"unreachable after vnode {vnode_id} migrated "
                f"{entry['donor']} -> {entry['receiver']}: no replica "
                f"of {replicas} holds it"))
    return anomalies


def _merged_dvv(state: FinalState, key: str) -> DvvRow:
    """Join every replica's causal row for ``key`` (uncapped)."""
    merged = DvvRow()
    for blob in state.dvv_holders.get(key, {}).values():
        if blob:
            merged.merge(unwire_dvv_row(blob))
    return merged


def _causal_fate(write, acked, merged_dots):
    """``preserved`` / ``superseded`` / ``lost`` for one acked causal
    write.

    Preserved: its dot survives as a sibling of the merged final row.
    Superseded: some *other* acked causal write's supplied context
    covers the dot — that writer had read (or been handed, via the
    write ack's sibling list) this version before overwriting it, so
    the loss was informed.  Anything else is a silent loss.
    """
    if write.dot is None:
        return "lost"
    if tuple(write.dot) in merged_dots:
        return "preserved"
    for other in acked:
        if other is write or not other.ctx:
            continue
        if ctx_covers(dict(other.ctx), tuple(write.dot)):
            return "superseded"
    return "lost"


def check_causal(history: History, state: FinalState,
                 crashes: tuple = ()) -> list[Anomaly]:
    """Invariant 7: no concurrent causal write silently lost.

    Every quorum-acked ``write_causal`` must either survive as a
    sibling of the merged final row or have been *knowingly*
    superseded by a later context-carrying write (see
    :func:`_causal_fate`).  The memory-first carve-out of invariant 2
    applies: when every acker of a write crashed after the ack, the
    dot may be provably gone from live memory — reported as an
    *expected* ``causal-durability-loss``, not a failure.
    """
    anomalies = []
    tainted = history.deleted_keys()
    for key in history.causal_keys():
        if key in tainted:
            continue
        acked = history.acked_causal_writes(key)
        if not acked:
            continue
        merged = _merged_dvv(state, key)
        merged_dots = {s.dot for s in merged.siblings}
        for write in acked:
            fate = _causal_fate(write, acked, merged_dots)
            if fate != "lost":
                continue
            ack_set_wiped = write.acks and all(
                any(node == acker and t > write.completed
                    for t, node in crashes)
                for acker in write.acks)
            if ack_set_wiped:
                anomalies.append(Anomaly(
                    "causal-durability-loss", key,
                    f"op#{write.op_id} ({write.client}) dot={write.dot} "
                    f"lost after its whole ack set crashed",
                    expected=True))
            else:
                anomalies.append(Anomaly(
                    "causal", key,
                    f"concurrent write silently lost: op#{write.op_id} "
                    f"({write.client}) dot={write.dot} "
                    f"value={write.value!r} — not a sibling of the final "
                    f"row and no acked write's context covers it"))
    return anomalies


def causal_outcomes(history: History, state: FinalState) -> dict:
    """Per-fate tallies of acked causal writes (BENCH_dvv.json)."""
    out = {"acked": 0, "preserved": 0, "superseded": 0, "lost": 0}
    tainted = history.deleted_keys()
    for key in history.causal_keys():
        if key in tainted:
            continue
        acked = history.acked_causal_writes(key)
        merged_dots = {s.dot for s in _merged_dvv(state, key).siblings}
        for write in acked:
            out["acked"] += 1
            out[_causal_fate(write, acked, merged_dots)] += 1
    return out


def lww_concurrent_losses(history: History, state: FinalState,
                          keys=None) -> dict[str, int]:
    """Per-key count of updates last-write-wins destroyed *blind*.

    An acked ``write_latest`` ``w`` is a blindly destroyed concurrent
    update when the earliest acked write beating it in (ts, source)
    order came from a *different* client that had not read ``w`` (or
    newer) on the key before invoking — nothing in the overwriter's
    causal past contained ``w``, yet only the overwriter survives.
    This mirrors the DVV supersession rule exactly (a sibling dies
    only to a write whose context covers it, and reads are how LWW
    clients acquire "context"), so the tally is the apples-to-apples
    baseline DVV mode is paired against in BENCH_dvv.json.
    """
    losses: dict[str, int] = {}
    tainted = history.deleted_keys()
    for key in (sorted(keys) if keys is not None
                else history.written_keys()):
        if key in tainted:
            continue
        acked = history.acked_writes(key, kind="write_latest")
        reads = [r for r in history.ops(kind="read_latest")
                 if r.key == key and r.status == "found"]
        count = 0
        for write in acked:
            beaters = [o for o in acked
                       if (o.ts, o.client) > (write.ts, write.client)]
            if not beaters:
                continue  # the key's final survivor
            first = min(beaters, key=lambda r: (r.ts, r.client))
            if first.client == write.client:
                continue  # own later write: causally after, not blind
            seen = any(
                r.client == first.client and r.completed <= first.invoked
                and (r.result_ts, r.result_source) >= (write.ts,
                                                       write.client)
                for r in reads)
            if not seen:
                count += 1
        if count:
            losses[key] = count
    return losses


CHECKS = (check_durability, check_freshness, check_replication,
          check_value_lists, check_cache_convergence, check_migrations,
          check_causal)


def check_all(history: History, state: FinalState,
              crashes: tuple = (),
              migrations: tuple = ()) -> list[Anomaly]:
    """Run every invariant; no unexpected anomalies == the run was
    safe.  ``crashes`` feeds the freshness and causal checkers'
    durability-loss carve-outs; ``migrations`` feeds the migration
    checker's ledger."""
    anomalies: list[Anomaly] = []
    for check in CHECKS:
        if check in (check_freshness, check_causal):
            anomalies.extend(check(history, state, crashes=crashes))
        elif check is check_migrations:
            anomalies.extend(check(history, state, migrations=migrations))
        else:
            anomalies.extend(check(history, state))
    return anomalies
