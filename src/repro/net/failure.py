"""Failure injection for the simulated cluster.

The paper's failure story (§III.C, §III.D): heartbeat loss makes
ZooKeeper aware of a dead real node; Sedna repairs lazily on the next
read/write.  To test that story we need controllable failures:

* :class:`FailureInjector.crash` / ``restart`` — node crash/recovery.
* :class:`Partition` — cut traffic between two groups of endpoints.
* :class:`MessageLoss` — drop a deterministic fraction of messages.

All randomness is seeded, so failure schedules replay identically.
"""

from __future__ import annotations

import random
from typing import Any, Iterable, Optional

from .transport import Network

__all__ = ["Partition", "MessageLoss", "FailureInjector"]


class Partition:
    """A network partition between two endpoint groups.

    Messages crossing the cut (either direction) are dropped while the
    partition is installed.  Use :meth:`heal` to remove it.
    """

    def __init__(self, network: Network, group_a: Iterable[str],
                 group_b: Iterable[str]) -> None:
        self.network = network
        self.group_a = frozenset(group_a)
        self.group_b = frozenset(group_b)
        self._active = True
        network.add_filter(self._filter)

    def _filter(self, src: str, dst: str, payload: Any) -> bool:
        if not self._active:
            return True
        crosses = ((src in self.group_a and dst in self.group_b)
                   or (src in self.group_b and dst in self.group_a))
        return not crosses

    @property
    def active(self) -> bool:
        """Whether the cut is currently dropping traffic."""
        return self._active

    def heal(self) -> None:
        """Remove the partition."""
        if self._active:
            self._active = False
            self.network.remove_filter(self._filter)


class MessageLoss:
    """Drop a fraction of messages, deterministically seeded.

    ``scope`` optionally restricts loss to messages touching the given
    endpoints (as source or destination).
    """

    def __init__(self, network: Network, rate: float, seed: int = 0,
                 scope: Optional[Iterable[str]] = None) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError("loss rate must be within [0, 1]")
        self.network = network
        self.rate = rate
        self.scope = frozenset(scope) if scope is not None else None
        self._rng = random.Random(seed)
        self.dropped = 0
        network.add_filter(self._filter)

    def _filter(self, src: str, dst: str, payload: Any) -> bool:
        if self.scope is not None and src not in self.scope and dst not in self.scope:
            return True
        if self._rng.random() < self.rate:
            self.dropped += 1
            return False
        return True

    def stop(self) -> None:
        """Stop dropping messages."""
        self.network.remove_filter(self._filter)


class FailureInjector:
    """Convenience facade bundling crash, partition and loss controls."""

    def __init__(self, network: Network) -> None:
        self.network = network
        self.partitions: list[Partition] = []

    def crash(self, name: str) -> None:
        """Crash the endpoint ``name`` (messages to/from it are lost)."""
        self.network.endpoint(name).crash()

    def restart(self, name: str) -> None:
        """Restart a crashed endpoint."""
        self.network.endpoint(name).restart()

    def partition(self, group_a: Iterable[str], group_b: Iterable[str]) -> Partition:
        """Install and track a partition between two groups."""
        part = Partition(self.network, group_a, group_b)
        self.partitions.append(part)
        return part

    def heal_all(self) -> None:
        """Heal every partition installed through this injector."""
        for part in self.partitions:
            part.heal()
        self.partitions.clear()

    def message_loss(self, rate: float, seed: int = 0,
                     scope: Optional[Iterable[str]] = None) -> MessageLoss:
        """Install a deterministic message-loss filter."""
        return MessageLoss(self.network, rate, seed, scope)
